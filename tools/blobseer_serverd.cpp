/// \file blobseer_serverd.cpp
/// \brief All-in-one BlobSeer provider daemon.
///
/// Boots a full deployment (version manager, provider manager, data and
/// metadata providers) in one process and serves its RPC dispatcher over
/// TCP. Remote clients bootstrap with the kTopology handshake
/// (core::connect_tcp) and then speak the ordinary wire protocol —
/// `blobseer_cli --connect host:port` gives an interactive shell against
/// a running daemon.
///
///   $ ./tools/blobseer_serverd --port 4400 --data-providers 8
///   blobseer-serverd: listening on 0.0.0.0:4400
///
/// The intra-daemon simulated network is configured with zero cost: the
/// real socket is the wire now. Use --sim-latency-us to re-enable
/// simulated per-hop service latency (e.g. to emulate a WAN deployment
/// behind one endpoint).
///
/// Stops on SIGINT/SIGTERM.

#include <algorithm>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cache/compressed_file_cache.hpp"
#include "chunk/disk_store.hpp"
#include "chunk/log_store.hpp"
#include "chunk/ram_store.hpp"
#include "chunk/two_tier_store.hpp"
#include "common/logging.hpp"
#include "core/cluster.hpp"
#include "net/metrics_http.hpp"
#include "rpc/service_client.hpp"
#include "rpc/tcp_transport.hpp"

using namespace blobseer;

namespace {

void usage(const char* argv0) {
    std::printf(
        "usage: %s [options]\n"
        "  --port <n>            listen port (default 4400; 0 = ephemeral)\n"
        "  --bind <addr>         bind address (default 0.0.0.0)\n"
        "  --data-providers <n>  data provider count (default 8)\n"
        "  --meta-providers <n>  metadata provider count (default 4)\n"
        "  --vm-shards <n>       version-manager shard count (default 1)\n"
        "  --abort-stalled-ms <n> abort writers stalled longer than n ms\n"
        "                        (background sweep; default 0 = off)\n"
        "  --replication <n>     default chunk replication (default 2)\n"
        "  --meta-replication <n> metadata replication (default 1)\n"
        "  --store <ram|disk|two-tier|log|two-tier-log|three-tier-log>\n"
        "                        chunk store backend (default ram);\n"
        "                        three-tier-log adds a compressed file\n"
        "                        cache between the RAM tier and the log\n"
        "                        engine\n"
        "  --ram-cache-mb <n>    RAM cache budget per provider in MiB\n"
        "                        (tiered stores; default 64)\n"
        "  --file-cache-mb <n>   compressed file-cache budget per\n"
        "                        provider in MiB (three-tier-log;\n"
        "                        default 256)\n"
        "  --file-cache-dir <path>  root for the per-provider file\n"
        "                        caches (default: <disk-root>/file-cache;\n"
        "                        disposable, safe on tmpfs)\n"
        "  --compress-cold       recompress cold records at compaction\n"
        "                        time (log-family stores; engine files\n"
        "                        become format v2)\n"
        "  --cas                 content-addressed chunks: dedup by\n"
        "                        SHA-256, check-before-push, refcounted GC\n"
        "  --meta-store <ram|disk|log>  metadata backend (default ram;\n"
        "                        log when --store is log-family)\n"
        "  --disk-root <path>    root for disk-backed stores\n"
        "  --sim-latency-us <n>  simulated intra-daemon latency (default 0)\n"
        "  --workers <n>         RPC dispatch worker threads (default:\n"
        "                        hardware-sized; min 4)\n"
        "  --io-threads <n>      RPC event-loop (reactor) threads moving\n"
        "                        socket bytes (default 2)\n"
        "  --idle-timeout-ms <n> close client connections idle longer\n"
        "                        than n ms (default 0 = never)\n"
        "  --heartbeat-timeout-ms <n>  declare an external provider dead\n"
        "                        after n ms without a heartbeat (default\n"
        "                        0 = off)\n"
        "  --repair-interval-ms <n>  background re-replication drain\n"
        "                        period (default 0 = off)\n"
        "  --metrics-port <n>    serve Prometheus text exposition on\n"
        "                        GET /metrics at this port (0 =\n"
        "                        ephemeral; default: endpoint off)\n"
        "  --log-level <debug|info|warn|error>\n"
        "                        stderr log threshold (default warn)\n"
        "provider mode (standalone data-provider daemon):\n"
        "  --provider            run as a data provider instead of a\n"
        "                        full deployment\n"
        "  --join <host:port>    manager daemon to join (required)\n"
        "  --name <s>            stable provider name; rejoining under\n"
        "                        the same name reclaims the node id\n"
        "                        (required)\n"
        "  --announce-host <addr> address advertised to clients\n"
        "                        (default 127.0.0.1)\n"
        "  --beat-interval-ms <n> heartbeat period (default 500)\n"
        "  --help\n",
        argv0);
}

std::unique_ptr<chunk::ChunkStore> make_provider_store(
    const core::ClusterConfig& cfg, const std::string& name) {
    const auto root = cfg.disk_root / ("dp-" + name);
    const auto make_log = [&] {
        engine::EngineConfig ecfg;
        ecfg.dir = root;
        ecfg.compress_on_compact = cfg.compress_cold_segments;
        return std::make_unique<chunk::LogStore>(std::move(ecfg));
    };
    switch (cfg.store) {
        case core::StoreBackend::kRam:
            return std::make_unique<chunk::RamStore>();
        case core::StoreBackend::kDisk:
            return std::make_unique<chunk::DiskStore>(root);
        case core::StoreBackend::kTwoTier:
            return std::make_unique<chunk::TwoTierStore>(
                std::make_unique<chunk::DiskStore>(root),
                cfg.ram_cache_budget);
        case core::StoreBackend::kLog:
            return make_log();
        case core::StoreBackend::kTwoTierLog:
            return std::make_unique<chunk::TieredStore>(
                make_log(), cfg.ram_cache_budget);
        case core::StoreBackend::kThreeTierLog: {
            cache::FileCacheConfig fcfg;
            const auto cache_root = cfg.file_cache_dir.empty()
                                        ? cfg.disk_root / "file-cache"
                                        : cfg.file_cache_dir;
            fcfg.dir = cache_root / ("dp-" + name);
            fcfg.budget_bytes = cfg.file_cache_budget;
            return std::make_unique<chunk::TieredStore>(
                make_log(), cfg.ram_cache_budget,
                std::make_unique<cache::CompressedFileCache>(fcfg));
        }
    }
    throw InvalidArgument("unknown store backend");
}

/// Standalone data-provider daemon: join the manager by name, serve the
/// data-provider RPCs on an own port, announce endpoint + inventory, and
/// heartbeat with incremental inventory deltas until shut down.
/// Start the scrape endpoint when --metrics-port was given; returns null
/// (endpoint off) otherwise. \p metrics_port is -1 for "flag absent".
std::unique_ptr<net::MetricsHttpServer> maybe_serve_metrics(
    int metrics_port, const std::string& bind_addr) {
    if (metrics_port < 0) {
        return nullptr;
    }
    auto http = std::make_unique<net::MetricsHttpServer>(
        static_cast<std::uint16_t>(metrics_port), bind_addr);
    std::printf("blobseer-serverd: metrics on http://%s:%u/metrics\n",
                bind_addr.c_str(), http->port());
    std::fflush(stdout);
    return http;
}

int run_provider(const core::ClusterConfig& cfg, const std::string& join,
                 const std::string& name, std::uint16_t port,
                 const std::string& bind_addr,
                 const std::string& announce_host, long long beat_ms,
                 const rpc::TcpRpcServer::Options& server_opts,
                 int metrics_port, sigset_t* signals) {
    const auto colon = join.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= join.size()) {
        std::fprintf(stderr, "--join wants host:port, got '%s'\n",
                     join.c_str());
        return 2;
    }
    const std::string mgr_host = join.substr(0, colon);
    const auto mgr_port = static_cast<std::uint16_t>(
        std::atoi(join.c_str() + colon + 1));

    rpc::TcpTransport to_manager(mgr_host, mgr_port);
    const rpc::Topology topo = rpc::fetch_topology(to_manager);
    rpc::ServiceClient svc(to_manager, topo.vm_nodes, topo.pm_node,
                           topo.client_id);

    const auto joined = svc.provider_join(name);
    provider::DataProvider dp(joined.node, make_provider_store(cfg, name));

    rpc::Dispatcher dispatcher;
    dispatcher.add_data_provider(joined.node, &dp);
    rpc::TcpRpcServer::Options opts = server_opts;
    opts.port = port;
    opts.bind_addr = bind_addr;
    rpc::TcpRpcServer server(dispatcher, opts);
    const auto metrics_http = maybe_serve_metrics(metrics_port, bind_addr);

    // A durable store restarts with its chunks; the announce carries the
    // full inventory so the manager can count them (and cancel repairs
    // the rejoin just satisfied).
    svc.provider_announce(joined.node, announce_host, server.port(),
                          dp.inventory());
    std::printf("blobseer-serverd: provider '%s' node %u (%s) listening "
                "on %s:%u, joined %s\n",
                name.c_str(), joined.node,
                joined.rejoin ? "rejoin" : "new", bind_addr.c_str(),
                server.port(), join.c_str());
    std::fflush(stdout);

    std::jthread beater([&](std::stop_token stop) {
        std::uint64_t seq = 0;
        // Deltas drain only after an acknowledged beat, so a beat lost
        // to a manager hiccup is retried with the same payload — the
        // inventory view converges without a full re-announce.
        provider::DataProvider::InventoryDelta pending;
        bool have_pending = false;
        const auto tick = milliseconds(std::max(beat_ms, 50LL));
        std::mutex mu;
        std::condition_variable_any cv;
        std::unique_lock lock(mu);
        while (!stop.stop_requested()) {
            lock.unlock();
            try {
                if (!have_pending) {
                    pending = dp.drain_inventory_delta();
                    have_pending = true;
                }
                if (svc.provider_beat(joined.node, ++seq, pending.added,
                                      pending.removed)) {
                    pending = {};
                    have_pending = false;
                } else {
                    // The manager does not know us — it restarted. Joining
                    // again under our name reclaims the id on a manager
                    // that journals membership; a manager that lost it
                    // mints a fresh id we cannot adopt mid-flight.
                    const auto back = svc.provider_join(name);
                    if (back.node == joined.node) {
                        svc.provider_announce(joined.node, announce_host,
                                              server.port(),
                                              dp.inventory());
                        pending = {};  // the announce carried everything
                        have_pending = false;
                    } else {
                        std::fprintf(stderr,
                                     "blobseer-serverd: manager reassigned "
                                     "node %u -> %u; restart this "
                                     "provider\n",
                                     joined.node, back.node);
                        lock.lock();
                        return;
                    }
                }
            } catch (const Error& e) {
                // Manager unreachable: keep the pending delta and retry.
                std::fprintf(stderr,
                             "blobseer-serverd: heartbeat failed: %s\n",
                             e.what());
            }
            lock.lock();
            cv.wait_for(lock, stop, tick, [] { return false; });
        }
    });

    int sig = 0;
    sigwait(signals, &sig);
    std::printf("blobseer-serverd: %s, provider '%s' shutting down\n",
                strsignal(sig), name.c_str());
    beater = {};
    server.stop();
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    core::ClusterConfig cfg;
    cfg.data_providers = 8;
    cfg.metadata_providers = 4;
    cfg.default_replication = 2;
    // The socket is the wire; by default the simulator charges nothing.
    cfg.network.latency = Duration::zero();
    cfg.network.node_bandwidth_bps = 0;

    std::uint16_t port = 4400;
    bool port_set = false;
    std::string bind_addr = "0.0.0.0";
    // workers 0 = hardware-sized default; io_threads 0 = reactor default.
    rpc::TcpRpcServer::Options server_opts;
    bool meta_store_set = false;
    long long abort_stalled_ms = 0;  // 0 = no background stalled sweep

    bool provider_mode = false;
    std::string join_addr;
    std::string provider_name;
    std::string announce_host = "127.0.0.1";
    long long beat_interval_ms = 500;
    int metrics_port = -1;  // -1 = endpoint off

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            port = static_cast<std::uint16_t>(std::atoi(next()));
            port_set = true;
        } else if (arg == "--bind") {
            bind_addr = next();
        } else if (arg == "--data-providers") {
            cfg.data_providers = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--meta-providers") {
            cfg.metadata_providers =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--vm-shards") {
            cfg.num_version_managers =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--abort-stalled-ms") {
            abort_stalled_ms = std::atoll(next());
        } else if (arg == "--replication") {
            cfg.default_replication =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--meta-replication") {
            cfg.meta_replication =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--store") {
            const std::string s = next();
            if (s == "ram") {
                cfg.store = core::StoreBackend::kRam;
            } else if (s == "disk") {
                cfg.store = core::StoreBackend::kDisk;
            } else if (s == "two-tier") {
                cfg.store = core::StoreBackend::kTwoTier;
            } else if (s == "log") {
                cfg.store = core::StoreBackend::kLog;
            } else if (s == "two-tier-log") {
                cfg.store = core::StoreBackend::kTwoTierLog;
            } else if (s == "three-tier-log") {
                cfg.store = core::StoreBackend::kThreeTierLog;
            } else {
                std::fprintf(stderr, "unknown store backend '%s'\n",
                             s.c_str());
                return 2;
            }
        } else if (arg == "--meta-store") {
            const std::string s = next();
            if (s == "ram") {
                cfg.meta_store = core::ClusterConfig::MetaBackend::kRam;
            } else if (s == "disk") {
                cfg.meta_store = core::ClusterConfig::MetaBackend::kDisk;
            } else if (s == "log") {
                cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
            } else {
                std::fprintf(stderr, "unknown metadata backend '%s'\n",
                             s.c_str());
                return 2;
            }
            meta_store_set = true;
        } else if (arg == "--cas") {
            cfg.content_addressed = true;
        } else if (arg == "--disk-root") {
            cfg.disk_root = next();
        } else if (arg == "--ram-cache-mb") {
            cfg.ram_cache_budget =
                static_cast<std::uint64_t>(std::atoll(next())) << 20;
        } else if (arg == "--file-cache-mb") {
            cfg.file_cache_budget =
                static_cast<std::uint64_t>(std::atoll(next())) << 20;
        } else if (arg == "--file-cache-dir") {
            cfg.file_cache_dir = next();
        } else if (arg == "--compress-cold") {
            cfg.compress_cold_segments = true;
        } else if (arg == "--sim-latency-us") {
            cfg.network.latency = microseconds(std::atoll(next()));
        } else if (arg == "--workers") {
            server_opts.workers = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--io-threads") {
            server_opts.io_threads =
                static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--idle-timeout-ms") {
            server_opts.idle_timeout_ms =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--heartbeat-timeout-ms") {
            cfg.heartbeat_timeout = milliseconds(std::atoll(next()));
        } else if (arg == "--repair-interval-ms") {
            cfg.repair_interval = milliseconds(std::atoll(next()));
        } else if (arg == "--provider") {
            provider_mode = true;
        } else if (arg == "--join") {
            join_addr = next();
        } else if (arg == "--name") {
            provider_name = next();
        } else if (arg == "--announce-host") {
            announce_host = next();
        } else if (arg == "--beat-interval-ms") {
            beat_interval_ms = std::atoll(next());
        } else if (arg == "--metrics-port") {
            metrics_port = std::atoi(next());
        } else if (arg == "--log-level") {
            const char* s = next();
            const auto level = parse_log_level(s);
            if (!level) {
                std::fprintf(stderr, "unknown log level '%s'\n", s);
                return 2;
            }
            Logger::instance().set_level(*level);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // A log-family chunk store makes the whole daemon restartable: default
    // metadata onto the same engine and journal the version manager so a
    // restart on the same --disk-root serves every published blob again.
    if (cfg.store == core::StoreBackend::kLog ||
        cfg.store == core::StoreBackend::kTwoTierLog ||
        cfg.store == core::StoreBackend::kThreeTierLog) {
        if (!meta_store_set) {
            cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
        }
        cfg.durable_version_manager = true;
    }

    // Block the shutdown signals before any thread spawns so the accept
    // and connection threads inherit the mask and sigwait gets them.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    if (provider_mode) {
        if (join_addr.empty() || provider_name.empty()) {
            std::fprintf(stderr,
                         "--provider requires --join and --name\n");
            return 2;
        }
        // Provider mode defaults to an ephemeral port: several providers
        // usually share a host (and port 4400 belongs to the manager).
        if (!port_set) {
            port = 0;
        }
        try {
            return run_provider(cfg, join_addr, provider_name, port,
                                bind_addr, announce_host,
                                beat_interval_ms, server_opts,
                                metrics_port, &set);
        } catch (const Error& e) {
            std::fprintf(stderr, "blobseer-serverd: %s\n", e.what());
            return 1;
        }
    }

    try {
        core::Cluster cluster(cfg);
        server_opts.port = port;
        server_opts.bind_addr = bind_addr;
        rpc::TcpRpcServer server(cluster.dispatcher(), server_opts);
        const auto metrics_http =
            maybe_serve_metrics(metrics_port, bind_addr);
        std::printf("blobseer-serverd: listening on %s:%u (%zu data "
                    "providers, %zu metadata providers, %zu vm shards)\n",
                    bind_addr.c_str(), server.port(), cfg.data_providers,
                    cfg.metadata_providers,
                    cluster.version_manager_count());
        std::fflush(stdout);

        // Background recovery sweep: each tick applies the stalled-write
        // timeout policy to a bounded batch of blobs per shard, so a
        // writer that died between assign and commit cannot block a
        // blob's publication forever.
        std::jthread sweeper;
        if (abort_stalled_ms > 0) {
            sweeper = std::jthread([&cluster, abort_stalled_ms](
                                       std::stop_token stop) {
                const auto max_age = milliseconds(abort_stalled_ms);
                const auto tick =
                    milliseconds(std::max(abort_stalled_ms / 4, 10LL));
                std::mutex mu;
                std::condition_variable_any cv;
                std::unique_lock lock(mu);
                while (!stop.stop_requested()) {
                    try {
                        for (std::size_t i = 0;
                             i < cluster.version_manager_count(); ++i) {
                            const std::size_t n =
                                cluster.version_manager(i).sweep_stalled(
                                    max_age, 64);
                            if (n > 0) {
                                std::printf("blobseer-serverd: aborted "
                                            "%zu stalled version(s) on "
                                            "shard %zu\n",
                                            n, i);
                                std::fflush(stdout);
                            }
                        }
                    } catch (const std::exception& e) {
                        // A sweep failure (e.g. a failed journal append
                        // latching the shard) must not std::terminate
                        // the daemon: stop sweeping, keep serving — the
                        // shard's own fail latch already guards its
                        // journal consistency.
                        std::fprintf(stderr,
                                     "blobseer-serverd: stalled sweep "
                                     "failed, sweeper stopped: %s\n",
                                     e.what());
                        return;
                    }
                    cv.wait_for(lock, stop, tick, [] { return false; });
                }
            });
        }

        int sig = 0;
        sigwait(&set, &sig);
        std::printf("blobseer-serverd: %s, shutting down\n",
                    strsignal(sig));
        sweeper = {};
        server.stop();
        for (std::size_t i = 0; i < cluster.version_manager_count(); ++i) {
            const auto st = cluster.version_manager(i).status();
            std::printf(
                "blobseer-serverd: vm shard %u: %llu blobs, %llu "
                "assigns, %llu commits, %llu aborts, %llu publishes, "
                "backlog %llu (high-water %llu)\n",
                st.shard, (unsigned long long)st.blobs,
                (unsigned long long)st.assigns,
                (unsigned long long)st.commits,
                (unsigned long long)st.aborts,
                (unsigned long long)st.publishes,
                (unsigned long long)st.backlog,
                (unsigned long long)st.backlog_high_water);
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "blobseer-serverd: %s\n", e.what());
        return 1;
    }
}
