/// \file blobseer_serverd.cpp
/// \brief All-in-one BlobSeer provider daemon.
///
/// Boots a full deployment (version manager, provider manager, data and
/// metadata providers) in one process and serves its RPC dispatcher over
/// TCP. Remote clients bootstrap with the kTopology handshake
/// (core::connect_tcp) and then speak the ordinary wire protocol —
/// `blobseer_cli --connect host:port` gives an interactive shell against
/// a running daemon.
///
///   $ ./tools/blobseer_serverd --port 4400 --data-providers 8
///   blobseer-serverd: listening on 0.0.0.0:4400
///
/// The intra-daemon simulated network is configured with zero cost: the
/// real socket is the wire now. Use --sim-latency-us to re-enable
/// simulated per-hop service latency (e.g. to emulate a WAN deployment
/// behind one endpoint).
///
/// Stops on SIGINT/SIGTERM.

#include <algorithm>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "core/cluster.hpp"
#include "rpc/tcp_transport.hpp"

using namespace blobseer;

namespace {

void usage(const char* argv0) {
    std::printf(
        "usage: %s [options]\n"
        "  --port <n>            listen port (default 4400; 0 = ephemeral)\n"
        "  --bind <addr>         bind address (default 0.0.0.0)\n"
        "  --data-providers <n>  data provider count (default 8)\n"
        "  --meta-providers <n>  metadata provider count (default 4)\n"
        "  --vm-shards <n>       version-manager shard count (default 1)\n"
        "  --abort-stalled-ms <n> abort writers stalled longer than n ms\n"
        "                        (background sweep; default 0 = off)\n"
        "  --replication <n>     default chunk replication (default 2)\n"
        "  --meta-replication <n> metadata replication (default 1)\n"
        "  --store <ram|disk|two-tier|log|two-tier-log>\n"
        "                        chunk store backend (default ram)\n"
        "  --cas                 content-addressed chunks: dedup by\n"
        "                        SHA-256, check-before-push, refcounted GC\n"
        "  --meta-store <ram|disk|log>  metadata backend (default ram;\n"
        "                        log when --store is log-family)\n"
        "  --disk-root <path>    root for disk-backed stores\n"
        "  --sim-latency-us <n>  simulated intra-daemon latency (default 0)\n"
        "  --workers <n>         RPC dispatch worker threads (default:\n"
        "                        hardware-sized; min 4)\n"
        "  --help\n",
        argv0);
}

}  // namespace

int main(int argc, char** argv) {
    core::ClusterConfig cfg;
    cfg.data_providers = 8;
    cfg.metadata_providers = 4;
    cfg.default_replication = 2;
    // The socket is the wire; by default the simulator charges nothing.
    cfg.network.latency = Duration::zero();
    cfg.network.node_bandwidth_bps = 0;

    std::uint16_t port = 4400;
    std::string bind_addr = "0.0.0.0";
    std::size_t workers = 0;  // 0 = TcpRpcServer's hardware-sized default
    bool meta_store_set = false;
    long long abort_stalled_ms = 0;  // 0 = no background stalled sweep

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            port = static_cast<std::uint16_t>(std::atoi(next()));
        } else if (arg == "--bind") {
            bind_addr = next();
        } else if (arg == "--data-providers") {
            cfg.data_providers = static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--meta-providers") {
            cfg.metadata_providers =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--vm-shards") {
            cfg.num_version_managers =
                static_cast<std::size_t>(std::atoi(next()));
        } else if (arg == "--abort-stalled-ms") {
            abort_stalled_ms = std::atoll(next());
        } else if (arg == "--replication") {
            cfg.default_replication =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--meta-replication") {
            cfg.meta_replication =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--store") {
            const std::string s = next();
            if (s == "ram") {
                cfg.store = core::StoreBackend::kRam;
            } else if (s == "disk") {
                cfg.store = core::StoreBackend::kDisk;
            } else if (s == "two-tier") {
                cfg.store = core::StoreBackend::kTwoTier;
            } else if (s == "log") {
                cfg.store = core::StoreBackend::kLog;
            } else if (s == "two-tier-log") {
                cfg.store = core::StoreBackend::kTwoTierLog;
            } else {
                std::fprintf(stderr, "unknown store backend '%s'\n",
                             s.c_str());
                return 2;
            }
        } else if (arg == "--meta-store") {
            const std::string s = next();
            if (s == "ram") {
                cfg.meta_store = core::ClusterConfig::MetaBackend::kRam;
            } else if (s == "disk") {
                cfg.meta_store = core::ClusterConfig::MetaBackend::kDisk;
            } else if (s == "log") {
                cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
            } else {
                std::fprintf(stderr, "unknown metadata backend '%s'\n",
                             s.c_str());
                return 2;
            }
            meta_store_set = true;
        } else if (arg == "--cas") {
            cfg.content_addressed = true;
        } else if (arg == "--disk-root") {
            cfg.disk_root = next();
        } else if (arg == "--sim-latency-us") {
            cfg.network.latency = microseconds(std::atoll(next()));
        } else if (arg == "--workers") {
            workers = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // A log-family chunk store makes the whole daemon restartable: default
    // metadata onto the same engine and journal the version manager so a
    // restart on the same --disk-root serves every published blob again.
    if (cfg.store == core::StoreBackend::kLog ||
        cfg.store == core::StoreBackend::kTwoTierLog) {
        if (!meta_store_set) {
            cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
        }
        cfg.durable_version_manager = true;
    }

    // Block the shutdown signals before any thread spawns so the accept
    // and connection threads inherit the mask and sigwait gets them.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    try {
        core::Cluster cluster(cfg);
        rpc::TcpRpcServer server(cluster.dispatcher(), port, bind_addr,
                                 workers);
        std::printf("blobseer-serverd: listening on %s:%u (%zu data "
                    "providers, %zu metadata providers, %zu vm shards)\n",
                    bind_addr.c_str(), server.port(), cfg.data_providers,
                    cfg.metadata_providers,
                    cluster.version_manager_count());
        std::fflush(stdout);

        // Background recovery sweep: each tick applies the stalled-write
        // timeout policy to a bounded batch of blobs per shard, so a
        // writer that died between assign and commit cannot block a
        // blob's publication forever.
        std::jthread sweeper;
        if (abort_stalled_ms > 0) {
            sweeper = std::jthread([&cluster, abort_stalled_ms](
                                       std::stop_token stop) {
                const auto max_age = milliseconds(abort_stalled_ms);
                const auto tick =
                    milliseconds(std::max(abort_stalled_ms / 4, 10LL));
                std::mutex mu;
                std::condition_variable_any cv;
                std::unique_lock lock(mu);
                while (!stop.stop_requested()) {
                    try {
                        for (std::size_t i = 0;
                             i < cluster.version_manager_count(); ++i) {
                            const std::size_t n =
                                cluster.version_manager(i).sweep_stalled(
                                    max_age, 64);
                            if (n > 0) {
                                std::printf("blobseer-serverd: aborted "
                                            "%zu stalled version(s) on "
                                            "shard %zu\n",
                                            n, i);
                                std::fflush(stdout);
                            }
                        }
                    } catch (const std::exception& e) {
                        // A sweep failure (e.g. a failed journal append
                        // latching the shard) must not std::terminate
                        // the daemon: stop sweeping, keep serving — the
                        // shard's own fail latch already guards its
                        // journal consistency.
                        std::fprintf(stderr,
                                     "blobseer-serverd: stalled sweep "
                                     "failed, sweeper stopped: %s\n",
                                     e.what());
                        return;
                    }
                    cv.wait_for(lock, stop, tick, [] { return false; });
                }
            });
        }

        int sig = 0;
        sigwait(&set, &sig);
        std::printf("blobseer-serverd: %s, shutting down\n",
                    strsignal(sig));
        sweeper = {};
        server.stop();
        for (std::size_t i = 0; i < cluster.version_manager_count(); ++i) {
            const auto st = cluster.version_manager(i).status();
            std::printf(
                "blobseer-serverd: vm shard %u: %llu blobs, %llu "
                "assigns, %llu commits, %llu aborts, %llu publishes, "
                "backlog %llu (high-water %llu)\n",
                st.shard, (unsigned long long)st.blobs,
                (unsigned long long)st.assigns,
                (unsigned long long)st.commits,
                (unsigned long long)st.aborts,
                (unsigned long long)st.publishes,
                (unsigned long long)st.backlog,
                (unsigned long long)st.backlog_high_water);
        }
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "blobseer-serverd: %s\n", e.what());
        return 1;
    }
}
