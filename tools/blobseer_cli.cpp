/// \file blobseer_cli.cpp
/// \brief Interactive / scriptable shell over a BlobSeer cluster.
///
/// Two modes:
///  * default — boots an in-process cluster (simulated network) and
///    exposes the whole public API as shell commands;
///  * `--connect host:port` — attaches to a running blobseer_serverd
///    daemon over TCP; the same commands travel the real wire protocol
///    (fault-injection commands need the in-process cluster and are
///    unavailable remotely).
///
/// `--parallel N` drives the data path through the async client API:
/// writes/appends stream their chunks through an N-deep in-flight
/// window, and reads split into N concurrent read_async sub-ranges.
/// `stats` dumps the client's counters, including the in-flight window
/// gauge and its high-water mark.
///
/// Reads commands from stdin, one per line; `help` lists them. Payloads
/// are deterministic patterns tagged by a user-chosen integer so reads
/// can verify which write produced the bytes.
///
///   $ printf 'create 65536\nappend 1 131072 7\nstat 1\nquit\n' | ./tools/blobseer_cli
///   $ ./tools/blobseer_cli --connect 127.0.0.1:4400 --parallel 32

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/client.hpp"
#include "core/cluster.hpp"
#include "core/remote.hpp"

using namespace blobseer;

namespace {

class Shell {
  public:
    Shell(std::size_t parallel, bool trace)
        : parallel_(parallel), trace_(trace) {
        core::ClusterConfig cfg;
        cfg.data_providers = 8;
        cfg.metadata_providers = 4;
        cfg.default_replication = 2;
        cfg.network.latency = microseconds(50);
        cfg.network.node_bandwidth_bps = 400ULL << 20;
        cfg.client_max_inflight_chunks = std::max<std::size_t>(parallel, 1);
        cfg.client_trace = trace;
        cluster_ = std::make_unique<core::Cluster>(cfg);
        client_ = cluster_->make_client();
        std::printf("blobseer-cli: cluster up (%zu data providers, %zu "
                    "metadata providers). Type 'help'.\n",
                    cluster_->data_provider_count(),
                    cluster_->metadata_provider_count());
    }

    Shell(const std::string& host, std::uint16_t port, std::size_t parallel,
          bool trace)
        : parallel_(parallel), trace_(trace) {
        core::RemoteOptions options;
        options.max_inflight_chunks = std::max<std::size_t>(parallel, 1);
        core::ClientEnv env = core::connect_tcp(host, port, options);
        env.trace = trace;
        client_ = std::make_unique<core::BlobSeerClient>(std::move(env));
        std::printf("blobseer-cli: connected to %s:%u (client id %u). "
                    "Type 'help'.\n",
                    host.c_str(), port, client_->node());
    }

    int run() {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (!dispatch(line)) {
                break;
            }
        }
        return 0;
    }

  private:
    static Version parse_version(const std::string& s) {
        return s == "latest" ? kLatestVersion : std::stoull(s);
    }

    bool dispatch(const std::string& line) {
        std::istringstream in(line);
        std::string cmd;
        if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') {
            return true;
        }
        try {
            if (cmd == "quit" || cmd == "exit") {
                return false;
            } else if (cmd == "help") {
                help();
            } else if (cmd == "create") {
                std::uint64_t chunk = 0;
                std::uint32_t repl = 0;
                in >> chunk;
                const bool has_repl = static_cast<bool>(in >> repl);
                const auto blob =
                    has_repl ? client_->create(chunk, repl)
                             : client_->create(chunk);
                std::printf("blob %llu created (chunk %llu, replication "
                            "%u)\n",
                            (unsigned long long)blob.id(),
                            (unsigned long long)blob.chunk_size(),
                            blob.replication());
            } else if (cmd == "write" || cmd == "append") {
                BlobId id = 0;
                std::uint64_t offset = 0;
                std::uint64_t size = 0;
                std::uint64_t tag = 0;
                in >> id;
                if (cmd == "write") {
                    in >> offset;
                }
                in >> size >> tag;
                // Optional trailing blob id: key the pattern off another
                // blob so two blobs can carry byte-identical payloads
                // (exercises cross-blob dedup under --cas).
                BlobId pattern_id = id;
                if (!(in >> pattern_id)) {
                    pattern_id = id;
                }
                const Buffer data = make_pattern(pattern_id, tag, 0, size);
                // The put path always streams through the client's
                // in-flight window (sized by --parallel); async only
                // changes which thread drives it.
                const Version v =
                    cmd == "write"
                        ? (parallel_ > 1
                               ? client_->write_async(id, offset, data)
                                     .get()
                               : client_->write(id, offset, data))
                        : (parallel_ > 1
                               ? client_->append_async(id, data).get()
                               : client_->append(id, data));
                std::printf("-> version %llu\n", (unsigned long long)v);
                print_trace_id();
            } else if (cmd == "read") {
                BlobId id = 0;
                std::string vs;
                std::uint64_t offset = 0;
                std::uint64_t size = 0;
                std::uint64_t tag = 0;
                in >> id >> vs >> offset >> size;
                const bool check = static_cast<bool>(in >> tag);
                Buffer out(size);
                if (parallel_ > 1 && size > 0) {
                    // Split the range into --parallel concurrent
                    // read_async sub-reads of one pinned version.
                    const Version pinned =
                        client_->stat(id, parse_version(vs)).version;
                    const std::uint64_t stripe =
                        std::max<std::uint64_t>(1, size / parallel_);
                    std::vector<Future<std::size_t>> parts;
                    for (std::uint64_t pos = 0; pos < size;
                         pos += stripe) {
                        const std::uint64_t n =
                            std::min<std::uint64_t>(stripe, size - pos);
                        parts.push_back(client_->read_async(
                            id, pinned, offset + pos,
                            MutableBytes(out.data() + pos, n)));
                    }
                    for (auto& part : parts) {
                        (void)part.get();
                    }
                } else {
                    client_->read(id, parse_version(vs), offset, out);
                }
                std::printf("read %llu bytes, fnv=%016llx%s\n",
                            (unsigned long long)size,
                            (unsigned long long)fnv1a64(ConstBytes(out)),
                            !check ? ""
                            : verify_pattern(id, tag, 0, out) == -1
                                ? " [tag matches]"
                                : " [TAG MISMATCH]");
                print_trace_id();
            } else if (cmd == "stats") {
                print_stats();
            } else if (cmd == "metrics") {
                NodeId node = rpc::kControlNode;
                in >> node;
                print_metrics(node);
            } else if (cmd == "trace") {
                std::string id_text;
                in >> id_text;
                print_trace(std::stoull(id_text, nullptr, 16));
            } else if (cmd == "vm-status") {
                print_vm_status();
            } else if (cmd == "repair-status") {
                print_repair_status();
            } else if (cmd == "parallel") {
                std::size_t n = 1;
                in >> n;
                parallel_ = std::max<std::size_t>(n, 1);
                std::printf("parallel = %zu (read splitting; the write "
                            "window stays at its startup value)\n",
                            parallel_);
            } else if (cmd == "stat") {
                BlobId id = 0;
                std::string vs = "latest";
                in >> id >> vs;
                const auto vi = client_->stat(id, parse_version(vs));
                std::printf("blob %llu v%llu: size %llu, status %s\n",
                            (unsigned long long)id,
                            (unsigned long long)vi.version,
                            (unsigned long long)vi.size,
                            to_string(vi.status));
            } else if (cmd == "history") {
                BlobId id = 0;
                in >> id;
                for (const auto& s : client_->history(id)) {
                    std::printf("  v%-4llu %-9s write [%llu, %llu) -> "
                                "size %llu\n",
                                (unsigned long long)s.version,
                                to_string(s.status),
                                (unsigned long long)s.offset,
                                (unsigned long long)(s.offset + s.size),
                                (unsigned long long)s.size_after);
                }
            } else if (cmd == "diff") {
                BlobId id = 0;
                Version from = 0;
                Version to = 0;
                in >> id >> from >> to;
                for (const auto& r : client_->changed_ranges(id, from, to)) {
                    std::printf("  [%llu, %llu)\n",
                                (unsigned long long)r.offset,
                                (unsigned long long)r.end());
                }
            } else if (cmd == "clone") {
                BlobId src = 0;
                std::string vs = "latest";
                in >> src >> vs;
                const auto blob = client_->clone(src, parse_version(vs));
                std::printf("clone -> blob %llu\n",
                            (unsigned long long)blob.id());
            } else if (cmd == "pin" || cmd == "unpin") {
                BlobId id = 0;
                Version v = 0;
                in >> id >> v;
                if (cmd == "pin") {
                    client_->pin(id, v);
                } else {
                    client_->unpin(id, v);
                }
                std::printf("ok\n");
            } else if (cmd == "retire") {
                BlobId id = 0;
                Version keep = 0;
                in >> id >> keep;
                const auto st = client_->retire_versions(id, keep);
                std::printf("retired %zu versions, freed %zu chunks, %zu "
                            "metadata nodes\n",
                            st.versions, st.chunks, st.meta_nodes);
            } else if (cmd == "delete") {
                BlobId id = 0;
                in >> id;
                const auto st = client_->delete_blob(id);
                std::printf("deleted blob %llu: %zu versions, released "
                            "%zu chunk refs, erased %zu metadata nodes\n",
                            (unsigned long long)id, st.versions, st.chunks,
                            st.meta_nodes);
            } else if (cmd == "dedup-stats") {
                print_dedup_stats();
            } else if (cmd == "locate") {
                BlobId id = 0;
                std::string vs;
                std::uint64_t offset = 0;
                std::uint64_t size = 0;
                in >> id >> vs >> offset >> size;
                const auto vi = client_->stat(id, parse_version(vs));
                for (const auto& loc :
                     client_->locate(id, vi.version, {offset, size})) {
                    std::string nodes;
                    for (const NodeId n : loc.providers) {
                        nodes += std::to_string(n) + " ";
                    }
                    std::printf("  [%llu, %llu) %s\n",
                                (unsigned long long)loc.range.offset,
                                (unsigned long long)loc.range.end(),
                                loc.hole ? "(hole)" : nodes.c_str());
                }
            } else if (cmd == "providers" || cmd == "kill" ||
                       cmd == "recover" || cmd == "degrade" ||
                       cmd == "restore") {
                if (cluster_ == nullptr) {
                    std::printf("'%s' needs the in-process cluster (not "
                                "available over --connect)\n",
                                cmd.c_str());
                    return true;
                }
                dispatch_cluster(cmd, in);
            } else {
                std::printf("unknown command '%s' (try 'help')\n",
                            cmd.c_str());
            }
        } catch (const Error& e) {
            std::printf("error: %s\n", e.what());
        } catch (const std::exception& e) {
            std::printf("bad arguments: %s\n", e.what());
        }
        return true;
    }

    void print_stats() const {
        const auto& st = client_->stats();
        std::printf(
            "client stats:\n"
            "  ops:        %llu writes, %llu appends, %llu reads\n"
            "  bytes:      %llu written, %llu read\n"
            "  chunk rpcs: %llu puts, %llu gets, %llu retries\n"
            "  in-flight:  %llu now, %llu high-water (window limit)\n"
            "  latency us: write mean %.0f p99 %llu, read mean %.0f "
            "p99 %llu\n",
            (unsigned long long)st.writes.get(),
            (unsigned long long)st.appends.get(),
            (unsigned long long)st.reads.get(),
            (unsigned long long)st.bytes_written.get(),
            (unsigned long long)st.bytes_read.get(),
            (unsigned long long)st.chunk_put_rpcs.get(),
            (unsigned long long)st.chunk_get_rpcs.get(),
            (unsigned long long)st.chunk_retries.get(),
            (unsigned long long)st.inflight_chunk_rpcs.get(),
            (unsigned long long)st.inflight_chunk_rpcs.high_water(),
            st.write_latency_us.mean(),
            (unsigned long long)st.write_latency_us.quantile(0.99),
            st.read_latency_us.mean(),
            (unsigned long long)st.read_latency_us.quantile(0.99));
    }

    /// After a traced write/read: tell the operator the id to feed to
    /// `trace <id>` (scripts grep this line).
    void print_trace_id() const {
        if (trace_ && client_->last_trace_id() != 0) {
            std::printf("trace id %016llx\n",
                        (unsigned long long)client_->last_trace_id());
        }
    }

    void print_metrics(NodeId node) {
        const auto snap = client_->services().metrics_dump(node);
        const std::string text = render_prometheus(snap);
        std::fputs(text.c_str(), stdout);
        std::printf("# %zu series\n", snap.samples.size());
    }

    /// Collect the trace's spans from this process plus every daemon
    /// reachable through the transport and print the merged span tree.
    void print_trace(std::uint64_t trace_id) {
        // Local half: root + per-RPC client spans live in this process's
        // ring, not behind any RPC.
        std::vector<trace::SpanRecord> spans =
            trace::buffer().snapshot(trace_id);
        // Remote halves: the default endpoint plus each data node (an
        // external provider daemon answers for its own node; in the
        // all-in-one deployment every query lands on the same process
        // and the duplicates are filtered below).
        auto& svc = client_->services();
        auto fetch = [&](NodeId node) {
            try {
                const auto remote = svc.trace_dump(trace_id, 0, node);
                spans.insert(spans.end(), remote.begin(), remote.end());
            } catch (const Error&) {
                // A dead node keeps its spans; show what the rest saw.
            }
        };
        fetch(rpc::kControlNode);
        for (const NodeId node : client_->data_nodes()) {
            fetch(node);
        }

        // One record per (span id, kind, node): querying one process
        // through several node ids returns identical copies.
        std::sort(spans.begin(), spans.end(),
                  [](const trace::SpanRecord& a, const trace::SpanRecord& b) {
                      return std::tie(a.span_id, a.kind, a.node,
                                      a.start_unix_us) <
                             std::tie(b.span_id, b.kind, b.node,
                                      b.start_unix_us);
                  });
        spans.erase(std::unique(spans.begin(), spans.end(),
                                [](const trace::SpanRecord& a,
                                   const trace::SpanRecord& b) {
                                    return a.span_id == b.span_id &&
                                           a.kind == b.kind &&
                                           a.node == b.node &&
                                           a.start_unix_us ==
                                               b.start_unix_us;
                                }),
                    spans.end());
        if (spans.empty()) {
            std::printf("no spans for trace %016llx (ring rolled over, or "
                        "wrong id?)\n",
                        (unsigned long long)trace_id);
            return;
        }

        // Dapper-style merge: the client half carries the parent edge,
        // the server half (same span id) the remote-side timing.
        std::map<std::uint32_t, const trace::SpanRecord*> client_half;
        std::map<std::uint32_t, const trace::SpanRecord*> server_half;
        for (const auto& s : spans) {
            auto& half = s.kind == trace::SpanRecord::kClient ? client_half
                                                              : server_half;
            half.emplace(s.span_id, &s);
        }
        std::map<std::uint32_t, std::vector<std::uint32_t>> children;
        std::vector<std::uint32_t> roots;
        for (const auto& [id, rec] : client_half) {
            if (rec->parent_span != 0 &&
                client_half.count(rec->parent_span) != 0) {
                children[rec->parent_span].push_back(id);
            } else {
                roots.push_back(id);
            }
        }
        // Server-only spans (their client half aged out of a ring).
        for (const auto& [id, rec] : server_half) {
            if (client_half.count(id) == 0) {
                roots.push_back(id);
            }
        }

        std::printf("trace %016llx: %zu span(s)\n",
                    (unsigned long long)trace_id, spans.size());
        auto print_node = [&](auto&& self, std::uint32_t id,
                              int depth) -> void {
            const auto* c = client_half.count(id) != 0 ? client_half[id]
                                                       : nullptr;
            const auto* s = server_half.count(id) != 0 ? server_half[id]
                                                       : nullptr;
            const auto* any = c != nullptr ? c : s;
            const std::string op(any->op_name());
            std::printf("%*s%s", depth * 2, "", op.c_str());
            if (c != nullptr) {
                std::printf("  client[node %u] %llu us", c->node,
                            (unsigned long long)c->duration_us);
                if (c->bytes != 0) {
                    std::printf(", %llu bytes",
                                (unsigned long long)c->bytes);
                }
                if (c->status != 0) {
                    std::printf(", status %u", c->status);
                }
            }
            if (s != nullptr) {
                std::printf("  server[node %u] %llu us (queued %llu us)",
                            s->node, (unsigned long long)s->duration_us,
                            (unsigned long long)s->queue_us);
                if (s->status != 0) {
                    std::printf(", status %u", s->status);
                }
            }
            std::printf("\n");
            if (const auto it = children.find(id); it != children.end()) {
                for (const std::uint32_t child : it->second) {
                    self(self, child, depth + 1);
                }
            }
        };
        for (const std::uint32_t root : roots) {
            print_node(print_node, root, 1);
        }
    }

    void print_dedup_stats() {
        // One kDedupStatus RPC per data provider, so the same command
        // works over --connect and in-process alike (the counters are
        // per-boot, the store snapshots live — same contract as stats).
        auto& svc = client_->services();
        provider::DataProvider::DedupStatus total;
        for (const NodeId node : client_->data_nodes()) {
            const auto s = svc.dedup_status(node);
            std::printf("  dp node %u: %llu chunks / %llu bytes stored, "
                        "%llu dup refs, %llu bytes skipped, %llu chunks / "
                        "%llu bytes reclaimed\n",
                        node, (unsigned long long)s.chunks_stored,
                        (unsigned long long)s.stored_bytes,
                        (unsigned long long)(s.check_hits + s.dup_puts),
                        (unsigned long long)s.bytes_skipped,
                        (unsigned long long)s.reclaimed_chunks,
                        (unsigned long long)s.reclaimed_bytes);
            total.chunks_stored += s.chunks_stored;
            total.stored_bytes += s.stored_bytes;
            total.check_hits += s.check_hits;
            total.check_misses += s.check_misses;
            total.bytes_skipped += s.bytes_skipped;
            total.dup_puts += s.dup_puts;
            total.decrefs += s.decrefs;
            total.reclaimed_chunks += s.reclaimed_chunks;
            total.reclaimed_bytes += s.reclaimed_bytes;
        }
        const auto& st = client_->stats();
        std::printf(
            "dedup totals:\n"
            "  stored:     %llu chunks, %llu bytes\n"
            "  referenced: %llu extra refs (check hits %llu, misses "
            "%llu, dup puts %llu)\n"
            "  skipped:    %llu bytes kept off the wire\n"
            "  gc:         %llu decrefs, %llu chunks / %llu bytes "
            "reclaimed\n"
            "  client cas: %llu chunks, %llu dedup hits, %llu bytes "
            "skipped, %llu bytes sent, %llu stream pushes\n",
            (unsigned long long)total.chunks_stored,
            (unsigned long long)total.stored_bytes,
            (unsigned long long)(total.check_hits + total.dup_puts),
            (unsigned long long)total.check_hits,
            (unsigned long long)total.check_misses,
            (unsigned long long)total.dup_puts,
            (unsigned long long)total.bytes_skipped,
            (unsigned long long)total.decrefs,
            (unsigned long long)total.reclaimed_chunks,
            (unsigned long long)total.reclaimed_bytes,
            (unsigned long long)st.cas_chunks.get(),
            (unsigned long long)st.cas_dedup_hits.get(),
            (unsigned long long)st.cas_bytes_skipped.get(),
            (unsigned long long)st.cas_bytes_sent.get(),
            (unsigned long long)st.cas_stream_pushes.get());
    }

    void print_vm_status() {
        // Over the wire: one kVmStatus RPC per advertised shard, so the
        // same command works against a remote daemon and the in-process
        // cluster alike.
        auto& svc = client_->services();
        for (const NodeId node : svc.vm_nodes()) {
            const auto st = svc.vm_status(node);
            std::printf(
                "  shard %u (node %u): blobs %llu, published %llu, "
                "backlog %llu (high-water %llu), assigns %llu, commits "
                "%llu, aborts %llu\n",
                st.shard, node, (unsigned long long)st.blobs,
                (unsigned long long)st.publishes,
                (unsigned long long)st.backlog,
                (unsigned long long)st.backlog_high_water,
                (unsigned long long)st.assigns,
                (unsigned long long)st.commits,
                (unsigned long long)st.aborts);
        }
    }

    void print_repair_status() {
        // One kRepairStatus RPC, so the same command works against a
        // remote daemon and the in-process cluster alike. Scripts parse
        // the `repair:` line (e2e_tcp.sh phase 4 polls it).
        const auto st = client_->services().repair_status();
        std::printf(
            "repair: backlog %llu (high-water %llu), enqueued %llu, "
            "completed %llu, skipped %llu, failed %llu, deferred %llu, "
            "under-replicated %llu\n",
            (unsigned long long)st.backlog,
            (unsigned long long)st.high_water,
            (unsigned long long)st.enqueued,
            (unsigned long long)st.completed,
            (unsigned long long)st.skipped,
            (unsigned long long)st.failed,
            (unsigned long long)st.deferred,
            (unsigned long long)st.under_replicated);
        for (const auto& p : st.providers) {
            if (p.last_beat_age_ms == ~0ull) {
                std::printf("  provider %u: %s%s, %llu chunks / %llu "
                            "bytes\n",
                            p.node, p.alive ? "alive" : "dead",
                            p.heartbeating ? ", heartbeating (no beat yet)"
                                           : "",
                            (unsigned long long)p.chunks,
                            (unsigned long long)p.bytes);
            } else {
                std::printf("  provider %u: %s, %llu beats (last %llums "
                            "ago), %llu chunks / %llu bytes\n",
                            p.node, p.alive ? "alive" : "dead",
                            (unsigned long long)p.beats,
                            (unsigned long long)p.last_beat_age_ms,
                            (unsigned long long)p.chunks,
                            (unsigned long long)p.bytes);
            }
        }
    }

    void dispatch_cluster(const std::string& cmd, std::istringstream& in) {
        if (cmd == "providers") {
            for (std::size_t i = 0;
                 i < cluster_->data_provider_count(); ++i) {
                auto& dp = cluster_->data_provider(i);
                std::printf("  dp-%zu node=%u alive=%s bytes=%llu "
                            "chunks=%zu\n",
                            i, dp.node(),
                            cluster_->network().is_alive(dp.node())
                                ? "yes"
                                : "no",
                            (unsigned long long)dp.stored_bytes(),
                            dp.store().count());
            }
        } else if (cmd == "kill") {
            std::size_t i = 0;
            int lose = 0;
            in >> i >> lose;
            cluster_->kill_data_provider(i, lose != 0);
            std::printf("dp-%zu killed%s\n", i,
                        lose ? " (volatile state lost)" : "");
        } else if (cmd == "recover") {
            std::size_t i = 0;
            in >> i;
            cluster_->recover_data_provider(i);
            std::printf("dp-%zu recovered\n", i);
        } else if (cmd == "degrade") {
            std::size_t i = 0;
            double factor = 1.0;
            in >> i >> factor;
            cluster_->degrade_data_provider(i, factor);
            std::printf("dp-%zu degraded %.1fx\n", i, factor);
        } else if (cmd == "restore") {
            std::size_t i = 0;
            in >> i;
            cluster_->restore_data_provider(i);
            std::printf("dp-%zu restored\n", i);
        }
    }

    static void help() {
        std::printf(
            "commands:\n"
            "  create <chunk_bytes> [replication]\n"
            "  write <blob> <offset> <size> <tag> [pattern-blob]\n"
            "                  (pattern payload; optional pattern-blob\n"
            "                   keys the bytes off another blob id)\n"
            "  append <blob> <size> <tag>\n"
            "  read <blob> <version|latest> <offset> <size> [tag]\n"
            "  stat <blob> [version|latest]\n"
            "  history <blob>\n"
            "  diff <blob> <from_version> <to_version>\n"
            "  clone <blob> [version|latest]\n"
            "  pin|unpin <blob> <version>\n"
            "  retire <blob> <keep_from_version>\n"
            "  delete <blob>              (decref chunks, erase metadata)\n"
            "  locate <blob> <version|latest> <offset> <size>\n"
            "  stats                              (client counter dump)\n"
            "  metrics [node]     (Prometheus-text registry snapshot of\n"
            "                      the daemon serving that node; default:\n"
            "                      the default endpoint)\n"
            "  trace <id-hex>     (merged span tree of one --trace'd op)\n"
            "  vm-status                  (per-shard version-manager dump)\n"
            "  dedup-stats                (per-provider dedup/GC dump)\n"
            "  repair-status              (membership + repair gauges)\n"
            "  parallel <n>                       (async read splitting)\n"
            "  providers | kill <i> <lose01> | recover <i>\n"
            "  degrade <i> <factor> | restore <i>\n"
            "  help | quit\n");
    }

    std::unique_ptr<core::Cluster> cluster_;
    std::unique_ptr<core::BlobSeerClient> client_;
    std::size_t parallel_ = 1;
    bool trace_ = false;
};

}  // namespace

int main(int argc, char** argv) {
    // Line-buffer stdout even when redirected: scripted sessions (the
    // e2e harness drives the shell through a FIFO) read results — e.g.
    // the printed trace id — back mid-session.
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    std::string connect;
    std::size_t parallel = 1;
    bool trace = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--connect" && i + 1 < argc) {
            connect = argv[++i];
        } else if (arg == "--parallel" && i + 1 < argc) {
            try {
                parallel = std::max<std::size_t>(
                    1, std::stoul(argv[++i]));
            } catch (const std::exception&) {
                std::fprintf(stderr, "--parallel needs a number\n");
                return 2;
            }
        } else if (arg == "--trace") {
            trace = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--connect host:port] [--parallel N] "
                         "[--trace]\n",
                         argv[0]);
            return 2;
        }
    }
    try {
        if (!connect.empty()) {
            const auto colon = connect.rfind(':');
            unsigned long port = 0;
            try {
                port = colon == std::string::npos
                           ? 0
                           : std::stoul(connect.substr(colon + 1));
            } catch (const std::exception&) {
                port = 0;
            }
            if (colon == std::string::npos || colon == 0 || port == 0 ||
                port > 65535) {
                std::fprintf(stderr,
                             "--connect needs host:port (got '%s')\n",
                             connect.c_str());
                return 2;
            }
            Shell shell(connect.substr(0, colon),
                        static_cast<std::uint16_t>(port), parallel, trace);
            return shell.run();
        }
        Shell shell(parallel, trace);
        return shell.run();
    } catch (const Error& e) {
        std::fprintf(stderr, "blobseer-cli: %s\n", e.what());
        return 1;
    }
}
