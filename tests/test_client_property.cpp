/// \file test_client_property.cpp
/// \brief Full-stack model check: random operation sequences through the
///        real client (network, providers, DHT, version manager, caches)
///        compared byte-for-byte against a flat reference model. Unlike
///        test_tree_property this exercises actual data movement,
///        including the unaligned-append merge path and short chunks.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "testing_util.hpp"

namespace blobseer::core {
namespace {

constexpr std::uint64_t kChunk = 32;

class FullStackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FullStackProperty, RandomOpsMatchModel) {
    Rng rng(GetParam() * 31337);
    auto cfg = blobseer::testing::fast_config();
    cfg.data_providers = 3;
    cfg.metadata_providers = 2;
    cfg.meta_replication = 1;
    Cluster cluster(cfg);
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk);

    // Model: full byte content per version (index 0 = version 1).
    std::vector<Buffer> model;
    auto content = [&]() -> Buffer {
        return model.empty() ? Buffer{} : model.back();
    };

    const int steps = 30;
    for (int s = 0; s < steps; ++s) {
        Buffer snapshot = content();
        const std::uint64_t cur = snapshot.size();
        const double dice = rng.uniform();
        std::uint64_t offset = 0;
        std::uint64_t size = 1 + rng.below(3 * kChunk);
        bool is_append = false;

        if (dice < 0.45 || cur == 0) {
            is_append = true;  // arbitrary size, possibly unaligned end
            offset = cur;
        } else if (dice < 0.8) {
            // Interior overwrite: aligned offset, whole chunks (or
            // reaching/passing the end).
            const std::uint64_t slots = ceil_div(cur, kChunk);
            const std::uint64_t first = rng.below(slots);
            offset = first * kChunk;
            const std::uint64_t max_whole = slots - first;
            const std::uint64_t count =
                1 + rng.below(std::min<std::uint64_t>(max_whole, 4));
            size = count * kChunk;
            if (offset + size > cur && rng.chance(0.5)) {
                // Shrink into a short tail, but never below the current
                // end (an interior write must cover whole chunks).
                const std::uint64_t slack = offset + size - cur;
                size -= rng.below(std::min(slack, kChunk / 2) + 1);
            }
        } else {
            // Sparse extension past the end.
            offset = (ceil_div(cur, kChunk) + rng.below(2)) * kChunk;
        }

        const Buffer data =
            make_pattern(blob.id(), 777 + s, offset, size);
        Version v;
        if (is_append) {
            v = blob.append(data);
        } else {
            v = blob.write(offset, data);
        }
        ASSERT_EQ(v, model.size() + 1);

        if (snapshot.size() < offset + size) {
            snapshot.resize(offset + size, 0);
        }
        std::copy(data.begin(), data.end(), snapshot.begin() + offset);
        model.push_back(std::move(snapshot));
    }

    // Every snapshot, full extent + random sub-ranges.
    for (Version v = 1; v <= model.size(); ++v) {
        const Buffer& expect = model[v - 1];
        Buffer got(expect.size());
        ASSERT_EQ(blob.read(v, 0, got), got.size());
        ASSERT_EQ(got, expect) << "version " << v;
        for (int i = 0; i < 3 && !expect.empty(); ++i) {
            const std::uint64_t off = rng.below(expect.size());
            const std::uint64_t len = 1 + rng.below(expect.size() - off);
            Buffer part(len);
            ASSERT_EQ(blob.read(v, off, part), len);
            ASSERT_TRUE(std::equal(part.begin(), part.end(),
                                   expect.begin() + off))
                << "version " << v << " range [" << off << ", "
                << off + len << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullStackProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

/// Same check with replication and a two-tier (disk-backed) store: the
/// data path must be byte-identical regardless of backend.
class BackendProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackendProperty, DiskBackedMatchesModel) {
    Rng rng(GetParam() * 1009);
    auto cfg = blobseer::testing::fast_config();
    cfg.store = StoreBackend::kTwoTier;
    cfg.ram_cache_budget = 4 * kChunk;  // force evictions
    cfg.disk_root = std::filesystem::temp_directory_path() /
                    ("blobseer-prop-" + std::to_string(GetParam()) + "-" +
                     std::to_string(::getpid()));
    std::filesystem::remove_all(cfg.disk_root);
    cfg.default_replication = 2;
    {
        Cluster cluster(cfg);
        auto client = cluster.make_client();
        Blob blob = client->create(kChunk);

        std::vector<Buffer> model;
        for (int s = 0; s < 15; ++s) {
            const std::uint64_t cur =
                model.empty() ? 0 : model.back().size();
            const std::uint64_t size = 1 + rng.below(2 * kChunk);
            const Buffer data = make_pattern(blob.id(), s, cur, size);
            blob.append(data);
            Buffer snapshot = model.empty() ? Buffer{} : model.back();
            snapshot.insert(snapshot.end(), data.begin(), data.end());
            model.push_back(std::move(snapshot));
        }
        for (Version v = 1; v <= model.size(); ++v) {
            Buffer got(model[v - 1].size());
            ASSERT_EQ(blob.read(v, 0, got), got.size());
            ASSERT_EQ(got, model[v - 1]) << "version " << v;
        }
    }
    std::filesystem::remove_all(cfg.disk_root);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendProperty,
                         ::testing::Range<std::uint64_t>(1, 5));

/// Chunk-size sweep, including odd (non-power-of-two) chunk sizes: only
/// slot *counts* must be powers of two; the chunk size itself is free
/// (fixed per blob at creation, paper §I-B.3).
class ChunkSizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChunkSizeProperty, OddChunkSizesMatchModel) {
    const std::uint64_t chunk = GetParam();
    Rng rng(chunk * 7919);
    Cluster cluster(blobseer::testing::fast_config());
    auto client = cluster.make_client();
    Blob blob = client->create(chunk);

    Buffer model;
    for (int s = 0; s < 18; ++s) {
        const std::uint64_t cur = model.size();
        std::uint64_t offset;
        std::uint64_t size;
        if (rng.chance(0.5) || cur < 2 * chunk) {
            offset = cur;  // append, arbitrary size
            size = 1 + rng.below(3 * chunk);
        } else {
            const std::uint64_t slots = cur / chunk;
            offset = rng.below(slots) * chunk;
            size = chunk * (1 + rng.below(3));
            if (offset + size < cur) {
                // interior: keep whole chunks (already multiple) — fine
            }
        }
        const Buffer data = make_pattern(blob.id(), s, offset, size);
        if (offset == cur) {
            blob.append(data);
        } else {
            blob.write(offset, data);
        }
        if (model.size() < offset + size) {
            model.resize(offset + size, 0);
        }
        std::copy(data.begin(), data.end(), model.begin() + offset);
    }
    Buffer got(model.size());
    ASSERT_EQ(blob.read(blob.latest(), 0, got), got.size());
    EXPECT_EQ(got, model) << "chunk size " << chunk;
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSizeProperty,
                         ::testing::Values(1, 3, 17, 64, 257, 1000));

}  // namespace
}  // namespace blobseer::core
