/// \file test_fault.cpp
/// \brief Fault-injection tests: provider death with and without
///        replication, metadata replica failover, dead-writer abort
///        cascades and garbage collection of aborted versions.
///
/// The kill/partition scenarios run twice — once with in-process
/// SimTransport clients and once with real remote clients speaking
/// TcpTransport against an in-process TcpRpcServer — so the wire path
/// (topology handshake, dispatcher fault gate, typed-error round-trip)
/// proves out the same failover behaviour as the simulated one.

#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <thread>

#include "core/remote.hpp"
#include "rpc/tcp_transport.hpp"
#include "testing_util.hpp"

namespace blobseer::core {
namespace {

constexpr std::uint64_t kChunk = 64;

core::ClusterConfig fault_config(std::uint32_t data_repl,
                                 std::uint32_t meta_repl) {
    auto cfg = blobseer::testing::fast_config();
    cfg.data_providers = 4;
    cfg.metadata_providers = 3;
    cfg.default_replication = data_repl;
    cfg.meta_replication = meta_repl;
    cfg.publish_timeout = seconds(2);
    return cfg;
}

/// Parameterized over the client transport: "sim" clients talk through
/// the simulated network, "tcp" clients bootstrap with the topology
/// handshake and speak real sockets. Fault injection itself always goes
/// through the cluster (kill/recover are control-plane operations).
class FaultTransport : public ::testing::TestWithParam<const char*> {
  protected:
    Cluster& make_cluster(const core::ClusterConfig& cfg) {
        cluster_ = std::make_unique<Cluster>(cfg);
        return *cluster_;
    }

    std::unique_ptr<BlobSeerClient> make_client() {
        if (std::string_view(GetParam()) == "tcp") {
            if (server_ == nullptr) {
                server_ = std::make_unique<rpc::TcpRpcServer>(
                    cluster_->dispatcher(), 0, "127.0.0.1");
            }
            return std::make_unique<BlobSeerClient>(
                connect_tcp("127.0.0.1", server_->port()));
        }
        return cluster_->make_client();
    }

    std::unique_ptr<Cluster> cluster_;
    // Declared after cluster_: the server (which references the
    // cluster's dispatcher) must shut down first.
    std::unique_ptr<rpc::TcpRpcServer> server_;
};

INSTANTIATE_TEST_SUITE_P(Transports, FaultTransport,
                         ::testing::Values("sim", "tcp"));

TEST_P(FaultTransport, ReplicatedDataSurvivesProviderDeath) {
    Cluster& cluster = make_cluster(fault_config(2, 2));
    auto client = make_client();
    Blob blob = client->create(kChunk, 2);
    const Buffer data = make_pattern(blob.id(), 1, 0, 8 * kChunk);
    blob.write(0, data);

    // Kill the most loaded provider, *with* data loss.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < cluster.data_provider_count(); ++i) {
        if (cluster.data_provider(i).stored_bytes() >
            cluster.data_provider(victim).stored_bytes()) {
            victim = i;
        }
    }
    cluster.kill_data_provider(victim, /*lose_volatile=*/true);

    Buffer out(data.size());
    auto reader = make_client();
    EXPECT_EQ(reader->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
    EXPECT_GT(reader->stats().chunk_retries.get(), 0u);
}

TEST_P(FaultTransport, UnreplicatedDataLostOnDeath) {
    Cluster& cluster = make_cluster(fault_config(1, 1));
    auto client = make_client();
    Blob blob = client->create(kChunk, 1);
    blob.write(0, make_pattern(blob.id(), 1, 0, 8 * kChunk));

    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        cluster.kill_data_provider(i, true);
    }
    Buffer out(kChunk);
    EXPECT_THROW(client->read(blob.id(), 1, 0, out), Error);
}

TEST_P(FaultTransport, WriteFailsOverToLiveProviders) {
    Cluster& cluster = make_cluster(fault_config(1, 1));
    auto client = make_client();
    Blob blob = client->create(kChunk, 1);

    // Kill one provider at the NETWORK level only — the provider manager
    // still believes it is alive and will plan placements onto it; the
    // client must detect the failure, report it and re-place.
    cluster.network().kill(cluster.data_provider(0).node());

    const Buffer data = make_pattern(blob.id(), 1, 0, 8 * kChunk);
    EXPECT_NO_THROW(blob.write(0, data));
    Buffer out(data.size());
    EXPECT_EQ(client->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
    // The failure report marked the provider dead at the manager.
    EXPECT_FALSE(cluster.provider_manager().is_alive(
        cluster.data_provider(0).node()));
}

TEST_P(FaultTransport, MetadataReplicaFailover) {
    Cluster& cluster = make_cluster(fault_config(2, 2));
    auto client = make_client();
    Blob blob = client->create(kChunk, 2);
    const Buffer data = make_pattern(blob.id(), 1, 0, 16 * kChunk);
    blob.write(0, data);

    cluster.kill_metadata_provider(0, /*lose_state=*/true);

    // A fresh client (cold cache) must read everything through the
    // surviving metadata replicas.
    auto reader = make_client();
    Buffer out(data.size());
    EXPECT_EQ(reader->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
}

TEST(Fault, MetadataLossWithoutReplicationBreaksReads) {
    Cluster cluster(fault_config(1, 1));
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 1);
    blob.write(0, make_pattern(blob.id(), 1, 0, 16 * kChunk));

    for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
        cluster.kill_metadata_provider(i, true);
    }
    auto reader = cluster.make_client();  // cold cache
    Buffer out(kChunk);
    EXPECT_THROW(reader->read(blob.id(), 1, 0, out), Error);
}

TEST(Fault, DeadWriterBlocksThenAbortCascades) {
    Cluster cluster(fault_config(1, 1));
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 1);
    blob.write(0, make_pattern(blob.id(), 1, 0, kChunk));  // v1 published

    // A writer gets v2 assigned and dies before committing.
    auto& vm = cluster.version_manager();
    (void)vm.assign(blob.id(), kChunk, kChunk);

    // Another client's append (v3) commits but cannot publish.
    const Version v3 = client->append(blob.id(), Buffer(kChunk, 0x33));
    EXPECT_EQ(v3, 3u);
    EXPECT_EQ(vm.latest(blob.id()), 1u);  // stuck behind the dead v2

    // Readers of "latest" still see v1 (no blocking on writers).
    Buffer out(kChunk);
    client->read(blob.id(), kLatestVersion, 0, out);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 1, 0, out));

    // The recovery policy kills the stalled tail: v2 AND v3.
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_EQ(vm.abort_stalled(blob.id(), milliseconds(1)), 2u);
    EXPECT_THROW(client->wait_published(blob.id(), v3), VersionAborted);

    // The blob recovers: new writes publish again, size rolled back.
    const Version v4 = client->append(blob.id(), Buffer(kChunk, 0x44));
    EXPECT_EQ(v4, 4u);
    EXPECT_EQ(client->stat(blob.id()).size, 2 * kChunk);
    Buffer tail(kChunk);
    client->read(blob.id(), v4, kChunk, tail);
    EXPECT_EQ(tail, Buffer(kChunk, 0x44));
}

TEST(Fault, GcRemovesAbortedVersionData) {
    Cluster cluster(fault_config(1, 1));
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 1);
    blob.write(0, make_pattern(blob.id(), 1, 0, 4 * kChunk));

    // A writer gets v2 assigned and dies; the client's v3 write commits
    // fully but is cascade-aborted along with v2.
    (void)cluster.version_manager().assign(blob.id(), kChunk, kChunk);
    const Version v3 = client->write(blob.id(), 0,
                                     make_pattern(blob.id(), 2, 0, kChunk));
    std::uint64_t stored_before = 0;
    std::size_t meta_before = 0;
    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        stored_before += cluster.data_provider(i).stored_bytes();
    }
    for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
        meta_before += cluster.metadata_provider(i).stored_nodes();
    }

    cluster.version_manager().abort(blob.id(), 2);
    // GC of the dead writer's version removes nothing (it stored no
    // data), and must not throw.
    EXPECT_EQ(client->gc_aborted_version(blob.id(), 2), 0u);
    const std::size_t removed = client->gc_aborted_version(blob.id(), v3);
    EXPECT_GT(removed, 0u);

    std::uint64_t stored_after = 0;
    std::size_t meta_after = 0;
    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        stored_after += cluster.data_provider(i).stored_bytes();
    }
    for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
        meta_after += cluster.metadata_provider(i).stored_nodes();
    }
    EXPECT_EQ(stored_after, stored_before - kChunk);
    EXPECT_LT(meta_after, meta_before);

    // v1 is untouched.
    Buffer out(4 * kChunk);
    client->read(blob.id(), 1, 0, out);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 1, 0, out));
    EXPECT_THROW(client->gc_aborted_version(blob.id(), 1), InvalidArgument);
}

TEST(Fault, ReadOfAbortedVersionThrows) {
    Cluster cluster(fault_config(1, 1));
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 1);
    blob.write(0, Buffer(kChunk, 1));
    // Dead writer blocks the tail; the client's v3 gets cascade-aborted.
    (void)cluster.version_manager().assign(blob.id(), 0, kChunk);
    const Version v3 = client->write(blob.id(), 0, Buffer(kChunk, 2));
    cluster.version_manager().abort(blob.id(), 2);
    Buffer out(kChunk);
    EXPECT_THROW(client->read(blob.id(), v3, 0, out), VersionAborted);
    // Latest resolves to the surviving v1.
    EXPECT_EQ(client->stat(blob.id()).version, 1u);
}

TEST(Fault, DegradedProviderStillCorrect) {
    auto cfg = fault_config(1, 1);
    cfg.network.latency = microseconds(10);
    cfg.network.node_bandwidth_bps = 200ULL << 20;
    Cluster cluster(cfg);
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 1);
    const Buffer data = make_pattern(blob.id(), 1, 0, 8 * kChunk);
    blob.write(0, data);

    cluster.degrade_data_provider(0, 8.0, milliseconds(1));
    Buffer out(data.size());
    EXPECT_EQ(client->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
}

TEST_P(FaultTransport, RecoveredProviderServesOldChunks) {
    Cluster& cluster = make_cluster(fault_config(1, 1));
    auto client = make_client();
    Blob blob = client->create(kChunk, 1);
    const Buffer data = make_pattern(blob.id(), 1, 0, 8 * kChunk);
    blob.write(0, data);

    // Down WITHOUT losing state (e.g. a network blip), then back.
    cluster.kill_data_provider(2, /*lose_volatile=*/false);
    cluster.recover_data_provider(2);

    Buffer out(data.size());
    EXPECT_EQ(client->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace blobseer::core
