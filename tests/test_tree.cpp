/// \file test_tree.cpp
/// \brief Deterministic tests of segment-tree construction and reading:
///        borrowing, bridges, holes, short tails, weaving between
///        concurrent writers and cross-blob (clone) borrowing.
///
/// These tests drive the real VersionManager for version bookkeeping but
/// talk to a plain InMemoryMetaStore, so every metadata fetch and node
/// creation is exactly countable.

#include <gtest/gtest.h>

#include <map>

#include "meta/meta_store.hpp"
#include "meta/tree_builder.hpp"
#include "meta/tree_reader.hpp"
#include "version/version_manager.hpp"

namespace blobseer {
namespace {

using meta::BuildInput;
using meta::BuildResult;
using meta::MetaNode;
using meta::SlotRange;
using version::VersionManager;

constexpr std::uint64_t kChunk = 8;

/// Test harness: a blob driven through the real version manager with
/// metadata in a local store. Leaf uids encode (version, slot) so reads
/// can be checked without storing chunk data.
class TreeFixture : public ::testing::Test {
  protected:
    TreeFixture() {
        info_ = vm_.create_blob(kChunk, 1);
    }

    static std::uint64_t uid_for(Version v, std::uint64_t first_slot,
                                 std::uint64_t i) {
        return v * 1'000'000 + (first_slot + i);
    }

    /// Assign + build + commit a write in one step (sequential caller).
    BuildResult apply(std::optional<std::uint64_t> offset, std::uint64_t size,
                      BlobId blob = kInvalidBlob) {
        if (blob == kInvalidBlob) {
            blob = info_.id;
        }
        auto ar = vm_.assign(blob, offset, size);
        const BuildResult r = build(blob, ar, size);
        vm_.commit(blob, ar.version);
        return r;
    }

    /// Build the tree for an already-assigned write (for weaving tests
    /// that control build/commit order explicitly).
    BuildResult build(BlobId blob, const version::AssignResult& ar,
                      std::uint64_t size) {
        const meta::TreeGeometry geo(kChunk);
        BuildInput in;
        in.blob = blob;
        in.chunk_size = kChunk;
        in.version = ar.version;
        in.write_range = {ar.offset, size};
        in.size_before = ar.size_before;
        in.size_after = ar.size_after;
        in.base = ar.base;
        in.concurrent = ar.concurrent;
        const auto slots = geo.slots_of(in.write_range);
        for (std::uint64_t i = 0; i < slots.count; ++i) {
            const std::uint64_t slot_begin = (slots.first + i) * kChunk;
            const std::uint64_t slot_end = slot_begin + kChunk;
            const std::uint64_t covered =
                std::min(slot_end, ar.offset + size) - slot_begin;
            in.leaves.push_back(MetaNode::leaf(
                {NodeId{7}}, uid_for(ar.version, slots.first, i),
                static_cast<std::uint32_t>(covered)));
        }
        return build_version_tree(store_, in);
    }

    /// Map each byte of a read plan to the uid serving it (0 = hole).
    std::map<std::uint64_t, std::uint64_t> plan_bytes(Version v,
                                                      ByteRange range,
                                                      BlobId blob =
                                                          kInvalidBlob) {
        if (blob == kInvalidBlob) {
            blob = info_.id;
        }
        const auto vi = vm_.get_version(blob, v);
        const auto plan = meta::plan_read(store_, vi.tree.blob,
                                          vi.tree.version, kChunk, vi.size,
                                          range);
        std::map<std::uint64_t, std::uint64_t> bytes;
        std::uint64_t expect = range.offset;
        for (const auto& seg : plan.segments) {
            EXPECT_EQ(seg.blob_range.offset, expect) << "gap in plan";
            expect = seg.blob_range.end();
            for (std::uint64_t b = seg.blob_range.offset;
                 b < seg.blob_range.end(); ++b) {
                bytes[b] = seg.hole ? 0 : seg.chunk.uid;
            }
        }
        EXPECT_EQ(expect, range.end()) << "plan does not cover request";
        return bytes;
    }

    void expect_tree_valid(Version v, BlobId blob = kInvalidBlob) {
        if (blob == kInvalidBlob) {
            blob = info_.id;
        }
        const auto vi = vm_.get_version(blob, v);
        EXPECT_NO_THROW((void)meta::validate_tree(store_, vi.tree.blob,
                                            vi.tree.version, kChunk,
                                            vi.size));
    }

    VersionManager vm_;
    version::BlobInfo info_;
    meta::InMemoryMetaStore store_;
};

TEST_F(TreeFixture, SingleFullWrite) {
    // 4 slots: root + 2 inner + 4 leaves = 7 nodes, no borrow reads.
    const auto r = apply(0, 32);
    EXPECT_EQ(r.nodes_created, 7u);
    EXPECT_EQ(r.store_reads, 0u);

    const auto bytes = plan_bytes(1, {0, 32});
    for (std::uint64_t b = 0; b < 32; ++b) {
        EXPECT_EQ(bytes.at(b), uid_for(1, 0, b / kChunk));
    }
    expect_tree_valid(1);
}

TEST_F(TreeFixture, SecondWriteBorrowsUntouchedSubtrees) {
    apply(0, 32);
    // Overwrite slot 2 only: creates root, inner {2,2}, leaf {2,1};
    // borrow-descends v1's root and {2,2} (2 metadata reads).
    const auto r = apply(16, 8);
    EXPECT_EQ(r.nodes_created, 3u);
    EXPECT_EQ(r.store_reads, 2u);

    const auto bytes = plan_bytes(2, {0, 32});
    EXPECT_EQ(bytes.at(0), uid_for(1, 0, 0));
    EXPECT_EQ(bytes.at(8), uid_for(1, 0, 1));
    EXPECT_EQ(bytes.at(16), uid_for(2, 2, 0));   // new data
    EXPECT_EQ(bytes.at(24), uid_for(1, 0, 3));
    // Version 1 is untouched (snapshot isolation).
    EXPECT_EQ(plan_bytes(1, {16, 8}).at(16), uid_for(1, 0, 2));
    expect_tree_valid(1);
    expect_tree_valid(2);
}

TEST_F(TreeFixture, FullOverwriteNeedsNoBorrowReads) {
    apply(0, 32);
    const auto r = apply(0, 32);
    EXPECT_EQ(r.nodes_created, 7u);
    EXPECT_EQ(r.store_reads, 0u);  // subtree fully covered: no old metadata
}

TEST_F(TreeFixture, AppendDoublesTree) {
    apply(0, 32);             // 4 slots
    const auto r = apply(std::nullopt, 32);  // slots [4,8): tree -> 8 slots
    // Creates: root {0,8}, {4,4}, {4,2}, {6,2}, 4 leaves = 8 nodes.
    EXPECT_EQ(r.nodes_created, 8u);
    // Old root borrowed as-is, zero reads (left half untouched, right
    // half fully covered).
    EXPECT_EQ(r.store_reads, 0u);

    const auto bytes = plan_bytes(2, {0, 64});
    EXPECT_EQ(bytes.at(0), uid_for(1, 0, 0));
    EXPECT_EQ(bytes.at(31), uid_for(1, 0, 3));
    EXPECT_EQ(bytes.at(32), uid_for(2, 4, 0));
    EXPECT_EQ(bytes.at(63), uid_for(2, 4, 3));
    expect_tree_valid(2);
}

TEST_F(TreeFixture, SparseWriteCreatesBridgeAndHoles) {
    apply(0, 32);      // slots [0,4)
    apply(64, 32);     // slots [8,12); tree grows to 16 slots, gap [4,8)
    const auto vi = vm_.get_version(info_.id, 2);
    EXPECT_EQ(vi.size, 96u);

    const auto bytes = plan_bytes(2, {0, 96});
    EXPECT_EQ(bytes.at(0), uid_for(1, 0, 0));
    EXPECT_EQ(bytes.at(24), uid_for(1, 0, 3));
    for (std::uint64_t b = 32; b < 64; ++b) {
        EXPECT_EQ(bytes.at(b), 0u) << "hole expected at " << b;
    }
    EXPECT_EQ(bytes.at(64), uid_for(2, 8, 0));
    EXPECT_EQ(bytes.at(88), uid_for(2, 8, 3));
    expect_tree_valid(2);
}

TEST_F(TreeFixture, FirstWritePastSlotZero) {
    // Fresh blob, first write at slot 5: prefix chain bottoms out in a
    // hole leaf at slot 0.
    apply(40, 8);
    const auto bytes = plan_bytes(1, {0, 48});
    for (std::uint64_t b = 0; b < 40; ++b) {
        EXPECT_EQ(bytes.at(b), 0u);
    }
    EXPECT_EQ(bytes.at(40), uid_for(1, 5, 0));
    expect_tree_valid(1);
}

TEST_F(TreeFixture, ShortTailChunk) {
    apply(0, 13);  // slot 0 full would be 8; slots: [0,2), tail 5 bytes
    const auto vi = vm_.get_version(info_.id, 1);
    EXPECT_EQ(vi.size, 13u);
    const auto plan = meta::plan_read(store_, info_.id, 1, kChunk, 13,
                                      {8, 5});
    ASSERT_EQ(plan.segments.size(), 1u);
    EXPECT_EQ(plan.segments[0].chunk_bytes, 5u);
    EXPECT_EQ(plan.segments[0].chunk_offset, 0u);
}

TEST_F(TreeFixture, GapBehindShortChunkReadsAsHole) {
    apply(0, 13);   // short tail: slot 1 holds 5 bytes
    apply(16, 8);   // extend past it without rewriting slot 1
    // Bytes [13,16) are a gap inside slot 1 and must read as zeros.
    const auto bytes = plan_bytes(2, {8, 16});
    EXPECT_EQ(bytes.at(8), uid_for(1, 0, 1));
    EXPECT_EQ(bytes.at(12), uid_for(1, 0, 1));
    EXPECT_EQ(bytes.at(13), 0u);
    EXPECT_EQ(bytes.at(15), 0u);
    EXPECT_EQ(bytes.at(16), uid_for(2, 2, 0));
}

TEST_F(TreeFixture, ReadBeyondSnapshotRejected) {
    apply(0, 32);
    EXPECT_THROW(plan_bytes(1, {24, 16}), InvalidArgument);
}

TEST_F(TreeFixture, WeavingTwoConcurrentWriters) {
    apply(0, 64);  // v1: 8 slots
    // Two concurrent writers assigned before either builds:
    auto a2 = vm_.assign(info_.id, 16, 16);  // v2: slots [2,4)
    auto a3 = vm_.assign(info_.id, 24, 16);  // v3: slots [3,5)
    ASSERT_EQ(a3.concurrent.size(), 1u);
    EXPECT_EQ(a3.concurrent[0].version, 2u);

    // v3 builds FIRST, weaving references to v2's future nodes.
    build(info_.id, a3, 16);
    // v3's tree references (v2, {2,1}) which does not exist yet.
    EXPECT_THROW((void)meta::validate_tree(store_, info_.id, 3, kChunk,
                                     a3.size_after),
                 ConsistencyError);

    build(info_.id, a2, 16);
    vm_.commit(info_.id, 3);  // out-of-order commit: stays unpublished
    EXPECT_EQ(vm_.latest(info_.id), 1u);
    vm_.commit(info_.id, 2);
    EXPECT_EQ(vm_.latest(info_.id), 3u);  // both publish in order

    // v3's snapshot: slot 2 from v2 (v3 did not write it), slots 3-4
    // from v3, rest from v1.
    const auto bytes = plan_bytes(3, {0, 64});
    EXPECT_EQ(bytes.at(0), uid_for(1, 0, 0));
    EXPECT_EQ(bytes.at(16), uid_for(2, 2, 0));
    EXPECT_EQ(bytes.at(24), uid_for(3, 3, 0));
    EXPECT_EQ(bytes.at(32), uid_for(3, 3, 1));
    EXPECT_EQ(bytes.at(40), uid_for(1, 0, 5));
    // v2's snapshot must NOT contain v3's data.
    const auto bytes2 = plan_bytes(2, {0, 64});
    EXPECT_EQ(bytes2.at(16), uid_for(2, 2, 0));
    EXPECT_EQ(bytes2.at(24), uid_for(2, 2, 1));
    EXPECT_EQ(bytes2.at(32), uid_for(1, 0, 4));
    expect_tree_valid(2);
    expect_tree_valid(3);
}

TEST_F(TreeFixture, WeavingConcurrentAppendsGrowTree) {
    apply(0, 32);  // v1: 4 slots
    auto a2 = vm_.assign(info_.id, std::nullopt, 32);  // v2: slots [4,8)
    auto a3 = vm_.assign(info_.id, std::nullopt, 64);  // v3: slots [8,16)
    EXPECT_EQ(a2.offset, 32u);
    EXPECT_EQ(a3.offset, 64u);
    EXPECT_EQ(a3.size_after, 128u);

    // Build in reverse order; v3's tree (16 slots) weaves v2's future
    // 8-slot subtree and v1's 4-slot root.
    build(info_.id, a3, 64);
    build(info_.id, a2, 32);
    vm_.commit(info_.id, 2);
    vm_.commit(info_.id, 3);

    const auto bytes = plan_bytes(3, {0, 128});
    EXPECT_EQ(bytes.at(0), uid_for(1, 0, 0));
    EXPECT_EQ(bytes.at(32), uid_for(2, 4, 0));
    EXPECT_EQ(bytes.at(56), uid_for(2, 4, 3));
    EXPECT_EQ(bytes.at(64), uid_for(3, 8, 0));
    EXPECT_EQ(bytes.at(127), uid_for(3, 8, 7));
    expect_tree_valid(2);
    expect_tree_valid(3);
}

TEST_F(TreeFixture, WeavingThreeWritersSameSlot) {
    apply(0, 32);
    // All three rewrite slot 1; the newest assigned version wins in the
    // final lineage, each snapshot keeps its own view.
    auto a2 = vm_.assign(info_.id, 8, 8);
    auto a3 = vm_.assign(info_.id, 8, 8);
    auto a4 = vm_.assign(info_.id, 8, 8);
    build(info_.id, a4, 8);
    build(info_.id, a2, 8);
    build(info_.id, a3, 8);
    vm_.commit(info_.id, 4);
    vm_.commit(info_.id, 3);
    vm_.commit(info_.id, 2);
    EXPECT_EQ(vm_.latest(info_.id), 4u);

    EXPECT_EQ(plan_bytes(2, {8, 8}).at(8), uid_for(2, 1, 0));
    EXPECT_EQ(plan_bytes(3, {8, 8}).at(8), uid_for(3, 1, 0));
    EXPECT_EQ(plan_bytes(4, {8, 8}).at(8), uid_for(4, 1, 0));
}

TEST_F(TreeFixture, CloneSharesTreeAndDiverges) {
    apply(0, 32);
    apply(16, 16);  // v2
    const auto clone_info = vm_.clone_blob(info_.id, 2);
    const BlobId cb = clone_info.id;

    // Clone's version 0 reads the origin's tree.
    const auto v0 = vm_.get_version(cb, 0);
    EXPECT_EQ(v0.size, 32u);
    EXPECT_EQ(v0.tree.blob, info_.id);
    EXPECT_EQ(plan_bytes(0, {16, 8}, cb).at(16), uid_for(2, 2, 0));

    // Writing the clone creates nodes under the clone's id, borrowing
    // from the origin's tree across the blob boundary.
    apply(0, 8, cb);  // clone v1 rewrites slot 0
    const auto bytes = plan_bytes(1, {0, 32}, cb);
    EXPECT_EQ(bytes.at(0), uid_for(1, 0, 0));    // clone's own write
    EXPECT_EQ(bytes.at(8), uid_for(1, 0, 1));    // origin v1 data
    EXPECT_EQ(bytes.at(16), uid_for(2, 2, 0));   // origin v2 via borrow
    EXPECT_EQ(bytes.at(24), uid_for(2, 2, 1));   // origin v2, second slot
    expect_tree_valid(1, cb);

    // The origin is unaffected.
    EXPECT_EQ(plan_bytes(2, {0, 8}).at(0), uid_for(1, 0, 0));
    EXPECT_EQ(vm_.latest(info_.id), 2u);
}

TEST_F(TreeFixture, OldVersionPlansAreImmutable) {
    apply(0, 32);
    const auto before = plan_bytes(1, {0, 32});
    for (int i = 0; i < 10; ++i) {
        apply(8, 8);
    }
    EXPECT_EQ(plan_bytes(1, {0, 32}), before);
}

TEST_F(TreeFixture, MetadataReadsLogarithmicInBlobSize) {
    // 1024-slot blob written fully, then a single-chunk overwrite.
    apply(0, 1024 * kChunk);
    const auto r = apply(512 * kChunk, kChunk);
    EXPECT_EQ(r.nodes_created, 11u);  // path of log2(1024)+1 nodes
    EXPECT_EQ(r.store_reads, 10u);    // borrow descent along the path
}

TEST_F(TreeFixture, BuilderRejectsBadInput) {
    EXPECT_THROW(apply(3, 8), InvalidArgument);       // unaligned offset
    EXPECT_THROW(apply(0, 0), InvalidArgument);       // empty write
    apply(0, 32);
    EXPECT_THROW(apply(0, 5), InvalidArgument);       // interior short write
    EXPECT_NO_THROW(apply(32, 5));                    // short tail at end OK
}

}  // namespace
}  // namespace blobseer
