/// \file testing_util.hpp
/// \brief Shared helpers for integration tests: fast cluster configs (no
///        simulated network costs) and pattern-data helpers.

#pragma once

#include <cstdint>

#include "common/buffer.hpp"
#include "core/client.hpp"
#include "core/cluster.hpp"

namespace blobseer::testing {

/// Cluster with zero network cost — correctness tests should not wait on
/// simulated wires.
inline core::ClusterConfig fast_config() {
    core::ClusterConfig cfg;
    cfg.network.latency = Duration::zero();
    cfg.network.node_bandwidth_bps = 0;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    cfg.publish_timeout = seconds(5);
    return cfg;
}

/// Write `size` pattern bytes tagged by (blob, tag) at `offset`; the tag
/// lets the reader verify which write produced the data.
inline Buffer tagged(BlobId blob, std::uint64_t tag, std::uint64_t offset,
                     std::size_t size) {
    return make_pattern(blob, tag, offset, size);
}

/// Assert helper: true iff every byte of \p data matches the (blob, tag)
/// pattern starting at \p offset.
inline bool matches(BlobId blob, std::uint64_t tag, std::uint64_t offset,
                    ConstBytes data) {
    return verify_pattern(blob, tag, offset, data) == -1;
}

}  // namespace blobseer::testing
