/// \file test_version_manager.cpp
/// \brief Tests of version assignment, in-order publication, clone
///        aliasing, the abort/timeout policy, and the sharded layout
///        (shard-embedded blob ids, cross-shard clone_from, the
///        incremental stalled sweep, per-shard backlog accounting).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "version/version_manager.hpp"

namespace blobseer::version {
namespace {

class VmFixture : public ::testing::Test {
  protected:
    VmFixture() { info_ = vm_.create_blob(8, 2); }

    VersionManager vm_;
    BlobInfo info_;
};

TEST_F(VmFixture, CreateValidates) {
    EXPECT_THROW(vm_.create_blob(0, 1), InvalidArgument);
    EXPECT_THROW(vm_.create_blob(8, 0), InvalidArgument);
    const auto b2 = vm_.create_blob(16, 3);
    EXPECT_NE(b2.id, info_.id);
    EXPECT_EQ(vm_.blob_count(), 2u);
    EXPECT_EQ(vm_.blob_info(b2.id).chunk_size, 16u);
    EXPECT_THROW((void)vm_.blob_info(999), NotFoundError);
}

TEST_F(VmFixture, FreshBlobIsEmptyVersionZero) {
    const auto vi = vm_.get_version(info_.id, kLatestVersion);
    EXPECT_EQ(vi.version, 0u);
    EXPECT_EQ(vi.size, 0u);
    EXPECT_EQ(vi.status, VersionStatus::kPublished);
    EXPECT_FALSE(vi.tree.valid());
}

TEST_F(VmFixture, AssignSequence) {
    const auto a1 = vm_.assign(info_.id, 0, 16);
    EXPECT_EQ(a1.version, 1u);
    EXPECT_EQ(a1.size_before, 0u);
    EXPECT_EQ(a1.size_after, 16u);
    EXPECT_TRUE(a1.concurrent.empty());
    EXPECT_FALSE(a1.base.valid());

    const auto a2 = vm_.assign(info_.id, std::nullopt, 8);
    EXPECT_EQ(a2.version, 2u);
    EXPECT_EQ(a2.offset, 16u);  // append lands at the running end
    EXPECT_EQ(a2.size_before, 16u);
    // v1 has not published: it appears as a concurrent descriptor.
    ASSERT_EQ(a2.concurrent.size(), 1u);
    EXPECT_EQ(a2.concurrent[0].version, 1u);
}

TEST_F(VmFixture, PublicationIsInOrder) {
    (void)vm_.assign(info_.id, 0, 8);
    (void)vm_.assign(info_.id, 8, 8);
    (void)vm_.assign(info_.id, 16, 8);
    vm_.commit(info_.id, 3);
    vm_.commit(info_.id, 2);
    EXPECT_EQ(vm_.latest(info_.id), 0u);  // blocked on v1
    vm_.commit(info_.id, 1);
    EXPECT_EQ(vm_.latest(info_.id), 3u);  // all flush at once
}

TEST_F(VmFixture, ConcurrentListShrinksAfterPublication) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    const auto a2 = vm_.assign(info_.id, 0, 8);
    EXPECT_TRUE(a2.concurrent.empty());
    EXPECT_TRUE(a2.base.valid());
    EXPECT_EQ(a2.base.version, 1u);
    EXPECT_EQ(a2.base.size, 8u);
}

TEST_F(VmFixture, AlignmentValidation) {
    EXPECT_THROW(vm_.assign(info_.id, 3, 8), InvalidArgument);
    EXPECT_THROW(vm_.assign(info_.id, 0, 0), InvalidArgument);
    const auto a1 = vm_.assign(info_.id, 0, 32);
    vm_.commit(info_.id, a1.version);
    EXPECT_THROW(vm_.assign(info_.id, 0, 5), InvalidArgument);
    EXPECT_NO_THROW(vm_.assign(info_.id, 32, 5));  // short tail at end
}

TEST_F(VmFixture, CommitValidation) {
    EXPECT_THROW(vm_.commit(info_.id, 1), InvalidArgument);  // unassigned
    const auto a = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a.version);
    EXPECT_NO_THROW(vm_.commit(info_.id, a.version));  // idempotent
}

TEST_F(VmFixture, GetVersionStates) {
    const auto a = vm_.assign(info_.id, 0, 8);
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kPending);
    vm_.commit(info_.id, a.version);
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kPublished);
    EXPECT_THROW((void)vm_.get_version(info_.id, 2), NotFoundError);
}

TEST_F(VmFixture, WaitPublishedBlocksUntilCommit) {
    const auto a = vm_.assign(info_.id, 0, 8);
    std::thread committer([&] {
        std::this_thread::sleep_for(milliseconds(30));
        vm_.commit(info_.id, a.version);
    });
    const auto vi = vm_.wait_published(info_.id, 1, seconds(5));
    EXPECT_EQ(vi.status, VersionStatus::kPublished);
    committer.join();
}

TEST_F(VmFixture, WaitPublishedTimesOut) {
    (void)vm_.assign(info_.id, 0, 8);
    const TimePoint t0 = Clock::now();
    EXPECT_THROW((void)vm_.wait_published(info_.id, 1, milliseconds(30)),
                 TimeoutError);
    // The deadline is honored, not extended by spurious wakeups — and a
    // timeout never hangs (bounded well below the test timeout).
    EXPECT_LT(Clock::now() - t0, seconds(5));
}

TEST_F(VmFixture, WaitPublishedTimesOutOnUnassignedVersion) {
    // Waiting for a version nobody has assigned yet must expire at the
    // deadline instead of hanging (the predicate can never flip).
    EXPECT_THROW((void)vm_.wait_published(info_.id, 7, milliseconds(30)),
                 TimeoutError);
}

TEST_F(VmFixture, WaitPublishedTimeoutUnaffectedByOtherBlobsPublishing) {
    // Per-blob condition variables: a stream of publishes on blob B
    // neither wakes nor starves a waiter on blob A — A's wait still
    // expires at its own deadline.
    const auto other = vm_.create_blob(8, 1);
    (void)vm_.assign(info_.id, 0, 8);  // never committed
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        while (!stop.load()) {
            const auto a = vm_.assign(other.id, std::nullopt, 8);
            vm_.commit(other.id, a.version);
            std::this_thread::sleep_for(milliseconds(1));
        }
    });
    const TimePoint t0 = Clock::now();
    EXPECT_THROW((void)vm_.wait_published(info_.id, 1, milliseconds(50)),
                 TimeoutError);
    EXPECT_LT(Clock::now() - t0, seconds(5));
    stop.store(true);
    publisher.join();
}

TEST_F(VmFixture, AbortCascadesToTail) {
    (void)vm_.assign(info_.id, 0, 8);    // v1 (will die)
    (void)vm_.assign(info_.id, 8, 8);    // v2
    (void)vm_.assign(info_.id, 16, 8);   // v3
    vm_.commit(info_.id, 2);             // committed but blocked
    vm_.abort(info_.id, 1);
    // The whole tail dies: v2 wove references to v1's metadata.
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kAborted);
    EXPECT_EQ(vm_.get_version(info_.id, 2).status, VersionStatus::kAborted);
    EXPECT_EQ(vm_.get_version(info_.id, 3).status, VersionStatus::kAborted);
    EXPECT_EQ(vm_.latest(info_.id), 0u);

    // Size rolled back: the next writer starts from scratch and version
    // numbers are not reused.
    const auto a4 = vm_.assign(info_.id, std::nullopt, 8);
    EXPECT_EQ(a4.version, 4u);
    EXPECT_EQ(a4.offset, 0u);
    EXPECT_TRUE(a4.concurrent.empty());  // aborted versions excluded
    vm_.commit(info_.id, 4);
    EXPECT_EQ(vm_.latest(info_.id), 4u);
    EXPECT_EQ(vm_.get_version(info_.id, 4).size, 8u);
}

TEST_F(VmFixture, AbortOnlyTail) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    (void)vm_.assign(info_.id, 8, 8);  // v2 dies
    vm_.abort(info_.id, 2);
    EXPECT_EQ(vm_.latest(info_.id), 1u);  // v1 survives
    EXPECT_THROW(vm_.abort(info_.id, 1), InvalidArgument);  // published
}

TEST_F(VmFixture, CommitAfterAbortThrows) {
    (void)vm_.assign(info_.id, 0, 8);
    vm_.abort(info_.id, 1);
    EXPECT_THROW(vm_.commit(info_.id, 1), VersionAborted);
}

TEST_F(VmFixture, AbortStalledRespectsAge) {
    (void)vm_.assign(info_.id, 0, 8);
    // Fresh version: nothing to abort.
    EXPECT_EQ(vm_.abort_stalled(info_.id, seconds(10)), 0u);
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_EQ(vm_.abort_stalled(info_.id, milliseconds(1)), 1u);
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kAborted);
}

TEST_F(VmFixture, AbortStalledSkipsCommittedPrefix) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    (void)vm_.assign(info_.id, 8, 8);
    vm_.commit(info_.id, a1.version);
    std::this_thread::sleep_for(milliseconds(20));
    // v1 published; v2 pending and stale -> only v2 goes.
    EXPECT_EQ(vm_.abort_stalled(info_.id, milliseconds(1)), 1u);
    EXPECT_EQ(vm_.latest(info_.id), 1u);
}

TEST_F(VmFixture, DescriptorLookup) {
    (void)vm_.assign(info_.id, 16, 8);
    const auto d = vm_.descriptor_of(info_.id, 1);
    EXPECT_EQ(d.offset, 16u);
    EXPECT_EQ(d.size, 8u);
    EXPECT_EQ(d.size_before, 0u);
    EXPECT_EQ(d.size_after, 24u);
    EXPECT_THROW((void)vm_.descriptor_of(info_.id, 2), NotFoundError);
}

// ---- clones ---------------------------------------------------------------

TEST_F(VmFixture, CloneAliasesPublishedVersion) {
    const auto a1 = vm_.assign(info_.id, 0, 24);
    vm_.commit(info_.id, a1.version);

    const auto c = vm_.clone_blob(info_.id, 1);
    EXPECT_NE(c.id, info_.id);
    EXPECT_EQ(c.chunk_size, info_.chunk_size);

    const auto v0 = vm_.get_version(c.id, 0);
    EXPECT_EQ(v0.size, 24u);
    EXPECT_TRUE(v0.tree.valid());
    EXPECT_EQ(v0.tree.blob, info_.id);
    EXPECT_EQ(v0.tree.version, 1u);

    // First write to the clone bases on the alias.
    const auto ca = vm_.assign(c.id, 0, 8);
    EXPECT_EQ(ca.size_before, 24u);
    EXPECT_EQ(ca.base.blob, info_.id);
}

TEST_F(VmFixture, CloneRejectsUnpublished) {
    (void)vm_.assign(info_.id, 0, 8);
    EXPECT_THROW((void)vm_.clone_blob(info_.id, 1), InvalidArgument);
}

TEST_F(VmFixture, CloneOfCloneChainsToOrigin) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    const auto c1 = vm_.clone_blob(info_.id, 1);
    const auto c2 = vm_.clone_blob(c1.id, 0);  // clone of the alias itself
    const auto v0 = vm_.get_version(c2.id, 0);
    EXPECT_EQ(v0.tree.blob, info_.id);  // chained through, not nested
    EXPECT_EQ(v0.size, 8u);
}

TEST_F(VmFixture, CloneLatestResolves) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    const auto c = vm_.clone_blob(info_.id, kLatestVersion);
    EXPECT_EQ(vm_.get_version(c.id, 0).size, 8u);
}

TEST_F(VmFixture, PinsNestAcrossIndependentPinners) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    const auto a2 = vm_.assign(info_.id, 8, 8);
    vm_.commit(info_.id, a2.version);
    // Two independent pinners of v1 (e.g. two concurrent cross-shard
    // clones resolving the same snapshot).
    EXPECT_TRUE(vm_.pin(info_.id, 1));
    EXPECT_FALSE(vm_.pin(info_.id, 1));  // nested, not newly created
    // One pinner releases (a failed clone's compensation): v1 must stay
    // protected for the other.
    vm_.unpin(info_.id, 1);
    EXPECT_TRUE(vm_.retire(info_.id, 2).retired.empty());
    EXPECT_EQ(vm_.pinned(info_.id), (std::vector<Version>{1}));
    // The last pin released: now v1 retires.
    vm_.unpin(info_.id, 1);
    EXPECT_EQ(vm_.retire(info_.id, 2).retired, (std::vector<Version>{1}));
}

// ---- sharding -------------------------------------------------------------

TEST(VmSharding, ShardIndexRidesInBlobIds) {
    VersionManager vm3(3, 4);
    EXPECT_EQ(vm3.shard(), 3u);
    const auto b1 = vm3.create_blob(8, 1);
    const auto b2 = vm3.create_blob(8, 1);
    EXPECT_EQ(blob_shard(b1.id), 3u);
    EXPECT_EQ(blob_shard(b2.id), 3u);
    EXPECT_NE(b1.id, b2.id);
    EXPECT_EQ(make_blob_id(3, 1), b1.id);

    // Shard 0 mints the legacy unsharded id space: first blob is 1.
    VersionManager vm0;
    EXPECT_EQ(vm0.create_blob(8, 1).id, 1u);
    EXPECT_EQ(blob_shard(1), 0u);

    EXPECT_THROW(VersionManager(4, 4), InvalidArgument);
    EXPECT_THROW(VersionManager(0, 0), InvalidArgument);
}

TEST(VmSharding, CloneFromAliasesForeignSnapshot) {
    // Two shards of one deployment. The client-driven cross-shard clone
    // protocol: resolve + pin on the source shard, hand the TreeRef to
    // the destination shard's clone_from.
    VersionManager src_shard(0, 2);
    VersionManager dst_shard(1, 2);
    const auto a = src_shard.create_blob(8, 2);
    const auto w = src_shard.assign(a.id, 0, 24);
    src_shard.commit(a.id, w.version);

    const auto vi = src_shard.get_version(a.id, 1);
    src_shard.pin(a.id, 1);
    const auto c =
        dst_shard.clone_from(a.chunk_size, a.replication, vi.tree);
    EXPECT_EQ(blob_shard(c.id), 1u);
    EXPECT_EQ(c.chunk_size, a.chunk_size);

    const auto v0 = dst_shard.get_version(c.id, 0);
    EXPECT_EQ(v0.size, 24u);
    EXPECT_EQ(v0.tree.blob, a.id);
    EXPECT_EQ(v0.tree.version, 1u);

    // First write to the clone bases on the alias.
    const auto ca = dst_shard.assign(c.id, std::nullopt, 8);
    EXPECT_EQ(ca.offset, 24u);
    EXPECT_EQ(ca.size_before, 24u);
    EXPECT_EQ(ca.base.blob, a.id);

    // An invalid origin creates a fresh empty blob (clone of a blob
    // that never published anything).
    const auto empty = dst_shard.clone_from(8, 1, meta::TreeRef{});
    EXPECT_EQ(dst_shard.get_version(empty.id, 0).size, 0u);
    EXPECT_FALSE(dst_shard.get_version(empty.id, 0).tree.valid());
}

// ---- incremental stalled sweep --------------------------------------------

TEST(VmSweep, SweepWalksTheShardInBoundedBatches) {
    VersionManager vm;
    std::vector<BlobId> blobs;
    for (int i = 0; i < 10; ++i) {
        blobs.push_back(vm.create_blob(8, 1).id);
    }
    // Odd blobs get a pending version that will stall; even blobs stay
    // clean (nothing assigned).
    for (int i = 1; i < 10; i += 2) {
        (void)vm.assign(blobs[i], 0, 8);
    }
    std::this_thread::sleep_for(milliseconds(20));

    // Batches of 3 cover all 10 blobs within 4 calls (rotating cursor).
    std::size_t aborted = 0;
    for (int call = 0; call < 4; ++call) {
        aborted += vm.sweep_stalled(milliseconds(1), 3);
    }
    EXPECT_EQ(aborted, 5u);
    for (int i = 1; i < 10; i += 2) {
        EXPECT_EQ(vm.get_version(blobs[i], 1).status,
                  VersionStatus::kAborted);
    }

    // Fresh pending versions survive a sweep with a long max_age.
    (void)vm.assign(blobs[0], 0, 8);
    EXPECT_EQ(vm.sweep_stalled(seconds(10), 100), 0u);
    EXPECT_EQ(vm.get_version(blobs[0], 1).status, VersionStatus::kPending);
}

TEST(VmSweep, SweepWakesBlockedWaiters) {
    VersionManager vm;
    const auto b = vm.create_blob(8, 1);
    (void)vm.assign(b.id, 0, 8);
    std::thread sweeper([&] {
        std::this_thread::sleep_for(milliseconds(30));
        (void)vm.sweep_stalled(milliseconds(1), 8);
    });
    // The waiter is woken by the sweep's abort, well before its own
    // deadline, and sees the aborted status.
    const auto vi = vm.wait_published(b.id, 1, seconds(30));
    EXPECT_EQ(vi.status, VersionStatus::kAborted);
    sweeper.join();
}

// ---- per-shard status & backlog -------------------------------------------

TEST(VmStatus, BacklogGaugeTracksUnpublishedVersions) {
    VersionManager vm;
    const auto b = vm.create_blob(8, 1);
    EXPECT_EQ(vm.publish_backlog().get(), 0u);
    const auto a1 = vm.assign(b.id, 0, 8);
    const auto a2 = vm.assign(b.id, 8, 8);
    EXPECT_EQ(vm.publish_backlog().get(), 2u);
    vm.commit(b.id, a2.version);  // blocked behind v1: still unpublished
    EXPECT_EQ(vm.publish_backlog().get(), 2u);
    vm.commit(b.id, a1.version);  // both flush
    EXPECT_EQ(vm.publish_backlog().get(), 0u);
    EXPECT_EQ(vm.publish_backlog().high_water(), 2u);

    const auto st = vm.status();
    EXPECT_EQ(st.shard, 0u);
    EXPECT_EQ(st.blobs, 1u);
    EXPECT_EQ(st.assigns, 2u);
    EXPECT_EQ(st.commits, 2u);
    EXPECT_EQ(st.aborts, 0u);
    EXPECT_EQ(st.publishes, 2u);
    EXPECT_EQ(st.backlog, 0u);
    EXPECT_EQ(st.backlog_high_water, 2u);
}

TEST(VmStatus, AbortedTailDrainsTheBacklog) {
    VersionManager vm;
    const auto b = vm.create_blob(8, 1);
    (void)vm.assign(b.id, 0, 8);
    (void)vm.assign(b.id, 8, 8);
    EXPECT_EQ(vm.publish_backlog().get(), 2u);
    vm.abort(b.id, 1);  // cascades to v2, cursor skips both
    EXPECT_EQ(vm.publish_backlog().get(), 0u);
    EXPECT_EQ(vm.status().aborts, 2u);
    EXPECT_EQ(vm.status().publishes, 0u);
}

}  // namespace
}  // namespace blobseer::version
