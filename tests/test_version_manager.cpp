/// \file test_version_manager.cpp
/// \brief Tests of version assignment, in-order publication, clone
///        aliasing and the abort/timeout policy.

#include <gtest/gtest.h>

#include <thread>

#include "version/version_manager.hpp"

namespace blobseer::version {
namespace {

class VmFixture : public ::testing::Test {
  protected:
    VmFixture() { info_ = vm_.create_blob(8, 2); }

    VersionManager vm_;
    BlobInfo info_;
};

TEST_F(VmFixture, CreateValidates) {
    EXPECT_THROW(vm_.create_blob(0, 1), InvalidArgument);
    EXPECT_THROW(vm_.create_blob(8, 0), InvalidArgument);
    const auto b2 = vm_.create_blob(16, 3);
    EXPECT_NE(b2.id, info_.id);
    EXPECT_EQ(vm_.blob_count(), 2u);
    EXPECT_EQ(vm_.blob_info(b2.id).chunk_size, 16u);
    EXPECT_THROW((void)vm_.blob_info(999), NotFoundError);
}

TEST_F(VmFixture, FreshBlobIsEmptyVersionZero) {
    const auto vi = vm_.get_version(info_.id, kLatestVersion);
    EXPECT_EQ(vi.version, 0u);
    EXPECT_EQ(vi.size, 0u);
    EXPECT_EQ(vi.status, VersionStatus::kPublished);
    EXPECT_FALSE(vi.tree.valid());
}

TEST_F(VmFixture, AssignSequence) {
    const auto a1 = vm_.assign(info_.id, 0, 16);
    EXPECT_EQ(a1.version, 1u);
    EXPECT_EQ(a1.size_before, 0u);
    EXPECT_EQ(a1.size_after, 16u);
    EXPECT_TRUE(a1.concurrent.empty());
    EXPECT_FALSE(a1.base.valid());

    const auto a2 = vm_.assign(info_.id, std::nullopt, 8);
    EXPECT_EQ(a2.version, 2u);
    EXPECT_EQ(a2.offset, 16u);  // append lands at the running end
    EXPECT_EQ(a2.size_before, 16u);
    // v1 has not published: it appears as a concurrent descriptor.
    ASSERT_EQ(a2.concurrent.size(), 1u);
    EXPECT_EQ(a2.concurrent[0].version, 1u);
}

TEST_F(VmFixture, PublicationIsInOrder) {
    (void)vm_.assign(info_.id, 0, 8);
    (void)vm_.assign(info_.id, 8, 8);
    (void)vm_.assign(info_.id, 16, 8);
    vm_.commit(info_.id, 3);
    vm_.commit(info_.id, 2);
    EXPECT_EQ(vm_.latest(info_.id), 0u);  // blocked on v1
    vm_.commit(info_.id, 1);
    EXPECT_EQ(vm_.latest(info_.id), 3u);  // all flush at once
}

TEST_F(VmFixture, ConcurrentListShrinksAfterPublication) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    const auto a2 = vm_.assign(info_.id, 0, 8);
    EXPECT_TRUE(a2.concurrent.empty());
    EXPECT_TRUE(a2.base.valid());
    EXPECT_EQ(a2.base.version, 1u);
    EXPECT_EQ(a2.base.size, 8u);
}

TEST_F(VmFixture, AlignmentValidation) {
    EXPECT_THROW(vm_.assign(info_.id, 3, 8), InvalidArgument);
    EXPECT_THROW(vm_.assign(info_.id, 0, 0), InvalidArgument);
    const auto a1 = vm_.assign(info_.id, 0, 32);
    vm_.commit(info_.id, a1.version);
    EXPECT_THROW(vm_.assign(info_.id, 0, 5), InvalidArgument);
    EXPECT_NO_THROW(vm_.assign(info_.id, 32, 5));  // short tail at end
}

TEST_F(VmFixture, CommitValidation) {
    EXPECT_THROW(vm_.commit(info_.id, 1), InvalidArgument);  // unassigned
    const auto a = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a.version);
    EXPECT_NO_THROW(vm_.commit(info_.id, a.version));  // idempotent
}

TEST_F(VmFixture, GetVersionStates) {
    const auto a = vm_.assign(info_.id, 0, 8);
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kPending);
    vm_.commit(info_.id, a.version);
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kPublished);
    EXPECT_THROW((void)vm_.get_version(info_.id, 2), NotFoundError);
}

TEST_F(VmFixture, WaitPublishedBlocksUntilCommit) {
    const auto a = vm_.assign(info_.id, 0, 8);
    std::thread committer([&] {
        std::this_thread::sleep_for(milliseconds(30));
        vm_.commit(info_.id, a.version);
    });
    const auto vi = vm_.wait_published(info_.id, 1, seconds(5));
    EXPECT_EQ(vi.status, VersionStatus::kPublished);
    committer.join();
}

TEST_F(VmFixture, WaitPublishedTimesOut) {
    (void)vm_.assign(info_.id, 0, 8);
    EXPECT_THROW((void)vm_.wait_published(info_.id, 1, milliseconds(30)),
                 TimeoutError);
}

TEST_F(VmFixture, AbortCascadesToTail) {
    (void)vm_.assign(info_.id, 0, 8);    // v1 (will die)
    (void)vm_.assign(info_.id, 8, 8);    // v2
    (void)vm_.assign(info_.id, 16, 8);   // v3
    vm_.commit(info_.id, 2);             // committed but blocked
    vm_.abort(info_.id, 1);
    // The whole tail dies: v2 wove references to v1's metadata.
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kAborted);
    EXPECT_EQ(vm_.get_version(info_.id, 2).status, VersionStatus::kAborted);
    EXPECT_EQ(vm_.get_version(info_.id, 3).status, VersionStatus::kAborted);
    EXPECT_EQ(vm_.latest(info_.id), 0u);

    // Size rolled back: the next writer starts from scratch and version
    // numbers are not reused.
    const auto a4 = vm_.assign(info_.id, std::nullopt, 8);
    EXPECT_EQ(a4.version, 4u);
    EXPECT_EQ(a4.offset, 0u);
    EXPECT_TRUE(a4.concurrent.empty());  // aborted versions excluded
    vm_.commit(info_.id, 4);
    EXPECT_EQ(vm_.latest(info_.id), 4u);
    EXPECT_EQ(vm_.get_version(info_.id, 4).size, 8u);
}

TEST_F(VmFixture, AbortOnlyTail) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    (void)vm_.assign(info_.id, 8, 8);  // v2 dies
    vm_.abort(info_.id, 2);
    EXPECT_EQ(vm_.latest(info_.id), 1u);  // v1 survives
    EXPECT_THROW(vm_.abort(info_.id, 1), InvalidArgument);  // published
}

TEST_F(VmFixture, CommitAfterAbortThrows) {
    (void)vm_.assign(info_.id, 0, 8);
    vm_.abort(info_.id, 1);
    EXPECT_THROW(vm_.commit(info_.id, 1), VersionAborted);
}

TEST_F(VmFixture, AbortStalledRespectsAge) {
    (void)vm_.assign(info_.id, 0, 8);
    // Fresh version: nothing to abort.
    EXPECT_EQ(vm_.abort_stalled(info_.id, seconds(10)), 0u);
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_EQ(vm_.abort_stalled(info_.id, milliseconds(1)), 1u);
    EXPECT_EQ(vm_.get_version(info_.id, 1).status, VersionStatus::kAborted);
}

TEST_F(VmFixture, AbortStalledSkipsCommittedPrefix) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    (void)vm_.assign(info_.id, 8, 8);
    vm_.commit(info_.id, a1.version);
    std::this_thread::sleep_for(milliseconds(20));
    // v1 published; v2 pending and stale -> only v2 goes.
    EXPECT_EQ(vm_.abort_stalled(info_.id, milliseconds(1)), 1u);
    EXPECT_EQ(vm_.latest(info_.id), 1u);
}

TEST_F(VmFixture, DescriptorLookup) {
    (void)vm_.assign(info_.id, 16, 8);
    const auto d = vm_.descriptor_of(info_.id, 1);
    EXPECT_EQ(d.offset, 16u);
    EXPECT_EQ(d.size, 8u);
    EXPECT_EQ(d.size_before, 0u);
    EXPECT_EQ(d.size_after, 24u);
    EXPECT_THROW((void)vm_.descriptor_of(info_.id, 2), NotFoundError);
}

// ---- clones ---------------------------------------------------------------

TEST_F(VmFixture, CloneAliasesPublishedVersion) {
    const auto a1 = vm_.assign(info_.id, 0, 24);
    vm_.commit(info_.id, a1.version);

    const auto c = vm_.clone_blob(info_.id, 1);
    EXPECT_NE(c.id, info_.id);
    EXPECT_EQ(c.chunk_size, info_.chunk_size);

    const auto v0 = vm_.get_version(c.id, 0);
    EXPECT_EQ(v0.size, 24u);
    EXPECT_TRUE(v0.tree.valid());
    EXPECT_EQ(v0.tree.blob, info_.id);
    EXPECT_EQ(v0.tree.version, 1u);

    // First write to the clone bases on the alias.
    const auto ca = vm_.assign(c.id, 0, 8);
    EXPECT_EQ(ca.size_before, 24u);
    EXPECT_EQ(ca.base.blob, info_.id);
}

TEST_F(VmFixture, CloneRejectsUnpublished) {
    (void)vm_.assign(info_.id, 0, 8);
    EXPECT_THROW((void)vm_.clone_blob(info_.id, 1), InvalidArgument);
}

TEST_F(VmFixture, CloneOfCloneChainsToOrigin) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    const auto c1 = vm_.clone_blob(info_.id, 1);
    const auto c2 = vm_.clone_blob(c1.id, 0);  // clone of the alias itself
    const auto v0 = vm_.get_version(c2.id, 0);
    EXPECT_EQ(v0.tree.blob, info_.id);  // chained through, not nested
    EXPECT_EQ(v0.size, 8u);
}

TEST_F(VmFixture, CloneLatestResolves) {
    const auto a1 = vm_.assign(info_.id, 0, 8);
    vm_.commit(info_.id, a1.version);
    const auto c = vm_.clone_blob(info_.id, kLatestVersion);
    EXPECT_EQ(vm_.get_version(c.id, 0).size, 8u);
}

}  // namespace
}  // namespace blobseer::version
