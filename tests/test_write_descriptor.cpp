/// \file test_write_descriptor.cpp
/// \brief Tests of the node-creation rule — the single predicate that
///        keeps concurrent writers' key predictions and actual tree
///        construction in agreement.

#include <gtest/gtest.h>

#include <algorithm>

#include "meta/write_descriptor.hpp"

namespace blobseer::meta {
namespace {

constexpr std::uint64_t kChunk = 8;

WriteDescriptor desc(Version v, std::uint64_t offset, std::uint64_t size,
                     std::uint64_t before) {
    return WriteDescriptor{v, offset, size, before,
                           std::max(before, offset + size)};
}

TEST(CreatesNode, AncestorsOfWrittenLeaves) {
    const TreeGeometry geo(kChunk);
    // Blob of 4 slots (32 bytes), write slots [1,2) (bytes [8,16)).
    const auto w = desc(3, 8, 8, 32);
    EXPECT_TRUE(creates_node(w, {0, 4}, geo));   // root
    EXPECT_TRUE(creates_node(w, {0, 2}, geo));   // parent of slot 1
    EXPECT_TRUE(creates_node(w, {1, 1}, geo));   // written leaf
    EXPECT_FALSE(creates_node(w, {0, 1}, geo));  // untouched leaf
    EXPECT_FALSE(creates_node(w, {2, 2}, geo));  // untouched subtree
    EXPECT_FALSE(creates_node(w, {2, 1}, geo));
    EXPECT_FALSE(creates_node(w, {3, 1}, geo));
}

TEST(CreatesNode, OutOfTreeBounds) {
    const TreeGeometry geo(kChunk);
    const auto w = desc(1, 0, 32, 32);  // 4-slot tree
    EXPECT_FALSE(creates_node(w, {0, 8}, geo));  // taller root than w's tree
    EXPECT_FALSE(creates_node(w, {4, 4}, geo));  // beyond w's tree
    EXPECT_TRUE(creates_node(w, {0, 4}, geo));
}

TEST(CreatesNode, BridgePrefixesWhenTreeGrows) {
    const TreeGeometry geo(kChunk);
    // Blob grows from 4 slots to 16: append at bytes [96, 128)
    // (slots [12,16)), size_before = 32 (4 slots).
    const auto w = desc(5, 96, 32, 32);
    // Normal ancestors:
    EXPECT_TRUE(creates_node(w, {0, 16}, geo));
    EXPECT_TRUE(creates_node(w, {8, 8}, geo));
    EXPECT_TRUE(creates_node(w, {12, 4}, geo));
    EXPECT_TRUE(creates_node(w, {12, 1}, geo));
    // Bridge prefixes that splice the old 4-slot root under the taller
    // tree ([0,8) does not intersect the write, but w must create it):
    EXPECT_TRUE(creates_node(w, {0, 8}, geo));
    // The old root itself is NOT recreated:
    EXPECT_FALSE(creates_node(w, {0, 4}, geo));
    // Nor untouched interior nodes:
    EXPECT_FALSE(creates_node(w, {0, 2}, geo));
    EXPECT_FALSE(creates_node(w, {8, 4}, geo));
    EXPECT_FALSE(creates_node(w, {4, 4}, geo));
}

TEST(CreatesNode, FirstWritePastSlotZeroCreatesHolePrefix) {
    const TreeGeometry geo(kChunk);
    // First write of a fresh blob at slot 5 (bytes [40,48)).
    const auto w = desc(1, 40, 8, 0);
    EXPECT_TRUE(creates_node(w, {0, 8}, geo));  // root
    EXPECT_TRUE(creates_node(w, {4, 4}, geo));
    EXPECT_TRUE(creates_node(w, {5, 1}, geo));
    // Bridge prefixes (size_before = 0 -> every prefix is new):
    EXPECT_TRUE(creates_node(w, {0, 4}, geo));
    EXPECT_TRUE(creates_node(w, {0, 2}, geo));
    EXPECT_TRUE(creates_node(w, {0, 1}, geo));  // hole leaf at slot 0
    // Non-prefix untouched ranges are not created:
    EXPECT_FALSE(creates_node(w, {1, 1}, geo));
    EXPECT_FALSE(creates_node(w, {2, 2}, geo));
    EXPECT_FALSE(creates_node(w, {6, 2}, geo));
}

TEST(CreatedRanges, MatchesPredicateExhaustively) {
    const TreeGeometry geo(kChunk);
    const auto w = desc(2, 16, 24, 32);  // slots [2,5) of a 4->8 slot blob
    const auto ranges = created_ranges(w, geo);
    // Every enumerated range satisfies the predicate...
    for (const auto& r : ranges) {
        EXPECT_TRUE(creates_node(w, r, geo)) << r.to_string();
    }
    // ...and every tree range satisfying the predicate is enumerated.
    const std::uint64_t slots = geo.tree_slots(w.size_after);
    std::size_t expected = 0;
    for (std::uint64_t count = 1; count <= slots; count *= 2) {
        for (std::uint64_t first = 0; first < slots; first += count) {
            if (creates_node(w, {first, count}, geo)) {
                ++expected;
            }
        }
    }
    EXPECT_EQ(ranges.size(), expected);
}

TEST(CreatedRanges, LogarithmicForSmallWrite) {
    const TreeGeometry geo(kChunk);
    // One-chunk write into a 1024-slot blob: root-to-leaf path only.
    const auto w = desc(9, 512 * kChunk, kChunk, 1024 * kChunk);
    const auto ranges = created_ranges(w, geo);
    EXPECT_EQ(ranges.size(), 11u);  // log2(1024) + 1
}

}  // namespace
}  // namespace blobseer::meta
