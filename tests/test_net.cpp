/// \file test_net.cpp
/// \brief Tests of the simulated network: cost model, failures,
///        partitions, degradation and accounting.

#include <gtest/gtest.h>

#include <thread>

#include "common/clock.hpp"
#include "net/sim_network.hpp"

namespace blobseer::net {
namespace {

TEST(SimNetwork, CallExecutesHandlerAndReturns) {
    SimNetwork net({.latency = Duration::zero(), .node_bandwidth_bps = 0});
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    const int result = net.call(a, b, 100, 100, [] { return 42; });
    EXPECT_EQ(result, 42);
    EXPECT_EQ(net.node(a).msgs_out.get(), 1u);
    EXPECT_EQ(net.node(b).msgs_in.get(), 1u);
    EXPECT_EQ(net.node(b).bytes_in.get(), 100u);
    EXPECT_EQ(net.node(a).bytes_in.get(), 100u);  // response leg
}

TEST(SimNetwork, VoidCallWorks) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    bool ran = false;
    net.call(a, b, 10, 10, [&] { ran = true; });
    EXPECT_TRUE(ran);
}

TEST(SimNetwork, LatencyIsCharged) {
    SimNetwork net({.latency = milliseconds(5), .node_bandwidth_bps = 0});
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    const Stopwatch sw;
    net.call(a, b, 10, 10, [] {});
    EXPECT_GE(sw.elapsed_us(), 9000u);  // 2 one-way latencies
}

TEST(SimNetwork, BandwidthIsCharged) {
    // 10 MB/s NICs: a 100 KB transfer takes >= ~10 ms on each NIC.
    SimNetwork net({.latency = Duration::zero(),
                    .node_bandwidth_bps = 10 << 20});
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    const Stopwatch sw;
    net.call(a, b, 100 << 10, 0, [] {});
    EXPECT_GE(sw.elapsed_us(), 15000u);  // tx + rx serialization
}

TEST(SimNetwork, ConcurrentClientsShareServerNic) {
    // Two clients each pulling 50 KB from the same server NIC at 10 MB/s:
    // total >= ~10 ms because the server TX serializes.
    SimNetwork net({.latency = Duration::zero(),
                    .node_bandwidth_bps = 10 << 20});
    const NodeId c1 = net.add_node("c1");
    const NodeId c2 = net.add_node("c2");
    const NodeId server = net.add_node("server");
    const Stopwatch sw;
    std::thread t1([&] { net.call(c1, server, 0, 50 << 10, [] {}); });
    std::thread t2([&] { net.call(c2, server, 0, 50 << 10, [] {}); });
    t1.join();
    t2.join();
    EXPECT_GE(sw.elapsed_us(), 8000u);
}

TEST(SimNetwork, KilledNodeRefusesCalls) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    net.kill(b);
    EXPECT_THROW(net.call(a, b, 1, 1, [] {}), RpcError);
    EXPECT_FALSE(net.is_alive(b));
    net.recover(b);
    EXPECT_NO_THROW(net.call(a, b, 1, 1, [] {}));
}

TEST(SimNetwork, DeadSourceCannotCall) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    net.kill(a);
    EXPECT_THROW(net.call(a, b, 1, 1, [] {}), RpcError);
}

TEST(SimNetwork, PartitionBlocksBothDirectionsAndHeals) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    const NodeId c = net.add_node("c");
    net.partition(a, b);
    EXPECT_THROW(net.call(a, b, 1, 1, [] {}), RpcError);
    EXPECT_THROW(net.call(b, a, 1, 1, [] {}), RpcError);
    EXPECT_NO_THROW(net.call(a, c, 1, 1, [] {}));  // unrelated pair fine
    net.heal_partition(a, b);
    EXPECT_NO_THROW(net.call(a, b, 1, 1, [] {}));
}

TEST(SimNetwork, DegradationSlowsTransfers) {
    SimNetwork net({.latency = Duration::zero(),
                    .node_bandwidth_bps = 10 << 20});
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");

    const Stopwatch fast;
    net.call(a, b, 50 << 10, 0, [] {});
    const auto fast_us = fast.elapsed_us();

    net.degrade(b, 4.0);
    const Stopwatch slow;
    net.call(a, b, 50 << 10, 0, [] {});
    const auto slow_us = slow.elapsed_us();
    EXPECT_GT(slow_us, fast_us * 2);

    net.restore(b);
    const Stopwatch restored;
    net.call(a, b, 50 << 10, 0, [] {});
    EXPECT_LT(restored.elapsed_us(), slow_us);
}

TEST(SimNetwork, ExtraLatencyInjected) {
    SimNetwork net({.latency = Duration::zero(), .node_bandwidth_bps = 0});
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    net.degrade(b, 1.0, milliseconds(5));
    const Stopwatch sw;
    net.call(a, b, 1, 1, [] {});
    EXPECT_GE(sw.elapsed_us(), 9000u);
}

TEST(SimNetwork, UnknownNodeRejected) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    EXPECT_THROW(net.call(a, 99, 1, 1, [] {}), InvalidArgument);
}

TEST(SimNetwork, MessageAccounting) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    for (int i = 0; i < 5; ++i) {
        net.call(a, b, 10, 20, [] {});
    }
    // 5 requests from a + 5 responses from b.
    EXPECT_EQ(net.total_messages(), 10u);
    EXPECT_EQ(net.node(b).bytes_out.get(), 100u);
}

TEST(SimNetwork, OneWaySend) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    bool delivered = false;
    net.send(a, b, 8, [&] { delivered = true; });
    EXPECT_TRUE(delivered);
    EXPECT_EQ(net.node(b).msgs_in.get(), 1u);
    EXPECT_EQ(net.node(b).msgs_out.get(), 0u);
}

TEST(SimNetwork, HandlerExceptionPropagates) {
    SimNetwork net;
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    EXPECT_THROW(
        net.call(a, b, 1, 1, [] { throw NotFoundError("x"); }),
        NotFoundError);
}

}  // namespace
}  // namespace blobseer::net
