/// \file test_baseline.cpp
/// \brief Tests of the HDFS-like SimpleDfs baseline: append-only files,
///        exclusive leases, batched block-location reads and replication.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baseline/lock_manager.hpp"
#include "baseline/simple_dfs.hpp"
#include "testing_util.hpp"

namespace blobseer::baseline {
namespace {

class DfsFixture : public ::testing::Test {
  protected:
    DfsFixture()
        : cluster_(blobseer::testing::fast_config()),
          dfs_(cluster_, SimpleDfs::Config{.block_size = 64,
                                           .replication = 1,
                                           .namenode_ops_per_second = 0}) {
        client_ = dfs_.make_client();
    }

    core::Cluster cluster_;
    SimpleDfs dfs_;
    std::unique_ptr<SimpleDfsClient> client_;
};

TEST_F(DfsFixture, AppendAndReadBack) {
    client_->create("/f");
    const Buffer data = make_pattern(1, 1, 0, 1000);
    client_->append("/f", data);
    client_->close_file("/f");

    EXPECT_EQ(client_->stat("/f").length, 1000u);
    Buffer out(1000);
    EXPECT_EQ(client_->read("/f", 0, out), 1000u);
    EXPECT_EQ(out, data);
}

TEST_F(DfsFixture, SubRangeReads) {
    client_->create("/f");
    const Buffer data = make_pattern(1, 2, 0, 640);
    client_->append("/f", data);
    client_->close_file("/f");
    Buffer out(130);
    EXPECT_EQ(client_->read("/f", 100, out), 130u);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 100));
    EXPECT_THROW(client_->read("/f", 600, out), InvalidArgument);
}

TEST_F(DfsFixture, LeaseExcludesConcurrentAppenders) {
    client_->create("/f");
    auto other = dfs_.make_client();
    EXPECT_THROW((void)other->append_open("/f"), LeaseHeld);
    EXPECT_THROW(other->append("/f", Buffer(10, 1)), LeaseHeld);
    client_->close_file("/f");
    EXPECT_NO_THROW(other->append_open("/f"));
    other->append("/f", Buffer(10, 1));
    other->close_file("/f");
    EXPECT_EQ(client_->stat("/f").length, 10u);
}

TEST_F(DfsFixture, CreateDuplicateRejected) {
    client_->create("/f");
    EXPECT_THROW(client_->create("/f"), InvalidArgument);
    EXPECT_TRUE(client_->exists("/f"));
    EXPECT_FALSE(client_->exists("/g"));
    EXPECT_THROW((void)client_->stat("/g"), NotFoundError);
}

TEST_F(DfsFixture, UncommittedBlocksInvisible) {
    client_->create("/f");
    // Allocate a block directly without completing it.
    (void)cluster_.network().call(
        client_->node(), dfs_.namenode().node(), 64, 96, [&] {
            return dfs_.namenode().allocate_block("/f", client_->node(), 64);
        });
    EXPECT_EQ(client_->stat("/f").length, 0u);
}

TEST_F(DfsFixture, ManyBlocksBatchLocations) {
    client_->create("/big");
    const Buffer data = make_pattern(2, 7, 0, 64 * 20);  // 20 blocks
    client_->append("/big", data);
    client_->close_file("/big");

    const std::uint64_t nn_ops_before = dfs_.namenode().ops();
    Buffer out(data.size());
    EXPECT_EQ(client_->read("/big", 0, out), data.size());
    EXPECT_EQ(out, data);
    const std::uint64_t lookups = dfs_.namenode().ops() - nn_ops_before;
    // 1 stat + ceil(20/8) location batches = 4 RPCs, not 20.
    EXPECT_LE(lookups, 5u);
}

TEST(DfsReplication, SurvivesDatanodeDeath) {
    auto cfg = blobseer::testing::fast_config();
    core::Cluster cluster(cfg);
    SimpleDfs dfs(cluster, SimpleDfs::Config{.block_size = 64,
                                             .replication = 2,
                                             .namenode_ops_per_second = 0});
    auto client = dfs.make_client();
    client->create("/f");
    const Buffer data = make_pattern(3, 3, 0, 640);
    client->append("/f", data);
    client->close_file("/f");

    cluster.kill_data_provider(0, /*lose_volatile=*/true);
    Buffer out(data.size());
    EXPECT_EQ(client->read("/f", 0, out), data.size());
    EXPECT_EQ(out, data);
}

TEST(DfsCapacity, NamenodeGateThrottles) {
    auto cfg = blobseer::testing::fast_config();
    core::Cluster cluster(cfg);
    SimpleDfs dfs(cluster, SimpleDfs::Config{.block_size = 64,
                                             .replication = 1,
                                             .namenode_ops_per_second =
                                                 1000});
    auto client = dfs.make_client();
    const Stopwatch sw;
    client->create("/f");
    client->append("/f", Buffer(64 * 10, 1));  // 10 blocks = 20+ NN ops
    EXPECT_GE(sw.elapsed_us(), 15000u);
}

TEST_F(DfsFixture, ShortTailBlock) {
    client_->create("/f");
    client_->append("/f", Buffer(100, 0x55));  // 64 + 36
    client_->close_file("/f");
    EXPECT_EQ(client_->stat("/f").length, 100u);
    Buffer out(100);
    EXPECT_EQ(client_->read("/f", 0, out), 100u);
    EXPECT_EQ(out, Buffer(100, 0x55));
}

// ---- LockManager (the lock-based access baseline of E2b) -------------------

TEST(LockManager, SharedLocksCoexist) {
    LockManager lm(0);
    lm.lock_shared(1);
    lm.lock_shared(1);
    lm.unlock_shared(1);
    lm.unlock_shared(1);
    EXPECT_EQ(lm.shared_grants(), 2u);
}

TEST(LockManager, ExclusiveExcludesReaders) {
    LockManager lm(0);
    lm.lock_exclusive(1);
    std::atomic<bool> reader_in{false};
    std::thread reader([&] {
        lm.lock_shared(1);
        reader_in.store(true);
        lm.unlock_shared(1);
    });
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_FALSE(reader_in.load());  // blocked behind the writer
    lm.unlock_exclusive(1);
    reader.join();
    EXPECT_TRUE(reader_in.load());
}

TEST(LockManager, WriterWaitsForReaders) {
    LockManager lm(0);
    lm.lock_shared(1);
    std::atomic<bool> writer_in{false};
    std::thread writer([&] {
        lm.lock_exclusive(1);
        writer_in.store(true);
        lm.unlock_exclusive(1);
    });
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_FALSE(writer_in.load());
    lm.unlock_shared(1);
    writer.join();
    EXPECT_TRUE(writer_in.load());
}

TEST(LockManager, WaitingWriterBlocksNewReaders) {
    LockManager lm(0);
    lm.lock_shared(1);
    std::atomic<bool> writer_in{false};
    std::atomic<bool> late_reader_in{false};
    std::thread writer([&] {
        lm.lock_exclusive(1);
        writer_in.store(true);
        std::this_thread::sleep_for(milliseconds(20));
        lm.unlock_exclusive(1);
    });
    std::this_thread::sleep_for(milliseconds(20));
    std::thread late_reader([&] {
        lm.lock_shared(1);  // must queue behind the waiting writer
        late_reader_in.store(true);
        lm.unlock_shared(1);
    });
    std::this_thread::sleep_for(milliseconds(20));
    EXPECT_FALSE(writer_in.load());
    EXPECT_FALSE(late_reader_in.load());
    lm.unlock_shared(1);
    writer.join();
    late_reader.join();
    EXPECT_TRUE(writer_in.load());
    EXPECT_TRUE(late_reader_in.load());
}

TEST(LockManager, IndependentBlobsDontInterfere) {
    LockManager lm(0);
    lm.lock_exclusive(1);
    // A different blob's lock is free.
    std::atomic<bool> got{false};
    std::thread other([&] {
        ExclusiveLockGuard guard(lm, 2);
        got.store(true);
    });
    other.join();
    EXPECT_TRUE(got.load());
    lm.unlock_exclusive(1);
}

TEST(LockManager, GuardsReleaseOnScopeExit) {
    LockManager lm(0);
    {
        SharedLockGuard guard(lm, 5);
    }
    {
        ExclusiveLockGuard guard(lm, 5);
    }
    // If either guard leaked its lock this would deadlock:
    ExclusiveLockGuard final_guard(lm, 5);
    EXPECT_EQ(lm.exclusive_grants(), 2u);
}

}  // namespace
}  // namespace blobseer::baseline
