/// \file test_stress.cpp
/// \brief Heavier randomized integration scenarios: chaos mixed
///        workloads under provider churn, long version histories with
///        retirement waves, clone farms, BSFS under failures and client
///        partitions. These run the whole stack for longer and check
///        system-level invariants rather than per-operation oracles.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fs/bsfs.hpp"
#include "testing_util.hpp"

namespace blobseer::core {
namespace {

constexpr std::uint64_t kChunk = 64;

TEST(Stress, ChaosMixedWorkloadKeepsInvariants) {
    auto cfg = blobseer::testing::fast_config();
    cfg.data_providers = 6;
    cfg.metadata_providers = 3;
    cfg.default_replication = 2;
    cfg.meta_replication = 2;
    Cluster cluster(cfg);
    auto owner = cluster.make_client();
    Blob blob = owner->create(kChunk, 2);
    blob.write(0, Buffer(16 * kChunk, 0x11));

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops_ok{0};
    std::atomic<std::uint64_t> ops_failed{0};
    std::mutex fail_mu;
    std::string fail_log;  // what the failed ops actually threw

    // Churn: repeatedly bounce one provider (no data loss: repl handles
    // reads; the churn mainly exercises failover + replacement paths).
    std::thread churn([&] {
        int round = 0;
        while (!stop.load()) {
            const std::size_t victim = round++ % 3;
            cluster.kill_data_provider(victim, false);
            std::this_thread::sleep_for(milliseconds(3));
            cluster.recover_data_provider(victim);
            std::this_thread::sleep_for(milliseconds(3));
        }
    });

    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&, w] {
            auto client = cluster.make_client();
            Rng rng(w * 7 + 1);
            Buffer out(2 * kChunk);
            for (int i = 0; i < 60; ++i) {
                try {
                    const double dice = rng.uniform();
                    if (dice < 0.4) {
                        const auto vi = client->stat(blob.id());
                        if (vi.size >= out.size()) {
                            const std::uint64_t tiles =
                                vi.size / out.size();
                            client->read(blob.id(), vi.version,
                                         rng.below(tiles) * out.size(),
                                         out);
                        }
                    } else if (dice < 0.6) {
                        // Read a random historical version.
                        const auto latest = client->stat(blob.id()).version;
                        const Version v = 1 + rng.below(latest);
                        const auto vi = client->stat(blob.id(), v);
                        if (vi.status ==
                                version::VersionStatus::kPublished &&
                            vi.size > 0) {
                            Buffer one(std::min<std::uint64_t>(vi.size,
                                                               kChunk));
                            client->read(blob.id(), v, 0, one);
                        }
                    } else if (dice < 0.85) {
                        client->write(blob.id(),
                                      rng.below(16) * kChunk,
                                      Buffer(kChunk,
                                             static_cast<std::uint8_t>(w)));
                    } else {
                        client->append(
                            blob.id(),
                            Buffer(kChunk,
                                   static_cast<std::uint8_t>(0xA0 + w)));
                    }
                    ops_ok.fetch_add(1);
                } catch (const Error& e) {
                    ops_failed.fetch_add(1);
                    {
                        const std::scoped_lock lock(fail_mu);
                        fail_log += std::string(e.what()) + "\n";
                    }
                }
            }
        });
    }
    for (auto& t : workers) {
        t.join();
    }
    stop.store(true);
    churn.join();

    // With replication 2 and single-node churn every operation should
    // have found a live replica / placement.
    EXPECT_EQ(ops_failed.load(), 0u)
        << "ok=" << ops_ok.load() << " failed=" << ops_failed.load()
        << "\n" << fail_log;

    // The final snapshot is fully readable and history is consistent.
    const auto vi = owner->stat(blob.id());
    Buffer all(vi.size);
    EXPECT_EQ(owner->read(blob.id(), vi.version, 0, all), vi.size);
    const auto h = owner->history(blob.id());
    EXPECT_EQ(h.back().version, vi.version);
    std::uint64_t prev_size = 0;
    for (const auto& s : h) {
        EXPECT_GE(s.size_after, prev_size) << "size must be monotone";
        prev_size = s.size_after;
        EXPECT_EQ(s.status, version::VersionStatus::kPublished);
    }
}

TEST(Stress, LongHistoryWithRetirementWaves) {
    auto cfg = blobseer::testing::fast_config();
    Cluster cluster(cfg);
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk);

    // Reference model of the latest content only.
    Buffer model;
    Rng rng(99);
    const int versions = 120;
    for (int i = 0; i < versions; ++i) {
        const std::uint64_t slots = model.size() / kChunk;
        if (slots > 2 && rng.chance(0.7)) {
            const std::uint64_t slot = rng.below(slots);
            const Buffer data = make_pattern(blob.id(), i, 0, kChunk);
            blob.write(slot * kChunk, data);
            std::copy(data.begin(), data.end(),
                      model.begin() + static_cast<std::ptrdiff_t>(
                                          slot * kChunk));
        } else {
            const Buffer data = make_pattern(blob.id(), i, 0, 2 * kChunk);
            blob.append(data);
            model.insert(model.end(), data.begin(), data.end());
        }
        // Retire in waves, keeping a sliding window of ~20 versions.
        if (i % 25 == 24) {
            const Version latest = client->stat(blob.id()).version;
            if (latest > 20) {
                client->retire_versions(blob.id(), latest - 20);
            }
        }
    }
    const auto vi = client->stat(blob.id());
    Buffer got(vi.size);
    ASSERT_EQ(client->read(blob.id(), vi.version, 0, got), vi.size);
    EXPECT_EQ(got, model);

    // Recent window still readable; ancient versions retired.
    Buffer probe(kChunk);
    EXPECT_NO_THROW(client->read(blob.id(), vi.version - 5, 0, probe));
    EXPECT_THROW(client->read(blob.id(), 1, 0, probe), VersionRetired);
}

TEST(Stress, CloneFarmIsolation) {
    auto cfg = blobseer::testing::fast_config();
    Cluster cluster(cfg);
    auto client = cluster.make_client();
    Blob root = client->create(kChunk);
    root.write(0, make_pattern(root.id(), 0, 0, 8 * kChunk));

    // Two generations of clones, each customized at a distinct slot.
    std::vector<Blob> farm;
    for (int g1 = 0; g1 < 3; ++g1) {
        Blob child = client->clone(root.id());
        child.write(g1 * kChunk,
                    make_pattern(child.id(), 100 + g1, 0, kChunk));
        for (int g2 = 0; g2 < 2; ++g2) {
            Blob grand = client->clone(child.id());
            grand.write((4 + g2) * kChunk,
                        make_pattern(grand.id(), 200 + g2, 0, kChunk));
            farm.push_back(grand);
        }
        farm.push_back(std::move(child));
    }

    // Every clone sees: its own writes, its parent's writes (for
    // grandchildren), and root data elsewhere. The root is untouched.
    Buffer out(kChunk);
    root.read(1, 7 * kChunk, out);
    EXPECT_TRUE(blobseer::testing::matches(root.id(), 0, 7 * kChunk, out));
    for (auto& b : farm) {
        const auto vi = b.stat();
        Buffer full(vi.size);
        EXPECT_EQ(b.read(vi.version, 0, full), vi.size);
        // Slot 7 always still root's.
        EXPECT_TRUE(blobseer::testing::matches(
            root.id(), 0, 7 * kChunk,
            ConstBytes(full).subspan(7 * kChunk, kChunk)));
    }
    // Concurrent writes to different clones do not interfere.
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < farm.size(); ++i) {
        threads.emplace_back([&, i] {
            auto c = cluster.make_client();
            c->write(farm[i].id(), 6 * kChunk,
                     make_pattern(farm[i].id(), 999, 0, kChunk));
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (auto& b : farm) {
        Buffer slot(kChunk);
        b.read(b.stat().version, 6 * kChunk, slot);
        EXPECT_TRUE(blobseer::testing::matches(b.id(), 999, 0, slot));
    }
}

TEST(Stress, BsfsUnderProviderChurn) {
    auto cfg = blobseer::testing::fast_config();
    cfg.data_providers = 5;
    cfg.default_replication = 2;
    cfg.meta_replication = 2;
    Cluster cluster(cfg);
    fs::Bsfs bsfs(cluster, fs::BsfsConfig{.chunk_size = kChunk,
                                          .replication = 2,
                                          .writer_buffer_chunks = 1,
                                          .readahead_chunks = 2});
    auto admin = bsfs.make_client();
    admin->mkdirs("/churn");
    {
        auto w = admin->create("/churn/log");
        w.close();
    }

    std::atomic<bool> stop{false};
    std::thread churn([&] {
        int round = 0;
        while (!stop.load()) {
            const std::size_t victim = round++ % 2;
            cluster.kill_data_provider(victim, false);
            std::this_thread::sleep_for(milliseconds(4));
            cluster.recover_data_provider(victim);
            std::this_thread::sleep_for(milliseconds(4));
        }
    });

    const std::size_t writers = 3;
    const int records = 8;
    std::atomic<std::uint64_t> failures{0};
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
            auto c = bsfs.make_client();
            auto writer = c->open_append("/churn/log");
            for (int r = 0; r < records; ++r) {
                try {
                    writer.write(Buffer(kChunk,
                                        static_cast<std::uint8_t>(1 + w)));
                    writer.flush();
                } catch (const Error&) {
                    failures.fetch_add(1);
                }
            }
            writer.close();
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    stop.store(true);
    churn.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(admin->file_size("/churn/log"), writers * records * kChunk);
    auto reader = admin->open("/churn/log");
    Buffer all(writers * records * kChunk);
    EXPECT_EQ(reader.read(all), all.size());
    std::map<std::uint8_t, int> counts;
    for (std::size_t b = 0; b < all.size(); b += kChunk) {
        ++counts[all[b]];
    }
    for (std::size_t w = 0; w < writers; ++w) {
        EXPECT_EQ(counts[static_cast<std::uint8_t>(1 + w)], records);
    }
}

TEST(Stress, PartitionedClientFailsCleanlyAndRecovers) {
    auto cfg = blobseer::testing::fast_config();
    Cluster cluster(cfg);
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk);
    blob.write(0, Buffer(4 * kChunk, 1));
    Buffer out(kChunk);
    client->read(blob.id(), 1, 0, out);  // caches v1's snapshot info

    // Partition the client from the version manager: every operation
    // that needs version resolution fails fast with RpcError.
    cluster.network().partition(client->node(),
                                cluster.version_manager_node());
    EXPECT_THROW((void)client->stat(blob.id()), RpcError);
    EXPECT_THROW(client->append(blob.id(), Buffer(kChunk, 2)), RpcError);
    // Reads of an already-seen published version still work: snapshot
    // info is immutable and cached; data providers are reachable.
    EXPECT_NO_THROW(client->read(blob.id(), 1, 0, out));

    cluster.network().heal_partition(client->node(),
                                     cluster.version_manager_node());
    EXPECT_NO_THROW(client->append(blob.id(), Buffer(kChunk, 2)));
    EXPECT_EQ(client->stat(blob.id()).version, 2u);

    // A blob whose state was never touched by this client still works
    // after healing (no stale poisoned caches).
    auto fresh = cluster.make_client();
    Buffer all(5 * kChunk);
    EXPECT_EQ(fresh->read(blob.id(), kLatestVersion, 0, all), all.size());
}

TEST(Stress, ManyBlobsManyClients) {
    auto cfg = blobseer::testing::fast_config();
    Cluster cluster(cfg);
    const std::size_t n = 10;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> failures{0};
    for (std::size_t t = 0; t < n; ++t) {
        threads.emplace_back([&, t] {
            try {
                auto client = cluster.make_client();
                Blob blob = client->create(32 * (1 + t % 3));
                Buffer model;
                Rng rng(t);
                for (int i = 0; i < 15; ++i) {
                    const Buffer part =
                        make_pattern(blob.id(), i, model.size(),
                                     1 + rng.below(100));
                    blob.append(part);
                    model.insert(model.end(), part.begin(), part.end());
                }
                Buffer got(model.size());
                if (client->read(blob.id(), kLatestVersion, 0, got) !=
                        model.size() ||
                    got != model) {
                    failures.fetch_add(1);
                }
            } catch (const Error&) {
                failures.fetch_add(1);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(cluster.version_manager().blob_count(), n);
}

}  // namespace
}  // namespace blobseer::core
