/// \file test_cache.cpp
/// \brief CompressedFileCache + LruFileIndex tests (DESIGN.md §14.2).
///
/// The cache is the disposable middle tier: every test here ultimately
/// checks one property — no failure mode (eviction, corruption, deleted
/// directory, write errors) may ever surface bad bytes; the worst
/// allowed outcome is a miss.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/compressed_file_cache.hpp"
#include "cache/lru_file_index.hpp"
#include "common/buffer.hpp"

namespace blobseer::cache {
namespace {

class TempDir {
  public:
    TempDir() {
        static std::atomic<int> counter{0};
        path_ = std::filesystem::temp_directory_path() /
                ("blobseer-cache-test-" +
                 std::to_string(counter.fetch_add(1)) + "-" +
                 std::to_string(::getpid()));
        std::filesystem::remove_all(path_);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  private:
    std::filesystem::path path_;
};

[[nodiscard]] Buffer compressible(std::size_t n, std::uint8_t seed) {
    Buffer b(n);
    for (std::size_t i = 0; i < n; ++i) {
        b[i] = static_cast<std::uint8_t>((i / 64 + seed) & 0xFF);
    }
    return b;
}

[[nodiscard]] Buffer incompressible(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    Buffer b(n);
    for (auto& byte : b) {
        byte = static_cast<std::uint8_t>(rng());
    }
    return b;
}

[[nodiscard]] FileCacheConfig small_config(const TempDir& dir,
                                           std::uint64_t budget,
                                           std::uint64_t file_target = 1
                                                                       << 16) {
    FileCacheConfig cfg;
    cfg.dir = dir.path();
    cfg.budget_bytes = budget;
    cfg.file_target_bytes = file_target;
    return cfg;
}

// ---- LruFileIndex -----------------------------------------------------------

TEST(LruFileIndex, InsertFindEraseAccounting) {
    LruFileIndex idx;
    idx.insert("a", FileLocation{1, 0, 100, 40});
    idx.insert("b", FileLocation{1, 56, 200, 80});
    EXPECT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx.stored_bytes(), 120u);
    EXPECT_EQ(idx.raw_bytes(), 300u);

    const auto a = idx.find("a", /*touch=*/false);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->stored_len, 40u);

    const auto gone = idx.erase("a");
    ASSERT_TRUE(gone.has_value());
    EXPECT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx.stored_bytes(), 80u);
    EXPECT_FALSE(idx.find("a", false).has_value());
}

TEST(LruFileIndex, TouchControlsEvictionOrder) {
    LruFileIndex idx;
    idx.insert("a", FileLocation{1, 0, 10, 10});
    idx.insert("b", FileLocation{1, 30, 10, 10});
    idx.insert("c", FileLocation{1, 60, 10, 10});
    // Touch "a": it becomes most-recent, so "b" is now the LRU victim.
    (void)idx.find("a", /*touch=*/true);
    const auto victim = idx.pop_lru();
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->key, "b");
}

TEST(LruFileIndex, ReinsertRefreshesLocationAndBytes) {
    LruFileIndex idx;
    idx.insert("k", FileLocation{1, 0, 100, 90});
    idx.insert("k", FileLocation{2, 16, 100, 50});
    EXPECT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx.stored_bytes(), 50u);
    const auto loc = idx.find("k", false);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->file_id, 2u);
}

TEST(LruFileIndex, EraseFileDropsEveryResident) {
    LruFileIndex idx;
    idx.insert("a", FileLocation{1, 0, 10, 10});
    idx.insert("b", FileLocation{2, 0, 10, 10});
    idx.insert("c", FileLocation{1, 30, 10, 10});
    EXPECT_EQ(idx.erase_file(1), 2u);
    EXPECT_EQ(idx.size(), 1u);
    EXPECT_TRUE(idx.contains("b"));
}

// ---- CompressedFileCache ----------------------------------------------------

TEST(CompressedFileCache, PutGetRoundTrip) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 4 << 20));
    const Buffer v1 = compressible(10000, 1);
    const Buffer v2 = incompressible(4096, 7);
    cache.put("one", ConstBytes(v1.data(), v1.size()));
    cache.put("two", ConstBytes(v2.data(), v2.size()));

    const auto got1 = cache.get("one");
    const auto got2 = cache.get("two");
    ASSERT_TRUE(got1.has_value());
    ASSERT_TRUE(got2.has_value());
    EXPECT_TRUE(*got1 == v1);
    EXPECT_TRUE(*got2 == v2);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 0u);
    // Compressible values must actually be stored compressed.
    EXPECT_TRUE(cache.stored_bytes() < cache.raw_bytes());
}

TEST(CompressedFileCache, MissAndEraseSemantics) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 4 << 20));
    EXPECT_FALSE(cache.get("absent").has_value());
    EXPECT_EQ(cache.misses(), 1u);

    const Buffer v = compressible(1000, 2);
    cache.put("k", ConstBytes(v.data(), v.size()));
    EXPECT_TRUE(cache.contains("k"));
    cache.erase("k");
    EXPECT_FALSE(cache.contains("k"));
    EXPECT_FALSE(cache.get("k").has_value());
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.stored_bytes(), 0u);
}

TEST(CompressedFileCache, BudgetEvictsLeastRecentlyUsed) {
    TempDir dir;
    // Budget sized in *compressed* bytes: incompressible 4 KiB values
    // store at ~4 KiB each, so an 16 KiB budget holds at most 4.
    CompressedFileCache cache(small_config(dir, 16 << 10, 8 << 10));
    std::vector<Buffer> values;
    for (int i = 0; i < 8; ++i) {
        values.push_back(incompressible(4096, 100 + i));
        const std::string key = "k" + std::to_string(i);
        cache.put(key, ConstBytes(values.back().data(),
                                  values.back().size()));
    }
    EXPECT_TRUE(cache.stored_bytes() <= (16u << 10));
    EXPECT_TRUE(cache.evictions() >= 4u);
    // Oldest keys evicted, newest still present and intact.
    EXPECT_FALSE(cache.contains("k0"));
    const auto last = cache.get("k7");
    ASSERT_TRUE(last.has_value());
    EXPECT_TRUE(*last == values[7]);
}

TEST(CompressedFileCache, BudgetCountsCompressedNotRawBytes) {
    TempDir dir;
    // 64 KiB budget; 1 MiB of highly-compressible raw data fits because
    // eviction is budgeted on stored (compressed) bytes.
    CompressedFileCache cache(small_config(dir, 64 << 10));
    std::vector<Buffer> values;
    for (int i = 0; i < 16; ++i) {
        values.push_back(compressible(64 << 10, static_cast<uint8_t>(i)));
        cache.put("k" + std::to_string(i),
                  ConstBytes(values.back().data(), values.back().size()));
    }
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.entries(), 16u);
    for (int i = 0; i < 16; ++i) {
        const auto got = cache.get("k" + std::to_string(i));
        ASSERT_TRUE(got.has_value());
        EXPECT_TRUE(*got == values[static_cast<std::size_t>(i)]);
    }
}

TEST(CompressedFileCache, FileRotationAndSpaceReclaim) {
    TempDir dir;
    // Tiny file target forces rotation; erasing everything must drain
    // the files and reclaim their disk space.
    CompressedFileCache cache(small_config(dir, 4 << 20, 4 << 10));
    for (int i = 0; i < 32; ++i) {
        const Buffer v = incompressible(2048, 500 + i);
        cache.put("k" + std::to_string(i), ConstBytes(v.data(), v.size()));
    }
    EXPECT_TRUE(cache.file_count() > 1u);
    for (int i = 0; i < 32; ++i) {
        cache.erase("k" + std::to_string(i));
    }
    EXPECT_EQ(cache.entries(), 0u);
    // Only the active file may remain.
    EXPECT_EQ(cache.file_count(), 1u);
    EXPECT_TRUE(cache.physical_bytes() <= (8u << 10));
}

TEST(CompressedFileCache, PhysicalBoundRetiresGarbageFiles) {
    TempDir dir;
    // Overwrite the same keys repeatedly: logical eviction leaves dead
    // bytes in old files; the physical bound must retire them instead of
    // letting the directory grow without limit.
    CompressedFileCache cache(small_config(dir, 32 << 10, 4 << 10));
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 4; ++i) {
            const Buffer v = incompressible(2048, round * 100 + i);
            cache.erase("k" + std::to_string(i));
            cache.put("k" + std::to_string(i),
                      ConstBytes(v.data(), v.size()));
        }
    }
    const std::uint64_t bound =
        2 * ((32ULL << 10) + (4ULL << 10)) + (8ULL << 10);
    EXPECT_TRUE(cache.physical_bytes() <= bound);
}

TEST(CompressedFileCache, CorruptEntryIsDroppedNotServed) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 4 << 20));
    const Buffer v = compressible(8192, 9);
    cache.put("victim", ConstBytes(v.data(), v.size()));
    cache.put("bystander", ConstBytes(v.data(), v.size()));

    // Flip one byte in every cache file: at least the victim's stored
    // frame (or CRC) is damaged.
    for (const auto& entry :
         std::filesystem::directory_iterator(dir.path())) {
        std::FILE* f = std::fopen(entry.path().c_str(), "r+b");
        ASSERT_TRUE(f != nullptr);
        std::fseek(f, 20, SEEK_SET);  // inside the first entry
        int c = std::fgetc(f);
        std::fseek(f, 20, SEEK_SET);
        std::fputc(c ^ 0xFF, f);
        std::fclose(f);
    }

    // Integrity failure must read as a miss, never as wrong bytes.
    const auto got = cache.get("victim");
    if (got.has_value()) {
        EXPECT_TRUE(*got == v);  // corruption landed elsewhere
    } else {
        EXPECT_TRUE(cache.crc_failures() >= 1u);
        // The entry is dropped: the next lookup is a plain miss.
        EXPECT_FALSE(cache.contains("victim"));
    }
}

TEST(CompressedFileCache, DeletedDirectoryTurnsIntoMisses) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 4 << 20, 2 << 10));
    std::vector<Buffer> values;
    for (int i = 0; i < 8; ++i) {
        values.push_back(compressible(4096, static_cast<uint8_t>(i)));
        cache.put("k" + std::to_string(i),
                  ConstBytes(values.back().data(), values.back().size()));
    }

    // rm -rf the live cache directory. Held descriptors keep resident
    // entries readable (POSIX unlink semantics); what matters is that no
    // call fails and no wrong bytes appear.
    std::filesystem::remove_all(dir.path());
    for (int i = 0; i < 8; ++i) {
        const auto got = cache.get("k" + std::to_string(i));
        if (got.has_value()) {
            EXPECT_TRUE(*got == values[static_cast<std::size_t>(i)]);
        }
    }

    // New insertions keep working (the unlinked active file still takes
    // appends), and the next file rotation recreates the directory.
    std::vector<Buffer> fresh;
    for (int i = 0; i < 8; ++i) {
        fresh.push_back(incompressible(1024, 900 + i));
        cache.put("fresh" + std::to_string(i),
                  ConstBytes(fresh.back().data(), fresh.back().size()));
    }
    for (int i = 0; i < 8; ++i) {
        const auto got = cache.get("fresh" + std::to_string(i));
        if (got.has_value()) {
            EXPECT_TRUE(*got == fresh[static_cast<std::size_t>(i)]);
        }
    }
    // 8 KiB of incompressible data through a 2 KiB file target rotated
    // at least once, recreating the directory.
    EXPECT_TRUE(std::filesystem::exists(dir.path()));
}

TEST(CompressedFileCache, ClearDropsEverything) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 4 << 20));
    const Buffer v = compressible(4096, 3);
    for (int i = 0; i < 8; ++i) {
        cache.put("k" + std::to_string(i), ConstBytes(v.data(), v.size()));
    }
    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.stored_bytes(), 0u);
    EXPECT_FALSE(cache.get("k0").has_value());
    // Still usable afterwards.
    cache.put("again", ConstBytes(v.data(), v.size()));
    EXPECT_TRUE(cache.get("again").has_value());
}

// Regression: keys are binary (TieredStore encodes ChunkKeys as raw
// little-endian bytes), and the key-verify compare once ran char vs
// uint8_t — every key with a byte >= 0x80 read back as "corrupt".
TEST(CompressedFileCache, HighBitKeyBytesRoundTrip) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 4 << 20));
    std::string key(16, '\0');
    for (std::size_t i = 0; i < key.size(); ++i) {
        key[i] = static_cast<char>(0x80 + i);
    }
    const Buffer v = compressible(4096, 5);
    cache.put(key, ConstBytes(v.data(), v.size()));
    const auto got = cache.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(*got == v);
    EXPECT_EQ(cache.crc_failures(), 0u);
}

TEST(CompressedFileCache, FreshenDoesNotDuplicate) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 4 << 20));
    const Buffer v = compressible(4096, 4);
    cache.put("k", ConstBytes(v.data(), v.size()));
    const auto stored = cache.stored_bytes();
    for (int i = 0; i < 10; ++i) {
        cache.put("k", ConstBytes(v.data(), v.size()));
    }
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.stored_bytes(), stored);
}

TEST(CompressedFileCache, ConcurrentPutGetEraseIsSafe) {
    TempDir dir;
    CompressedFileCache cache(small_config(dir, 256 << 10, 16 << 10));
    constexpr int kThreads = 4;
    constexpr int kOps = 400;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::atomic<int> bad{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &bad, t] {
            std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
            for (int i = 0; i < kOps; ++i) {
                const int slot = static_cast<int>(rng() % 16);
                const std::string key = "k" + std::to_string(slot);
                // Deterministic per-key bytes so any cross-thread
                // corruption is detectable.
                const Buffer v =
                    compressible(1024 + static_cast<std::size_t>(slot) * 64,
                                 static_cast<std::uint8_t>(slot));
                switch (rng() % 4) {
                    case 0:
                        cache.put(key, ConstBytes(v.data(), v.size()));
                        break;
                    case 1: {
                        const auto got = cache.get(key);
                        if (got.has_value() && !(*got == v)) {
                            bad.fetch_add(1);
                        }
                        break;
                    }
                    case 2:
                        (void)cache.contains(key);
                        break;
                    case 3:
                        cache.erase(key);
                        break;
                }
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace blobseer::cache
