/// \file test_client.cpp
/// \brief End-to-end tests of the client library on an in-process
///        cluster: the paper's full access interface (create / read /
///        write / append / versioning / clone) plus locality queries,
///        caching and replication effects.

#include <gtest/gtest.h>

#include <set>

#include "rpc/sim_transport.hpp"
#include "testing_util.hpp"

namespace blobseer::core {
namespace {

using blobseer::testing::fast_config;

constexpr std::uint64_t kChunk = 64;

class ClientFixture : public ::testing::Test {
  protected:
    ClientFixture() : cluster_(fast_config()) {
        client_ = cluster_.make_client();
    }

    Buffer read_back(Blob& blob, Version v, std::uint64_t offset,
                     std::size_t n) {
        Buffer out(n);
        EXPECT_EQ(blob.read(v, offset, out), n);
        return out;
    }

    Cluster cluster_;
    std::unique_ptr<BlobSeerClient> client_;
};

TEST_F(ClientFixture, WriteReadRoundTrip) {
    Blob blob = client_->create(kChunk);
    const Buffer data = make_pattern(blob.id(), 1, 0, 3 * kChunk);
    const Version v = blob.write(0, data);
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(blob.size(), 3 * kChunk);
    EXPECT_EQ(read_back(blob, v, 0, data.size()), data);
}

TEST_F(ClientFixture, SubRangeReads) {
    Blob blob = client_->create(kChunk);
    const Buffer data = make_pattern(blob.id(), 1, 0, 4 * kChunk);
    blob.write(0, data);
    // Misaligned sub-range spanning chunk boundaries:
    const auto got = read_back(blob, 1, 17, 2 * kChunk + 5);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin() + 17));
}

TEST_F(ClientFixture, VersionedReadsSeeTheirSnapshot) {
    Blob blob = client_->create(kChunk);
    const Buffer v1 = make_pattern(blob.id(), 1, 0, 2 * kChunk);
    const Buffer v2 = make_pattern(blob.id(), 2, 0, kChunk);
    blob.write(0, v1);
    blob.write(kChunk, v2);  // v2 overwrites chunk 1

    // v1 snapshot unchanged:
    EXPECT_EQ(read_back(blob, 1, 0, 2 * kChunk), v1);
    // v2 snapshot: chunk 0 from v1, chunk 1 from the new write.
    const auto got = read_back(blob, 2, 0, 2 * kChunk);
    EXPECT_TRUE(std::equal(got.begin(), got.begin() + kChunk, v1.begin()));
    EXPECT_TRUE(std::equal(got.begin() + kChunk, got.end(), v2.begin()));
}

TEST_F(ClientFixture, AppendsGrowTheBlob) {
    Blob blob = client_->create(kChunk);
    Buffer all;
    for (int i = 0; i < 5; ++i) {
        const Buffer part = make_pattern(blob.id(), 100 + i, 0, kChunk);
        blob.append(part);
        all.insert(all.end(), part.begin(), part.end());
    }
    EXPECT_EQ(blob.latest(), 5u);
    EXPECT_EQ(blob.size(), 5 * kChunk);
    EXPECT_EQ(read_back(blob, 5, 0, all.size()), all);
}

TEST_F(ClientFixture, UnalignedAppendMergesTail) {
    Blob blob = client_->create(kChunk);
    const Buffer head = make_pattern(blob.id(), 1, 0, 10);  // short tail
    const Buffer tail = make_pattern(blob.id(), 2, 0, 100);
    blob.append(head);
    blob.append(tail);  // starts at offset 10, mid-chunk
    EXPECT_EQ(blob.size(), 110u);
    const auto got = read_back(blob, 2, 0, 110);
    EXPECT_TRUE(std::equal(got.begin(), got.begin() + 10, head.begin()));
    EXPECT_TRUE(std::equal(got.begin() + 10, got.end(), tail.begin()));
    // The first snapshot still reads exactly its 10 bytes.
    EXPECT_EQ(read_back(blob, 1, 0, 10), head);
}

TEST_F(ClientFixture, ManySmallUnalignedAppends) {
    Blob blob = client_->create(kChunk);
    Buffer all;
    for (int i = 0; i < 20; ++i) {
        const Buffer part =
            make_pattern(blob.id(), 500 + i, 0, 7 + (i % 13));
        blob.append(part);
        all.insert(all.end(), part.begin(), part.end());
    }
    EXPECT_EQ(blob.size(), all.size());
    EXPECT_EQ(read_back(blob, blob.latest(), 0, all.size()), all);
}

TEST_F(ClientFixture, SparseWriteReadsZerosInHoles) {
    Blob blob = client_->create(kChunk);
    const Buffer data = make_pattern(blob.id(), 1, 0, kChunk);
    blob.write(4 * kChunk, data);  // leaves [0, 4*kChunk) as holes
    EXPECT_EQ(blob.size(), 5 * kChunk);
    const auto got = read_back(blob, 1, 0, 5 * kChunk);
    for (std::uint64_t i = 0; i < 4 * kChunk; ++i) {
        ASSERT_EQ(got[i], 0u) << "hole byte " << i;
    }
    EXPECT_TRUE(std::equal(got.begin() + 4 * kChunk, got.end(),
                           data.begin()));
}

TEST_F(ClientFixture, LatestVersionResolves) {
    Blob blob = client_->create(kChunk);
    blob.append(make_pattern(blob.id(), 1, 0, kChunk));
    blob.append(make_pattern(blob.id(), 2, 0, kChunk));
    Buffer out(kChunk);
    client_->read(blob.id(), kLatestVersion, kChunk, out);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 2, 0, out));
}

TEST_F(ClientFixture, ReadPastEndRejected) {
    Blob blob = client_->create(kChunk);
    blob.write(0, make_pattern(blob.id(), 1, 0, 10));
    Buffer out(20);
    EXPECT_THROW(client_->read(blob.id(), 1, 0, out), InvalidArgument);
    EXPECT_EQ(client_->read_available(blob.id(), 1, 0, out), 10u);
    EXPECT_EQ(client_->read_available(blob.id(), 1, 10, out), 0u);
}

TEST_F(ClientFixture, UnalignedWriteOffsetRejected) {
    Blob blob = client_->create(kChunk);
    EXPECT_THROW(blob.write(5, make_pattern(blob.id(), 1, 0, 10)),
                 InvalidArgument);
    EXPECT_THROW(blob.write(0, {}), InvalidArgument);
}

TEST_F(ClientFixture, OpenExistingBlob) {
    Blob blob = client_->create(kChunk);
    blob.append(make_pattern(blob.id(), 1, 0, kChunk));
    auto other = cluster_.make_client();
    Blob reopened = other->open(blob.id());
    EXPECT_EQ(reopened.chunk_size(), kChunk);
    Buffer out(kChunk);
    reopened.read(1, 0, out);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 1, 0, out));
    EXPECT_THROW((void)client_->open(999), NotFoundError);
}

TEST_F(ClientFixture, CloneDiverges) {
    Blob blob = client_->create(kChunk);
    blob.write(0, make_pattern(blob.id(), 1, 0, 2 * kChunk));
    Blob copy = client_->clone(blob.id());
    EXPECT_EQ(copy.stat(0).size, 2 * kChunk);

    // Clone reads the origin's data...
    Buffer out(2 * kChunk);
    copy.read(0, 0, out);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 1, 0, out));

    // ...and writes to the clone do not disturb the origin.
    copy.write(0, make_pattern(copy.id(), 9, 0, kChunk));
    Buffer cl(kChunk);
    copy.read(1, 0, cl);
    EXPECT_TRUE(blobseer::testing::matches(copy.id(), 9, 0, cl));
    Buffer orig(kChunk);
    blob.read(1, 0, orig);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 1, 0, orig));
}

TEST_F(ClientFixture, LocateReportsProviders) {
    Blob blob = client_->create(kChunk, 2);
    blob.write(0, make_pattern(blob.id(), 1, 0, 4 * kChunk));
    const auto locs = client_->locate(blob.id(), 1, {0, 4 * kChunk});
    ASSERT_EQ(locs.size(), 4u);
    std::uint64_t cursor = 0;
    for (const auto& loc : locs) {
        EXPECT_EQ(loc.range.offset, cursor);
        EXPECT_FALSE(loc.hole);
        EXPECT_EQ(loc.providers.size(), 2u);  // replication factor
        cursor = loc.range.end();
    }
    EXPECT_EQ(cursor, 4 * kChunk);
}

TEST_F(ClientFixture, StripingUsesAllProviders) {
    Blob blob = client_->create(kChunk);
    blob.write(0, make_pattern(blob.id(), 1, 0,
                               kChunk * 4 * cluster_.data_provider_count()));
    for (std::size_t i = 0; i < cluster_.data_provider_count(); ++i) {
        EXPECT_GT(cluster_.data_provider(i).stored_bytes(), 0u)
            << "provider " << i << " received nothing";
    }
}

TEST_F(ClientFixture, ReplicationStoresCopies) {
    Blob blob = client_->create(kChunk, 3);
    blob.write(0, make_pattern(blob.id(), 1, 0, 2 * kChunk));
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cluster_.data_provider_count(); ++i) {
        total += cluster_.data_provider(i).stored_bytes();
    }
    EXPECT_EQ(total, 3 * 2 * kChunk);
}

TEST_F(ClientFixture, MetadataCacheCutsDhtTraffic) {
    Blob blob = client_->create(kChunk);
    blob.write(0, make_pattern(blob.id(), 1, 0, 8 * kChunk));

    auto reader = cluster_.make_client();
    Buffer out(8 * kChunk);
    reader->read(blob.id(), 1, 0, out);
    const auto misses_cold = reader->meta_cache().misses();
    EXPECT_GT(misses_cold, 0u);
    reader->read(blob.id(), 1, 0, out);
    EXPECT_EQ(reader->meta_cache().misses(), misses_cold)
        << "warm read should be served from the client cache";
    EXPECT_GT(reader->meta_cache().hits(), 0u);
}

TEST_F(ClientFixture, StatsAccumulate) {
    Blob blob = client_->create(kChunk);
    blob.write(0, make_pattern(blob.id(), 1, 0, kChunk));
    blob.append(make_pattern(blob.id(), 2, 0, kChunk));
    Buffer out(2 * kChunk);
    blob.read(2, 0, out);
    const auto& st = client_->stats();
    EXPECT_EQ(st.writes.get(), 1u);
    EXPECT_EQ(st.appends.get(), 1u);
    EXPECT_EQ(st.reads.get(), 1u);
    EXPECT_EQ(st.bytes_written.get(), 2 * kChunk);
    EXPECT_EQ(st.bytes_read.get(), 2 * kChunk);
    EXPECT_EQ(st.write_latency_us.count(), 2u);
}

TEST_F(ClientFixture, EmptyReadIsNoop) {
    Blob blob = client_->create(kChunk);
    Buffer out;
    EXPECT_EQ(client_->read(blob.id(), kLatestVersion, 0, out), 0u);
}

TEST_F(ClientFixture, AsyncWriteAppendReadRoundTrip) {
    Blob blob = client_->create(kChunk);
    const Buffer first = make_pattern(blob.id(), 1, 0, 3 * kChunk);
    const Version v1 = blob.write_async(0, first).get();
    EXPECT_EQ(v1, 1u);

    const Buffer second = make_pattern(blob.id(), 2, 0, kChunk + 7);
    const Version v2 = blob.append_async(second).get();
    EXPECT_EQ(v2, 2u);

    Buffer head(3 * kChunk);
    Buffer tail(kChunk + 7);
    auto read_head = blob.read_async(v2, 0, head);
    auto read_tail = blob.read_async(v2, 3 * kChunk, tail);
    EXPECT_EQ(read_head.get(), head.size());
    EXPECT_EQ(read_tail.get(), tail.size());
    EXPECT_EQ(head, first);
    EXPECT_EQ(tail, second);
}

TEST_F(ClientFixture, AsyncOperationsOverlapAndFailLikeSync) {
    Blob a = client_->create(kChunk);
    Blob b = client_->create(kChunk);
    // Concurrent writes to independent blobs through one client.
    const Buffer da = make_pattern(a.id(), 1, 0, 5 * kChunk);
    const Buffer db = make_pattern(b.id(), 1, 0, 5 * kChunk);
    auto wa = a.write_async(0, da);
    auto wb = b.write_async(0, db);
    EXPECT_EQ(wa.get(), 1u);
    EXPECT_EQ(wb.get(), 1u);

    // Errors carry the sync types, just via the future.
    Buffer out(kChunk);
    EXPECT_THROW(
        (void)a.read_async(1, 100 * kChunk, out).get(), InvalidArgument);
    EXPECT_THROW(
        (void)client_->write_async(a.id(), kChunk / 2,
                                   ConstBytes(da.data(), kChunk))
            .get(),
        InvalidArgument);
}

/// Transport wrapper whose call_async throws RpcError *synchronously*
/// for one node — the shape of a TCP connect() refusal, which never
/// yields a future at all. The windowed data paths must treat it
/// exactly like an asynchronous delivery failure.
class SyncThrowTransport final : public rpc::Transport {
  public:
    SyncThrowTransport(std::shared_ptr<rpc::Transport> inner, NodeId bad)
        : inner_(std::move(inner)), bad_(bad) {}

    [[nodiscard]] Future<Buffer> call_async(NodeId dst,
                                            ConstBytes frame) override {
        refuse(dst);
        return inner_->call_async(dst, frame);
    }
    [[nodiscard]] Future<Buffer> call_async_via(NodeId via, NodeId dst,
                                                ConstBytes frame) override {
        refuse(dst);
        return inner_->call_async_via(via, dst, frame);
    }
    [[nodiscard]] Buffer roundtrip(NodeId dst, ConstBytes frame) override {
        refuse(dst);
        return inner_->roundtrip(dst, frame);
    }
    [[nodiscard]] Buffer roundtrip_via(NodeId via, NodeId dst,
                                       ConstBytes frame) override {
        refuse(dst);
        return inner_->roundtrip_via(via, dst, frame);
    }

  private:
    void refuse(NodeId dst) const {
        if (dst == bad_) {
            throw RpcError("connect to node " + std::to_string(dst) +
                           ": connection refused (simulated)");
        }
    }

    std::shared_ptr<rpc::Transport> inner_;
    const NodeId bad_;
};

TEST_F(ClientFixture, SynchronousTransportFailureFailsOverInWindow) {
    // A client whose transport refuses one data provider outright.
    const NodeId bad = cluster_.data_provider(0).node();
    const NodeId self = cluster_.network().add_node("refused-client");
    ClientEnv env;
    env.transport = std::make_shared<SyncThrowTransport>(
        std::make_shared<rpc::SimTransport>(cluster_.network(), self,
                                            cluster_.dispatcher()),
        bad);
    env.self = self;
    env.vm_nodes = cluster_.version_manager_nodes();
    env.pm_node = cluster_.provider_manager_node();
    env.meta_ring = cluster_.meta_ring();
    env.meta_replication = cluster_.config().meta_replication;
    env.default_replication = cluster_.config().default_replication;
    BlobSeerClient refused(std::move(env));

    // Read path first (the write path's mark_dead would steer later
    // placements away from the refused provider): a blob written by a
    // healthy client WITH replicas on the refused provider must still
    // read back through the other replica.
    Blob source = client_->create(kChunk, 2);
    const Buffer src_data = make_pattern(source.id(), 1, 0, 8 * kChunk);
    source.write(0, src_data);
    Buffer out(src_data.size());
    EXPECT_EQ(refused.read(source.id(), 1, 0, out), out.size());
    EXPECT_EQ(out, src_data);

    // Write path: placements that include the refused provider must
    // fail over to a replacement, not abort the write.
    Blob blob = refused.create(kChunk, 2);
    const Buffer data = make_pattern(blob.id(), 1, 0, 8 * kChunk);
    const Version v = blob.write(0, data);
    EXPECT_EQ(read_back(blob, v, 0, data.size()), data);
    EXPECT_GT(refused.stats().chunk_retries.get(), 0u);

    // Neither path may leak in-flight accounting on the sync throw.
    EXPECT_EQ(refused.stats().inflight_chunk_rpcs.get(), 0u);
}

TEST_F(ClientFixture, InflightWindowGaugeBalances) {
    Blob blob = client_->create(kChunk);
    blob.write(0, make_pattern(blob.id(), 1, 0, 16 * kChunk));
    Buffer out(16 * kChunk);
    blob.read(1, 0, out);
    const auto& st = client_->stats();
    EXPECT_EQ(st.inflight_chunk_rpcs.get(), 0u)
        << "window leaked in-flight accounting";
    EXPECT_GE(st.inflight_chunk_rpcs.high_water(), 2u)
        << "multi-chunk write/read never overlapped chunk RPCs";
}

// ---- sharded version managers ---------------------------------------------

TEST(ShardedVm, FullAccessInterfaceAcrossShards) {
    auto cfg = fast_config();
    cfg.num_version_managers = 3;
    Cluster cluster(cfg);
    auto client = cluster.make_client();

    // Creations spread over the shards by consistent hashing; every
    // blob id carries its owning shard and all per-blob traffic routes
    // there transparently.
    std::vector<Blob> blobs;
    std::set<std::uint32_t> shards_hit;
    for (int i = 0; i < 12; ++i) {
        blobs.push_back(client->create(kChunk));
        shards_hit.insert(blob_shard(blobs.back().id()));
    }
    EXPECT_GT(shards_hit.size(), 1u)
        << "12 creations all landed on one of 3 shards";

    for (std::size_t i = 0; i < blobs.size(); ++i) {
        Blob& blob = blobs[i];
        const Buffer data =
            make_pattern(blob.id(), i + 1, 0, 4 * kChunk);
        EXPECT_EQ(blob.write(0, data), 1u);
        EXPECT_EQ(blob.append(make_pattern(blob.id(), 100 + i, 0, kChunk)),
                  2u);
        Buffer out(4 * kChunk);
        EXPECT_EQ(blob.read(1, 0, out), out.size());
        EXPECT_TRUE(blobseer::testing::matches(blob.id(), i + 1, 0, out));
        EXPECT_EQ(blob.stat().version, 2u);
        EXPECT_EQ(blob.size(), 5 * kChunk);
        EXPECT_EQ(client->history(blob.id()).size(), 2u);
    }

    // Per-shard status over the wire adds up to the whole deployment.
    auto& svc = client->services();
    EXPECT_EQ(svc.vm_nodes().size(), 3u);
    std::uint64_t blob_total = 0;
    std::uint64_t assign_total = 0;
    for (const NodeId node : svc.vm_nodes()) {
        const auto st = svc.vm_status(node);
        blob_total += st.blobs;
        assign_total += st.assigns;
        EXPECT_EQ(st.backlog, 0u);  // everything published
    }
    EXPECT_EQ(blob_total, blobs.size());
    EXPECT_EQ(assign_total, 2 * blobs.size());
}

TEST(ShardedVm, CrossShardCloneSharesStorageAndDiverges) {
    auto cfg = fast_config();
    cfg.num_version_managers = 2;
    Cluster cluster(cfg);
    auto client = cluster.make_client();

    Blob src = client->create(kChunk);
    const Buffer data = make_pattern(src.id(), 1, 0, 6 * kChunk);
    src.write(0, data);

    // The clone aliases the published snapshot regardless of which
    // shard it lands on (the client resolves + pins on the source
    // shard and hands the TreeRef to the destination shard).
    Blob copy = client->clone(src.id());
    Buffer out(6 * kChunk);
    EXPECT_EQ(copy.read(0, 0, out), out.size());
    EXPECT_EQ(out, data);

    // The origin version is pinned on its owning shard.
    auto& src_vm = cluster.version_manager(blob_shard(src.id()));
    EXPECT_EQ(src_vm.pinned(src.id()), (std::vector<Version>{1}));

    // Writes diverge the clone without touching the origin.
    EXPECT_EQ(copy.write(0, make_pattern(copy.id(), 2, 0, kChunk)), 1u);
    Buffer head(kChunk);
    EXPECT_EQ(copy.read(1, 0, head), kChunk);
    EXPECT_TRUE(blobseer::testing::matches(copy.id(), 2, 0, head));
    Buffer src_head(kChunk);
    EXPECT_EQ(src.read(1, 0, src_head), kChunk);
    EXPECT_TRUE(blobseer::testing::matches(src.id(), 1, 0, src_head));

    // Clone-of-clone (version 0) chains to the original tree even
    // through the cross-shard protocol.
    Blob copy2 = client->clone(copy.id(), 0);
    Buffer out2(6 * kChunk);
    EXPECT_EQ(copy2.read(0, 0, out2), out2.size());
    EXPECT_EQ(out2, data);

    // Cloning an unpublished version fails the same way it does on a
    // single shard.
    (void)cluster.version_manager(blob_shard(src.id()))
        .assign(src.id(), std::nullopt, kChunk);
    EXPECT_THROW((void)client->clone(src.id(), 2), InvalidArgument);
}

}  // namespace
}  // namespace blobseer::core
