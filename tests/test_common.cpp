/// \file test_common.cpp
/// \brief Unit tests for the common substrate: range math, hashing, RNG,
///        deterministic buffers, histograms, gates and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cas/sha256.hpp"
#include "common/bandwidth_gate.hpp"
#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/hash.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace blobseer {
namespace {

// ---- pow2 / range math ------------------------------------------------------

TEST(Pow2, CeilBasics) {
    EXPECT_EQ(pow2_ceil(0), 1u);
    EXPECT_EQ(pow2_ceil(1), 1u);
    EXPECT_EQ(pow2_ceil(2), 2u);
    EXPECT_EQ(pow2_ceil(3), 4u);
    EXPECT_EQ(pow2_ceil(4), 4u);
    EXPECT_EQ(pow2_ceil(5), 8u);
    EXPECT_EQ(pow2_ceil(1023), 1024u);
    EXPECT_EQ(pow2_ceil(1024), 1024u);
    EXPECT_EQ(pow2_ceil(1025), 2048u);
}

TEST(Pow2, CeilLarge) {
    EXPECT_EQ(pow2_ceil((1ULL << 40) - 1), 1ULL << 40);
    EXPECT_EQ(pow2_ceil((1ULL << 40) + 1), 1ULL << 41);
}

TEST(Pow2, IsPow2) {
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_TRUE(is_pow2(1ULL << 63));
    EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(CeilDiv, Basics) {
    EXPECT_EQ(ceil_div(0, 8), 0u);
    EXPECT_EQ(ceil_div(1, 8), 1u);
    EXPECT_EQ(ceil_div(8, 8), 1u);
    EXPECT_EQ(ceil_div(9, 8), 2u);
}

TEST(ByteRange, IntersectsAndContains) {
    const ByteRange a{10, 10};  // [10,20)
    EXPECT_TRUE(a.intersects({15, 1}));
    EXPECT_TRUE(a.intersects({0, 11}));
    EXPECT_FALSE(a.intersects({20, 5}));
    EXPECT_FALSE(a.intersects({0, 10}));
    EXPECT_TRUE(a.contains({10, 10}));
    EXPECT_TRUE(a.contains({12, 3}));
    EXPECT_FALSE(a.contains({12, 9}));
    EXPECT_TRUE(a.contains_pos(19));
    EXPECT_FALSE(a.contains_pos(20));
}

// ---- hashing -------------------------------------------------------------

TEST(Hash, StableAcrossCalls) {
    EXPECT_EQ(fnv1a64("blobseer"), fnv1a64("blobseer"));
    EXPECT_NE(fnv1a64("blobseer"), fnv1a64("blobsees"));
}

TEST(Hash, Mix64SpreadsSequentialInputs) {
    // Sequential ids must land far apart for ring placement to balance.
    std::set<std::uint64_t> top_bytes;
    for (std::uint64_t i = 0; i < 64; ++i) {
        top_bytes.insert(mix64(i) >> 56);
    }
    EXPECT_GT(top_bytes.size(), 32u);
}

TEST(Sha256, MatchesFipsVectors) {
    // FIPS 180-4 / NIST test vectors pin the compression function, the
    // padding and the length encoding (like crc32c's RFC 3720 pin):
    // chunk addressing depends on every implementation producing these
    // exact digests.
    EXPECT_EQ(cas::to_hex(cas::sha256("", 0)),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    const std::string abc = "abc";
    EXPECT_EQ(cas::to_hex(cas::sha256(abc.data(), abc.size())),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    // Two-block message: exercises the block boundary.
    const std::string two =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    EXPECT_EQ(cas::to_hex(cas::sha256(two.data(), two.size())),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    // Streaming pushes hash slice-by-slice; the split point must not
    // change the digest.
    Buffer data(100000);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(mix64(i) >> 13);
    }
    const cas::Digest whole = cas::sha256(data.data(), data.size());
    for (const std::size_t split : {1ul, 63ul, 64ul, 65ul, 99999ul}) {
        cas::Sha256 h;
        h.update(data.data(), split);
        h.update(data.data() + split, data.size() - split);
        EXPECT_EQ(h.finish(), whole) << "split at " << split;
    }
}

TEST(Sha256, Digest128IsBigEndianPrefix) {
    // digest128 packs the first 16 digest bytes big-endian into
    // (hi, lo) — the printable hex prefix IS the key, which keeps
    // chunk(sha:...) names greppable against sha256sum output.
    const std::string abc = "abc";
    const auto [hi, lo] = cas::digest128(cas::sha256(abc.data(), abc.size()));
    EXPECT_EQ(hi, 0xba7816bf8f01cfeaULL);
    EXPECT_EQ(lo, 0x414140de5dae2223ULL);
}

// ---- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
    Rng a(7);
    Rng b(7);
    Rng c(8);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        diverged |= va != c();
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, BelowInRange) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, UniformIsRoughlyUniform) {
    Rng rng(3);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Zipf, HeadIsHotterThanTail) {
    Rng rng(5);
    ZipfSampler zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i) {
        ++counts[zipf.sample(rng)];
    }
    EXPECT_GT(counts[0], counts[50] * 5);
    EXPECT_GT(counts[0], 0);
}

TEST(Zipf, ZeroSkewIsUniformish) {
    Rng rng(5);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i) {
        ++counts[zipf.sample(rng)];
    }
    for (const int c : counts) {
        EXPECT_GT(c, 700);
        EXPECT_LT(c, 1300);
    }
}

// ---- deterministic buffers ------------------------------------------------------

TEST(Buffer, PatternRoundTrip) {
    const Buffer b = make_pattern(42, 7, 1000, 4096);
    EXPECT_EQ(verify_pattern(42, 7, 1000, b), -1);
}

TEST(Buffer, PatternDetectsCorruption) {
    Buffer b = make_pattern(42, 7, 0, 256);
    b[100] ^= 0xFF;
    EXPECT_EQ(verify_pattern(42, 7, 0, b), 100);
}

TEST(Buffer, PatternDependsOnAllCoordinates) {
    const Buffer base = make_pattern(1, 1, 0, 64);
    EXPECT_NE(base, make_pattern(2, 1, 0, 64));
    EXPECT_NE(base, make_pattern(1, 2, 0, 64));
    EXPECT_NE(base, make_pattern(1, 1, 64, 64));
}

TEST(Buffer, UnalignedFillMatchesReference) {
    // fill_pattern's word fast path must agree with the per-byte
    // definition at any offset.
    for (const std::uint64_t off : {0ULL, 1ULL, 3ULL, 7ULL, 8ULL, 13ULL}) {
        Buffer b(41);
        fill_pattern(9, 3, off, b);
        for (std::size_t i = 0; i < b.size(); ++i) {
            ASSERT_EQ(b[i], pattern_byte(9, 3, off + i))
                << "offset " << off << " index " << i;
        }
    }
}

// ---- stats ------------------------------------------------------------------------

TEST(Counter, ConcurrentAdds) {
    Counter c;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i) {
                c.add();
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(c.get(), 40000u);
}

TEST(Histogram, QuantilesOrdered) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) {
        h.record(v);
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_NEAR(h.mean(), 500.5, 1.0);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
    // Log buckets: the median estimate must be within a bucket (~25%).
    EXPECT_GT(h.quantile(0.5), 350u);
    EXPECT_LT(h.quantile(0.5), 700u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, EmptyIsZero) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Meter, AccumulatesIntoWindows) {
    Meter m(milliseconds(10));
    m.record(100);
    m.record(200);
    const auto series = m.series();
    std::uint64_t total = 0;
    for (const auto w : series) {
        total += w;
    }
    EXPECT_EQ(total, 300u);
}

// ---- bandwidth gate -------------------------------------------------------------------

TEST(BandwidthGate, ZeroRateIsFree) {
    BandwidthGate gate(0);
    const Stopwatch sw;
    gate.transmit(100 << 20);
    EXPECT_LT(sw.elapsed_us(), 20000u);
}

TEST(BandwidthGate, RateLimitsThroughput) {
    // 10 MB/s: 100 KB should take ~10 ms.
    BandwidthGate gate(10 << 20);
    const Stopwatch sw;
    gate.transmit(100 << 10);
    const auto us = sw.elapsed_us();
    EXPECT_GE(us, 8000u);
    EXPECT_LT(us, 100000u);
}

TEST(BandwidthGate, ConcurrentTransfersSerialize) {
    // Two concurrent 50 KB transfers over a 10 MB/s link take ~10 ms
    // total, not ~5 ms.
    BandwidthGate gate(10 << 20);
    const Stopwatch sw;
    std::thread t1([&] { gate.transmit(50 << 10); });
    std::thread t2([&] { gate.transmit(50 << 10); });
    t1.join();
    t2.join();
    EXPECT_GE(sw.elapsed_us(), 8000u);
}

// ---- thread pool ------------------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(2);
    auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsValue) {
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForPropagatesFirstError) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(10,
                                   [](std::size_t i) {
                                       if (i == 5) {
                                           throw std::runtime_error("x");
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, RejectsZeroThreads) {
    EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

}  // namespace
}  // namespace blobseer
