/// \file test_cas.cpp
/// \brief Tests of the content-addressed storage subsystem (DESIGN.md
///        §11): chunk-store reference counting, uid/content keyspace
///        separation, client-level dedup (check-before-push), streaming
///        transfer of large chunks, delete+GC reclamation and restart
///        survival of both the chunks and their reference counts.

#include <gtest/gtest.h>

#include <filesystem>

#include "cas/sha256.hpp"
#include "chunk/log_store.hpp"
#include "chunk/ram_store.hpp"
#include "testing_util.hpp"

namespace blobseer {
namespace {

class TempDir {
  public:
    TempDir() {
        dir_ = std::filesystem::temp_directory_path() /
               ("blobseer-cas-" + std::to_string(counter_++) + "-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }
    ~TempDir() { std::filesystem::remove_all(dir_); }
    [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

  private:
    static inline int counter_ = 0;
    std::filesystem::path dir_;
};

chunk::ChunkData payload_of(std::uint64_t tag, std::size_t size) {
    return std::make_shared<Buffer>(make_pattern(1, tag, 0, size));
}

core::ClusterConfig cas_config() {
    auto cfg = blobseer::testing::fast_config();
    cfg.content_addressed = true;
    return cfg;
}

/// Sum of one field of every provider's dedup status.
template <typename F>
std::uint64_t sum_dedup(core::Cluster& cluster, F field) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
        total += field(cluster.data_provider(i).dedup_status());
    }
    return total;
}

// ---- store-level reference counting ----------------------------------------

TEST(ChunkRefcount, RamStoreDefaultSemantics) {
    chunk::RamStore store;
    const auto key = chunk::ChunkKey::content(7, 9);
    // A reference to an absent chunk cannot exist.
    EXPECT_EQ(store.incref(key), 0u);
    EXPECT_EQ(store.decref(key), 0u);

    store.put(key, payload_of(1, 64));
    EXPECT_EQ(store.refcount(key), 1u);  // presence = implicit count 1
    EXPECT_EQ(store.incref(key), 2u);
    EXPECT_EQ(store.incref(key), 3u);
    EXPECT_EQ(store.decref(key), 2u);
    EXPECT_EQ(store.decref(key), 1u);
    EXPECT_TRUE(store.contains(key));  // last reference still held
    EXPECT_EQ(store.decref(key), 0u);
    EXPECT_FALSE(store.contains(key));  // zero refs = reclaimed
    EXPECT_EQ(store.bytes(), 0u);
}

TEST(ChunkRefcount, LogStorePersistsCountsAcrossReopen) {
    TempDir dir;
    const auto key = chunk::ChunkKey::content(3, 5);
    {
        chunk::LogStore store(dir.path());
        store.put(key, payload_of(2, 128));
        EXPECT_EQ(store.incref(key), 2u);
        EXPECT_EQ(store.incref(key), 3u);
    }
    chunk::LogStore reopened(dir.path());
    EXPECT_EQ(reopened.refcount(key), 3u);
    EXPECT_EQ(reopened.decref(key), 2u);
    EXPECT_EQ(reopened.decref(key), 1u);
    EXPECT_TRUE(reopened.contains(key));
    EXPECT_EQ(reopened.decref(key), 0u);
    EXPECT_FALSE(reopened.contains(key));
}

TEST(ChunkRefcount, LogStoreDropsRefRecordWithChunk) {
    TempDir dir;
    const auto key = chunk::ChunkKey::content(11, 13);
    {
        chunk::LogStore store(dir.path());
        store.put(key, payload_of(3, 64));
        EXPECT_EQ(store.incref(key), 2u);
        store.erase(key);  // erase drops the chunk AND its count
    }
    chunk::LogStore reopened(dir.path());
    EXPECT_FALSE(reopened.contains(key));
    // A fresh put must restart at the implicit count, not resurrect the
    // stale record.
    reopened.put(key, payload_of(3, 64));
    EXPECT_EQ(reopened.refcount(key), 1u);
    EXPECT_EQ(reopened.decref(key), 0u);
    EXPECT_FALSE(reopened.contains(key));
}

// ---- uid/content keyspace separation ---------------------------------------

TEST(CasKeyspace, ContentKeyCannotAliasUidKey) {
    // Regression for the re-minted-uid hazard: a uid chunk whose
    // (blob, uid) words happen to equal a content key's digest words
    // must stay a distinct record — in RAM (kind participates in
    // hash/==), on disk (distinct file names) and in the log engine
    // (length/prefix-disjoint encoded keys) — or a post-restart client
    // could read another blob's bytes.
    TempDir dir;
    const chunk::ChunkKey uid_key{42, 4242};
    const auto content_key = chunk::ChunkKey::content(42, 4242);
    ASSERT_NE(uid_key, content_key);
    {
        chunk::LogStore store(dir.path());
        store.put(uid_key, payload_of(10, 64));
        store.put(content_key, payload_of(20, 96));
        EXPECT_EQ(store.count(), 2u);
    }
    chunk::LogStore reopened(dir.path());
    const auto uid_data = reopened.get(uid_key);
    const auto content_data = reopened.get(content_key);
    ASSERT_TRUE(uid_data.has_value());
    ASSERT_TRUE(content_data.has_value());
    EXPECT_EQ((*uid_data)->size(), 64u);
    EXPECT_EQ((*content_data)->size(), 96u);
    EXPECT_EQ(verify_pattern(1, 10, 0, **uid_data), -1);
    EXPECT_EQ(verify_pattern(1, 20, 0, **content_data), -1);
    // Erasing one must not touch the other.
    reopened.erase(uid_key);
    EXPECT_FALSE(reopened.contains(uid_key));
    EXPECT_TRUE(reopened.contains(content_key));
}

// ---- client-level dedup ----------------------------------------------------

TEST(CasCluster, IdenticalBlobsShareOnePhysicalCopy) {
    core::Cluster cluster(cas_config());
    auto client = cluster.make_client();

    const std::uint64_t chunk = 4096;
    const std::size_t size = chunk * 8;
    const Buffer data = make_pattern(1, 7, 0, size);

    core::Blob a = client->create(chunk);
    core::Blob b = client->create(chunk);
    a.write(0, data);
    const std::uint64_t stored_after_a = sum_dedup(
        cluster, [](const auto& s) { return s.chunks_stored; });
    const std::uint64_t sent_after_a = client->stats().cas_bytes_sent.get();
    EXPECT_EQ(stored_after_a, 8u);
    EXPECT_EQ(sent_after_a, size);

    b.write(0, data);
    // The second blob's bytes never left the client, and no new chunks
    // were stored — every check-before-push hit.
    EXPECT_EQ(sum_dedup(cluster,
                        [](const auto& s) { return s.chunks_stored; }),
              stored_after_a);
    EXPECT_EQ(client->stats().cas_bytes_sent.get(), sent_after_a);
    EXPECT_EQ(client->stats().cas_dedup_hits.get(), 8u);
    EXPECT_EQ(client->stats().cas_bytes_skipped.get(), size);

    // Both blobs read back their own bytes.
    for (core::Blob* blob : {&a, &b}) {
        Buffer out(size);
        EXPECT_EQ(blob->read(kLatestVersion, 0, out), size);
        EXPECT_TRUE(blobseer::testing::matches(1, 7, 0, out));
    }
}

TEST(CasCluster, DuplicateChunksWithinOneWriteDedup) {
    core::Cluster cluster(cas_config());
    auto client = cluster.make_client();

    // Four chunks of identical content in a single write: one physical
    // copy, three recorded references.
    const std::uint64_t chunk = 1024;
    Buffer data(chunk * 4);
    const Buffer one = make_pattern(9, 9, 0, chunk);
    for (std::size_t i = 0; i < 4; ++i) {
        std::copy(one.begin(), one.end(), data.begin() + i * chunk);
    }
    core::Blob blob = client->create(chunk);
    blob.write(0, data);

    EXPECT_EQ(sum_dedup(cluster,
                        [](const auto& s) { return s.chunks_stored; }),
              1u);
    // Three of the four references arrived as check hits or duplicate
    // puts (the exact split depends on RPC interleaving).
    EXPECT_EQ(sum_dedup(cluster,
                        [](const auto& s) {
                            return s.check_hits + s.dup_puts;
                        }),
              3u);

    Buffer out(data.size());
    EXPECT_EQ(blob.read(kLatestVersion, 0, out), data.size());
    EXPECT_EQ(ConstBytes(out).size(), data.size());
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
}

TEST(CasCluster, ReplicatedCasWriteReadsBack) {
    auto cfg = cas_config();
    cfg.default_replication = 2;
    core::Cluster cluster(cfg);
    auto client = cluster.make_client();

    const std::uint64_t chunk = 2048;
    const std::size_t size = chunk * 6;
    core::Blob blob = client->create(chunk);
    blob.write(0, blobseer::testing::tagged(blob.id(), 1, 0, size));

    // Each chunk landed on two distinct ring owners.
    EXPECT_EQ(sum_dedup(cluster,
                        [](const auto& s) { return s.chunks_stored; }),
              12u);
    Buffer out(size);
    EXPECT_EQ(client->read(blob.id(), kLatestVersion, 0, out), size);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 1, 0, out));
}

TEST(CasCluster, StreamingLargeChunkRoundTrip) {
    core::Cluster cluster(cas_config());
    auto client = cluster.make_client();

    // One 8 MiB chunk: above the 4 MiB streaming threshold, so the
    // upload travels as push-start/some/end frames and the provider
    // recomputes the digest end-to-end before storing.
    const std::uint64_t chunk = 8ull << 20;
    core::Blob blob = client->create(chunk);
    const Buffer data = make_pattern(blob.id(), 3, 0, chunk);
    blob.write(0, data);
    EXPECT_EQ(client->stats().cas_stream_pushes.get(), 1u);

    Buffer out(chunk);
    EXPECT_EQ(blob.read(kLatestVersion, 0, out), chunk);
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 3, 0, out));

    // Re-writing the same content streams nothing: the check hits.
    core::Blob again = client->create(chunk);
    again.write(0, data);
    EXPECT_EQ(client->stats().cas_stream_pushes.get(), 1u);
    EXPECT_EQ(client->stats().cas_dedup_hits.get(), 1u);
}

// ---- delete & GC -----------------------------------------------------------

TEST(CasCluster, DeleteReclaimsOnlyUnsharedReferences) {
    core::Cluster cluster(cas_config());
    auto client = cluster.make_client();

    const std::uint64_t chunk = 4096;
    const std::size_t size = chunk * 4;
    const Buffer shared = make_pattern(2, 5, 0, size);

    core::Blob a = client->create(chunk);
    core::Blob b = client->create(chunk);
    a.write(0, shared);
    b.write(0, shared);
    // b also holds bytes of its own: deleting a must not touch them.
    b.append(blobseer::testing::tagged(b.id(), 6, 0, size));

    const std::uint64_t stored_before = sum_dedup(
        cluster, [](const auto& s) { return s.stored_bytes; });

    const auto del = client->delete_blob(a.id());
    EXPECT_EQ(del.chunks, 4u);

    // The shared chunks lost one of two references each — nothing was
    // reclaimed, and the survivor reads byte-identical.
    EXPECT_EQ(sum_dedup(cluster,
                        [](const auto& s) { return s.stored_bytes; }),
              stored_before);
    Buffer out(size);
    EXPECT_EQ(client->read(b.id(), kLatestVersion, 0, out), size);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), shared.begin()));

    // Deleting the survivor drops the last references: all bytes gone.
    const auto del_b = client->delete_blob(b.id());
    EXPECT_EQ(del_b.chunks, 8u);
    EXPECT_EQ(sum_dedup(cluster,
                        [](const auto& s) { return s.stored_bytes; }),
              0u);
    EXPECT_GT(sum_dedup(cluster,
                        [](const auto& s) { return s.reclaimed_chunks; }),
              0u);
}

TEST(CasCluster, DeleteReclaimsRetiredHistoryToo) {
    core::Cluster cluster(cas_config());
    auto client = cluster.make_client();

    const std::uint64_t chunk = 1024;
    core::Blob blob = client->create(chunk);
    // Three generations overwriting the same range: only the latest
    // survives in the tree, the older chunks are reclaimable history.
    for (std::uint64_t tag = 1; tag <= 3; ++tag) {
        blob.write(0, blobseer::testing::tagged(blob.id(), tag, 0,
                                                chunk * 2));
    }
    const auto del = client->delete_blob(blob.id());
    EXPECT_EQ(del.versions, 3u);
    EXPECT_EQ(sum_dedup(cluster,
                        [](const auto& s) { return s.stored_bytes; }),
              0u);
}

// ---- restart survival ------------------------------------------------------

TEST(CasLogRestart, DedupAndRefcountsSurviveRestart) {
    TempDir dir;
    auto cfg = cas_config();
    cfg.store = core::StoreBackend::kLog;
    cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
    cfg.durable_version_manager = true;
    cfg.disk_root = dir.path();

    const std::uint64_t chunk = 4096;
    const std::size_t size = chunk * 4;
    const Buffer data = make_pattern(3, 8, 0, size);
    BlobId a_id = kInvalidBlob;
    {
        core::Cluster cluster(cfg);
        auto client = cluster.make_client();
        core::Blob a = client->create(chunk);
        a_id = a.id();
        a.write(0, data);
    }  // full restart: volatile state gone, the log survives

    core::Cluster restarted(cfg);
    auto client = restarted.make_client();

    // Writing the same content after the restart dedups against the
    // recovered chunks — the digest, not the boot, addresses them.
    core::Blob b = client->create(chunk);
    b.write(0, data);
    EXPECT_EQ(client->stats().cas_dedup_hits.get(), 4u);
    EXPECT_EQ(client->stats().cas_bytes_sent.get(), 0u);

    // Deleting the pre-restart blob releases only its references; the
    // post-restart blob still reads every byte.
    const auto del = client->delete_blob(a_id);
    EXPECT_EQ(del.chunks, 4u);
    Buffer out(size);
    EXPECT_EQ(client->read(b.id(), kLatestVersion, 0, out), size);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
}

}  // namespace
}  // namespace blobseer
