/// \file test_ring.cpp
/// \brief Tests of the consistent-hash ring and the metadata provider
///        service (capacity gate + crash behaviour).

#include <gtest/gtest.h>

#include <map>

#include "common/clock.hpp"
#include "common/hash.hpp"
#include "dht/metadata_provider.hpp"
#include "dht/ring.hpp"

namespace blobseer::dht {
namespace {

TEST(Ring, SingleNodeOwnsEverything) {
    Ring ring;
    ring.add_node(5);
    for (std::uint64_t h = 0; h < 1000; h += 13) {
        EXPECT_EQ(ring.owner(mix64(h)), 5u);
    }
}

TEST(Ring, EmptyRingThrows) {
    const Ring ring;
    EXPECT_THROW((void)ring.owner(1), ConsistencyError);
}

TEST(Ring, OwnersAreDistinct) {
    Ring ring;
    for (NodeId n = 0; n < 5; ++n) {
        ring.add_node(n);
    }
    const auto owners = ring.owners(mix64(123), 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_NE(owners[0], owners[1]);
    EXPECT_NE(owners[1], owners[2]);
    EXPECT_NE(owners[0], owners[2]);
}

TEST(Ring, ReplicationClampedToNodeCount) {
    Ring ring;
    ring.add_node(1);
    ring.add_node(2);
    EXPECT_EQ(ring.owners(42, 5).size(), 2u);
}

TEST(Ring, LookupIsDeterministic) {
    Ring a;
    Ring b;
    for (NodeId n = 0; n < 4; ++n) {
        a.add_node(n);
        b.add_node(n);
    }
    for (std::uint64_t h = 0; h < 500; ++h) {
        EXPECT_EQ(a.owner(mix64(h)), b.owner(mix64(h)));
    }
}

TEST(Ring, LoadRoughlyBalanced) {
    Ring ring;
    const std::size_t nodes = 8;
    for (NodeId n = 0; n < nodes; ++n) {
        ring.add_node(n);
    }
    std::map<NodeId, int> counts;
    const int keys = 20000;
    for (int i = 0; i < keys; ++i) {
        ++counts[ring.owner(mix64(i))];
    }
    const int expected = keys / nodes;
    for (const auto& [node, count] : counts) {
        EXPECT_GT(count, expected / 2) << "node " << node;
        EXPECT_LT(count, expected * 2) << "node " << node;
    }
}

TEST(Ring, MoreNodesRebalanceOnlyPartially) {
    // Consistent hashing: adding one node moves ~1/(n+1) of the keys.
    Ring small;
    for (NodeId n = 0; n < 8; ++n) {
        small.add_node(n);
    }
    Ring large;
    for (NodeId n = 0; n < 9; ++n) {
        large.add_node(n);
    }
    int moved = 0;
    const int keys = 10000;
    for (int i = 0; i < keys; ++i) {
        if (small.owner(mix64(i)) != large.owner(mix64(i))) {
            ++moved;
        }
    }
    EXPECT_LT(moved, keys / 4);  // far fewer than a full reshuffle
    EXPECT_GT(moved, keys / 30);
}

// ---- MetadataProvider -----------------------------------------------------

meta::MetaKey key_of(std::uint64_t i) {
    return meta::MetaKey{1, 1, {i, 1}};
}

TEST(MetadataProvider, PutGetErase) {
    MetadataProvider mp(0, 0);
    mp.put(key_of(1), meta::MetaNode::leaf({NodeId{3}}, 77, 8));
    const auto node = mp.get(key_of(1));
    EXPECT_TRUE(node.is_leaf());
    EXPECT_EQ(node.chunk_uid, 77u);
    EXPECT_EQ(mp.stored_nodes(), 1u);
    mp.erase(key_of(1));
    EXPECT_THROW((void)mp.get(key_of(1)), NotFoundError);
    EXPECT_FALSE(mp.try_get(key_of(1)).has_value());
}

TEST(MetadataProvider, CrashLosesState) {
    MetadataProvider mp(0, 0);
    for (std::uint64_t i = 0; i < 16; ++i) {
        mp.put(key_of(i), meta::MetaNode::inner({}, {}));
    }
    mp.lose_state();
    EXPECT_EQ(mp.stored_nodes(), 0u);
}

TEST(MetadataProvider, ServiceCapacityThrottles) {
    // 1000 ops/s: 20 ops should take >= ~18 ms.
    MetadataProvider mp(0, 1000);
    const Stopwatch sw;
    for (std::uint64_t i = 0; i < 20; ++i) {
        mp.put(key_of(i), meta::MetaNode::inner({}, {}));
    }
    EXPECT_GE(sw.elapsed_us(), 15000u);
}

TEST(MetadataProvider, StatsCount) {
    MetadataProvider mp(0, 0);
    mp.put(key_of(1), meta::MetaNode::inner({}, {}));
    (void)mp.get(key_of(1));
    EXPECT_THROW((void)mp.get(key_of(2)), NotFoundError);
    EXPECT_EQ(mp.stats().ops.get(), 3u);
    EXPECT_EQ(mp.stats().errors.get(), 1u);
}

}  // namespace
}  // namespace blobseer::dht
