/// \file test_engine.cpp
/// \brief Tests of the log-structured storage engine: record round-trips,
///        segment rollover, checkpointed reopen, compaction, CRC
///        corruption surfacing, and the crash-recovery property test
///        (arbitrary-byte torn tails recover exactly the committed
///        prefix). Format contract: DESIGN.md §8.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "engine/crc32c.hpp"
#include "engine/log_engine.hpp"

namespace blobseer::engine {
namespace {

namespace fs = std::filesystem;

class TempDir {
  public:
    TempDir() {
        dir_ = fs::temp_directory_path() /
               ("blobseer-engine-" + std::to_string(counter_++) + "-" +
                std::to_string(::getpid()));
        fs::remove_all(dir_);
    }
    ~TempDir() { fs::remove_all(dir_); }
    [[nodiscard]] const fs::path& path() const { return dir_; }

  private:
    static inline int counter_ = 0;
    fs::path dir_;
};

EngineConfig manual_config(const fs::path& dir) {
    EngineConfig cfg;
    cfg.dir = dir;
    cfg.checkpoint_interval_records = 0;  // checkpoints only when asked
    cfg.background_compaction = false;    // compaction only when asked
    return cfg;
}

Buffer bytes_of(const std::string& s) {
    return {s.begin(), s.end()};
}

std::string str_of(const Buffer& b) {
    return {b.begin(), b.end()};
}

// ---- basics -----------------------------------------------------------------

TEST(Crc32c, MatchesKnownVector) {
    // The iSCSI/RFC 3720 check value pins the polynomial and the
    // slicing-by-8 table construction: crc32c("123456789") = 0xE3069283.
    const std::string msg = "123456789";
    EXPECT_EQ(crc32c(ConstBytes(
                  reinterpret_cast<const std::uint8_t*>(msg.data()),
                  msg.size())),
              0xE3069283u);
    // Incremental form must agree regardless of the split point.
    std::uint32_t state = crc32c_init();
    state = crc32c_update(
        state, ConstBytes(reinterpret_cast<const std::uint8_t*>(msg.data()),
                          3));
    state = crc32c_update(
        state,
        ConstBytes(reinterpret_cast<const std::uint8_t*>(msg.data()) + 3,
                   6));
    EXPECT_EQ(crc32c_final(state), 0xE3069283u);
}

TEST(LogEngine, PutGetRoundTrip) {
    TempDir dir;
    LogEngine eng(manual_config(dir.path()));
    eng.put("alpha", bytes_of("payload-1"));
    const auto got = eng.get("alpha");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(str_of(*got), "payload-1");
    EXPECT_TRUE(eng.contains("alpha"));
    EXPECT_FALSE(eng.contains("beta"));
    EXPECT_EQ(eng.count(), 1u);
    EXPECT_EQ(eng.live_value_bytes(), 9u);
}

TEST(LogEngine, OverwriteReplacesAndTracksDeadSpace) {
    TempDir dir;
    LogEngine eng(manual_config(dir.path()));
    eng.put("k", bytes_of("first"));
    eng.put("k", bytes_of("second!"));
    EXPECT_EQ(str_of(*eng.get("k")), "second!");
    EXPECT_EQ(eng.count(), 1u);
    EXPECT_EQ(eng.live_value_bytes(), 7u);
    EXPECT_EQ(eng.stats().overwrites, 1u);
}

TEST(LogEngine, RemoveWritesTombstone) {
    TempDir dir;
    LogEngine eng(manual_config(dir.path()));
    eng.put("k", bytes_of("v"));
    EXPECT_TRUE(eng.remove("k"));
    EXPECT_FALSE(eng.remove("k"));  // already gone: no tombstone appended
    EXPECT_FALSE(eng.get("k").has_value());
    EXPECT_EQ(eng.count(), 0u);
    EXPECT_EQ(eng.live_value_bytes(), 0u);
}

TEST(LogEngine, DoubleOpenOfOneDirectoryRejected) {
    TempDir dir;
    LogEngine eng(manual_config(dir.path()));
    eng.put("k", bytes_of("v"));
    // A second engine on the same directory would interleave appends at
    // overlapping offsets; the flock must fail the open cleanly.
    EXPECT_THROW(LogEngine second(manual_config(dir.path())), Error);
    EXPECT_EQ(str_of(*eng.get("k")), "v");  // first engine unharmed
}

TEST(LogEngine, PutIfAbsentIsAtomicIdempotence) {
    TempDir dir;
    LogEngine eng(manual_config(dir.path()));
    EXPECT_TRUE(eng.put_if_absent("k", bytes_of("first")));
    EXPECT_FALSE(eng.put_if_absent("k", bytes_of("second")));
    EXPECT_EQ(str_of(*eng.get("k")), "first");
    EXPECT_EQ(eng.stats().appends, 1u);
}

TEST(LogEngine, EmptyValueAllowed) {
    TempDir dir;
    LogEngine eng(manual_config(dir.path()));
    eng.put("empty", {});
    const auto got = eng.get("empty");
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->empty());
}

// ---- recovery ---------------------------------------------------------------

TEST(LogEngine, PersistsAcrossReopenByFullScan) {
    TempDir dir;
    {
        LogEngine eng(manual_config(dir.path()));
        eng.put("a", bytes_of("1"));
        eng.put("b", bytes_of("22"));
        eng.put("a", bytes_of("333"));  // overwrite
        EXPECT_TRUE(eng.remove("b"));
    }
    LogEngine eng(manual_config(dir.path()));
    EXPECT_FALSE(eng.stats().recovered_from_checkpoint);
    EXPECT_EQ(eng.count(), 1u);
    EXPECT_EQ(str_of(*eng.get("a")), "333");
    EXPECT_FALSE(eng.get("b").has_value());
}

TEST(LogEngine, CheckpointedReopen) {
    TempDir dir;
    {
        LogEngine eng(manual_config(dir.path()));
        for (int i = 0; i < 100; ++i) {
            eng.put("key-" + std::to_string(i),
                    bytes_of("value-" + std::to_string(i)));
        }
        eng.checkpoint();
        // Writes after the checkpoint are replayed from the watermark.
        eng.put("key-5", bytes_of("rewritten"));
        EXPECT_TRUE(eng.remove("key-6"));
        eng.put("late", bytes_of("arrival"));
    }
    LogEngine eng(manual_config(dir.path()));
    EXPECT_TRUE(eng.stats().recovered_from_checkpoint);
    EXPECT_EQ(eng.count(), 100u);  // 100 - 1 removed + 1 added
    EXPECT_EQ(str_of(*eng.get("key-5")), "rewritten");
    EXPECT_FALSE(eng.get("key-6").has_value());
    EXPECT_EQ(str_of(*eng.get("late")), "arrival");
    EXPECT_EQ(str_of(*eng.get("key-99")), "value-99");
}

TEST(LogEngine, CleanCloseWritesCheckpointWhenEnabled) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.checkpoint_interval_records = 1000;  // enabled, but far away
    {
        LogEngine eng(cfg);
        eng.put("x", bytes_of("y"));
    }  // destructor checkpoints
    LogEngine eng(cfg);
    EXPECT_TRUE(eng.stats().recovered_from_checkpoint);
    EXPECT_EQ(str_of(*eng.get("x")), "y");
}

TEST(LogEngine, SegmentRollover) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 256;
    LogEngine eng(cfg);
    for (int i = 0; i < 64; ++i) {
        eng.put("key-" + std::to_string(i), Buffer(32, 0xAB));
    }
    EXPECT_GT(eng.stats().segment_count, 4u);
    for (int i = 0; i < 64; ++i) {
        const auto got = eng.get("key-" + std::to_string(i));
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->size(), 32u);
    }
}

// ---- compaction -------------------------------------------------------------

TEST(LogEngine, CompactionReclaimsDeadSpace) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 1024;
    LogEngine eng(cfg);
    for (int i = 0; i < 200; ++i) {
        eng.put("key-" + std::to_string(i), Buffer(64, 0x11));
    }
    for (int i = 0; i < 180; ++i) {
        EXPECT_TRUE(eng.remove("key-" + std::to_string(i)));
    }
    const auto before = eng.stats();
    EXPECT_GT(eng.compact(), 0u);
    const auto after = eng.stats();
    EXPECT_LT(after.disk_bytes, before.disk_bytes);
    EXPECT_GT(after.reclaimed_bytes, 0u);
    EXPECT_EQ(after.live_keys, 20u);
    for (int i = 180; i < 200; ++i) {
        const auto got = eng.get("key-" + std::to_string(i));
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->size(), 64u);
    }
}

TEST(LogEngine, CompactedStateSurvivesReopen) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 512;
    {
        LogEngine eng(cfg);
        for (int i = 0; i < 100; ++i) {
            eng.put("key-" + std::to_string(i), Buffer(40, 0x22));
        }
        for (int i = 0; i < 70; ++i) {
            EXPECT_TRUE(eng.remove("key-" + std::to_string(i)));
        }
        eng.compact();
    }
    LogEngine eng(cfg);
    EXPECT_EQ(eng.count(), 30u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(eng.contains("key-" + std::to_string(i)), i >= 70)
            << "key-" << i;
    }
}

TEST(LogEngine, TombstoneShadowsOlderSegmentsThroughCompaction) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 128;  // puts and tombstones land in
                                     // different segments
    cfg.compact_min_live_ratio = 1.0;  // everything sealed is a victim
    {
        LogEngine eng(cfg);
        eng.put("victim", Buffer(100, 0x33));
        eng.put("keeper", Buffer(100, 0x44));
        EXPECT_TRUE(eng.remove("victim"));
        eng.put("filler", Buffer(100, 0x55));  // seals the tombstone's
                                               // segment
        eng.compact();
    }
    LogEngine eng(cfg);
    EXPECT_FALSE(eng.contains("victim"));
    EXPECT_TRUE(eng.contains("keeper"));
    EXPECT_TRUE(eng.contains("filler"));
}

TEST(LogEngine, CompactionReclaimsAfterReopen) {
    // Regression: recovered segments must come back sealed (an aggregate
    // -init field-order slip once left them sealed=false), or dead space
    // from before a restart is never reclaimable.
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 1024;
    {
        LogEngine eng(cfg);
        for (int i = 0; i < 200; ++i) {
            eng.put("key-" + std::to_string(i), Buffer(64, 0x11));
        }
        for (int i = 0; i < 180; ++i) {
            EXPECT_TRUE(eng.remove("key-" + std::to_string(i)));
        }
    }
    LogEngine eng(cfg);
    const auto before = eng.stats();
    EXPECT_GT(eng.compact(), 0u);
    EXPECT_LT(eng.stats().disk_bytes, before.disk_bytes);
    for (int i = 180; i < 200; ++i) {
        ASSERT_TRUE(eng.get("key-" + std::to_string(i)).has_value());
    }
}

TEST(LogEngine, PinnedReadSurvivesCompaction) {
    // get_ref() contract (DESIGN.md §15.3): a pinned view stays valid
    // and byte-identical even after the compactor rewrites and retires
    // its segment — the unlink is deferred to the last view release.
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 128;    // a couple of puts per segment
    cfg.compact_min_live_ratio = 1.0;  // any dead byte makes a victim
    LogEngine eng(cfg);
    for (int i = 0; i < 32; ++i) {
        eng.put("key-" + std::to_string(i),
                Buffer(64, static_cast<std::uint8_t>(i)));
    }
    // Dead space in the early segments so they become victims.
    for (int i = 0; i < 32; i += 2) {
        eng.put("key-" + std::to_string(i), Buffer(64, 0xEE));
    }

    auto count_files = [&] {
        std::size_t n = 0;
        for (const auto& e : fs::directory_iterator(dir.path())) {
            n += e.is_regular_file() ? 1 : 0;
        }
        return n;
    };

    auto ref = eng.get_ref("key-3");  // odd key: still in its sealed home
    ASSERT_TRUE(ref.has_value());
    ASSERT_EQ(ref->bytes.size(), 64u);
    EXPECT_GE(eng.stats().ref_gets_mmap, 1u);

    // Kill the pinned key itself: its segment is now certainly a victim,
    // yet the live view must not notice.
    EXPECT_TRUE(eng.remove("key-3"));

    EXPECT_GT(eng.compact(), 0u);
    EXPECT_GE(eng.stats().deferred_unlinks, 1u);
    const std::size_t files_pinned = count_files();

    // The view still reads the original bytes from the retired (but not
    // yet unlinked) segment's mapping, even though the key is gone.
    const Buffer expect(64, 3);
    EXPECT_EQ(0, std::memcmp(ref->bytes.data(), expect.data(), 64));
    EXPECT_FALSE(eng.get("key-3").has_value());

    ref.reset();  // last release fires the deferred unlink
    EXPECT_LT(count_files(), files_pinned);
    ASSERT_TRUE(eng.get("key-5").has_value());  // survivors intact
}

TEST(LogEngine, CleanCloseAdvancesCheckpointPastReplayedSuffix) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.checkpoint_interval_records = 1000;  // enabled; manual distance
    {
        LogEngine eng(cfg);
        eng.put("a", bytes_of("1"));
        eng.checkpoint();
        eng.put("b", bytes_of("2"));  // suffix past the watermark
    }  // clean close checkpoints the suffix too
    {
        LogEngine eng(cfg);  // replays ["b"], then must re-checkpoint
        EXPECT_TRUE(eng.stats().recovered_from_checkpoint);
    }
    LogEngine eng(cfg);
    // If the second close had skipped its checkpoint, this open would
    // still replay "b" from the log; instead the newest checkpoint
    // covers it (watermark == log end, zero records replayed — observed
    // here as a checkpoint recovery with both keys present).
    EXPECT_TRUE(eng.stats().recovered_from_checkpoint);
    EXPECT_EQ(str_of(*eng.get("a")), "1");
    EXPECT_EQ(str_of(*eng.get("b")), "2");
}

TEST(LogEngine, BackgroundCompactionRuns) {
    TempDir dir;
    EngineConfig cfg;
    cfg.dir = dir.path();
    cfg.checkpoint_interval_records = 0;
    cfg.segment_target_bytes = 512;
    cfg.background_compaction = true;
    cfg.compact_min_live_ratio = 0.9;
    LogEngine eng(cfg);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 50; ++i) {
            eng.put("key-" + std::to_string(i), Buffer(48, 0x66));
        }
    }
    eng.wait_idle();
    EXPECT_GT(eng.stats().compactions, 0u);
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(eng.get("key-" + std::to_string(i)).has_value());
    }
}

// ---- corruption surfacing ---------------------------------------------------

void flip_byte(const fs::path& file, std::uint64_t offset) {
    std::FILE* f = std::fopen(file.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
}

fs::path only_segment(const fs::path& dir) {
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().filename().string().starts_with("seg-")) {
            return entry.path();
        }
    }
    return {};
}

TEST(LogEngine, CrcCorruptionSurfacedOnRead) {
    TempDir dir;
    LogEngine eng(manual_config(dir.path()));
    eng.put("key", Buffer(64, 0x77));
    // Flip a payload byte of the only record: header(24) + record
    // header(13) + klen(3) lands in the value.
    flip_byte(only_segment(dir.path()), 24 + 13 + 3 + 10);
    EXPECT_THROW((void)eng.get("key"), ConsistencyError);
    EXPECT_GT(eng.stats().crc_read_failures, 0u);
}

TEST(LogEngine, CorruptSealedSegmentRejectedAtOpen) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 64;  // first put seals segment 1
    fs::path first_seg;
    {
        LogEngine eng(cfg);
        eng.put("a", Buffer(64, 0x88));
        first_seg = only_segment(dir.path());
        eng.put("b", Buffer(64, 0x99));  // lives in segment 2
    }
    flip_byte(first_seg, 24 + 13 + 1 + 5);  // corrupt sealed segment 1
    EXPECT_THROW(LogEngine reopened(cfg), ConsistencyError);
}

// ---- crash recovery (property test) ----------------------------------------

/// Simulate a crash by truncating the single live segment at an arbitrary
/// byte; reopening must recover exactly the state after the last record
/// that fully fits, discarding the torn suffix.
TEST(LogEngineCrash, TornTailRecoversExactCommittedPrefix) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    cfg.segment_target_bytes = 1ULL << 40;  // one segment: offsets = sizes

    using State = std::map<std::string, Buffer>;
    std::vector<std::pair<std::uint64_t, State>> timeline;  // (log size, state)
    std::mt19937_64 rng(20260730);

    {
        LogEngine eng(cfg);
        timeline.emplace_back(eng.stats().disk_bytes, State{});
        State state;
        for (int op = 0; op < 250; ++op) {
            const std::string key =
                "key-" + std::to_string(rng() % 32);
            if (rng() % 4 == 0 && state.contains(key)) {
                ASSERT_TRUE(eng.remove(key));
                state.erase(key);
            } else {
                Buffer value(rng() % 120);
                for (auto& b : value) {
                    b = static_cast<std::uint8_t>(rng());
                }
                eng.put(key, value);
                state[key] = std::move(value);
            }
            timeline.emplace_back(eng.stats().disk_bytes, state);
        }
    }

    const fs::path seg = only_segment(dir.path());
    Buffer full;
    {
        std::FILE* f = std::fopen(seg.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        full.resize(static_cast<std::size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        ASSERT_EQ(std::fread(full.data(), 1, full.size(), f), full.size());
        std::fclose(f);
    }
    ASSERT_EQ(full.size(), timeline.back().first);

    std::vector<std::uint64_t> cut_points;
    for (int trial = 0; trial < 40; ++trial) {
        cut_points.push_back(rng() % (full.size() + 1));
    }
    // Edges: empty file, mid-header, exact record boundaries.
    cut_points.push_back(0);
    cut_points.push_back(12);
    cut_points.push_back(timeline[1].first);
    cut_points.push_back(timeline[timeline.size() / 2].first);
    cut_points.push_back(full.size());

    for (const std::uint64_t cut : cut_points) {
        TempDir crash_dir;
        EngineConfig crash_cfg = manual_config(crash_dir.path());
        crash_cfg.segment_target_bytes = cfg.segment_target_bytes;
        fs::create_directories(crash_dir.path());
        {
            std::FILE* f = std::fopen(
                (crash_dir.path() / seg.filename()).c_str(), "wb");
            ASSERT_NE(f, nullptr);
            if (cut > 0) {
                ASSERT_EQ(std::fwrite(full.data(), 1, cut, f), cut);
            }
            std::fclose(f);
        }

        // Expected: the state after the last op whose log end fits the cut.
        const State* expected = &timeline.front().second;
        std::uint64_t expected_size = timeline.front().first;
        for (const auto& [size, state] : timeline) {
            if (size <= cut) {
                expected = &state;
                expected_size = size;
            }
        }

        LogEngine eng(crash_cfg);
        const auto stats = eng.stats();
        EXPECT_EQ(stats.live_keys, expected->size()) << "cut=" << cut;
        if (cut >= 24) {  // torn records past the last committed one
            EXPECT_EQ(stats.torn_bytes_discarded, cut - expected_size)
                << "cut=" << cut;
        }
        for (const auto& [key, value] : *expected) {
            const auto got = eng.get(key);
            ASSERT_TRUE(got.has_value()) << "cut=" << cut << " key=" << key;
            EXPECT_EQ(*got, value) << "cut=" << cut << " key=" << key;
        }
    }
}

/// Torn tails interact correctly with checkpoints: a truncation *past*
/// the watermark keeps the checkpoint usable; a truncation *behind* it
/// invalidates the checkpoint and recovery falls back to the full scan.
TEST(LogEngineCrash, TornTailBehindCheckpointFallsBackToScan) {
    TempDir dir;
    EngineConfig cfg = manual_config(dir.path());
    std::uint64_t pre_checkpoint_size = 0;
    {
        LogEngine eng(cfg);
        eng.put("a", bytes_of("alpha"));
        eng.put("b", bytes_of("beta"));
        pre_checkpoint_size = eng.stats().disk_bytes;
        eng.put("c", bytes_of("gamma"));
        eng.checkpoint();
        eng.put("d", bytes_of("delta"));
    }
    const fs::path seg = only_segment(dir.path());

    // Cut behind the watermark: record "c" (covered by the checkpoint)
    // is gone, so the checkpoint must be rejected, not trusted.
    fs::resize_file(seg, pre_checkpoint_size);
    LogEngine eng(cfg);
    EXPECT_FALSE(eng.stats().recovered_from_checkpoint);
    EXPECT_EQ(eng.count(), 2u);
    EXPECT_EQ(str_of(*eng.get("a")), "alpha");
    EXPECT_EQ(str_of(*eng.get("b")), "beta");
    EXPECT_FALSE(eng.contains("c"));
    EXPECT_FALSE(eng.contains("d"));
}

// ---- scan (journal replay hook) --------------------------------------------

TEST(LogEngine, ScanVisitsLiveRecordsInAppendOrder) {
    TempDir dir;
    {
        LogEngine eng(manual_config(dir.path()));
        for (int i = 0; i < 20; ++i) {
            eng.put("seq-" + std::to_string(1000 + i),
                    bytes_of(std::to_string(i)));
        }
    }
    LogEngine eng(manual_config(dir.path()));
    std::vector<std::string> seen;
    eng.scan([&](std::string_view key, ConstBytes value) {
        seen.emplace_back(key);
        EXPECT_FALSE(value.empty());
    });
    ASSERT_EQ(seen.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(seen[static_cast<std::size_t>(i)],
                  "seq-" + std::to_string(1000 + i));
    }
}

// ---- compact-time recompression (format v2, DESIGN.md §14.3) ---------------

/// Compressible value: long runs keyed by \p i so every key's bytes are
/// distinct but shrink well under LZ4.
Buffer runs_value(int i, std::size_t size) {
    Buffer v(size);
    for (std::size_t j = 0; j < size; ++j) {
        v[j] = static_cast<std::uint8_t>((j / 32) + static_cast<unsigned>(i));
    }
    return v;
}

/// Interleaved triple-puts: every segment is ~2/3 dead first-and-second
/// versions, comfortably past the 50% victim threshold, so compact()
/// relocates (and, with the flag on, recompresses) live records from
/// essentially every sealed segment.
void fill_with_dead_space(LogEngine& eng, int keys, std::size_t size,
                          bool compressible) {
    std::mt19937_64 rng(7);
    for (int i = 0; i < keys; ++i) {
        Buffer v = compressible ? runs_value(i, size) : Buffer(size);
        if (!compressible) {
            for (auto& b : v) {
                b = static_cast<std::uint8_t>(rng());
            }
        }
        eng.put("key-" + std::to_string(i), v);
        eng.put("key-" + std::to_string(i), v);  // goes dead
        eng.put("key-" + std::to_string(i), v);  // goes dead
    }
}

EngineConfig compress_config(const fs::path& dir) {
    EngineConfig cfg = manual_config(dir);
    cfg.segment_target_bytes = 2048;
    cfg.compress_on_compact = true;
    return cfg;
}

TEST(LogEngineCompression, CompactRecompressesColdRecordsAndReadsBack) {
    TempDir dir;
    LogEngine eng(compress_config(dir.path()));
    fill_with_dead_space(eng, 50, 300, /*compressible=*/true);
    EXPECT_EQ(eng.stats().compressed_live_records, 0u);

    EXPECT_GT(eng.compact(), 0u);
    const auto st = eng.stats();
    EXPECT_GT(st.compact_compressed_records, 0u);
    EXPECT_GT(st.compressed_live_records, 0u);
    EXPECT_GT(st.compressed_live_bytes, 0u);
    // The whole point: stored bytes shrank versus the raw bytes fed in.
    EXPECT_LT(st.compact_stored_bytes_out, st.compact_raw_bytes_in);

    for (int i = 0; i < 50; ++i) {
        const auto got = eng.get("key-" + std::to_string(i));
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, runs_value(i, 300));
    }
}

TEST(LogEngineCompression, ScanDecompressesTransparently) {
    TempDir dir;
    LogEngine eng(compress_config(dir.path()));
    fill_with_dead_space(eng, 20, 300, true);
    EXPECT_GT(eng.compact(), 0u);
    std::map<std::string, Buffer> seen;
    eng.scan([&seen](std::string_view key, ConstBytes value) {
        seen[std::string(key)] = Buffer(value.begin(), value.end());
    });
    ASSERT_EQ(seen.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(seen["key-" + std::to_string(i)], runs_value(i, 300));
    }
}

TEST(LogEngineCompression, SurvivesReopenByScanAndByCheckpoint) {
    TempDir dir;
    EngineConfig cfg = compress_config(dir.path());
    std::uint64_t compressed = 0;
    {
        LogEngine eng(cfg);
        fill_with_dead_space(eng, 30, 300, true);
        EXPECT_GT(eng.compact(), 0u);
        compressed = eng.stats().compressed_live_records;
        EXPECT_GT(compressed, 0u);
    }  // no checkpoint: next open replays segments
    {
        LogEngine eng(cfg);
        EXPECT_FALSE(eng.stats().recovered_from_checkpoint);
        EXPECT_EQ(eng.stats().compressed_live_records, compressed);
        for (int i = 0; i < 30; ++i) {
            const auto got = eng.get("key-" + std::to_string(i));
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, runs_value(i, 300));
        }
        eng.checkpoint();  // persists the kPutCompressed kinds
    }
    LogEngine eng(cfg);
    EXPECT_TRUE(eng.stats().recovered_from_checkpoint);
    EXPECT_EQ(eng.stats().compressed_live_records, compressed);
    for (int i = 0; i < 30; ++i) {
        const auto got = eng.get("key-" + std::to_string(i));
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, runs_value(i, 300));
    }
}

TEST(LogEngineCompression, IncompressibleRecordsStayRaw) {
    TempDir dir;
    LogEngine eng(compress_config(dir.path()));
    fill_with_dead_space(eng, 30, 300, /*compressible=*/false);
    EXPECT_GT(eng.compact(), 0u);
    // encode_frame refuses frames that do not shrink, so random values
    // relocate as plain kPut records.
    EXPECT_EQ(eng.stats().compressed_live_records, 0u);
    EXPECT_EQ(eng.stats().compact_compressed_records, 0u);
    for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(eng.get("key-" + std::to_string(i)).has_value());
    }
}

TEST(LogEngineCompression, SmallRecordsBelowThresholdStayRaw) {
    TempDir dir;
    EngineConfig cfg = compress_config(dir.path());
    cfg.compress_min_bytes = 1024;  // all test values are below this
    LogEngine eng(cfg);
    fill_with_dead_space(eng, 30, 300, true);
    EXPECT_GT(eng.compact(), 0u);
    EXPECT_EQ(eng.stats().compressed_live_records, 0u);
    for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(eng.get("key-" + std::to_string(i)).has_value());
    }
}

TEST(LogEngineCompression, FlagOffProducesByteIdenticalV1Headers) {
    TempDir v1_dir;
    {
        // Default config (flag off): files must stay format v1 so a
        // deployment that never opts in is byte-identical to the seed.
        LogEngine eng(manual_config(v1_dir.path()));
        eng.put("k", Buffer(64, 0x42));
    }
    std::FILE* f = std::fopen(only_segment(v1_dir.path()).c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::uint8_t header[24] = {};
    ASSERT_EQ(std::fread(header, 1, sizeof header, f), sizeof header);
    std::fclose(f);
    EXPECT_EQ(get_u32(ConstBytes(header, sizeof header), 8), 1u);

    TempDir v2_dir;
    {
        LogEngine eng(compress_config(v2_dir.path()));
        eng.put("k", Buffer(64, 0x42));
    }
    f = std::fopen(only_segment(v2_dir.path()).c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(header, 1, sizeof header, f), sizeof header);
    std::fclose(f);
    EXPECT_EQ(get_u32(ConstBytes(header, sizeof header), 8), 2u);
}

/// Hand-build a segment file: \p version header plus one record per
/// (type, key, value) triple — the layout contract, written without the
/// engine's help.
void write_segment(const fs::path& file, std::uint32_t version,
                   const std::vector<std::tuple<RecordType, std::string,
                                                Buffer>>& records) {
    Buffer out = encode_segment_header(1, version);
    for (const auto& [type, key, value] : records) {
        const std::size_t crc_pos = out.size();
        put_u32(out, 0);  // CRC placeholder
        put_u32(out, static_cast<std::uint32_t>(key.size()));
        put_u32(out, static_cast<std::uint32_t>(value.size()));
        out.push_back(static_cast<std::uint8_t>(type));
        out.insert(out.end(), key.begin(), key.end());
        out.insert(out.end(), value.begin(), value.end());
        const std::uint32_t crc = crc32c(
            ConstBytes(out.data() + crc_pos + 4, out.size() - crc_pos - 4));
        poke_u32(out, crc_pos, crc);
    }
    std::FILE* f = std::fopen(file.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
}

TEST(LogEngineCompression, HandBuiltV1SegmentStillReadable) {
    TempDir dir;
    fs::create_directories(dir.path());
    write_segment(dir.path() / "seg-0000000001.log", 1,
                  {{RecordType::kPut, "old-key", Buffer(48, 0x33)}});
    LogEngine eng(manual_config(dir.path()));
    const auto got = eng.get("old-key");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, Buffer(48, 0x33));
}

TEST(LogEngineCompression, UndecodableCompressedRecordThrows) {
    TempDir dir;
    fs::create_directories(dir.path());
    // A kPutCompressed record whose CRC is valid but whose frame is
    // garbage: CRC passes, the codec rejects, and the engine must
    // surface ConsistencyError — never bogus bytes.
    Buffer bogus_frame;
    bogus_frame.push_back(0x01);          // "compressed" tag
    put_u32(bogus_frame, 4096);           // claimed raw size
    for (int i = 0; i < 32; ++i) {
        bogus_frame.push_back(0xEE);      // not a valid LZ4 block
    }
    write_segment(dir.path() / "seg-0000000001.log", 2,
                  {{RecordType::kPutCompressed, "bad", bogus_frame}});
    LogEngine eng(manual_config(dir.path()));
    EXPECT_THROW((void)eng.get("bad"), ConsistencyError);
    EXPECT_GT(eng.stats().crc_read_failures, 0u);
}

TEST(LogEngineCompression, CorruptCompressedRecordCaughtByCrc) {
    TempDir dir;
    EngineConfig cfg = compress_config(dir.path());
    cfg.segment_target_bytes = 1024;
    LogEngine eng(cfg);
    // Four puts of the one key: 3/4 of the sealed segment is dead, so it
    // is a compaction victim, and relocation re-appends the lone live
    // record — compressed — first into the empty active segment.
    for (int i = 0; i < 4; ++i) {
        eng.put("k", runs_value(1, 300));
    }
    EXPECT_GT(eng.compact(), 0u);
    ASSERT_GT(eng.stats().compressed_live_records, 0u);
    // Flip a byte inside the first record's value in every segment; the
    // compressed record must CRC-fail, never decompress garbage.
    for (const auto& entry : fs::directory_iterator(dir.path())) {
        if (entry.path().filename().string().starts_with("seg-") &&
            fs::file_size(entry.path()) > 24 + 13 + 1 + 6) {
            flip_byte(entry.path(), 24 + 13 + 1 + 5);
        }
    }
    EXPECT_THROW((void)eng.get("k"), ConsistencyError);
    EXPECT_GT(eng.stats().crc_read_failures, 0u);
}

}  // namespace
}  // namespace blobseer::engine
