#!/usr/bin/env bash
# End-to-end smoke test of the TCP deployment path: boot blobseer_serverd
# on an ephemeral loopback port, drive a create/write/append/read/history
# flow through `blobseer_cli --connect`, and assert on the output.
#
# Usage: e2e_tcp.sh <path-to-blobseer_serverd> <path-to-blobseer_cli>
set -u

SERVERD=$1
CLI=$2
WORK=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

"$SERVERD" --port 0 --bind 127.0.0.1 --data-providers 4 \
    --meta-providers 2 --replication 2 >"$WORK/serverd.log" 2>&1 &
SERVER_PID=$!

# Wait for the daemon to report its chosen port.
PORT=""
for _ in $(seq 1 50); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        "$WORK/serverd.log")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "FAIL: serverd died during startup"
        cat "$WORK/serverd.log"
        exit 1
    }
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "FAIL: serverd never reported a port"
    cat "$WORK/serverd.log"
    exit 1
fi

"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli.log" 2>&1 <<'EOF'
create 65536
write 1 0 200000 7
append 1 131072 8
read 1 1 0 200000 7
stat 1
history 1
quit
EOF
CLI_RC=$?

echo "--- cli output ---"
cat "$WORK/cli.log"

fail() {
    echo "FAIL: $1"
    exit 1
}

[ "$CLI_RC" -eq 0 ] || fail "cli exited with $CLI_RC"
grep -q "connected to 127.0.0.1:$PORT" "$WORK/cli.log" ||
    fail "no connection banner"
grep -q "blob 1 created" "$WORK/cli.log" || fail "create failed"
grep -q -- "-> version 1" "$WORK/cli.log" || fail "write failed"
grep -q -- "-> version 2" "$WORK/cli.log" || fail "append failed"
grep -q "tag matches" "$WORK/cli.log" || fail "readback mismatch"
grep -q "v2: size 331072, status published" "$WORK/cli.log" ||
    fail "stat mismatch"
grep -c "published" "$WORK/cli.log" >/dev/null || fail "history missing"
grep -q "TAG MISMATCH" "$WORK/cli.log" && fail "corrupted readback"
grep -q "error:" "$WORK/cli.log" && fail "command error in output"

echo "PASS"
exit 0
