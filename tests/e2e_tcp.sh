#!/usr/bin/env bash
# End-to-end smoke test of the TCP deployment path: boot blobseer_serverd
# on an ephemeral loopback port, drive a create/write/append/read/history
# flow through `blobseer_cli --connect`, and assert on the output. A
# second phase starts a log-store daemon with a 2-shard version-manager
# topology, writes blobs on both shards, clones across them, kills and
# restarts the daemon on the same --disk-root, and verifies every blob
# reads back byte-identical (log-engine restart recovery incl. the
# per-shard version-manager journals). A third phase runs a
# content-addressed log-store daemon (--cas): identical data written
# into two blobs stores one physical copy, deleting one blob releases
# only its references, and after a kill/restart the survivor still
# reads back byte-identical while a final delete reclaims the store.
# A fourth phase boots a manager with zero in-process providers plus
# three standalone provider daemons (--provider), SIGKILLs one mid-
# workload, and asserts heartbeat-driven death detection, repair, and
# rejoin rebalancing — with byte-identical readbacks throughout.
#
# Usage: e2e_tcp.sh <path-to-blobseer_serverd> <path-to-blobseer_cli>
set -u

SERVERD=$1
CLI=$2
WORK=$(mktemp -d)
SERVER_PID=""
EXTRA_PIDS=""
trap 'kill $SERVER_PID $EXTRA_PIDS 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $1"
    exit 1
}

# Start serverd with the given extra args; sets SERVER_PID and PORT.
start_serverd() {
    local log=$1
    shift
    "$SERVERD" --port 0 --bind 127.0.0.1 "$@" >"$log" 2>&1 &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
        PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$log")
        [ -n "$PORT" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || {
            echo "FAIL: serverd died during startup"
            cat "$log"
            exit 1
        }
        sleep 0.1
    done
    if [ -z "$PORT" ]; then
        echo "FAIL: serverd never reported a port"
        cat "$log"
        exit 1
    fi
}

stop_serverd() {
    kill -TERM "$SERVER_PID" 2>/dev/null
    for _ in $(seq 1 100); do
        kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; return 0; }
        sleep 0.1
    done
    fail "serverd did not shut down"
}

start_serverd "$WORK/serverd.log" --data-providers 4 --meta-providers 2 \
    --replication 2

"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli.log" 2>&1 <<'EOF'
create 65536
write 1 0 200000 7
append 1 131072 8
read 1 1 0 200000 7
stat 1
history 1
quit
EOF
CLI_RC=$?

echo "--- cli output ---"
cat "$WORK/cli.log"

[ "$CLI_RC" -eq 0 ] || fail "cli exited with $CLI_RC"
grep -q "connected to 127.0.0.1:$PORT" "$WORK/cli.log" ||
    fail "no connection banner"
grep -q "blob 1 created" "$WORK/cli.log" || fail "create failed"
grep -q -- "-> version 1" "$WORK/cli.log" || fail "write failed"
grep -q -- "-> version 2" "$WORK/cli.log" || fail "append failed"
grep -q "tag matches" "$WORK/cli.log" || fail "readback mismatch"
grep -q "v2: size 331072, status published" "$WORK/cli.log" ||
    fail "stat mismatch"
grep -c "published" "$WORK/cli.log" >/dev/null || fail "history missing"
grep -q "TAG MISMATCH" "$WORK/cli.log" && fail "corrupted readback"
grep -q "error:" "$WORK/cli.log" && fail "command error in output"

stop_serverd

# --- phase 2: 2-shard VM topology + log-store persistence across restart ----

STORE_ROOT="$WORK/log-root"
SHARDED="--data-providers 4 --meta-providers 2 --replication 2 \
    --store log --disk-root $STORE_ROOT --vm-shards 2"

# shellcheck disable=SC2086
start_serverd "$WORK/serverd2.log" $SHARDED

# Create 6 blobs: the client library spreads creations over both shards
# by consistent hashing, so (deterministically, given the daemon's
# minted client id) both shards end up owning blobs; vm-status asserts
# that below rather than trusting luck.
"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli2a.log" 2>&1 <<'EOF'
create 65536
create 65536
create 65536
create 65536
create 65536
create 65536
vm-status
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli2a.log"; fail "create session failed"; }
mapfile -t BLOBS < <(sed -n 's/^blob \([0-9]*\) created.*/\1/p' \
    "$WORK/cli2a.log")
[ "${#BLOBS[@]}" -eq 6 ] || { cat "$WORK/cli2a.log"; fail "expected 6 blobs"; }
grep -q "shard 0 .*: blobs [1-9]" "$WORK/cli2a.log" ||
    { cat "$WORK/cli2a.log"; fail "shard 0 owns no blobs"; }
grep -q "shard 1 .*: blobs [1-9]" "$WORK/cli2a.log" ||
    { cat "$WORK/cli2a.log"; fail "shard 1 owns no blobs"; }

# Write distinct tagged patterns to the first two blobs (one expected on
# each shard), read them back, and clone blob A — the clone lands on a
# shard picked by the same routing, exercising the cross-shard
# get_version + pin + clone_from protocol over the wire.
A=${BLOBS[0]}
B=${BLOBS[1]}
"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli2b.log" 2>&1 <<EOF
write $A 0 200000 7
write $B 0 131072 8
read $A 1 0 200000 7
read $B 1 0 131072 8
clone $A latest
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli2b.log"; fail "pre-restart cli failed"; }
echo "--- pre-restart cli output (2-shard) ---"
cat "$WORK/cli2b.log"
[ "$(grep -c "tag matches" "$WORK/cli2b.log")" -eq 2 ] || {
    fail "pre-restart readback mismatch"
}
CLONE=$(sed -n 's/^clone -> blob \([0-9]*\).*/\1/p' "$WORK/cli2b.log")
[ -n "$CLONE" ] || fail "clone did not report a blob id"
FNV_BEFORE=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli2b.log" | head -1)
[ -n "$FNV_BEFORE" ] || fail "no pre-restart fnv recorded"

# Kill the daemon and restart it on the same root: chunks, metadata and
# BOTH per-shard version-manager journals must all come back from the
# log engines — including the clone's cross-shard origin alias.
stop_serverd
# shellcheck disable=SC2086
start_serverd "$WORK/serverd3.log" $SHARDED

# Also write after the restart: the new daemon re-mints the same client
# ids, so this exercises the per-boot uid epoch (without it the write's
# chunks would collide with pre-restart uids and read back stale bytes).
"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli3.log" 2>&1 <<EOF
read $A 1 0 200000 7
read $B 1 0 131072 8
read $CLONE 0 0 200000
stat $A
write $A 0 200000 9
read $A 2 0 200000 9
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli3.log"; fail "post-restart cli failed"; }

echo "--- post-restart cli output ---"
cat "$WORK/cli3.log"

[ "$(grep -c "tag matches" "$WORK/cli3.log")" -eq 3 ] ||
    fail "post-restart readbacks not byte-identical to their patterns"
FNV_AFTER=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli3.log" | head -1)
[ "$FNV_BEFORE" = "$FNV_AFTER" ] ||
    fail "post-restart bytes differ (fnv $FNV_BEFORE != $FNV_AFTER)"
# The clone's version 0 (an alias into A's v1 tree, restored from the
# destination shard's journal) must read the exact pre-restart bytes.
FNV_CLONE=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli3.log" |
    sed -n 3p)
[ "$FNV_BEFORE" = "$FNV_CLONE" ] ||
    fail "clone readback differs from origin (fnv $FNV_BEFORE != $FNV_CLONE)"
grep -q "v1: size 200000, status published" "$WORK/cli3.log" ||
    fail "post-restart stat mismatch"
grep -q -- "-> version 2" "$WORK/cli3.log" ||
    fail "post-restart write failed"
grep -q "TAG MISMATCH" "$WORK/cli3.log" && fail "corrupted readback"
grep -q "error:" "$WORK/cli3.log" && fail "command error after restart"

stop_serverd

# --- phase 3: content-addressed dedup + refcounted GC across restart --------

CAS_ROOT="$WORK/cas-root"
CASARGS="--data-providers 4 --meta-providers 2 --replication 1 \
    --store log --disk-root $CAS_ROOT --cas"

# shellcheck disable=SC2086
start_serverd "$WORK/serverd4.log" $CASARGS

# Two blobs, byte-identical payloads: blob D's write keys its pattern
# off blob C (trailing pattern-blob argument), so the daemon sees the
# same 4 chunks twice. The second write must check-hit on every chunk
# and transfer nothing.
"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli4.log" 2>&1 <<'EOF'
create 65536
create 65536
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli4.log"; fail "cas create session failed"; }
mapfile -t CASBLOBS < <(sed -n 's/^blob \([0-9]*\) created.*/\1/p' \
    "$WORK/cli4.log")
[ "${#CASBLOBS[@]}" -eq 2 ] || { cat "$WORK/cli4.log"; fail "expected 2 cas blobs"; }
C=${CASBLOBS[0]}
D=${CASBLOBS[1]}

"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli5.log" 2>&1 <<EOF
write $C 0 262144 5
write $D 0 262144 5 $C
read $C 1 0 262144 5
read $D 1 0 262144
dedup-stats
delete $C
dedup-stats
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli5.log"; fail "cas write session failed"; }
echo "--- cas dedup cli output ---"
cat "$WORK/cli5.log"

grep -q "tag matches" "$WORK/cli5.log" || fail "cas readback mismatch"
FNV_C=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli5.log" | sed -n 1p)
FNV_D=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli5.log" | sed -n 2p)
[ -n "$FNV_C" ] && [ "$FNV_C" = "$FNV_D" ] ||
    fail "the two cas blobs are not byte-identical ($FNV_C != $FNV_D)"
# One physical copy: 8 logical chunks uploaded, 4 check-hits, exactly
# one blob's worth of bytes on the wire.
grep -q "client cas: 8 chunks, 4 dedup hits, 262144 bytes skipped, \
262144 bytes sent, 0 stream pushes" "$WORK/cli5.log" ||
    fail "second write was not fully deduplicated"
grep -q "deleted blob $C: 1 versions, released 4 chunk refs" \
    "$WORK/cli5.log" || fail "delete did not release blob C's references"
# After the delete the shared chunks drop to refcount 1 (blob D): the
# store must hold exactly one copy, nothing reclaimed yet.
grep -q "stored: *4 chunks, 262144 bytes" "$WORK/cli5.log" ||
    fail "delete of one sharer changed the physical copy count"
grep -q "error:" "$WORK/cli5.log" && fail "command error in cas phase"

# Kill and restart on the same root: chunks, refcounts and metadata all
# come back from the log engines. The survivor must read byte-identical
# and GC must not have over-collected the shared chunks.
stop_serverd
# shellcheck disable=SC2086
start_serverd "$WORK/serverd5.log" $CASARGS

"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli6.log" 2>&1 <<EOF
read $D 1 0 262144
dedup-stats
delete $D
dedup-stats
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli6.log"; fail "post-restart cas cli failed"; }
echo "--- post-restart cas output ---"
cat "$WORK/cli6.log"

FNV_D2=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli6.log" | sed -n 1p)
[ "$FNV_D" = "$FNV_D2" ] ||
    fail "cas survivor differs after restart (fnv $FNV_D != $FNV_D2)"
grep -q "stored: *4 chunks, 262144 bytes" "$WORK/cli6.log" ||
    fail "restart lost or over-collected the surviving copy"
# Deleting the survivor drops the last references: the store empties and
# the reclaim counters account for every byte.
grep -q "deleted blob $D: 1 versions, released 4 chunk refs" \
    "$WORK/cli6.log" || fail "delete did not release blob D's references"
grep -q "stored: *0 chunks, 0 bytes" "$WORK/cli6.log" ||
    fail "deleting the last reference did not empty the store"
grep -q "4 chunks / 262144 bytes reclaimed" "$WORK/cli6.log" ||
    fail "gc reclaim counters did not account for the deleted chunks"
grep -q "error:" "$WORK/cli6.log" && fail "command error after cas restart"

# --- phase 4: provider daemons, heartbeat death, repair, rejoin -------------

# Manager with no in-process data providers: the data plane is three
# standalone provider daemons that join over the wire, heartbeat, and
# get repaired by the manager's background worker when one dies.
start_serverd "$WORK/serverd6.log" --data-providers 0 --meta-providers 2 \
    --replication 3 --heartbeat-timeout-ms 1500 --repair-interval-ms 200
MGR_PORT=$PORT

# Start a provider daemon joined to the manager; sets DP_PID and DP_NODE
# (the node id the manager minted — repair-status rows key off it).
start_provider() {
    local log=$1 name=$2
    "$SERVERD" --provider --join "127.0.0.1:$MGR_PORT" --name "$name" \
        --bind 127.0.0.1 --port 0 --beat-interval-ms 200 \
        >"$log" 2>&1 &
    DP_PID=$!
    EXTRA_PIDS="$EXTRA_PIDS $DP_PID"
    DP_NODE=""
    for _ in $(seq 1 100); do
        DP_NODE=$(sed -n 's/.*node \([0-9]*\) (.*listening on.*/\1/p' \
            "$log")
        [ -n "$DP_NODE" ] && break
        kill -0 "$DP_PID" 2>/dev/null || {
            echo "FAIL: provider $name died during startup"
            cat "$log"
            exit 1
        }
        sleep 0.1
    done
    if [ -z "$DP_NODE" ]; then
        echo "FAIL: provider $name never joined"
        cat "$log"
        exit 1
    fi
}

start_provider "$WORK/dpA.log" dpA
DPA_PID=$DP_PID
DPA_NODE=$DP_NODE
start_provider "$WORK/dpB.log" dpB
DPB_PID=$DP_PID
DPB_NODE=$DP_NODE
start_provider "$WORK/dpC.log" dpC
DPC_NODE=$DP_NODE

# Poll `repair-status` until every grep pattern matches its output.
poll_repair_status() {
    local tries=$1
    shift
    local ok pat
    for _ in $(seq 1 "$tries"); do
        "$CLI" --connect "127.0.0.1:$MGR_PORT" >"$WORK/rs.log" 2>&1 <<'EOF'
repair-status
quit
EOF
        ok=1
        for pat in "$@"; do
            grep -q -- "$pat" "$WORK/rs.log" || { ok=0; break; }
        done
        [ "$ok" -eq 1 ] && return 0
        sleep 0.2
    done
    echo "FAIL: repair-status never converged to: $*"
    cat "$WORK/rs.log"
    exit 1
}

poll_repair_status 50 \
    "provider $DPA_NODE: alive" \
    "provider $DPB_NODE: alive" \
    "provider $DPC_NODE: alive"

# Replication-3 write: with three providers every chunk lands on all of
# them, so losing any single daemon must stay invisible to readers.
"$CLI" --connect "127.0.0.1:$MGR_PORT" >"$WORK/cli7.log" 2>&1 <<'EOF'
create 65536
write 1 0 200000 7
read 1 1 0 200000 7
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli7.log"; fail "repl-3 write session failed"; }
echo "--- repl-3 write output ---"
cat "$WORK/cli7.log"
grep -q "blob 1 created" "$WORK/cli7.log" || fail "repl-3 create failed"
grep -q "tag matches" "$WORK/cli7.log" || fail "repl-3 readback mismatch"
FNV_V1=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli7.log" | head -1)
[ -n "$FNV_V1" ] || fail "no repl-3 fnv recorded"

# SIGKILL provider A: no goodbye, and its RAM store dies with it. The
# manager must notice via missed heartbeats; readers must not.
kill -9 "$DPA_PID"

# Mid-outage: v1 still reads byte-identical off the survivors, and a
# new write fails over to the two live providers.
"$CLI" --connect "127.0.0.1:$MGR_PORT" >"$WORK/cli8.log" 2>&1 <<'EOF'
read 1 1 0 200000 7
write 1 0 200000 9
read 1 2 0 200000 9
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli8.log"; fail "mid-outage session failed"; }
echo "--- mid-outage output ---"
cat "$WORK/cli8.log"
[ "$(grep -c "tag matches" "$WORK/cli8.log")" -eq 2 ] ||
    fail "mid-outage readback mismatch"
FNV_V1_OUTAGE=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli8.log" |
    sed -n 1p)
[ "$FNV_V1" = "$FNV_V1_OUTAGE" ] ||
    fail "mid-outage v1 bytes differ (fnv $FNV_V1 != $FNV_V1_OUTAGE)"
grep -q "error:" "$WORK/cli8.log" && fail "client-visible error mid-outage"

# The missed-beat sweep must declare A dead (timeout 1500ms).
poll_repair_status 50 "provider $DPA_NODE: dead"

# Rejoin under the same name: the daemon reclaims its node id, announces
# an empty inventory (the kill wiped its RAM store), and the manager
# re-replicates every under-replicated chunk onto it — v1's chunks lost
# with the store AND v2's chunks written while it was away. Converged
# means: backlog drained, nothing under-replicated, and the rejoined
# provider actually holds chunks again.
start_provider "$WORK/dpA2.log" dpA
[ "$DP_NODE" = "$DPA_NODE" ] ||
    fail "rejoin minted a new node id ($DP_NODE != $DPA_NODE)"
poll_repair_status 100 \
    "provider $DPA_NODE: alive" \
    "repair: backlog 0 " \
    "under-replicated 0" \
    "provider $DPA_NODE: alive.* [1-9][0-9]* chunks"

echo "--- post-rejoin repair gauges ---"
cat "$WORK/rs.log"
if [ -n "${REPAIR_GAUGE_OUT:-}" ]; then
    cp "$WORK/rs.log" "$REPAIR_GAUGE_OUT"
fi

# The repaired copies must be real: kill provider B (again with data
# loss) and read both versions back — every chunk now needs the copies
# the repair worker pushed to the rejoined A.
kill -9 "$DPB_PID"
"$CLI" --connect "127.0.0.1:$MGR_PORT" >"$WORK/cli9.log" 2>&1 <<'EOF'
read 1 1 0 200000 7
read 1 2 0 200000 9
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli9.log"; fail "post-repair session failed"; }
echo "--- post-repair readback output ---"
cat "$WORK/cli9.log"
[ "$(grep -c "tag matches" "$WORK/cli9.log")" -eq 2 ] ||
    fail "post-repair readback mismatch"
FNV_V1_FINAL=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli9.log" |
    sed -n 1p)
[ "$FNV_V1" = "$FNV_V1_FINAL" ] ||
    fail "post-repair v1 bytes differ (fnv $FNV_V1 != $FNV_V1_FINAL)"
grep -q "error:" "$WORK/cli9.log" && fail "client-visible error post-repair"

stop_serverd

# --- phase 5: observability — /metrics scrape + end-to-end trace tree -------

start_serverd "$WORK/serverd7.log" --data-providers 4 --meta-providers 2 \
    --replication 2 --metrics-port 0 --log-level info

METRICS_PORT=$(sed -n \
    's|.*metrics on http://127\.0\.0\.1:\([0-9]*\)/metrics.*|\1|p' \
    "$WORK/serverd7.log")
[ -n "$METRICS_PORT" ] || {
    cat "$WORK/serverd7.log"
    fail "serverd never reported a metrics port"
}

# GET a path from the metrics endpoint; curl when available, raw
# /dev/tcp otherwise (HTTP/1.0 + Connection: close reads to EOF).
http_get() {
    local path=$1 out=$2
    if command -v curl >/dev/null 2>&1; then
        curl -sf --max-time 10 "http://127.0.0.1:$METRICS_PORT$path" \
            >"$out"
    else
        exec 9<>"/dev/tcp/127.0.0.1/$METRICS_PORT" || return 1
        printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&9
        sed -e '1,/^\r*$/d' <&9 >"$out"
        exec 9<&- 9>&-
    fi
}

# Drive a traced session through a FIFO: the shell prints the trace id
# after each traced op, the harness reads it back mid-session and asks
# the same session for the span tree (client halves live in the CLI
# process, server halves come over kTraceDump).
mkfifo "$WORK/cli_in"
"$CLI" --connect "127.0.0.1:$PORT" --trace \
    >"$WORK/cli10.log" 2>&1 <"$WORK/cli_in" &
CLI_PID=$!
exec 3>"$WORK/cli_in"
echo "create 65536" >&3
echo "write 1 0 200000 7" >&3
echo "read 1 1 0 200000 7" >&3
TRACE_ID=""
for _ in $(seq 1 100); do
    TRACE_ID=$(sed -n 's/^trace id \([0-9a-f]*\)$/\1/p' "$WORK/cli10.log" |
        head -1)
    [ -n "$TRACE_ID" ] && break
    kill -0 "$CLI_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$TRACE_ID" ]; then
    exec 3>&-
    cat "$WORK/cli10.log"
    fail "traced write never printed a trace id"
fi
echo "trace $TRACE_ID" >&3
echo "quit" >&3
exec 3>&-
wait "$CLI_PID" || { cat "$WORK/cli10.log"; fail "traced cli failed"; }

echo "--- traced cli output ---"
cat "$WORK/cli10.log"
grep -q "tag matches" "$WORK/cli10.log" || fail "traced readback mismatch"
# The span tree: a rooted client write span whose children include the
# chunk path, each child carrying both halves (client round-trip +
# server handle time) merged under one trace id.
grep -q "write  *client\[node" "$WORK/cli10.log" ||
    fail "span tree has no client write root"
grep -q "chunk-put .*client\[node .*server\[node" "$WORK/cli10.log" ||
    fail "span tree missing a merged chunk-put span"
grep -q "assign .*server\[node" "$WORK/cli10.log" ||
    fail "span tree missing the version-manager assign span"
grep -q "error:" "$WORK/cli10.log" && fail "command error in traced phase"

# Scrape after the workload so the per-op histograms are non-empty.
http_get /metrics "$WORK/metrics.scrape" || fail "GET /metrics failed"
echo "--- /metrics scrape: $(wc -l <"$WORK/metrics.scrape") series lines ---"
assert_series() {
    grep -q "$1" "$WORK/metrics.scrape" || {
        cat "$WORK/metrics.scrape"
        fail "scrape missing series: $1"
    }
}
assert_series '^rpc_server_requests_total{op="chunk-put"} [1-9]'
assert_series '^rpc_server_latency_us_bucket{op="chunk-put",le="+Inf"} [1-9]'
assert_series '^rpc_server_latency_us_count{op="get-version"} [1-9]'
assert_series '^vm_publishes_total{shard="0"} [1-9]'
assert_series '^pm_placements_total [1-9]'
assert_series '^provider_chunks_stored{'
assert_series '^trace_spans_recorded_total [1-9]'
# Unknown paths must 404, not crash the daemon.
http_get /nope "$WORK/metrics.404" 2>/dev/null
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died on a 404 request"

# CI artifacts: the raw scrape and the traced span tree.
if [ -n "${METRICS_SCRAPE_OUT:-}" ]; then
    cp "$WORK/metrics.scrape" "$METRICS_SCRAPE_OUT"
fi
if [ -n "${TRACE_DUMP_OUT:-}" ]; then
    cp "$WORK/cli10.log" "$TRACE_DUMP_OUT"
fi

stop_serverd

# --- phase 6: compressed tiering — three-tier store + disposable file cache

# A 1 MiB RAM cache against a 16 MiB working set: >10x RAM, so almost
# every re-read must be served by the compressed file cache (or, after
# we delete it, by the log engine) — never incorrectly.
start_serverd "$WORK/serverd8.log" --data-providers 2 --meta-providers 1 \
    --store three-tier-log --disk-root "$WORK/root6" \
    --file-cache-dir "$WORK/fc6" --file-cache-mb 32 --ram-cache-mb 1 \
    --compress-cold

"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli11.log" 2>&1 <<'EOF'
create 65536
write 1 0 16777216 5
read 1 1 0 16777216 5
read 1 1 0 16777216 5
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli11.log"; fail "three-tier session failed"; }
echo "--- three-tier cli output ---"
cat "$WORK/cli11.log"
[ "$(grep -c "tag matches" "$WORK/cli11.log")" -eq 2 ] ||
    fail "three-tier readback not byte-identical"
FNV_TIER=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli11.log" | head -1)
[ -n "$FNV_TIER" ] || fail "no three-tier fnv recorded"
grep -q "error:" "$WORK/cli11.log" && fail "client-visible three-tier error"

# The RAM tier cannot hold the set, so demotions must have reached disk.
find "$WORK/fc6" -name 'cache-*.dat' 2>/dev/null | grep -q . ||
    fail "file cache never spilled to disk"

# Delete the cache directory out from under the live daemon: the cache
# is disposable by contract, so the only acceptable outcome is a slower
# byte-identical re-read (served by the engine and re-promoted), with
# no client-visible error and no daemon crash.
rm -rf "$WORK/fc6"
"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli12.log" 2>&1 <<'EOF'
read 1 1 0 16777216 5
read 1 1 0 16777216 5
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli12.log"; fail "post-deletion session failed"; }
echo "--- post-cache-deletion cli output ---"
cat "$WORK/cli12.log"
[ "$(grep -c "tag matches" "$WORK/cli12.log")" -eq 2 ] ||
    fail "post-deletion readback not byte-identical"
FNV_TIER_AFTER=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli12.log" |
    head -1)
[ "$FNV_TIER" = "$FNV_TIER_AFTER" ] ||
    fail "bytes differ after cache deletion (fnv $FNV_TIER != $FNV_TIER_AFTER)"
grep -q "error:" "$WORK/cli12.log" && fail "client-visible error after deletion"
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died after cache deletion"

stop_serverd

# --- phase 7: epoll reactor — connection burst on fixed io threads ----------

# Two event-loop threads and a 2 s idle timeout. A 256-connection burst
# of raw idle sockets parks on the reactor while a concurrent cli
# session streams a full read through the crowd; the idle sweep then
# reaps the burst, reads stay byte-identical, and the daemon shuts
# down cleanly.
start_serverd "$WORK/serverd9.log" --data-providers 2 --meta-providers 1 \
    --io-threads 2 --idle-timeout-ms 2000

"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli13.log" 2>&1 <<'EOF'
create 65536
write 1 0 4194304 6
read 1 1 0 4194304 6
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli13.log"; fail "reactor write session failed"; }
echo "--- reactor cli output ---"
cat "$WORK/cli13.log"
grep -q "tag matches" "$WORK/cli13.log" || fail "reactor readback mismatch"
FNV_REACTOR=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli13.log" | head -1)
[ -n "$FNV_REACTOR" ] || fail "no reactor fnv recorded"

# 256 idle connections, each held open by a sleeping subshell.
BURST_PIDS=""
for _ in $(seq 1 256); do
    ( exec 3<>"/dev/tcp/127.0.0.1/$PORT" && sleep 8 ) 2>/dev/null &
    BURST_PIDS="$BURST_PIDS $!"
done
sleep 0.5

# A full read runs THROUGH the parked burst on the same two loops.
"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli14.log" 2>&1 <<'EOF'
read 1 1 0 4194304 6
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli14.log"; fail "read under burst failed"; }
grep -q "tag matches" "$WORK/cli14.log" || fail "burst readback mismatch"

# The idle timeout reaps the burst underneath the sleeping holders
# while the daemon stays up.
sleep 3
kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died under connection burst"
kill $BURST_PIDS 2>/dev/null
wait $BURST_PIDS 2>/dev/null

"$CLI" --connect "127.0.0.1:$PORT" >"$WORK/cli15.log" 2>&1 <<'EOF'
read 1 1 0 4194304 6
quit
EOF
[ $? -eq 0 ] || { cat "$WORK/cli15.log"; fail "post-burst session failed"; }
echo "--- post-burst cli output ---"
cat "$WORK/cli15.log"
grep -q "tag matches" "$WORK/cli15.log" || fail "post-burst readback mismatch"
FNV_AFTER_BURST=$(sed -n 's/.*fnv=\([0-9a-f]*\).*/\1/p' "$WORK/cli15.log" |
    head -1)
[ "$FNV_REACTOR" = "$FNV_AFTER_BURST" ] ||
    fail "bytes differ after burst (fnv $FNV_REACTOR != $FNV_AFTER_BURST)"
grep -q "error:" "$WORK/cli15.log" && fail "client-visible error after burst"

stop_serverd

echo "PASS"
exit 0
