/// \file test_concurrency.cpp
/// \brief Real multi-threaded concurrency tests: the paper's central
///        claims — readers never block on writers, concurrent writers
///        only serialize at version assignment, snapshots are always
///        consistent — exercised with actual threads on the full stack.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "testing_util.hpp"

namespace blobseer::core {
namespace {

constexpr std::uint64_t kChunk = 64;

core::ClusterConfig concurrent_config() {
    auto cfg = blobseer::testing::fast_config();
    cfg.data_providers = 6;
    cfg.metadata_providers = 3;
    cfg.client_io_threads = 2;
    return cfg;
}

TEST(Concurrency, DisjointWritersAllLand) {
    Cluster cluster(concurrent_config());
    auto owner = cluster.make_client();
    Blob blob = owner->create(kChunk);

    const std::size_t writers = 8;
    const std::uint64_t region = 4 * kChunk;
    // Pre-size the blob so writers hit disjoint interior regions.
    blob.write(0, Buffer(writers * region, 0x00));

    std::vector<std::thread> threads;
    std::vector<std::unique_ptr<BlobSeerClient>> clients;
    for (std::size_t w = 0; w < writers; ++w) {
        clients.push_back(cluster.make_client());
    }
    for (std::size_t w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
            const Buffer data =
                make_pattern(blob.id(), 1000 + w, w * region, region);
            clients[w]->write(blob.id(), w * region, data);
        });
    }
    for (auto& t : threads) {
        t.join();
    }

    // All writes landed as versions 2..writers+1; the final snapshot has
    // every region's data.
    const auto vi = owner->stat(blob.id());
    EXPECT_EQ(vi.version, writers + 1);
    Buffer out(writers * region);
    owner->read(blob.id(), vi.version, 0, out);
    for (std::size_t w = 0; w < writers; ++w) {
        EXPECT_TRUE(blobseer::testing::matches(
            blob.id(), 1000 + w, w * region,
            ConstBytes(out).subspan(w * region, region)))
            << "writer " << w << " data missing";
    }
}

TEST(Concurrency, ConcurrentAppendsAreAtomicBlocks) {
    Cluster cluster(concurrent_config());
    auto owner = cluster.make_client();
    Blob blob = owner->create(kChunk);

    const std::size_t appenders = 6;
    const int per_thread = 5;
    const std::uint64_t block = 2 * kChunk;  // aligned appends

    std::vector<std::unique_ptr<BlobSeerClient>> clients;
    for (std::size_t a = 0; a < appenders; ++a) {
        clients.push_back(cluster.make_client());
    }
    std::vector<std::thread> threads;
    for (std::size_t a = 0; a < appenders; ++a) {
        threads.emplace_back([&, a] {
            for (int i = 0; i < per_thread; ++i) {
                // Every byte of the block carries the appender's tag.
                Buffer data(block,
                            static_cast<std::uint8_t>(1 + a));
                clients[a]->append(blob.id(), data);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }

    const auto vi = owner->stat(blob.id());
    EXPECT_EQ(vi.version, appenders * per_thread);
    EXPECT_EQ(vi.size, appenders * per_thread * block);

    Buffer out(vi.size);
    owner->read(blob.id(), vi.version, 0, out);
    // The blob must be a sequence of whole single-tag blocks with the
    // right multiplicity per tag — appends are atomic and never torn.
    std::map<std::uint8_t, int> blocks_per_tag;
    for (std::uint64_t b = 0; b < out.size(); b += block) {
        const std::uint8_t tag = out[b];
        ASSERT_GE(tag, 1u);
        ASSERT_LE(tag, appenders);
        for (std::uint64_t i = 0; i < block; ++i) {
            ASSERT_EQ(out[b + i], tag) << "torn append at byte " << b + i;
        }
        ++blocks_per_tag[tag];
    }
    for (std::size_t a = 0; a < appenders; ++a) {
        EXPECT_EQ(blocks_per_tag[static_cast<std::uint8_t>(1 + a)],
                  per_thread);
    }
}

TEST(Concurrency, ReadersSeeOnlyCompleteSnapshots) {
    Cluster cluster(concurrent_config());
    auto owner = cluster.make_client();
    Blob blob = owner->create(kChunk);
    const std::uint64_t region = 8 * kChunk;
    blob.write(0, Buffer(region, 0x01));  // v1: all ones... tag=1

    std::atomic<bool> stop{false};
    std::atomic<int> reads_done{0};

    // Writers repeatedly overwrite the WHOLE region with a single tag
    // value; a consistent snapshot therefore contains one tag only.
    std::vector<std::thread> threads;
    for (int w = 0; w < 3; ++w) {
        threads.emplace_back([&, w] {
            auto client = cluster.make_client();
            for (int i = 0; i < 10; ++i) {
                const auto tag =
                    static_cast<std::uint8_t>(10 + w * 10 + (i % 10));
                client->write(blob.id(), 0, Buffer(region, tag));
            }
        });
    }
    for (int r = 0; r < 3; ++r) {
        threads.emplace_back([&] {
            auto client = cluster.make_client();
            Buffer out(region);
            while (!stop.load()) {
                client->read(blob.id(), kLatestVersion, 0, out);
                const std::uint8_t first = out[0];
                for (std::uint64_t i = 0; i < region; ++i) {
                    ASSERT_EQ(out[i], first)
                        << "torn snapshot at byte " << i;
                }
                reads_done.fetch_add(1);
            }
        });
    }
    // Let writers finish, then stop the readers.
    for (int w = 0; w < 3; ++w) {
        threads[w].join();
    }
    stop.store(true);
    for (std::size_t i = 3; i < threads.size(); ++i) {
        threads[i].join();
    }
    EXPECT_GT(reads_done.load(), 0);
    EXPECT_EQ(owner->stat(blob.id()).version, 31u);
}

TEST(Concurrency, OldSnapshotsStableUnderWrites) {
    Cluster cluster(concurrent_config());
    auto owner = cluster.make_client();
    Blob blob = owner->create(kChunk);
    const Buffer v1 = make_pattern(blob.id(), 1, 0, 4 * kChunk);
    blob.write(0, v1);

    std::thread writer([&] {
        auto client = cluster.make_client();
        for (int i = 0; i < 20; ++i) {
            client->write(blob.id(), 0,
                          make_pattern(blob.id(), 100 + i, 0, 4 * kChunk));
        }
    });
    auto reader = cluster.make_client();
    Buffer out(4 * kChunk);
    for (int i = 0; i < 20; ++i) {
        reader->read(blob.id(), 1, 0, out);
        ASSERT_EQ(out, v1) << "version 1 changed under concurrent writes";
    }
    writer.join();
}

TEST(Concurrency, MixedAppendersAndWritersConverge) {
    Cluster cluster(concurrent_config());
    auto owner = cluster.make_client();
    Blob blob = owner->create(kChunk);
    blob.write(0, Buffer(2 * kChunk, 0xEE));

    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            auto client = cluster.make_client();
            for (int i = 0; i < 8; ++i) {
                try {
                    if (t % 2 == 0) {
                        client->append(blob.id(), Buffer(kChunk, 0x11));
                    } else {
                        client->write(blob.id(), 0, Buffer(kChunk, 0x22));
                    }
                } catch (const Error&) {
                    failures.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(failures.load(), 0);
    const auto vi = owner->stat(blob.id());
    EXPECT_EQ(vi.version, 33u);
    EXPECT_EQ(vi.size, 2 * kChunk + 16 * kChunk);
    // Full read of the final snapshot works and is the right size.
    Buffer out(vi.size);
    EXPECT_EQ(owner->read(blob.id(), vi.version, 0, out), vi.size);
}

TEST(Concurrency, ManyBlobsInParallel) {
    Cluster cluster(concurrent_config());
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&, t] {
            auto client = cluster.make_client();
            Blob blob = client->create(kChunk);
            const Buffer data = make_pattern(blob.id(), t, 0, 3 * kChunk);
            blob.append(data);
            Buffer out(data.size());
            blob.read(1, 0, out);
            ASSERT_EQ(out, data);
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(cluster.version_manager().blob_count(), 6u);
}

}  // namespace
}  // namespace blobseer::core
