/// \file test_rpc_transport.cpp
/// \brief Transport conformance suite, run against both SimTransport and
///        a TCP loopback server: every service RPC round-trips (sync and
///        async), responses complete out of order without head-of-line
///        blocking, server exceptions resurface as the right client
///        exception, and fault injection (Sim side) / connection loss
///        (TCP side) fails every in-flight future with RpcError.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "core/cluster.hpp"
#include "rpc/messages.hpp"
#include "rpc/protocol.hpp"
#include "rpc/service_client.hpp"
#include "rpc/sim_transport.hpp"
#include "rpc/tcp_transport.hpp"
#include "testing_util.hpp"

namespace blobseer::rpc {
namespace {

enum class Mode { kSim, kTcp };

class TransportConformance : public ::testing::TestWithParam<Mode> {
  protected:
    void SetUp() override {
        cluster_ =
            std::make_unique<core::Cluster>(testing::fast_config());
        if (GetParam() == Mode::kTcp) {
            server_ = std::make_unique<TcpRpcServer>(
                cluster_->dispatcher(), 0, "127.0.0.1");
            transport_ = std::make_unique<TcpTransport>("127.0.0.1",
                                                        server_->port());
        } else {
            const NodeId self =
                cluster_->network().add_node("conformance-client");
            transport_ = std::make_unique<SimTransport>(
                cluster_->network(), self, cluster_->dispatcher());
        }
        svc_ = std::make_unique<ServiceClient>(
            *transport_, cluster_->version_manager_nodes(),
            cluster_->provider_manager_node());
    }

    [[nodiscard]] bool is_sim() const { return GetParam() == Mode::kSim; }

    std::unique_ptr<core::Cluster> cluster_;
    std::unique_ptr<TcpRpcServer> server_;
    std::unique_ptr<Transport> transport_;
    std::unique_ptr<ServiceClient> svc_;
};

TEST_P(TransportConformance, VersionManagerRoundTrip) {
    const auto info = svc_->create_blob(4096, 2);
    EXPECT_NE(info.id, kInvalidBlob);
    EXPECT_EQ(info.chunk_size, 4096u);
    EXPECT_EQ(info.replication, 2u);
    EXPECT_EQ(svc_->blob_info(info.id).id, info.id);

    const auto ar = svc_->assign(info.id, std::nullopt, 4096);
    EXPECT_EQ(ar.version, 1u);
    EXPECT_EQ(ar.offset, 0u);
    EXPECT_EQ(ar.size_after, 4096u);
    svc_->commit(info.id, ar.version);

    const auto vi = svc_->get_version(info.id, kLatestVersion);
    EXPECT_EQ(vi.version, 1u);
    EXPECT_EQ(vi.status, version::VersionStatus::kPublished);

    const auto wp = svc_->wait_published(info.id, 1, seconds(5));
    EXPECT_EQ(wp.version, 1u);

    const auto history = svc_->history(info.id, 1, kLatestVersion);
    ASSERT_EQ(history.size(), 1u);
    EXPECT_EQ(history[0].version, 1u);

    const auto desc = svc_->descriptor_of(info.id, 1);
    EXPECT_EQ(desc.version, 1u);
    EXPECT_EQ(desc.size, 4096u);
}

TEST_P(TransportConformance, ChunkRoundTrip) {
    const NodeId dp = cluster_->data_provider(0).node();
    const chunk::ChunkKey key{7, 42};
    const Buffer payload = make_pattern(7, 1, 0, 10000);

    svc_->put_chunk(dp, key, payload);
    const auto whole = svc_->get_chunk(dp, key, 0, 0);
    EXPECT_EQ(whole.chunk_size, payload.size());
    EXPECT_EQ(whole.bytes, payload);

    const auto slice = svc_->get_chunk(dp, key, 5000, 1000);
    EXPECT_EQ(slice.chunk_size, payload.size());
    ASSERT_EQ(slice.bytes.size(), 1000u);
    EXPECT_EQ(0, std::memcmp(slice.bytes.data(), payload.data() + 5000,
                             1000));

    svc_->erase_chunk(dp, key);
    EXPECT_THROW((void)svc_->get_chunk(dp, key, 0, 0), NotFoundError);
}

TEST_P(TransportConformance, MetaRoundTrip) {
    const NodeId mp = cluster_->metadata_provider(0).node();
    const meta::MetaKey key{3, 1, {0, 4}};
    const meta::MetaNode node = meta::MetaNode::leaf({1, 2}, 99, 512);

    EXPECT_FALSE(svc_->meta_try_get(mp, key).has_value());
    svc_->meta_put(mp, key, node);
    const auto got = svc_->meta_get(mp, key);
    EXPECT_TRUE(got.is_leaf());
    EXPECT_EQ(got.chunk_uid, 99u);
    EXPECT_EQ(got.replicas, (std::vector<NodeId>{1, 2}));
    EXPECT_TRUE(svc_->meta_try_get(mp, key).has_value());
    svc_->meta_erase(mp, key);
    EXPECT_THROW((void)svc_->meta_get(mp, key), NotFoundError);
}

TEST_P(TransportConformance, PlacementRoundTrip) {
    const auto plan = svc_->place(5, 2, 4096);
    ASSERT_EQ(plan.size(), 5u);
    for (const auto& targets : plan) {
        EXPECT_EQ(targets.size(), 2u);
    }
}

TEST_P(TransportConformance, ServerExceptionsMapToClientTypes) {
    // Unknown blob: NotFoundError end to end.
    EXPECT_THROW((void)svc_->blob_info(999), NotFoundError);
    // Invalid arguments: InvalidArgument end to end.
    EXPECT_THROW((void)svc_->create_blob(0, 1), InvalidArgument);
    // Unknown service node: RpcError.
    EXPECT_THROW(
        (void)svc_->get_chunk(kControlNode, chunk::ChunkKey{1, 1}, 0, 0),
        RpcError);
}

TEST_P(TransportConformance, TopologyHandshake) {
    const Topology t = fetch_topology(*transport_);
    EXPECT_EQ(t.vm_nodes, cluster_->version_manager_nodes());
    EXPECT_EQ(t.pm_node, cluster_->provider_manager_node());
    EXPECT_EQ(t.data_nodes.size(), cluster_->data_provider_count());
    EXPECT_EQ(t.meta_nodes.size(), cluster_->metadata_provider_count());
    EXPECT_GE(t.client_id, 1u << 20);
    // Each handshake mints a distinct client identity.
    const Topology t2 = fetch_topology(*transport_);
    EXPECT_NE(t.client_id, t2.client_id);
}

TEST_P(TransportConformance, LargePayloadRoundTrip) {
    const NodeId dp = cluster_->data_provider(1).node();
    const chunk::ChunkKey key{9, 1};
    const Buffer payload = make_pattern(9, 2, 0, 4 << 20);  // 4 MiB
    svc_->put_chunk(dp, key, payload);
    const auto back = svc_->get_chunk(dp, key, 0, 0);
    EXPECT_EQ(back.bytes, payload);
}

TEST_P(TransportConformance, ConcurrentCallsAreIsolated) {
    const NodeId dp = cluster_->data_provider(0).node();
    constexpr int kThreads = 8;
    constexpr int kOps = 25;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            try {
                for (int i = 0; i < kOps; ++i) {
                    const chunk::ChunkKey key{
                        100 + static_cast<BlobId>(t),
                        static_cast<std::uint64_t>(i)};
                    const Buffer payload =
                        make_pattern(key.blob, key.uid, 0, 2048);
                    svc_->put_chunk(dp, key, payload);
                    const auto back = svc_->get_chunk(dp, key, 0, 0);
                    if (back.bytes != payload) {
                        ++failures;
                    }
                }
            } catch (const Error&) {
                ++failures;
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(failures.load(), 0);
}

// ---- async API -------------------------------------------------------------

TEST_P(TransportConformance, AsyncRoundTripsMatchSync) {
    const NodeId dp = cluster_->data_provider(0).node();
    const NodeId mp = cluster_->metadata_provider(0).node();

    const chunk::ChunkKey key{11, 3};
    const Buffer payload = make_pattern(11, 3, 0, 5000);
    svc_->put_chunk_async(dp, key, payload).get();
    auto slice = svc_->get_chunk_async(dp, key, 1000, 2000).get();
    EXPECT_EQ(slice.chunk_size, payload.size());
    ASSERT_EQ(slice.bytes.size(), 2000u);
    EXPECT_EQ(0, std::memcmp(slice.bytes.data(), payload.data() + 1000,
                             2000));

    const meta::MetaKey mkey{11, 1, {0, 8}};
    svc_->meta_put_async(mp, mkey, meta::MetaNode::leaf({dp}, 7, 128))
        .get();
    const auto node = svc_->meta_get_async(mp, mkey).get();
    EXPECT_EQ(node.chunk_uid, 7u);

    // Service errors surface from get() with the mapped type.
    EXPECT_THROW(
        (void)svc_->get_chunk_async(dp, chunk::ChunkKey{99, 99}, 0, 0).get(),
        NotFoundError);
    // Delivery failures (unknown service node) surface as RpcError.
    EXPECT_THROW(
        (void)svc_->get_chunk_async(kControlNode, key, 0, 0).get(),
        RpcError);
}

TEST_P(TransportConformance, DeepWindowCollectsInAnyOrder) {
    // Issue a whole window of puts and gets, then collect the futures in
    // *reverse* issue order: correlation matching, not response
    // position, must pair them up.
    const NodeId dp = cluster_->data_provider(0).node();
    constexpr int kOps = 32;

    std::vector<Future<void>> puts;
    for (int i = 0; i < kOps; ++i) {
        const chunk::ChunkKey key{200, static_cast<std::uint64_t>(i)};
        puts.push_back(
            svc_->put_chunk_async(dp, key, make_pattern(200, i, 0, 512)));
    }
    for (int i = kOps; i-- > 0;) {
        puts[static_cast<std::size_t>(i)].get();
    }

    std::vector<Future<ServiceClient::ChunkSlice>> gets;
    for (int i = 0; i < kOps; ++i) {
        const chunk::ChunkKey key{200, static_cast<std::uint64_t>(i)};
        gets.push_back(svc_->get_chunk_async(dp, key, 0, 0));
    }
    for (int i = kOps; i-- > 0;) {
        const auto slice = gets[static_cast<std::size_t>(i)].get();
        EXPECT_EQ(slice.bytes, make_pattern(200, i, 0, 512))
            << "future " << i << " got another request's response";
    }
}

TEST_P(TransportConformance, SlowRequestDoesNotDelayConcurrentSmallOne) {
    if (is_sim()) {
        GTEST_SKIP() << "pins the multiplexed-connection + worker-pool "
                        "server (TCP)";
    }
    // Head-of-line regression: a request blocking server-side for 1.5 s
    // and a small meta_get travel the SAME multiplexed connection; the
    // small one must complete in roughly its own service time. Before
    // protocol v3 the serial connection would stall it behind the slow
    // response.
    const auto info = svc_->create_blob(4096, 1);
    (void)svc_->assign(info.id, std::nullopt, 4096);  // v1 pending forever

    std::thread slow([&] {
        // Never commits: blocks in the handler until the 1.5 s timeout.
        EXPECT_THROW((void)svc_->wait_published(info.id, 1,
                                                milliseconds(1500)),
                     TimeoutError);
    });
    // Let the slow request reach the server first.
    std::this_thread::sleep_for(milliseconds(100));

    const NodeId mp = cluster_->metadata_provider(0).node();
    const Stopwatch sw;
    (void)svc_->meta_try_get(mp, meta::MetaKey{1, 1, {0, 4}});
    const std::uint64_t small_us = sw.elapsed_us();
    slow.join();

    // Its own service time is microseconds; anything near the slow
    // request's 1.4 s remainder means it queued behind it.
    EXPECT_LT(small_us, 700'000u)
        << "small RPC was head-of-line blocked behind the slow one";
}

TEST_P(TransportConformance, SlowResponseCompletesAfterFastOne) {
    if (!is_sim()) {
        GTEST_SKIP() << "deterministic slowness uses the simulator's "
                        "degrade; the TCP ordering twin is "
                        "SlowRequestDoesNotDelayConcurrentSmallOne";
    }
    const NodeId slow_dp = cluster_->data_provider(0).node();
    const NodeId fast_dp = cluster_->data_provider(1).node();
    const chunk::ChunkKey key{12, 1};
    const Buffer payload = make_pattern(12, 1, 0, 1024);
    svc_->put_chunk(slow_dp, key, payload);
    svc_->put_chunk(fast_dp, key, payload);

    cluster_->degrade_data_provider(0, 1.0, milliseconds(400));
    auto slow = svc_->get_chunk_async(slow_dp, key, 0, 0);
    auto fast = svc_->get_chunk_async(fast_dp, key, 0, 0);
    EXPECT_EQ(fast.get().bytes, payload);
    // The fast response came back while the slow one is still sleeping
    // in the degraded provider's wire model.
    EXPECT_FALSE(slow.ready());
    EXPECT_EQ(slow.get().bytes, payload);
    cluster_->restore_data_provider(0);
}

// ---- fault injection (simulated wire) --------------------------------------

TEST_P(TransportConformance, KilledProviderSurfacesAsRpcError) {
    if (!is_sim()) {
        GTEST_SKIP() << "kill/partition are simulator features";
    }
    const NodeId dp = cluster_->data_provider(0).node();
    const chunk::ChunkKey key{5, 5};
    const Buffer payload = make_pattern(5, 5, 0, 1024);
    svc_->put_chunk(dp, key, payload);

    cluster_->kill_data_provider(0);
    EXPECT_THROW((void)svc_->get_chunk(dp, key, 0, 0), RpcError);
    EXPECT_THROW(svc_->put_chunk(dp, key, payload), RpcError);

    cluster_->recover_data_provider(0);
    EXPECT_EQ(svc_->get_chunk(dp, key, 0, 0).bytes, payload);
}

TEST_P(TransportConformance, PartitionSurfacesAsRpcErrorAndHeals) {
    if (!is_sim()) {
        GTEST_SKIP() << "kill/partition are simulator features";
    }
    auto& sim = dynamic_cast<SimTransport&>(*transport_);
    const NodeId vm = cluster_->version_manager_node();
    cluster_->network().partition(sim.self(), vm);
    EXPECT_THROW((void)svc_->create_blob(4096, 1), RpcError);
    cluster_->network().heal_partition(sim.self(), vm);
    EXPECT_NO_THROW((void)svc_->create_blob(4096, 1));
}

TEST_P(TransportConformance, KillMidFlightFailsEveryOutstandingFuture) {
    if (!is_sim()) {
        GTEST_SKIP() << "kill/partition are simulator features (TCP twin: "
                        "StopMidFlightFailsEveryOutstandingFuture)";
    }
    const NodeId dp = cluster_->data_provider(0).node();
    const chunk::ChunkKey key{13, 1};
    const Buffer payload = make_pattern(13, 1, 0, 2048);
    svc_->put_chunk(dp, key, payload);

    // 300 ms of injected latency keeps a window of gets in flight long
    // enough to kill the provider under them.
    cluster_->degrade_data_provider(0, 1.0, milliseconds(300));
    std::vector<Future<ServiceClient::ChunkSlice>> inflight;
    for (int i = 0; i < 6; ++i) {
        inflight.push_back(svc_->get_chunk_async(dp, key, 0, 0));
    }
    std::this_thread::sleep_for(milliseconds(50));
    cluster_->kill_data_provider(0);

    for (auto& fut : inflight) {
        EXPECT_THROW((void)fut.get(), RpcError);
    }
    cluster_->recover_data_provider(0);
    cluster_->restore_data_provider(0);
    EXPECT_EQ(svc_->get_chunk_async(dp, key, 0, 0).get().bytes, payload);
}

/// Failover in the windowed chunk upload: a write whose placement
/// includes a dead provider must still store every chunk (replacement
/// placement), and the bytes must read back intact — for BOTH transport
/// flavors the client API supports.
TEST_P(TransportConformance, WindowedUploadFailsOverDeadProvider) {
    if (!is_sim()) {
        GTEST_SKIP() << "provider kill needs the simulated cluster";
    }
    auto client = cluster_->make_client("failover-client");
    auto blob = client->create(4 << 10, 1);
    // Kill one provider AFTER the provider manager handed out liveness-
    // unaware placements? mark_dead keeps it out of future plans, so
    // kill without telling the manager: the network refuses delivery
    // and the upload window must fail over mid-write.
    cluster_->network().kill(cluster_->data_provider(0).node());

    const Buffer data = make_pattern(blob.id(), 1, 0, 64 << 10);  // 16 chunks
    const Version v = blob.write(0, data);
    Buffer back(data.size());
    blob.read(v, 0, back);
    EXPECT_EQ(back, data);
    cluster_->network().recover(cluster_->data_provider(0).node());
}

// ---- connection loss (real wire) -------------------------------------------

TEST_P(TransportConformance, StopMidFlightFailsEveryOutstandingFuture) {
    if (is_sim()) {
        GTEST_SKIP() << "connection loss is a TCP feature";
    }
    // wait_published on a never-committed version blocks server-side
    // for its full timeout, so raw async wait_published frames are
    // genuinely outstanding — all multiplexed on one connection — when
    // the daemon stops. Every future must fail with RpcError.
    TcpRpcServer doomed(cluster_->dispatcher(), 0, "127.0.0.1", 1);
    TcpTransport transport("127.0.0.1", doomed.port());
    ServiceClient svc(transport, cluster_->version_manager_nodes(),
                      cluster_->provider_manager_node());

    const auto info = svc.create_blob(4096, 1);
    (void)svc.assign(info.id, std::nullopt, 4096);  // v1 pending forever

    const NodeId vm = cluster_->version_manager_node();
    std::vector<Future<Buffer>> inflight;
    for (int i = 0; i < 4; ++i) {
        WireWriter w;
        w.u64(info.id);
        w.u64(1);
        w.u64(1500);  // ms the handler will block
        inflight.push_back(transport.call_async(
            vm, seal_request(MsgType::kWaitPublished, vm, std::move(w))));
    }
    // Let the requests reach the server and park in their handlers.
    std::this_thread::sleep_for(milliseconds(200));
    for (const auto& fut : inflight) {
        EXPECT_FALSE(fut.ready());
    }
    doomed.stop();  // connections die; handlers drain at their timeout

    for (auto& fut : inflight) {
        EXPECT_THROW((void)fut.get(), RpcError);
    }
}

TEST_P(TransportConformance, StoppedServerSurfacesAsRpcError) {
    if (is_sim()) {
        GTEST_SKIP() << "connection loss is a TCP feature";
    }
    (void)svc_->create_blob(4096, 1);  // warm the connection pool
    server_->stop();
    EXPECT_THROW((void)svc_->blob_info(1), RpcError);
}

TEST_P(TransportConformance, DaemonRestartReconnectsTransparently) {
    if (is_sim()) {
        GTEST_SKIP() << "connection loss is a TCP feature";
    }
    const auto info = svc_->create_blob(4096, 1);  // warm the pool
    const std::uint16_t port = server_->port();
    server_->stop();
    // Same dispatcher, same port: the daemon came back. The pooled
    // connection is stale; acquire() must detect that and reconnect
    // instead of surfacing an error (or replaying onto a dead socket).
    server_ = std::make_unique<TcpRpcServer>(cluster_->dispatcher(), port,
                                             "127.0.0.1");
    EXPECT_NO_THROW((void)svc_->blob_info(info.id));
}

// ---- reactor wire mechanics (real wire) ------------------------------------

namespace {

/// Raw loopback socket, optionally with a deliberately tiny receive
/// buffer so the server's writes hit EAGAIN after a few KiB.
int connect_raw(std::uint16_t port, int rcvbuf_bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    if (rcvbuf_bytes > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                     sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool write_all(int fd, const std::uint8_t* src, std::size_t n) {
    while (n > 0) {
        const ssize_t sent = ::send(fd, src, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        src += sent;
        n -= static_cast<std::size_t>(sent);
    }
    return true;
}

bool read_exact(int fd, std::uint8_t* dst, std::size_t n) {
    while (n > 0) {
        const ssize_t got = ::recv(fd, dst, n, 0);
        if (got < 0 && errno == EINTR) {
            continue;
        }
        if (got <= 0) {
            return false;
        }
        dst += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

/// Pipeline \p count whole-chunk kChunkGet frames (corr 1..count) onto a
/// raw socket without reading anything back.
void pipeline_chunk_gets(int fd, NodeId dp, const chunk::ChunkKey& key,
                         std::uint64_t count) {
    for (std::uint64_t corr = 1; corr <= count; ++corr) {
        WireWriter w;
        put_chunk_key(w, key);
        w.u64(0);
        w.u64(0);  // 0 = whole chunk
        Buffer f = seal_request(MsgType::kChunkGet, dp, std::move(w));
        set_frame_corr(MutableBytes(f), corr);
        ASSERT_TRUE(write_all(fd, f.data(), f.size()));
    }
}

}  // namespace

TEST_P(TransportConformance, PartialWriteBackpressureDeliversAllResponses) {
    if (is_sim()) {
        GTEST_SKIP() << "socket backpressure is a TCP feature";
    }
    // A client that reads nothing while 64 whole-chunk responses
    // (16 MiB) head for a few-KiB receive window: the server's writes
    // go partial, the remainders park in the per-connection frame
    // queue, and EPOLLOUT drains them as the window reopens. Every
    // byte must still arrive, matched to its correlation id.
    const NodeId dp = cluster_->data_provider(0).node();
    const chunk::ChunkKey key{21, 1};
    const Buffer payload = make_pattern(21, 1, 0, 256 << 10);
    svc_->put_chunk(dp, key, payload);

    const int fd = connect_raw(server_->port(), 4096);
    ASSERT_GE(fd, 0);
    constexpr std::uint64_t kPipelined = 64;
    pipeline_chunk_gets(fd, dp, key, kPipelined);
    // Give every response time to land in the tiny window or park.
    std::this_thread::sleep_for(milliseconds(300));

    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < kPipelined; ++i) {
        Buffer frame(kFrameHeaderSize);
        ASSERT_TRUE(read_exact(fd, frame.data(), kFrameHeaderSize));
        std::uint32_t len = 0;
        std::memcpy(&len, frame.data() + 12, sizeof(len));
        frame.resize(kFrameHeaderSize + len);
        ASSERT_TRUE(
            read_exact(fd, frame.data() + kFrameHeaderSize, len));
        const FrameView fv = parse_frame(frame);
        EXPECT_EQ(fv.type, MsgType::kChunkGet);
        EXPECT_EQ(fv.status(), Status::kOk);
        EXPECT_TRUE(seen.insert(fv.corr).second)
            << "duplicate correlation id " << fv.corr;
        WireReader r(fv.payload);
        EXPECT_EQ(r.u64(), payload.size());
        const ConstBytes bytes = r.blob();
        ASSERT_EQ(bytes.size(), payload.size());
        EXPECT_EQ(0, std::memcmp(bytes.data(), payload.data(),
                                 payload.size()));
    }
    EXPECT_EQ(seen.size(), kPipelined);
    EXPECT_EQ(*seen.begin(), 1u);
    EXPECT_EQ(*seen.rbegin(), kPipelined);
    ::close(fd);
}

TEST_P(TransportConformance, SlowReaderDoesNotBlockLoopSiblings) {
    if (is_sim()) {
        GTEST_SKIP() << "event-loop scheduling is a TCP feature";
    }
    // One io thread serves both connections. The slow one never reads
    // its parked multi-MiB backlog; the sibling's small RPCs must still
    // turn around promptly — a parked writer costs an EPOLLOUT
    // registration, not the loop thread.
    TcpRpcServer::Options opts;
    opts.bind_addr = "127.0.0.1";
    opts.io_threads = 1;
    TcpRpcServer server(cluster_->dispatcher(), std::move(opts));

    const NodeId dp = cluster_->data_provider(0).node();
    const chunk::ChunkKey key{22, 1};
    const Buffer payload = make_pattern(22, 1, 0, 256 << 10);
    svc_->put_chunk(dp, key, payload);  // same dispatcher as `server`

    const int slow = connect_raw(server.port(), 4096);
    ASSERT_GE(slow, 0);
    pipeline_chunk_gets(slow, dp, key, 32);
    std::this_thread::sleep_for(milliseconds(200));  // responses park

    TcpTransport sibling("127.0.0.1", server.port());
    ServiceClient svc(sibling, cluster_->version_manager_nodes(),
                      cluster_->provider_manager_node());
    const auto t0 = Clock::now();
    for (int i = 0; i < 16; ++i) {
        const auto got = svc.get_chunk(
            dp, key, static_cast<std::uint64_t>(i) * 1024, 512);
        ASSERT_EQ(got.bytes.size(), 512u);
        EXPECT_EQ(0, std::memcmp(got.bytes.data(),
                                 payload.data() + i * 1024, 512));
    }
    EXPECT_LT(Clock::now() - t0, seconds(5))
        << "sibling RPCs starved behind a parked writer";
    ::close(slow);
}

TEST_P(TransportConformance, IdleConnectionsAreReaped) {
    if (is_sim()) {
        GTEST_SKIP() << "idle sweep is a TCP feature";
    }
    TcpRpcServer::Options opts;
    opts.bind_addr = "127.0.0.1";
    opts.idle_timeout_ms = 200;
    TcpRpcServer server(cluster_->dispatcher(), std::move(opts));

    TcpTransport active_t("127.0.0.1", server.port());
    ServiceClient active(active_t, cluster_->version_manager_nodes(),
                         cluster_->provider_manager_node());
    const auto info = active.create_blob(4096, 1);

    const int idle = connect_raw(server.port(), 0);
    ASSERT_GE(idle, 0);
    for (int i = 0; i < 200 && server.connection_count() < 2; ++i) {
        std::this_thread::sleep_for(milliseconds(10));
    }
    ASSERT_GE(server.connection_count(), 2u);

    // The active connection keeps traffic flowing (so the sweep must
    // not touch it); the idle one must be closed underneath it.
    bool eof = false;
    const auto deadline = Clock::now() + seconds(5);
    while (Clock::now() < deadline) {
        EXPECT_EQ(active.blob_info(info.id).id, info.id);
        std::uint8_t b = 0;
        const ssize_t got = ::recv(idle, &b, 1, MSG_DONTWAIT);
        if (got == 0) {
            eof = true;  // server closed the idle connection
            break;
        }
        ASSERT_LE(got, 0) << "unexpected bytes on an idle connection";
        std::this_thread::sleep_for(milliseconds(50));
    }
    EXPECT_TRUE(eof) << "idle connection was never reaped";
    for (int i = 0; i < 200 && server.connection_count() > 1; ++i) {
        std::this_thread::sleep_for(milliseconds(10));
    }
    EXPECT_EQ(server.connection_count(), 1u);
    // ...and the survivor still answers.
    EXPECT_EQ(active.blob_info(info.id).id, info.id);
    ::close(idle);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportConformance,
                         ::testing::Values(Mode::kSim, Mode::kTcp),
                         [](const auto& info) {
                             return info.param == Mode::kSim ? "Sim"
                                                             : "Tcp";
                         });

}  // namespace
}  // namespace blobseer::rpc
