/// \file test_rpc_e2e.cpp
/// \brief End-to-end client flows over TcpTransport: a remote client
///        bootstraps with the topology handshake and runs
///        create → write → read → history against an in-process TCP
///        server, byte-identical to the SimTransport path.

#include <gtest/gtest.h>

#include "core/remote.hpp"
#include "rpc/tcp_transport.hpp"
#include "testing_util.hpp"

namespace blobseer::core {
namespace {

class RpcEndToEnd : public ::testing::Test {
  protected:
    RpcEndToEnd()
        : cluster_(testing::fast_config()),
          server_(cluster_.dispatcher(), 0, "127.0.0.1") {}

    [[nodiscard]] std::unique_ptr<BlobSeerClient> remote_client() {
        return std::make_unique<BlobSeerClient>(
            connect_tcp("127.0.0.1", server_.port()));
    }

    Cluster cluster_;
    rpc::TcpRpcServer server_;
};

TEST_F(RpcEndToEnd, CreateWriteReadHistoryOverTcp) {
    auto client = remote_client();
    auto blob = client->create(64 << 10);

    const Buffer v1 = testing::tagged(blob.id(), 1, 0, 200000);
    EXPECT_EQ(blob.write(0, v1), 1u);
    const Buffer v2 = testing::tagged(blob.id(), 2, 0, 131072);
    EXPECT_EQ(blob.append(v2), 2u);

    // Version 1 readback.
    Buffer out(v1.size());
    EXPECT_EQ(blob.read(1, 0, out), v1.size());
    EXPECT_TRUE(testing::matches(blob.id(), 1, 0, out));

    // Version 2: the original range plus the appended bytes.
    out.assign(v2.size(), 0);
    EXPECT_EQ(blob.read(2, v1.size(), out), v2.size());
    EXPECT_TRUE(testing::matches(blob.id(), 2, 0, out));
    EXPECT_EQ(blob.size(), v1.size() + v2.size());

    const auto history = client->history(blob.id());
    ASSERT_EQ(history.size(), 2u);
    EXPECT_EQ(history[0].version, 1u);
    EXPECT_EQ(history[1].version, 2u);
    EXPECT_EQ(history[1].size_after, v1.size() + v2.size());
}

TEST_F(RpcEndToEnd, TcpAndSimClientsSeeIdenticalBytes) {
    // Write through the simulated in-process path...
    auto sim_client = cluster_.make_client();
    auto blob = sim_client->create(32 << 10);
    const Buffer data = testing::tagged(blob.id(), 7, 0, 300000);
    EXPECT_EQ(sim_client->write(blob.id(), 0, data), 1u);

    // ...and read it back over real sockets: byte-identical.
    auto tcp_client = remote_client();
    Buffer out(data.size());
    EXPECT_EQ(tcp_client->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);

    // And the reverse direction: TCP writes, Sim reads.
    const Buffer more = testing::tagged(blob.id(), 8, 0, 50000);
    EXPECT_EQ(tcp_client->append(blob.id(), more), 2u);
    Buffer tail(more.size());
    EXPECT_EQ(sim_client->read(blob.id(), 2, data.size(), tail),
              more.size());
    EXPECT_EQ(tail, more);
}

TEST_F(RpcEndToEnd, RemoteClientsGetDistinctIdentities) {
    auto a = remote_client();
    auto b = remote_client();
    EXPECT_NE(a->node(), b->node());

    // Distinct identities produce non-colliding chunk uids: interleaved
    // writes to one blob from both clients stay readable.
    auto blob = a->create(16 << 10);
    const Buffer da = testing::tagged(blob.id(), 1, 0, 16 << 10);
    const Buffer db = testing::tagged(blob.id(), 2, 0, 16 << 10);
    EXPECT_EQ(a->write(blob.id(), 0, da), 1u);
    EXPECT_EQ(b->write(blob.id(), 0, db), 2u);
    Buffer out(16 << 10);
    EXPECT_EQ(b->read(blob.id(), 2, 0, out), out.size());
    EXPECT_EQ(out, db);
}

TEST_F(RpcEndToEnd, CloneAndRetireOverTcp) {
    auto client = remote_client();
    auto blob = client->create(16 << 10);
    for (int i = 1; i <= 4; ++i) {
        const Buffer data = testing::tagged(blob.id(), i, 0, 16 << 10);
        client->write(blob.id(), 0, data);
    }
    auto cloned = client->clone(blob.id(), 2);
    Buffer out(16 << 10);
    EXPECT_EQ(cloned.read(0, 0, out), out.size());
    EXPECT_TRUE(testing::matches(blob.id(), 2, 0, out));

    const auto st = client->retire_versions(blob.id(), 4);
    EXPECT_GE(st.versions, 1u);
    EXPECT_THROW((void)client->read(blob.id(), 1, 0, out), VersionRetired);
}

}  // namespace
}  // namespace blobseer::core
