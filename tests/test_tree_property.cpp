/// \file test_tree_property.cpp
/// \brief Model-checked property tests of the versioned segment tree.
///
/// A flat reference model keeps the full byte content of every snapshot.
/// Random write/append sequences — including batches of *concurrent*
/// versions built and committed in adversarial orders — are applied to
/// both the real metadata machinery (VersionManager + tree builder +
/// tree reader over an InMemoryMetaStore) and the model; every snapshot
/// must then plan reads that byte-for-byte match the model. This is the
/// strongest guard on the paper's central claim: versioning-based
/// concurrency control with weaving produces linearizable snapshots
/// without writer-writer synchronization.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "common/random.hpp"
#include "meta/meta_store.hpp"
#include "meta/tree_builder.hpp"
#include "meta/tree_reader.hpp"
#include "version/version_manager.hpp"

namespace blobseer {
namespace {

constexpr std::uint64_t kChunk = 8;

/// Reference model: full content of every version.
class ModelBlob {
  public:
    void apply(Version v, std::uint64_t offset, std::uint64_t size) {
        std::vector<std::uint64_t> snapshot =
            versions_.empty() ? std::vector<std::uint64_t>{}
                              : versions_.back();
        if (snapshot.size() < offset + size) {
            snapshot.resize(offset + size, 0);  // holes read as zeros
        }
        for (std::uint64_t i = 0; i < size; ++i) {
            snapshot[offset + i] = encode(v, offset, i);
        }
        versions_.push_back(std::move(snapshot));
        ASSERT_EQ(versions_.size(), v);
    }

    /// Expected source tag for byte \p pos of version \p v (0 = hole).
    [[nodiscard]] std::uint64_t at(Version v, std::uint64_t pos) const {
        return versions_.at(v - 1).at(pos);
    }

    [[nodiscard]] std::uint64_t size(Version v) const {
        return versions_.at(v - 1).size();
    }

    /// Tag identifying which (version, chunk-of-that-write) serves a byte.
    static std::uint64_t encode(Version v, std::uint64_t write_offset,
                                std::uint64_t i) {
        const std::uint64_t slot = (write_offset + i) / kChunk;
        return v * 1'000'000 + slot;
    }

  private:
    std::vector<std::vector<std::uint64_t>> versions_;
};

struct Harness {
    version::VersionManager vm;
    meta::InMemoryMetaStore store;
    version::BlobInfo info;
    ModelBlob model;

    Harness() { info = vm.create_blob(kChunk, 1); }

    /// Build (and optionally commit) an assigned write.
    void build(const version::AssignResult& ar, std::uint64_t size) {
        const meta::TreeGeometry geo(kChunk);
        meta::BuildInput in;
        in.blob = info.id;
        in.chunk_size = kChunk;
        in.version = ar.version;
        in.write_range = {ar.offset, size};
        in.size_before = ar.size_before;
        in.size_after = ar.size_after;
        in.base = ar.base;
        in.concurrent = ar.concurrent;
        const auto slots = geo.slots_of(in.write_range);
        for (std::uint64_t i = 0; i < slots.count; ++i) {
            const std::uint64_t slot = slots.first + i;
            const std::uint64_t begin = slot * kChunk;
            const std::uint64_t covered =
                std::min(begin + kChunk, ar.offset + size) - begin;
            in.leaves.push_back(meta::MetaNode::leaf(
                {NodeId{1}}, ar.version * 1'000'000 + slot,
                static_cast<std::uint32_t>(covered)));
        }
        build_version_tree(store, in);
    }

    /// Verify one snapshot against the model over its full extent plus a
    /// few random sub-ranges.
    void verify(Version v, Rng& rng) {
        const auto vi = vm.get_version(info.id, v);
        ASSERT_EQ(vi.size, model.size(v)) << "size mismatch at v" << v;
        verify_range(v, {0, vi.size});
        for (int i = 0; i < 4 && vi.size > 0; ++i) {
            const std::uint64_t off = rng.below(vi.size);
            const std::uint64_t len = 1 + rng.below(vi.size - off);
            verify_range(v, {off, len});
        }
        EXPECT_NO_THROW((void)meta::validate_tree(store, vi.tree.blob,
                                            vi.tree.version, kChunk,
                                            vi.size));
    }

    void verify_range(Version v, ByteRange range) {
        if (range.size == 0) {
            return;
        }
        const auto vi = vm.get_version(info.id, v);
        const auto plan = meta::plan_read(store, vi.tree.blob,
                                          vi.tree.version, kChunk, vi.size,
                                          range);
        std::uint64_t cursor = range.offset;
        for (const auto& seg : plan.segments) {
            ASSERT_EQ(seg.blob_range.offset, cursor) << "plan gap";
            for (std::uint64_t b = seg.blob_range.offset;
                 b < seg.blob_range.end(); ++b) {
                const std::uint64_t expected = model.at(v, b);
                const std::uint64_t actual = seg.hole ? 0 : seg.chunk.uid;
                ASSERT_EQ(actual, expected)
                    << "v" << v << " byte " << b << " range "
                    << to_string(range);
            }
            cursor = seg.blob_range.end();
        }
        ASSERT_EQ(cursor, range.end()) << "plan incomplete";
    }
};

/// Sequential random writes/appends: every snapshot matches the model.
class SequentialProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequentialProperty, SnapshotsMatchModel) {
    Rng rng(GetParam());
    Harness h;
    const int steps = 40;
    for (int s = 0; s < steps; ++s) {
        const std::uint64_t cur = h.vm.get_version(h.info.id, kLatestVersion)
                                      .size;
        std::optional<std::uint64_t> offset;
        std::uint64_t size = 0;
        const double dice = rng.uniform();
        if (dice < 0.35 || cur == 0) {
            // Append (possibly unaligned tail), 1..40 bytes.
            size = 1 + rng.below(40);
        } else if (dice < 0.75) {
            // Interior aligned overwrite of whole chunks.
            const std::uint64_t slots = cur / kChunk;
            if (slots == 0) {
                size = 1 + rng.below(40);
            } else {
                const std::uint64_t first = rng.below(slots);
                const std::uint64_t count =
                    1 + rng.below(std::min<std::uint64_t>(slots - first, 4));
                offset = first * kChunk;
                size = count * kChunk;
            }
        } else {
            // Extending write at an aligned offset at/past the end
            // (creates holes when strictly past).
            const std::uint64_t base = ceil_div(cur, kChunk);
            offset = (base + rng.below(3)) * kChunk;
            size = 1 + rng.below(40);
        }
        // Unaligned appends in this direct-harness test bypass the
        // client's merge path, so only chunk-aligned boundaries are
        // modeled faithfully... align appends to chunk multiples unless
        // nothing follows in the same slot. Simplest: make every write
        // either aligned-size or the last one touching its tail slot.
        // Here we keep it honest by only issuing appends whose offset is
        // aligned (guaranteed when cur % kChunk == 0) and otherwise
        // rounding the append up to start a fresh slot via an explicit
        // extending write.
        if (!offset && cur % kChunk != 0) {
            offset = ceil_div(cur, kChunk) * kChunk;
        }
        auto ar = h.vm.assign(h.info.id, offset, size);
        h.build(ar, size);
        h.vm.commit(h.info.id, ar.version);
        h.model.apply(ar.version, ar.offset, size);
    }
    const Version latest = h.vm.latest(h.info.id);
    for (Version v = 1; v <= latest; ++v) {
        h.verify(v, rng);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequentialProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Concurrent batches: K versions assigned together, built in a random
/// order, committed in another random order. Snapshots must equal the
/// model that applies them in *version* order (linearization order).
class ConcurrentProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConcurrentProperty, WeavingMatchesModel) {
    Rng rng(GetParam() * 977);
    Harness h;
    const int batches = 10;
    for (int bi = 0; bi < batches; ++bi) {
        const std::uint64_t cur =
            h.vm.get_version(h.info.id, kLatestVersion).size;
        const std::size_t k = 1 + rng.below(4);

        struct Pending {
            version::AssignResult ar;
            std::uint64_t size;
        };
        std::vector<Pending> batch;
        std::uint64_t running = cur;
        for (std::size_t i = 0; i < k; ++i) {
            std::optional<std::uint64_t> offset;
            std::uint64_t size = kChunk * (1 + rng.below(4));
            const double dice = rng.uniform();
            if (dice < 0.4 || running == 0) {
                // aligned append (running is always chunk-aligned here)
                offset = running;
            } else if (dice < 0.8) {
                const std::uint64_t slots = running / kChunk;
                const std::uint64_t first = rng.below(slots);
                const std::uint64_t count =
                    1 + rng.below(std::min<std::uint64_t>(slots - first, 4));
                offset = first * kChunk;
                size = count * kChunk;
            } else {
                offset = (running / kChunk + rng.below(3)) * kChunk;
            }
            auto ar = h.vm.assign(h.info.id, offset, size);
            running = ar.size_after;
            batch.push_back({std::move(ar), size});
        }

        // Build in random order (weaving), commit in another random order
        // (publication must still be in version order).
        std::vector<std::size_t> order(batch.size());
        std::iota(order.begin(), order.end(), 0);
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[rng.below(i)]);
        }
        for (const std::size_t i : order) {
            h.build(batch[i].ar, batch[i].size);
        }
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[rng.below(i)]);
        }
        for (const std::size_t i : order) {
            h.vm.commit(h.info.id, batch[i].ar.version);
        }
        // Model applies the batch in version order.
        std::sort(batch.begin(), batch.end(),
                  [](const Pending& a, const Pending& b) {
                      return a.ar.version < b.ar.version;
                  });
        for (const auto& p : batch) {
            h.model.apply(p.ar.version, p.ar.offset, p.size);
        }
        ASSERT_EQ(h.vm.latest(h.info.id), batch.back().ar.version);
    }
    const Version latest = h.vm.latest(h.info.id);
    for (Version v = 1; v <= latest; ++v) {
        h.verify(v, rng);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace blobseer
