/// \file test_provider.cpp
/// \brief Tests of the data provider service and the placement
///        strategies of the provider manager.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chunk/ram_store.hpp"
#include "provider/data_provider.hpp"
#include "provider/provider_manager.hpp"

namespace blobseer::provider {
namespace {

chunk::ChunkData payload(std::size_t n) {
    return std::make_shared<Buffer>(n, std::uint8_t{0xAB});
}

TEST(DataProvider, PutGetErase) {
    DataProvider dp(3, std::make_unique<chunk::RamStore>());
    const chunk::ChunkKey key{1, 9};
    dp.put_chunk(key, payload(128));
    EXPECT_TRUE(dp.has_chunk(key));
    EXPECT_EQ(dp.get_chunk(key)->size(), 128u);
    EXPECT_EQ(dp.stored_bytes(), 128u);
    dp.erase_chunk(key);
    EXPECT_FALSE(dp.has_chunk(key));
    EXPECT_THROW((void)dp.get_chunk(key), NotFoundError);
}

TEST(DataProvider, StatsTrackTraffic) {
    DataProvider dp(0, std::make_unique<chunk::RamStore>());
    dp.put_chunk({1, 1}, payload(100));
    (void)dp.get_chunk({1, 1});
    EXPECT_EQ(dp.stats().bytes_in.get(), 100u);
    EXPECT_EQ(dp.stats().bytes_out.get(), 100u);
    EXPECT_EQ(dp.stats().ops.get(), 2u);
}

TEST(DataProvider, VolatileLossClearsRamStore) {
    DataProvider dp(0, std::make_unique<chunk::RamStore>());
    dp.put_chunk({1, 1}, payload(10));
    dp.lose_volatile_state();
    EXPECT_FALSE(dp.has_chunk({1, 1}));
}

// ---- ProviderManager -------------------------------------------------------

std::unique_ptr<ProviderManager> make_pm(PlacementStrategy s,
                                         std::size_t n) {
    auto pm = std::make_unique<ProviderManager>(s, 7);
    for (NodeId i = 0; i < n; ++i) {
        pm->register_provider(100 + i);
    }
    return pm;
}

TEST(ProviderManager, RoundRobinSpreadsEvenly) {
    const auto pm = make_pm(PlacementStrategy::kRoundRobin, 4);
    std::map<NodeId, int> counts;
    const auto plan = pm->place(40, 1, 1024);
    ASSERT_EQ(plan.size(), 40u);
    for (const auto& replicas : plan) {
        ASSERT_EQ(replicas.size(), 1u);
        ++counts[replicas[0]];
    }
    for (const auto& [node, count] : counts) {
        EXPECT_EQ(count, 10) << "node " << node;
    }
}

TEST(ProviderManager, ReplicasAreDistinct) {
    for (const auto strategy :
         {PlacementStrategy::kRoundRobin, PlacementStrategy::kRandom,
          PlacementStrategy::kLoadAware}) {
        const auto pm = make_pm(strategy, 5);
        const auto plan = pm->place(20, 3, 64);
        for (const auto& replicas : plan) {
            const std::set<NodeId> uniq(replicas.begin(), replicas.end());
            EXPECT_EQ(uniq.size(), 3u) << to_string(strategy);
        }
    }
}

TEST(ProviderManager, ReplicationClampedToLiveProviders) {
    const auto pm = make_pm(PlacementStrategy::kRoundRobin, 2);
    const auto plan = pm->place(1, 5, 64);
    EXPECT_EQ(plan[0].size(), 2u);
}

TEST(ProviderManager, DeadProvidersSkipped) {
    const auto pm = make_pm(PlacementStrategy::kRoundRobin, 3);
    pm->mark_dead(101);
    const auto plan = pm->place(30, 1, 64);
    for (const auto& replicas : plan) {
        EXPECT_NE(replicas[0], 101u);
    }
    pm->mark_alive(101);
    bool seen = false;
    for (const auto& replicas : pm->place(30, 1, 64)) {
        seen |= replicas[0] == 101;
    }
    EXPECT_TRUE(seen);
}

TEST(ProviderManager, AllDeadThrows) {
    const auto pm = make_pm(PlacementStrategy::kRandom, 2);
    pm->mark_dead(100);
    pm->mark_dead(101);
    EXPECT_THROW((void)pm->place(1, 1, 64), RpcError);
}

TEST(ProviderManager, UnhealthyProvidersAvoided) {
    const auto pm = make_pm(PlacementStrategy::kRoundRobin, 3);
    pm->set_health(102, 0.0);  // classified dangerous by the QoS model
    for (const auto& replicas : pm->place(30, 1, 64)) {
        EXPECT_NE(replicas[0], 102u);
    }
    pm->set_health(102, 1.0);
    bool seen = false;
    for (const auto& replicas : pm->place(30, 1, 64)) {
        seen |= replicas[0] == 102;
    }
    EXPECT_TRUE(seen);
}

TEST(ProviderManager, AllUnhealthyFallsBackToLive) {
    const auto pm = make_pm(PlacementStrategy::kRoundRobin, 2);
    pm->set_health(100, 0.0);
    pm->set_health(101, 0.0);
    // Degraded but live beats failing the write.
    EXPECT_EQ(pm->place(1, 1, 64)[0].size(), 1u);
}

TEST(ProviderManager, LoadAwarePrefersLeastLoaded) {
    const auto pm = make_pm(PlacementStrategy::kLoadAware, 3);
    // Preload node 100 with lots of assigned bytes.
    (void)pm->place(10, 1, 1 << 20);  // these spread: all start at 0
    // Now find the least-loaded provider and check the next placement
    // picks it.
    NodeId least = 100;
    for (NodeId n = 100; n < 103; ++n) {
        if (pm->assigned_bytes(n) < pm->assigned_bytes(least)) {
            least = n;
        }
    }
    const auto plan = pm->place(1, 1, 64);
    EXPECT_EQ(plan[0][0], least);
}

TEST(ProviderManager, LoadAwareConvergesToBalance) {
    const auto pm = make_pm(PlacementStrategy::kLoadAware, 4);
    for (int i = 0; i < 100; ++i) {
        (void)pm->place(1, 1, 1024);
    }
    std::uint64_t lo = ~0ULL;
    std::uint64_t hi = 0;
    for (NodeId n = 100; n < 104; ++n) {
        lo = std::min(lo, pm->assigned_bytes(n));
        hi = std::max(hi, pm->assigned_bytes(n));
    }
    EXPECT_LE(hi - lo, 1024u);
}

TEST(ProviderManager, HealthQueryAndCounters) {
    const auto pm = make_pm(PlacementStrategy::kRandom, 2);
    pm->set_health(100, 0.7);
    EXPECT_DOUBLE_EQ(pm->health(100), 0.7);
    EXPECT_THROW(pm->set_health(999, 1.0), NotFoundError);
    (void)pm->place(5, 1, 64);
    EXPECT_EQ(pm->placements(), 5u);
    EXPECT_EQ(pm->provider_count(), 2u);
}

}  // namespace
}  // namespace blobseer::provider
