/// \file test_metrics.cpp
/// \brief Histogram bucket math, the Meter ring bound, and the metrics
/// registry (ownership, binding, collisions, concurrency, rendering).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/stats.hpp"

namespace blobseer {
namespace {

// ---- Histogram bucket math ---------------------------------------------------

TEST(HistogramBuckets, SmallValuesAreExact) {
    EXPECT_EQ(Histogram::bucket_of(0), 0u);
    EXPECT_EQ(Histogram::bucket_of(1), 1u);
    EXPECT_EQ(Histogram::upper_bound(0), 0u);
    EXPECT_EQ(Histogram::upper_bound(1), 1u);
}

TEST(HistogramBuckets, PowersOfTwoStartTheirBucketGroup) {
    // 4 sub-buckets per power of two: 2^k (k >= 2) lands on sub-bucket 0
    // of its group, index 2 + (k - 1) * 4.
    for (int k = 2; k <= 31; ++k) {
        EXPECT_EQ(Histogram::bucket_of(1ULL << k),
                  2u + static_cast<std::size_t>(k - 1) * 4)
            << "k=" << k;
    }
}

TEST(HistogramBuckets, TopBucketSaturates) {
    constexpr std::size_t top = Histogram::kBuckets - 1;
    EXPECT_EQ(Histogram::bucket_of(~0ULL), top);
    EXPECT_EQ(Histogram::bucket_of(1ULL << 40), top);
    EXPECT_EQ(Histogram::bucket_of(1ULL << 33), top);
}

TEST(HistogramBuckets, UpperBoundRoundTripsThroughBucketOf) {
    // Buckets 2..5 are a seam of the indexing scheme no value ever lands
    // in (values 2..7 map to 4..9); everywhere else upper_bound(i) must
    // itself fall in bucket i.
    EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound(0)), 0u);
    EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound(1)), 1u);
    for (std::size_t i = 6; i < Histogram::kBuckets; ++i) {
        EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound(i)), i)
            << "bucket " << i;
    }
}

TEST(HistogramBuckets, UpperBoundStrictlyIncreasesOverReachableBuckets) {
    for (std::size_t i = 7; i < Histogram::kBuckets; ++i) {
        EXPECT_LT(Histogram::upper_bound(i - 1), Histogram::upper_bound(i))
            << "bucket " << i;
    }
}

TEST(HistogramBuckets, EveryValueIsAtMostItsBucketUpperBound) {
    for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 3ULL, 7ULL, 9ULL, 100ULL,
                            4095ULL, 4096ULL, 4097ULL, 999'999ULL,
                            (1ULL << 32) - 1, 1ULL << 32}) {
        EXPECT_LE(v, Histogram::upper_bound(Histogram::bucket_of(v)))
            << "v=" << v;
    }
}

TEST(HistogramBuckets, BucketOfIsMonotone) {
    std::size_t prev = 0;
    for (std::uint64_t v = 0; v < 20'000; ++v) {
        const std::size_t b = Histogram::bucket_of(v);
        EXPECT_GE(b, prev) << "v=" << v;
        prev = b;
    }
}

TEST(HistogramQuantile, EmptyIsZero) {
    const Histogram h;
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(HistogramQuantile, SingleSampleEveryQuantileIsItsBucket) {
    Histogram h;
    h.record(100);
    const std::uint64_t ub =
        Histogram::upper_bound(Histogram::bucket_of(100));
    EXPECT_EQ(h.quantile(0.0), ub);
    EXPECT_EQ(h.quantile(0.5), ub);
    EXPECT_EQ(h.quantile(1.0), ub);
}

TEST(HistogramQuantile, SpreadSamplesSeparateTails) {
    Histogram h;
    for (int i = 0; i < 99; ++i) {
        h.record(10);
    }
    h.record(1'000'000);
    const std::uint64_t low =
        Histogram::upper_bound(Histogram::bucket_of(10));
    const std::uint64_t high =
        Histogram::upper_bound(Histogram::bucket_of(1'000'000));
    EXPECT_EQ(h.quantile(0.5), low);
    EXPECT_EQ(h.quantile(1.0), high);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 1'000'000u);
}

// ---- Meter ring bound --------------------------------------------------------

TEST(Meter, RingNeverGrowsPastCapacity) {
    // Regression: the original deque-backed meter kept one slot per
    // elapsed window forever. With a 1 ms window and a 4-slot ring,
    // recording across >> 4 windows must age slots out, not grow.
    Meter m(milliseconds(1), 4);
    ASSERT_EQ(m.capacity(), 4u);
    for (int i = 0; i < 8; ++i) {
        m.record(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    EXPECT_LE(m.series().size(), m.capacity());
    EXPECT_GT(m.dropped_windows(), 0u);
    // Bytes that aged out of the ring stay visible in the total.
    EXPECT_EQ(m.total_bytes(), 8u);
}

TEST(Meter, CapacityFloorIsTwo) {
    const Meter m(milliseconds(1), 0);
    EXPECT_EQ(m.capacity(), 2u);
}

TEST(Meter, LongIdleGapZeroesTheRing) {
    Meter m(milliseconds(1), 4);
    m.record(7);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    m.record(5);  // gap >> capacity windows: every old slot must clear
    std::uint64_t ring_sum = 0;
    for (const std::uint64_t w : m.series()) {
        ring_sum += w;
    }
    EXPECT_EQ(ring_sum, 5u);
    EXPECT_EQ(m.total_bytes(), 12u);
}

// ---- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, OwnedMetricsAreGetOrCreate) {
    MetricsRegistry reg;
    Counter& a = reg.counter("ops_total", {{"node", "1"}});
    Counter& b = reg.counter("ops_total", {{"node", "1"}});
    Counter& c = reg.counter("ops_total", {{"node", "2"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    a.add(3);
    EXPECT_EQ(b.get(), 3u);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, SnapshotCarriesEveryKind) {
    MetricsRegistry reg;
    reg.counter("c_total").add(5);
    Gauge& g = reg.gauge("g");
    g.add(4);
    g.sub(1);
    reg.histogram("h_us").record(100);
    Meter m;
    MetricsGroup group(reg);
    group.meter("m_bytes", {}, m);
    group.callback("cb", {}, [] { return 42ULL; });
    m.record(10);

    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 5u);
    bool saw_counter = false, saw_gauge = false, saw_hist = false,
         saw_meter = false, saw_cb = false;
    for (const MetricSample& s : snap.samples) {
        if (s.name == "c_total") {
            saw_counter = true;
            EXPECT_EQ(s.kind, MetricKind::kCounter);
            EXPECT_EQ(s.value, 5u);
        } else if (s.name == "g") {
            saw_gauge = true;
            EXPECT_EQ(s.value, 3u);
            EXPECT_EQ(s.high_water, 4u);
        } else if (s.name == "h_us") {
            saw_hist = true;
            EXPECT_EQ(s.count, 1u);
            EXPECT_EQ(s.sum, 100u);
            ASSERT_FALSE(s.buckets.empty());
        } else if (s.name == "m_bytes") {
            saw_meter = true;
            EXPECT_EQ(s.value, 10u);
        } else if (s.name == "cb") {
            saw_cb = true;
            EXPECT_EQ(s.value, 42u);
        }
    }
    EXPECT_TRUE(saw_counter && saw_gauge && saw_hist && saw_meter && saw_cb);
}

TEST(MetricsRegistry, GroupDestructionUnbinds) {
    MetricsRegistry reg;
    Counter external;
    {
        MetricsGroup group(reg);
        group.counter("bound_total", {}, external);
        EXPECT_EQ(reg.size(), 1u);
    }
    EXPECT_EQ(reg.size(), 0u);
    // The external counter must be safe to touch after unbinding.
    external.add(1);
    EXPECT_TRUE(reg.snapshot().samples.empty());
}

TEST(MetricsRegistry, DuplicateKeyGetsInstanceLabel) {
    MetricsRegistry reg;
    Counter a, b;
    MetricsGroup group(reg);
    group.counter("dup_total", {{"node", "1"}}, a);
    group.counter("dup_total", {{"node", "1"}}, b);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.samples.size(), 2u);
    int inst_labels = 0;
    for (const MetricSample& s : snap.samples) {
        EXPECT_EQ(s.name, "dup_total");
        for (const auto& [k, v] : s.labels) {
            if (k == "inst") {
                ++inst_labels;
            }
        }
    }
    EXPECT_EQ(inst_labels, 1);
}

TEST(MetricsRegistry, ConcurrentRegisterBindAndSnapshot) {
    // Satellite coverage for TSan: owned-metric creation, bind/unbind
    // churn and snapshots race against each other on one registry.
    MetricsRegistry reg;
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;

    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < 200; ++i) {
                Counter& c = reg.counter(
                    "worker_total", {{"t", std::to_string(t)},
                                     {"i", std::to_string(i % 8)}});
                c.add(1);
                reg.histogram("worker_us",
                              {{"t", std::to_string(t)}})
                    .record(static_cast<std::uint64_t>(i));
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&reg] {
            for (int i = 0; i < 100; ++i) {
                Counter ephemeral;
                MetricsGroup group(reg);
                group.counter("ephemeral_total",
                              {{"i", std::to_string(i)}}, ephemeral);
                ephemeral.add(1);
                group.callback("ephemeral_cb", {},
                               [] { return 1ULL; });
            }
        });
    }
    threads.emplace_back([&reg, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            const MetricsSnapshot snap = reg.snapshot();
            (void)render_prometheus(snap);
        }
    });

    for (std::size_t i = 0; i + 1 < threads.size(); ++i) {
        threads[i].join();
    }
    stop.store(true, std::memory_order_relaxed);
    threads.back().join();

    // 2 threads x 8 counter keys + 2 histograms survive; every
    // ephemeral binding unbound with its group.
    EXPECT_EQ(reg.size(), 18u);
    std::uint64_t total = 0;
    for (const MetricSample& s : reg.snapshot().samples) {
        if (s.name == "worker_total") {
            total += s.value;
        }
    }
    EXPECT_EQ(total, 400u);
}

// ---- Prometheus rendering ----------------------------------------------------

TEST(RenderPrometheus, CounterGaugeAndEscaping) {
    MetricsRegistry reg;
    reg.counter("ops_total", {{"svc", "a\"b\\c"}}).add(7);
    Gauge& g = reg.gauge("inflight");
    g.add(2);
    const std::string text = render_prometheus(reg.snapshot());
    EXPECT_NE(text.find("ops_total{svc=\"a\\\"b\\\\c\"} 7\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("inflight 2\n"), std::string::npos);
    EXPECT_NE(text.find("inflight_peak 2\n"), std::string::npos);
}

TEST(RenderPrometheus, HistogramIsCumulativeWithInf) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("lat_us", {{"op", "write"}});
    h.record(1);
    h.record(1);
    h.record(1'000'000);
    const std::string text = render_prometheus(reg.snapshot());
    // Bucket counts must be cumulative: the le="1" series carries 2, the
    // +Inf series the full count, and _sum/_count close the family.
    EXPECT_NE(text.find("lat_us_bucket{op=\"write\",le=\"1\"} 2\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("lat_us_bucket{op=\"write\",le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_us_sum{op=\"write\"} 1000002\n"),
              std::string::npos);
    EXPECT_NE(text.find("lat_us_count{op=\"write\"} 3\n"),
              std::string::npos);
}

TEST(RenderPrometheus, MeterRendersTotalAndRecent) {
    MetricsRegistry reg;
    Meter m;
    MetricsGroup group(reg);
    group.meter("xfer_bytes", {}, m);
    m.record(128);
    const std::string text = render_prometheus(reg.snapshot());
    EXPECT_NE(text.find("xfer_bytes_total 128\n"), std::string::npos);
    EXPECT_NE(text.find("xfer_bytes_recent"), std::string::npos);
}

}  // namespace
}  // namespace blobseer
