/// \file test_meta_persistence.cpp
/// \brief Tests of the persistent metadata path (§IV-B): node
///        serialization, the disk and log store recovery semantics, and
///        end-to-end clusters whose metadata — and, with the log engine,
///        whose entire state — survives crashes and full restarts.

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/log_engine.hpp"
#include "meta/disk_meta_store.hpp"
#include "meta/log_meta_store.hpp"
#include "testing_util.hpp"
#include "version/version_manager.hpp"

namespace blobseer::meta {
namespace {

class TempDir {
  public:
    TempDir() {
        dir_ = std::filesystem::temp_directory_path() /
               ("blobseer-meta-" + std::to_string(counter_++) + "-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }
    ~TempDir() { std::filesystem::remove_all(dir_); }
    [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

  private:
    static inline int counter_ = 0;
    std::filesystem::path dir_;
};

TEST(NodeSerialization, InnerRoundTrip) {
    const MetaNode inner = MetaNode::inner({7, 42}, {kInvalidBlob, 0});
    const MetaNode back = deserialize_node(serialize_node(inner));
    EXPECT_FALSE(back.is_leaf());
    EXPECT_EQ(back.left.blob, 7u);
    EXPECT_EQ(back.left.version, 42u);
    EXPECT_TRUE(back.right.is_hole());
}

TEST(NodeSerialization, LeafRoundTrip) {
    const MetaNode leaf = MetaNode::leaf({3, 9, 27}, 0xDEADBEEF, 65536);
    const MetaNode back = deserialize_node(serialize_node(leaf));
    EXPECT_TRUE(back.is_leaf());
    EXPECT_EQ(back.chunk_uid, 0xDEADBEEFu);
    EXPECT_EQ(back.chunk_bytes, 65536u);
    EXPECT_EQ(back.replicas, (std::vector<NodeId>{3, 9, 27}));
}

TEST(NodeSerialization, EmptyReplicaLeaf) {
    const MetaNode hole = MetaNode::leaf({}, 0, 0);
    const MetaNode back = deserialize_node(serialize_node(hole));
    EXPECT_TRUE(back.is_leaf());
    EXPECT_TRUE(back.replicas.empty());
}

TEST(NodeSerialization, TruncatedInputRejected) {
    const Buffer raw = serialize_node(MetaNode::leaf({1, 2}, 5, 10));
    EXPECT_THROW(deserialize_node(ConstBytes(raw).first(raw.size() - 3)),
                 ConsistencyError);
    EXPECT_THROW(deserialize_node({}), ConsistencyError);
}

MetaKey key_of(std::uint64_t i) { return MetaKey{9, 3, {i * 2, 2}}; }

TEST(DiskMetaStore, PersistsAcrossReopen) {
    TempDir dir;
    {
        DiskMetaStore store(dir.path());
        store.put(key_of(1), MetaNode::inner({1, 1}, {1, 2}));
        store.put(key_of(2), MetaNode::leaf({5}, 77, 64));
        EXPECT_EQ(store.count(), 2u);
    }
    DiskMetaStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 2u);
    EXPECT_EQ(reopened.get(key_of(1)).left.version, 1u);
    EXPECT_EQ(reopened.get(key_of(2)).chunk_uid, 77u);
}

TEST(DiskMetaStore, VolatileLossFallsBackToDisk) {
    TempDir dir;
    DiskMetaStore store(dir.path());
    store.put(key_of(1), MetaNode::leaf({5}, 123, 64));
    store.lose_volatile();
    EXPECT_EQ(store.count(), 0u);  // RAM tier empty...
    EXPECT_EQ(store.get(key_of(1)).chunk_uid, 123u);  // ...disk serves
    EXPECT_EQ(store.count(), 1u);  // and re-populates
}

TEST(DiskMetaStore, EraseRemovesFile) {
    TempDir dir;
    DiskMetaStore store(dir.path());
    store.put(key_of(1), MetaNode::inner({}, {}));
    store.erase(key_of(1));
    EXPECT_FALSE(store.try_get(key_of(1)).has_value());
    DiskMetaStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 0u);
}

TEST(DiskMetaStore, IdempotentPut) {
    TempDir dir;
    DiskMetaStore store(dir.path());
    store.put(key_of(1), MetaNode::leaf({1}, 5, 8));
    store.put(key_of(1), MetaNode::leaf({1}, 5, 8));
    EXPECT_EQ(store.count(), 1u);
}

// ---- LogMetaStore -----------------------------------------------------------

TEST(LogMetaStore, PersistsAcrossReopen) {
    TempDir dir;
    {
        LogMetaStore store(dir.path());
        store.put(key_of(1), MetaNode::inner({1, 1}, {1, 2}));
        store.put(key_of(2), MetaNode::leaf({5}, 77, 64));
        EXPECT_EQ(store.count(), 2u);
    }
    LogMetaStore reopened(dir.path());
    EXPECT_EQ(reopened.durable_count(), 2u);
    EXPECT_EQ(reopened.get(key_of(1)).left.version, 1u);
    EXPECT_EQ(reopened.get(key_of(2)).chunk_uid, 77u);
    EXPECT_EQ(reopened.count(), 2u);  // reads re-populated the RAM tier
}

TEST(LogMetaStore, VolatileLossFallsBackToLog) {
    TempDir dir;
    LogMetaStore store(dir.path());
    store.put(key_of(1), MetaNode::leaf({5}, 123, 64));
    store.lose_volatile();
    EXPECT_EQ(store.count(), 0u);  // RAM tier empty...
    EXPECT_EQ(store.get(key_of(1)).chunk_uid, 123u);  // ...the log serves
    EXPECT_EQ(store.count(), 1u);  // and re-populates
}

TEST(LogMetaStore, EraseIsDurable) {
    TempDir dir;
    {
        LogMetaStore store(dir.path());
        store.put(key_of(1), MetaNode::inner({}, {}));
        store.erase(key_of(1));
        EXPECT_FALSE(store.try_get(key_of(1)).has_value());
    }
    LogMetaStore reopened(dir.path());
    EXPECT_EQ(reopened.durable_count(), 0u);
    EXPECT_FALSE(reopened.try_get(key_of(1)).has_value());
}

TEST(LogMetaStore, IdempotentPut) {
    TempDir dir;
    LogMetaStore store(dir.path());
    store.put(key_of(1), MetaNode::leaf({1}, 5, 8));
    store.put(key_of(1), MetaNode::leaf({1}, 5, 8));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.engine().stats().appends, 1u);

    // Idempotent even when only the log knows the node (post-crash put
    // replay must not append a duplicate record).
    store.lose_volatile();
    store.put(key_of(1), MetaNode::leaf({1}, 5, 8));
    EXPECT_EQ(store.engine().stats().appends, 1u);
}

TEST(ClusterMetaPersistence, MetadataSurvivesVolatileCrash) {
    TempDir dir;
    auto cfg = blobseer::testing::fast_config();
    cfg.meta_store = core::ClusterConfig::MetaBackend::kDisk;
    cfg.disk_root = dir.path();
    cfg.meta_replication = 1;  // no DHT replica to hide behind
    core::Cluster cluster(cfg);
    auto client = cluster.make_client();
    core::Blob blob = client->create(64);
    const Buffer data = make_pattern(blob.id(), 1, 0, 64 * 16);
    blob.write(0, data);

    // Crash every metadata provider, losing all volatile state. With
    // RAM-backed metadata this kills the blob (see
    // Fault.MetadataLossWithoutReplicationBreaksReads); with disk-backed
    // metadata reads recover from the files.
    for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
        cluster.metadata_provider(i).lose_state();
    }

    auto reader = cluster.make_client();  // cold cache: must hit providers
    Buffer out(data.size());
    EXPECT_EQ(reader->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
}

TEST(ClusterLogPersistence, MetadataSurvivesVolatileCrash) {
    TempDir dir;
    auto cfg = blobseer::testing::fast_config();
    cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
    cfg.disk_root = dir.path();
    cfg.meta_replication = 1;
    core::Cluster cluster(cfg);
    auto client = cluster.make_client();
    core::Blob blob = client->create(64);
    const Buffer data = make_pattern(blob.id(), 1, 0, 64 * 16);
    blob.write(0, data);

    for (std::size_t i = 0; i < cluster.metadata_provider_count(); ++i) {
        cluster.metadata_provider(i).lose_state();
    }

    auto reader = cluster.make_client();
    Buffer out(data.size());
    EXPECT_EQ(reader->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
}

/// The whole-deployment restart path: chunk data, metadata trees and the
/// version manager's journal all live in log engines under one disk
/// root; tearing the cluster down and rebuilding it on the same root
/// must serve every published version byte-identically.
TEST(ClusterLogPersistence, FullRestartRoundTrip) {
    TempDir dir;
    auto cfg = blobseer::testing::fast_config();
    cfg.store = core::StoreBackend::kLog;
    cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
    cfg.durable_version_manager = true;
    cfg.disk_root = dir.path();
    cfg.default_replication = 2;

    const std::uint64_t chunk = 64;
    const std::size_t v1_size = chunk * 16;
    const std::size_t append_size = chunk * 4;
    BlobId blob_id = kInvalidBlob;
    {
        core::Cluster cluster(cfg);
        auto client = cluster.make_client();
        core::Blob blob = client->create(chunk);
        blob_id = blob.id();
        blob.write(0, make_pattern(blob_id, 1, 0, v1_size));
        blob.append(make_pattern(blob_id, 2, 0, append_size));
    }  // daemon restart: everything volatile is gone

    core::Cluster restarted(cfg);
    auto client = restarted.make_client();

    const auto latest = client->stat(blob_id, kLatestVersion);
    EXPECT_EQ(latest.version, 2u);
    EXPECT_EQ(latest.size, v1_size + append_size);

    Buffer v1(v1_size);
    EXPECT_EQ(client->read(blob_id, 1, 0, v1), v1_size);
    EXPECT_TRUE(blobseer::testing::matches(blob_id, 1, 0, v1));

    Buffer tail(append_size);
    EXPECT_EQ(client->read(blob_id, 2, v1_size, tail), append_size);
    EXPECT_TRUE(blobseer::testing::matches(blob_id, 2, 0, tail));

    // And the restarted deployment keeps writing correctly: the
    // post-restart client re-mints the same client id and counter as
    // the pre-restart one, so without the per-boot uid epoch its first
    // chunks would collide with v1's and the idempotent put would
    // silently keep the OLD bytes. Reading v3 back catches that.
    core::Blob blob = client->open(blob_id);
    const Version v3 = blob.append(make_pattern(blob_id, 3, 0, chunk));
    EXPECT_EQ(v3, 3u);
    Buffer v3_tail(chunk);
    EXPECT_EQ(client->read(blob_id, 3, v1_size + append_size, v3_tail),
              chunk);
    EXPECT_TRUE(blobseer::testing::matches(blob_id, 3, 0, v3_tail));

    // Overwriting v1's range after restart must also store fresh bytes.
    const Version v4 = blob.write(0, make_pattern(blob_id, 4, 0, v1_size));
    EXPECT_EQ(v4, 4u);
    Buffer v4_head(v1_size);
    EXPECT_EQ(client->read(blob_id, 4, 0, v4_head), v1_size);
    EXPECT_TRUE(blobseer::testing::matches(blob_id, 4, 0, v4_head));
    // The old snapshot still reads its own bytes (no uid collision
    // overwrote them).
    Buffer v1_again(v1_size);
    EXPECT_EQ(client->read(blob_id, 1, 0, v1_again), v1_size);
    EXPECT_TRUE(blobseer::testing::matches(blob_id, 1, 0, v1_again));
}

/// kOpClone replay: a same-shard clone journaled by one session must be
/// rebuilt by the next — the origin alias, version-0 size, and the pin
/// that protects the origin snapshot from retirement.
TEST(VmJournal, CloneReplaysAcrossRestart) {
    TempDir dir;
    engine::EngineConfig jc;
    jc.dir = dir.path() / "vm-0";
    jc.background_compaction = false;
    jc.checkpoint_interval_records = 0;

    BlobId src = kInvalidBlob;
    BlobId clone = kInvalidBlob;
    {
        version::VersionManager vm;
        vm.attach_journal(std::make_shared<engine::LogEngine>(jc));
        const auto b = vm.create_blob(8, 2);
        src = b.id;
        const auto a = vm.assign(src, 0, 24);
        vm.commit(src, a.version);
        clone = vm.clone_blob(src, 1).id;
    }  // restart: in-memory state gone, journal remains

    version::VersionManager vm;
    vm.attach_journal(std::make_shared<engine::LogEngine>(jc));
    EXPECT_EQ(vm.blob_count(), 2u);

    const auto v0 = vm.get_version(clone, 0);
    EXPECT_EQ(v0.size, 24u);
    EXPECT_EQ(v0.tree.blob, src);
    EXPECT_EQ(v0.tree.version, 1u);
    EXPECT_EQ(vm.pinned(src), (std::vector<Version>{1}));

    // The rebuilt state keeps functioning: an append to the clone bases
    // on the restored alias.
    const auto ca = vm.assign(clone, std::nullopt, 8);
    EXPECT_EQ(ca.offset, 24u);
    EXPECT_EQ(ca.base.blob, src);
}

/// kOpCloneFrom replay: with a sharded version-manager deployment every
/// client clone goes through the resolve + pin + clone_from protocol; a
/// full cluster restart must replay both shards' journals and restore
/// the clone's cross-shard origin alias end to end (byte-identical
/// readback through the origin's tree).
TEST(VmJournal, ShardedClusterRestartReplaysClientClone) {
    TempDir dir;
    auto cfg = blobseer::testing::fast_config();
    cfg.store = core::StoreBackend::kLog;
    cfg.meta_store = core::ClusterConfig::MetaBackend::kLog;
    cfg.durable_version_manager = true;
    cfg.disk_root = dir.path();
    cfg.num_version_managers = 2;

    const std::uint64_t chunk = 64;
    const std::size_t size = chunk * 8;
    BlobId src = kInvalidBlob;
    BlobId clone = kInvalidBlob;
    {
        core::Cluster cluster(cfg);
        auto client = cluster.make_client();
        core::Blob blob = client->create(chunk);
        src = blob.id();
        blob.write(0, make_pattern(src, 1, 0, size));
        clone = client->clone(src).id();
    }

    core::Cluster restarted(cfg);
    auto client = restarted.make_client();

    // The clone's version 0 reads the origin's bytes through the
    // replayed alias.
    Buffer out(size);
    EXPECT_EQ(client->read(clone, 0, 0, out), size);
    EXPECT_TRUE(blobseer::testing::matches(src, 1, 0, out));

    // Writing to the restored clone diverges it without touching the
    // origin.
    core::Blob ch = client->open(clone);
    EXPECT_EQ(ch.write(0, make_pattern(clone, 2, 0, chunk)), 1u);
    Buffer head(chunk);
    EXPECT_EQ(client->read(clone, 1, 0, head), chunk);
    EXPECT_TRUE(blobseer::testing::matches(clone, 2, 0, head));
    Buffer src_head(chunk);
    EXPECT_EQ(client->read(src, 1, 0, src_head), chunk);
    EXPECT_TRUE(blobseer::testing::matches(src, 1, 0, src_head));

    // The origin snapshot came back pinned on its shard, so retiring
    // the source blob can never pull the tree out from under the clone.
    auto& src_vm =
        restarted.version_manager(blob_shard(src));
    EXPECT_EQ(src_vm.pinned(src), (std::vector<Version>{1}));
}

}  // namespace
}  // namespace blobseer::meta
