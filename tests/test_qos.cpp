/// \file test_qos.cpp
/// \brief Tests of the QoS substrate: monitoring deltas, k-means,
///        behaviour-state classification and placement feedback.

#include <gtest/gtest.h>

#include "qos/behavior_model.hpp"
#include "qos/failure_schedule.hpp"
#include "qos/kmeans.hpp"
#include "qos/monitor.hpp"
#include "testing_util.hpp"

namespace blobseer::qos {
namespace {

// ---- kmeans ----------------------------------------------------------------

TEST(KMeans, SeparatesObviousClusters) {
    std::vector<FeatureVec> points;
    for (int i = 0; i < 20; ++i) {
        points.push_back({0.0 + i * 0.001, 0.0});
        points.push_back({10.0 + i * 0.001, 10.0});
    }
    const auto r = kmeans(points, 2, 50, 1);
    ASSERT_EQ(r.centroids.size(), 2u);
    // All even-index points together, all odd-index together.
    for (std::size_t i = 2; i < points.size(); i += 2) {
        EXPECT_EQ(r.assignment[i], r.assignment[0]);
        EXPECT_EQ(r.assignment[i + 1], r.assignment[1]);
    }
    EXPECT_NE(r.assignment[0], r.assignment[1]);
    EXPECT_LT(r.inertia, 1.0);
}

TEST(KMeans, DeterministicPerSeed) {
    std::vector<FeatureVec> points;
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        points.push_back({rng.uniform(), rng.uniform()});
    }
    const auto a = kmeans(points, 4, 30, 9);
    const auto b = kmeans(points, 4, 30, 9);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeans, HandlesDegenerateInputs) {
    EXPECT_TRUE(kmeans({}, 3, 10, 1).centroids.empty());
    const std::vector<FeatureVec> one{{1.0, 2.0}};
    const auto r = kmeans(one, 5, 10, 1);
    EXPECT_EQ(r.centroids.size(), 1u);
    // Identical points collapse to a single centroid.
    const std::vector<FeatureVec> same(10, FeatureVec{4.0});
    EXPECT_LE(kmeans(same, 3, 10, 1).inertia, 1e-12);
}

// ---- monitor --------------------------------------------------------------------

TEST(Monitor, CapturesDeltasPerWindow) {
    core::Cluster cluster(blobseer::testing::fast_config());
    auto client = cluster.make_client();
    ClusterMonitor monitor(cluster);

    monitor.sample();  // baseline window (all zeros)
    core::Blob blob = client->create(64);
    blob.write(0, Buffer(64 * 8, 1));
    monitor.sample();
    Buffer out(64 * 8);
    blob.read(1, 0, out);
    monitor.sample();

    ASSERT_EQ(monitor.windows(), 3u);
    std::uint64_t written_w1 = 0;
    std::uint64_t read_w2 = 0;
    std::uint64_t read_w1 = 0;
    for (std::size_t p = 0; p < monitor.providers(); ++p) {
        written_w1 += monitor.history()[p][1].write_bytes;
        read_w1 += monitor.history()[p][1].read_bytes;
        read_w2 += monitor.history()[p][2].read_bytes;
    }
    EXPECT_EQ(written_w1, 64u * 8);  // the write landed in window 1
    EXPECT_EQ(read_w1, 0u);
    EXPECT_EQ(read_w2, 64u * 8);     // the read landed in window 2
}

TEST(Monitor, TracksLiveness) {
    core::Cluster cluster(blobseer::testing::fast_config());
    ClusterMonitor monitor(cluster);
    cluster.kill_data_provider(1);
    monitor.sample();
    EXPECT_TRUE(monitor.latest(0).alive);
    EXPECT_FALSE(monitor.latest(1).alive);
}

// ---- behaviour model ------------------------------------------------------------

/// Hand-built monitor-like history: healthy providers serve bytes with
/// no errors; the sick one shows errors and congestion.
class ModelFixture : public ::testing::Test {
  protected:
    static ProviderSample healthy() {
        return ProviderSample{1 << 20, 1 << 20, 0, 0.1, true};
    }
    static ProviderSample sick() {
        return ProviderSample{1 << 10, 0, 5, 50.0, true};
    }
    static ProviderSample dead() {
        return ProviderSample{0, 0, 0, 0.0, false};
    }
};

TEST_F(ModelFixture, FlagsDangerousStates) {
    core::Cluster cluster(blobseer::testing::fast_config());
    ClusterMonitor monitor(cluster);
    // Build history through the real monitor API by injecting behaviour:
    // provider 0 stays healthy (traffic), provider 1 is killed.
    auto client = cluster.make_client();
    core::Blob blob = client->create(64, 1);
    for (int w = 0; w < 6; ++w) {
        blob.append(Buffer(64 * 4, 1));
        if (w == 2) {
            cluster.kill_data_provider(1);
        }
        monitor.sample();
    }

    BehaviorModel model(BehaviorConfig{.states = 3,
                                       .kmeans_iterations = 30,
                                       .seed = 5,
                                       .error_threshold = 0.5,
                                       .backlog_threshold_ms = 5.0,
                                       .dangerous_health = 0.0});
    model.fit(monitor);
    EXPECT_TRUE(model.fitted());
    EXPECT_GE(model.state_count(), 2u);
    EXPECT_GE(model.dangerous_states(), 1u);

    // Classification: a dead sample lands in a dangerous state, a busy
    // healthy one does not.
    EXPECT_TRUE(model.is_dangerous(model.classify(dead())));
    EXPECT_FALSE(model.is_dangerous(model.classify(healthy())));
}

TEST_F(ModelFixture, FeedbackStealsPlacementFromSickProviders) {
    core::Cluster cluster(blobseer::testing::fast_config());
    ClusterMonitor monitor(cluster);
    auto client = cluster.make_client();
    core::Blob blob = client->create(64, 1);
    for (int w = 0; w < 6; ++w) {
        blob.append(Buffer(64 * 4, 1));
        if (w == 2) {
            cluster.kill_data_provider(2);
            // Keep the provider manager oblivious: feedback, not the
            // heartbeat path, must do the avoidance.
            cluster.provider_manager().mark_alive(
                cluster.data_provider(2).node());
        }
        monitor.sample();
    }
    BehaviorModel model;
    model.fit(monitor);
    const std::size_t flagged = model.apply_feedback(monitor, cluster);
    EXPECT_GE(flagged, 1u);
    EXPECT_LT(cluster.provider_manager().health(
                  cluster.data_provider(2).node()),
              0.25);
    EXPECT_GE(cluster.provider_manager().health(
                  cluster.data_provider(0).node()),
              0.99);
}

TEST(Monitor, SlownessExposesGrayFailure) {
    // A degraded provider still answers (heartbeats see it alive) but
    // delivers far fewer real bytes per NIC-busy-second. The slowness
    // feature must expose it and the behaviour model must flag it.
    auto cfg = blobseer::testing::fast_config();
    cfg.network.latency = microseconds(20);
    cfg.network.node_bandwidth_bps = 200ULL << 20;
    cfg.data_providers = 2;
    core::Cluster cluster(cfg);
    auto client = cluster.make_client();
    core::Blob blob = client->create(64 << 10, 1);

    cluster.degrade_data_provider(1, 16.0);
    ClusterMonitor monitor(cluster);
    monitor.sample();  // baseline window
    // Traffic to both providers (round-robin placement alternates).
    for (int i = 0; i < 8; ++i) {
        blob.append(Buffer(64 << 10, 1));
    }
    monitor.sample();

    const auto& healthy = monitor.latest(0);
    const auto& gray = monitor.latest(1);
    EXPECT_TRUE(gray.alive) << "gray failure: node still answers";
    EXPECT_LT(healthy.slowness, 0.3);
    EXPECT_GT(gray.slowness, 0.5);

    BehaviorModel model;
    model.fit(monitor);
    EXPECT_TRUE(model.is_dangerous(model.classify(gray)));
    EXPECT_FALSE(model.is_dangerous(model.classify(healthy)));

    // After restoration and fresh traffic the signal clears.
    cluster.restore_data_provider(1);
    for (int i = 0; i < 8; ++i) {
        blob.append(Buffer(64 << 10, 1));
    }
    monitor.sample();
    EXPECT_LT(monitor.latest(1).slowness, 0.3);
}

// ---- failure schedule ---------------------------------------------------------------

TEST(FailureSchedule, AppliesEventsInOrder) {
    core::Cluster cluster(blobseer::testing::fast_config());
    FailureSchedule schedule(std::vector<FailureEvent>{
        {1.0, FailureEvent::Kind::kKill, 0, false, 1.0, {}},
        {2.0, FailureEvent::Kind::kRecover, 0, false, 1.0, {}},
        {3.0, FailureEvent::Kind::kDegrade, 1, false, 4.0, {}},
    });
    EXPECT_EQ(schedule.pending(), 3u);
    EXPECT_EQ(schedule.run_until(cluster, 0.5), 0u);
    EXPECT_EQ(schedule.run_until(cluster, 1.5), 1u);
    EXPECT_FALSE(cluster.network().is_alive(cluster.data_provider(0).node()));
    EXPECT_EQ(schedule.run_until(cluster, 10.0), 2u);
    EXPECT_TRUE(cluster.network().is_alive(cluster.data_provider(0).node()));
    EXPECT_EQ(schedule.pending(), 0u);
}

TEST(FailureSchedule, RandomScheduleIsDeterministicAndBounded) {
    const auto a = FailureSchedule::random(4, 60.0, 10.0, 3.0, 0.5, 7);
    const auto b = FailureSchedule::random(4, 60.0, 10.0, 3.0, 0.5, 7);
    ASSERT_EQ(a.events().size(), b.events().size());
    EXPECT_FALSE(a.events().empty());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].at_seconds, b.events()[i].at_seconds);
        EXPECT_EQ(a.events()[i].provider, b.events()[i].provider);
        EXPECT_LT(a.events()[i].provider, 4u);
        EXPECT_LE(a.events()[i].at_seconds, 60.0);
    }
}

}  // namespace
}  // namespace blobseer::qos
