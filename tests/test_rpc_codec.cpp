/// \file test_rpc_codec.cpp
/// \brief Wire-codec property tests: random messages round-trip
///        identically; truncated and corrupted frames raise RpcError and
///        never invoke UB.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "rpc/messages.hpp"
#include "rpc/protocol.hpp"
#include "rpc/wire.hpp"

namespace blobseer::rpc {
namespace {

// ---- primitives -------------------------------------------------------------

TEST(Wire, FixedWidthRoundTrip) {
    WireWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    r.expect_end();
}

TEST(Wire, VarintRoundTripBoundaries) {
    const std::uint64_t cases[] = {0,
                                   1,
                                   127,
                                   128,
                                   16383,
                                   16384,
                                   (1ULL << 32) - 1,
                                   1ULL << 32,
                                   ~0ULL};
    for (const std::uint64_t v : cases) {
        WireWriter w;
        w.varint(v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(r.varint(), v) << v;
        r.expect_end();
    }
}

TEST(Wire, VarintRandomRoundTrip) {
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        // Bias towards small values but cover the whole range.
        const std::uint64_t v = rng() >> (rng() % 64);
        WireWriter w;
        w.varint(v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(r.varint(), v);
    }
}

TEST(Wire, TruncatedReadsThrow) {
    WireWriter w;
    w.u64(42);
    Buffer buf = w.take();
    buf.resize(5);
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)r.u64(), RpcError);
}

TEST(Wire, OversizedBlobLengthThrows) {
    WireWriter w;
    w.varint(1ULL << 40);  // claims a terabyte of payload
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)r.blob(), RpcError);
}

TEST(Wire, OverlongVarintThrows) {
    const Buffer buf(11, 0xff);  // 11 continuation bytes
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)r.varint(), RpcError);
}

TEST(Wire, TrailingBytesDetected) {
    WireWriter w;
    w.u32(1);
    w.u8(9);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    (void)r.u32();
    EXPECT_THROW(r.expect_end(), RpcError);
}

// ---- random message generators ----------------------------------------------

meta::MetaNode random_node(Rng& rng) {
    if (rng() % 2 == 0) {
        std::vector<NodeId> replicas;
        const std::size_t n = rng() % 5;
        for (std::size_t i = 0; i < n; ++i) {
            replicas.push_back(static_cast<NodeId>(rng()));
        }
        return meta::MetaNode::leaf(std::move(replicas), rng(),
                                    static_cast<std::uint32_t>(rng()));
    }
    meta::ChildRef l{rng(), rng()};
    meta::ChildRef r{rng(), rng()};
    return meta::MetaNode::inner(l, r);
}

meta::WriteDescriptor random_descriptor(Rng& rng) {
    meta::WriteDescriptor d;
    d.version = rng();
    d.offset = rng();
    d.size = rng();
    d.size_before = rng();
    d.size_after = rng();
    return d;
}

version::AssignResult random_assign(Rng& rng) {
    version::AssignResult a;
    a.version = rng();
    a.offset = rng();
    a.size_before = rng();
    a.size_after = rng();
    a.base = meta::TreeRef{rng(), rng(), rng()};
    const std::size_t n = rng() % 6;
    for (std::size_t i = 0; i < n; ++i) {
        a.concurrent.push_back(random_descriptor(rng));
    }
    a.chunk_size = rng();
    a.replication = static_cast<std::uint32_t>(rng());
    return a;
}

bool equal(const meta::MetaNode& a, const meta::MetaNode& b) {
    return a.kind == b.kind && a.left == b.left && a.right == b.right &&
           a.replicas == b.replicas && a.chunk_uid == b.chunk_uid &&
           a.chunk_bytes == b.chunk_bytes;
}

// ---- composite round trips ---------------------------------------------------

TEST(Codec, MetaNodeRandomRoundTrip) {
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const meta::MetaNode n = random_node(rng);
        WireWriter w;
        put_meta_node(w, n);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        const meta::MetaNode back = get_meta_node(r);
        r.expect_end();
        EXPECT_TRUE(equal(n, back));
    }
}

TEST(Codec, AssignResultRandomRoundTrip) {
    Rng rng(13);
    for (int i = 0; i < 300; ++i) {
        const version::AssignResult a = random_assign(rng);
        WireWriter w;
        put_assign_result(w, a);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        const version::AssignResult back = get_assign_result(r);
        r.expect_end();
        EXPECT_EQ(back.version, a.version);
        EXPECT_EQ(back.offset, a.offset);
        EXPECT_EQ(back.size_before, a.size_before);
        EXPECT_EQ(back.size_after, a.size_after);
        EXPECT_EQ(back.base.blob, a.base.blob);
        EXPECT_EQ(back.base.version, a.base.version);
        EXPECT_EQ(back.base.size, a.base.size);
        EXPECT_EQ(back.chunk_size, a.chunk_size);
        EXPECT_EQ(back.replication, a.replication);
        ASSERT_EQ(back.concurrent.size(), a.concurrent.size());
        for (std::size_t k = 0; k < a.concurrent.size(); ++k) {
            EXPECT_EQ(back.concurrent[k].version, a.concurrent[k].version);
            EXPECT_EQ(back.concurrent[k].offset, a.concurrent[k].offset);
            EXPECT_EQ(back.concurrent[k].size, a.concurrent[k].size);
        }
    }
}

TEST(Codec, RetireInfoRoundTrip) {
    Rng rng(17);
    version::VersionManager::RetireInfo info;
    for (int i = 0; i < 7; ++i) {
        info.retired.push_back(rng());
        info.descriptors.push_back(random_descriptor(rng));
        info.pinned.push_back(rng());
    }
    info.keep_from = rng();
    WireWriter w;
    put_retire_info(w, info);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    const auto back = get_retire_info(r);
    r.expect_end();
    EXPECT_EQ(back.retired, info.retired);
    EXPECT_EQ(back.pinned, info.pinned);
    EXPECT_EQ(back.keep_from, info.keep_from);
    ASSERT_EQ(back.descriptors.size(), info.descriptors.size());
}

TEST(Codec, PlacementPlanRoundTrip) {
    Rng rng(19);
    provider::PlacementPlan plan;
    for (int i = 0; i < 9; ++i) {
        std::vector<NodeId> targets;
        const std::size_t n = rng() % 4;
        for (std::size_t k = 0; k < n; ++k) {
            targets.push_back(static_cast<NodeId>(rng()));
        }
        plan.push_back(std::move(targets));
    }
    WireWriter w;
    put_placement_plan(w, plan);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_placement_plan(r), plan);
    r.expect_end();
}

TEST(Codec, TopologyRoundTrip) {
    Topology t;
    t.vm_nodes = {0, 9};
    t.pm_node = 1;
    t.data_nodes = {2, 3, 4};
    t.meta_nodes = {5, 6};
    t.meta_replication = 2;
    t.default_replication = 3;
    t.publish_timeout_ms = 12345;
    t.client_id = 1u << 20;
    // v6: external provider daemons carried as dial endpoints.
    t.provider_endpoints = {{1u << 21, "10.0.0.7", 40001},
                            {(1u << 21) + 1, "dp-b.example", 40002}};
    WireWriter w;
    put_topology(w, t);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_topology(r), t);
    r.expect_end();
}

// ---- membership & repair (protocol v6) --------------------------------------

chunk::ChunkKey random_key(Rng& rng) {
    chunk::ChunkKey k;
    k.blob = rng();
    k.uid = rng();
    k.kind = (rng() % 2 == 0) ? chunk::ChunkKey::Kind::kUid
                              : chunk::ChunkKey::Kind::kContent;
    return k;
}

TEST(Codec, ChunkHoldingsRandomRoundTrip) {
    Rng rng(29);
    for (int i = 0; i < 200; ++i) {
        std::vector<provider::ChunkHolding> v;
        const std::size_t n = rng() % 8;
        for (std::size_t k = 0; k < n; ++k) {
            v.push_back({random_key(rng), rng()});
        }
        WireWriter w;
        put_chunk_holdings(w, v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(get_chunk_holdings(r), v);
        r.expect_end();
    }
}

TEST(Codec, ChunkKeysRandomRoundTrip) {
    Rng rng(31);
    for (int i = 0; i < 200; ++i) {
        std::vector<chunk::ChunkKey> v;
        const std::size_t n = rng() % 8;
        for (std::size_t k = 0; k < n; ++k) {
            v.push_back(random_key(rng));
        }
        WireWriter w;
        put_chunk_keys(w, v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(get_chunk_keys(r), v);
        r.expect_end();
    }
}

TEST(Codec, ProviderHealthRoundTrip) {
    provider::ProviderHealth h;
    h.node = 1u << 21;
    h.alive = true;
    h.heartbeating = true;
    h.beats = 420;
    h.last_beat_age_ms = 1234;
    h.chunks = 77;
    h.bytes = 1ULL << 33;
    WireWriter w;
    put_provider_health(w, h);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_provider_health(r), h);
    r.expect_end();

    // The never-beaten sentinel (~0) must survive the wire unchanged —
    // the CLI renders it as "never", not as a huge age.
    provider::ProviderHealth silent;
    silent.node = 3;
    silent.last_beat_age_ms = ~0ull;
    WireWriter w2;
    put_provider_health(w2, silent);
    const Buffer buf2 = w2.take();
    WireReader r2{ConstBytes(buf2)};
    EXPECT_EQ(get_provider_health(r2).last_beat_age_ms, ~0ull);
    r2.expect_end();
}

TEST(Codec, RepairStatusRoundTrip) {
    Rng rng(37);
    provider::RepairStatus s;
    s.backlog = rng();
    s.high_water = rng();
    s.enqueued = rng();
    s.completed = rng();
    s.skipped = rng();
    s.failed = rng();
    s.deferred = rng();
    s.under_replicated = rng();
    for (int i = 0; i < 5; ++i) {
        provider::ProviderHealth h;
        h.node = static_cast<NodeId>(rng());
        h.alive = rng() % 2 == 0;
        h.heartbeating = rng() % 2 == 0;
        h.beats = rng();
        h.last_beat_age_ms = rng();
        h.chunks = rng();
        h.bytes = rng();
        s.providers.push_back(h);
    }
    WireWriter w;
    put_repair_status(w, s);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_repair_status(r), s);
    r.expect_end();
}

TEST(Codec, VersionStatusRejectsUnknownValue) {
    Buffer buf{0x17};
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)get_version_status(r), RpcError);
}

// ---- frames ------------------------------------------------------------------

TEST(Frame, RequestRoundTrip) {
    WireWriter body;
    body.u64(77);
    const Buffer frame = seal_request(MsgType::kGetVersion, 9,
                                      std::move(body));
    const FrameView f = parse_frame(frame);
    EXPECT_FALSE(f.response);
    EXPECT_EQ(f.type, MsgType::kGetVersion);
    EXPECT_EQ(f.dst(), 9u);
    WireReader r(f.payload);
    EXPECT_EQ(r.u64(), 77u);
    r.expect_end();
}

TEST(Frame, ErrorResponseCarriesStatusAndMessage) {
    const Buffer frame =
        seal_error(MsgType::kChunkGet, Status::kNotFound, "gone");
    const FrameView f = parse_frame(frame);
    EXPECT_TRUE(f.response);
    EXPECT_EQ(f.status(), Status::kNotFound);
    WireReader r(f.payload);
    EXPECT_THROW(throw_status(f.status(), r.str()), NotFoundError);
}

TEST(Frame, EveryTruncationThrows) {
    WireWriter body;
    body.u64(1);
    body.str("hello");
    const Buffer frame = seal_request(MsgType::kAssign, 3, std::move(body));
    for (std::size_t n = 0; n < frame.size(); ++n) {
        EXPECT_THROW((void)parse_frame(ConstBytes(frame.data(), n)),
                     RpcError)
            << "prefix length " << n;
    }
}

TEST(Frame, RandomCorruptionNeverUB) {
    // Flip bytes all over valid frames; parse + payload decode must
    // either succeed or throw RpcError — anything else (crash, UB,
    // foreign exception) fails the test.
    Rng rng(23);
    WireWriter body;
    body.u64(4);
    body.u64(2);
    const Buffer pristine =
        seal_request(MsgType::kGetVersion, 1, std::move(body));
    for (int i = 0; i < 4000; ++i) {
        Buffer frame = pristine;
        const std::size_t flips = 1 + rng() % 4;
        for (std::size_t k = 0; k < flips; ++k) {
            frame[rng() % frame.size()] ^=
                static_cast<std::uint8_t>(1 + rng() % 255);
        }
        try {
            const FrameView f = parse_frame(frame);
            WireReader r(f.payload);
            (void)r.u64();
            (void)r.u64();
            r.expect_end();
        } catch (const RpcError&) {
            // expected failure mode
        }
    }
}

TEST(Frame, PayloadLengthMismatchThrows) {
    WireWriter body;
    body.u64(1);
    Buffer frame = seal_request(MsgType::kCommit, 0, std::move(body));
    frame.push_back(0x00);  // extra byte the header does not announce
    EXPECT_THROW((void)parse_frame(frame), RpcError);
}

// ---- v7 header layout (wire ABI pin) -----------------------------------------

TEST(FrameV7, GoldenHeaderLayout) {
    // Byte-exact pin of the 40-byte v7 header. If this test breaks, the
    // wire ABI changed: bump kWireVersion and update DESIGN.md §7.
    static_assert(kWireVersion == 7);
    static_assert(kFrameHeaderSize == 40);
    static_assert(kFrameCorrOffset == 16);
    static_assert(kFrameTraceOffset == 24);

    WireWriter body;
    body.u64(0x1122334455667788ULL);
    Buffer frame = seal_request(MsgType::kGetVersion, 0x0a0b0c0d,
                                std::move(body));
    set_frame_corr(frame, 0x00c0ffee00c0ffeeULL);
    trace::TraceContext ctx;
    ctx.trace_id = 0xfeedfacecafebeefULL;
    ctx.span_id = 0x21436587u;
    ctx.flags = trace::TraceContext::kSampled;
    set_frame_trace(frame, ctx);

    ASSERT_EQ(frame.size(), kFrameHeaderSize + 8);
    const std::uint8_t expected_header[kFrameHeaderSize] = {
        0x50, 0x52, 0x53, 0x42,  //  0: magic "PRSB" little-endian
        0x07,                    //  4: wire version
        0x00,                    //  5: kind = request
        0x15, 0x00,              //  6: MsgType::kGetVersion tag (21)
        0x0d, 0x0c, 0x0b, 0x0a,  //  8: destination node id
        0x08, 0x00, 0x00, 0x00,  // 12: payload length
        0xee, 0xff, 0xc0, 0x00, 0xee, 0xff, 0xc0, 0x00,  // 16: corr id
        0xef, 0xbe, 0xfe, 0xca, 0xce, 0xfa, 0xed, 0xfe,  // 24: trace id
        0x87, 0x65, 0x43, 0x21,  // 32: span id
        0x01,                    // 36: flags (sampled)
        0x00, 0x00, 0x00,        // 37: reserved, zero
    };
    for (std::size_t i = 0; i < kFrameHeaderSize; ++i) {
        EXPECT_EQ(frame[i], expected_header[i]) << "header byte " << i;
    }
    EXPECT_EQ(static_cast<std::uint16_t>(MsgType::kGetVersion), 21)
        << "update the golden bytes if the tag moved";
}

TEST(FrameV7, TraceContextRoundTrip) {
    Buffer frame = seal_request(MsgType::kAssign, 1, WireWriter{});
    // Untraced by default: sealed frames carry an all-zero context.
    EXPECT_EQ(frame_trace(frame), trace::TraceContext{});

    trace::TraceContext ctx;
    ctx.trace_id = 0xabcdef0123456789ULL;
    ctx.span_id = 0xdeadbeefu;
    ctx.flags = trace::TraceContext::kSampled;
    set_frame_trace(frame, ctx);
    EXPECT_EQ(frame_trace(frame), ctx);

    // The context must survive parse_frame untouched (and not disturb
    // the rest of the header).
    const FrameView f = parse_frame(frame);
    EXPECT_EQ(f.type, MsgType::kAssign);
    EXPECT_EQ(f.dst(), 1u);
    EXPECT_EQ(frame_trace(frame), ctx);
}

TEST(FrameV7, TraceAccessorsRejectShortFrames) {
    Buffer runt(kFrameHeaderSize - 1, 0);
    EXPECT_THROW((void)frame_trace(runt), RpcError);
    trace::TraceContext ctx;
    ctx.trace_id = 1;
    EXPECT_THROW(set_frame_trace(runt, ctx), RpcError);
}

// ---- observability payload codecs --------------------------------------------

TEST(MetricsCodec, SampleRoundTripsEveryKind) {
    MetricSample s;
    s.name = "rpc_server_latency_us";
    s.labels = {{"op", "chunk-put"}, {"node", "3"}};
    s.kind = MetricKind::kHistogram;
    s.value = 1;
    s.high_water = 2;
    s.count = 17;
    s.sum = 123456;
    s.min = 3;
    s.max = 99999;
    s.buckets = {{1, 4}, {255, 9}, {1023, 4}};

    WireWriter w;
    put_metric_sample(w, s);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    const MetricSample got = get_metric_sample(r);
    r.expect_end();
    EXPECT_EQ(got, s);
}

TEST(MetricsCodec, SnapshotRoundTrip) {
    MetricsSnapshot snap;
    for (int i = 0; i < 5; ++i) {
        MetricSample s;
        s.name = "series_" + std::to_string(i);
        s.labels = {{"i", std::to_string(i)}};
        s.kind = static_cast<MetricKind>(i);
        s.value = static_cast<std::uint64_t>(i) * 1000;
        snap.samples.push_back(std::move(s));
    }
    WireWriter w;
    put_metrics_snapshot(w, snap);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    const MetricsSnapshot got = get_metrics_snapshot(r);
    r.expect_end();
    EXPECT_EQ(got, snap);
}

TEST(TraceCodec, SpanRecordRoundTrip) {
    trace::SpanRecord s;
    s.trace_id = 0x1234567890abcdefULL;
    s.span_id = 42;
    s.parent_span = 7;
    s.start_unix_us = 1'700'000'000'000'000ULL;
    s.queue_us = 12;
    s.duration_us = 345;
    s.bytes = 65536;
    s.node = 9;
    s.kind = trace::SpanRecord::kServer;
    s.status = 2;
    s.set_op("chunk-push-some");

    WireWriter w;
    put_span_record(w, s);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    const trace::SpanRecord got = get_span_record(r);
    r.expect_end();
    EXPECT_EQ(std::memcmp(&got, &s, sizeof(s)), 0);
}

TEST(TraceCodec, SpanRecordVectorRoundTripAndTruncationThrows) {
    std::vector<trace::SpanRecord> spans(3);
    for (std::uint32_t i = 0; i < spans.size(); ++i) {
        spans[i].trace_id = 0xabc;
        spans[i].span_id = i + 1;
        spans[i].set_op("op");
    }
    WireWriter w;
    put_span_records(w, spans);
    const Buffer buf = w.take();
    {
        WireReader r{ConstBytes(buf)};
        const auto got = get_span_records(r);
        r.expect_end();
        ASSERT_EQ(got.size(), spans.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(std::memcmp(&got[i], &spans[i], sizeof spans[i]), 0);
        }
    }
    for (std::size_t n = 0; n < buf.size(); ++n) {
        WireReader r{ConstBytes(buf.data(), n)};
        EXPECT_THROW((void)get_span_records(r), RpcError)
            << "prefix length " << n;
    }
}

}  // namespace
}  // namespace blobseer::rpc
