/// \file test_rpc_codec.cpp
/// \brief Wire-codec property tests: random messages round-trip
///        identically; truncated and corrupted frames raise RpcError and
///        never invoke UB.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "rpc/messages.hpp"
#include "rpc/protocol.hpp"
#include "rpc/wire.hpp"

namespace blobseer::rpc {
namespace {

// ---- primitives -------------------------------------------------------------

TEST(Wire, FixedWidthRoundTrip) {
    WireWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    r.expect_end();
}

TEST(Wire, VarintRoundTripBoundaries) {
    const std::uint64_t cases[] = {0,
                                   1,
                                   127,
                                   128,
                                   16383,
                                   16384,
                                   (1ULL << 32) - 1,
                                   1ULL << 32,
                                   ~0ULL};
    for (const std::uint64_t v : cases) {
        WireWriter w;
        w.varint(v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(r.varint(), v) << v;
        r.expect_end();
    }
}

TEST(Wire, VarintRandomRoundTrip) {
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        // Bias towards small values but cover the whole range.
        const std::uint64_t v = rng() >> (rng() % 64);
        WireWriter w;
        w.varint(v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(r.varint(), v);
    }
}

TEST(Wire, TruncatedReadsThrow) {
    WireWriter w;
    w.u64(42);
    Buffer buf = w.take();
    buf.resize(5);
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)r.u64(), RpcError);
}

TEST(Wire, OversizedBlobLengthThrows) {
    WireWriter w;
    w.varint(1ULL << 40);  // claims a terabyte of payload
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)r.blob(), RpcError);
}

TEST(Wire, OverlongVarintThrows) {
    const Buffer buf(11, 0xff);  // 11 continuation bytes
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)r.varint(), RpcError);
}

TEST(Wire, TrailingBytesDetected) {
    WireWriter w;
    w.u32(1);
    w.u8(9);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    (void)r.u32();
    EXPECT_THROW(r.expect_end(), RpcError);
}

// ---- random message generators ----------------------------------------------

meta::MetaNode random_node(Rng& rng) {
    if (rng() % 2 == 0) {
        std::vector<NodeId> replicas;
        const std::size_t n = rng() % 5;
        for (std::size_t i = 0; i < n; ++i) {
            replicas.push_back(static_cast<NodeId>(rng()));
        }
        return meta::MetaNode::leaf(std::move(replicas), rng(),
                                    static_cast<std::uint32_t>(rng()));
    }
    meta::ChildRef l{rng(), rng()};
    meta::ChildRef r{rng(), rng()};
    return meta::MetaNode::inner(l, r);
}

meta::WriteDescriptor random_descriptor(Rng& rng) {
    meta::WriteDescriptor d;
    d.version = rng();
    d.offset = rng();
    d.size = rng();
    d.size_before = rng();
    d.size_after = rng();
    return d;
}

version::AssignResult random_assign(Rng& rng) {
    version::AssignResult a;
    a.version = rng();
    a.offset = rng();
    a.size_before = rng();
    a.size_after = rng();
    a.base = meta::TreeRef{rng(), rng(), rng()};
    const std::size_t n = rng() % 6;
    for (std::size_t i = 0; i < n; ++i) {
        a.concurrent.push_back(random_descriptor(rng));
    }
    a.chunk_size = rng();
    a.replication = static_cast<std::uint32_t>(rng());
    return a;
}

bool equal(const meta::MetaNode& a, const meta::MetaNode& b) {
    return a.kind == b.kind && a.left == b.left && a.right == b.right &&
           a.replicas == b.replicas && a.chunk_uid == b.chunk_uid &&
           a.chunk_bytes == b.chunk_bytes;
}

// ---- composite round trips ---------------------------------------------------

TEST(Codec, MetaNodeRandomRoundTrip) {
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const meta::MetaNode n = random_node(rng);
        WireWriter w;
        put_meta_node(w, n);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        const meta::MetaNode back = get_meta_node(r);
        r.expect_end();
        EXPECT_TRUE(equal(n, back));
    }
}

TEST(Codec, AssignResultRandomRoundTrip) {
    Rng rng(13);
    for (int i = 0; i < 300; ++i) {
        const version::AssignResult a = random_assign(rng);
        WireWriter w;
        put_assign_result(w, a);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        const version::AssignResult back = get_assign_result(r);
        r.expect_end();
        EXPECT_EQ(back.version, a.version);
        EXPECT_EQ(back.offset, a.offset);
        EXPECT_EQ(back.size_before, a.size_before);
        EXPECT_EQ(back.size_after, a.size_after);
        EXPECT_EQ(back.base.blob, a.base.blob);
        EXPECT_EQ(back.base.version, a.base.version);
        EXPECT_EQ(back.base.size, a.base.size);
        EXPECT_EQ(back.chunk_size, a.chunk_size);
        EXPECT_EQ(back.replication, a.replication);
        ASSERT_EQ(back.concurrent.size(), a.concurrent.size());
        for (std::size_t k = 0; k < a.concurrent.size(); ++k) {
            EXPECT_EQ(back.concurrent[k].version, a.concurrent[k].version);
            EXPECT_EQ(back.concurrent[k].offset, a.concurrent[k].offset);
            EXPECT_EQ(back.concurrent[k].size, a.concurrent[k].size);
        }
    }
}

TEST(Codec, RetireInfoRoundTrip) {
    Rng rng(17);
    version::VersionManager::RetireInfo info;
    for (int i = 0; i < 7; ++i) {
        info.retired.push_back(rng());
        info.descriptors.push_back(random_descriptor(rng));
        info.pinned.push_back(rng());
    }
    info.keep_from = rng();
    WireWriter w;
    put_retire_info(w, info);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    const auto back = get_retire_info(r);
    r.expect_end();
    EXPECT_EQ(back.retired, info.retired);
    EXPECT_EQ(back.pinned, info.pinned);
    EXPECT_EQ(back.keep_from, info.keep_from);
    ASSERT_EQ(back.descriptors.size(), info.descriptors.size());
}

TEST(Codec, PlacementPlanRoundTrip) {
    Rng rng(19);
    provider::PlacementPlan plan;
    for (int i = 0; i < 9; ++i) {
        std::vector<NodeId> targets;
        const std::size_t n = rng() % 4;
        for (std::size_t k = 0; k < n; ++k) {
            targets.push_back(static_cast<NodeId>(rng()));
        }
        plan.push_back(std::move(targets));
    }
    WireWriter w;
    put_placement_plan(w, plan);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_placement_plan(r), plan);
    r.expect_end();
}

TEST(Codec, TopologyRoundTrip) {
    Topology t;
    t.vm_nodes = {0, 9};
    t.pm_node = 1;
    t.data_nodes = {2, 3, 4};
    t.meta_nodes = {5, 6};
    t.meta_replication = 2;
    t.default_replication = 3;
    t.publish_timeout_ms = 12345;
    t.client_id = 1u << 20;
    // v6: external provider daemons carried as dial endpoints.
    t.provider_endpoints = {{1u << 21, "10.0.0.7", 40001},
                            {(1u << 21) + 1, "dp-b.example", 40002}};
    WireWriter w;
    put_topology(w, t);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_topology(r), t);
    r.expect_end();
}

// ---- membership & repair (protocol v6) --------------------------------------

chunk::ChunkKey random_key(Rng& rng) {
    chunk::ChunkKey k;
    k.blob = rng();
    k.uid = rng();
    k.kind = (rng() % 2 == 0) ? chunk::ChunkKey::Kind::kUid
                              : chunk::ChunkKey::Kind::kContent;
    return k;
}

TEST(Codec, ChunkHoldingsRandomRoundTrip) {
    Rng rng(29);
    for (int i = 0; i < 200; ++i) {
        std::vector<provider::ChunkHolding> v;
        const std::size_t n = rng() % 8;
        for (std::size_t k = 0; k < n; ++k) {
            v.push_back({random_key(rng), rng()});
        }
        WireWriter w;
        put_chunk_holdings(w, v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(get_chunk_holdings(r), v);
        r.expect_end();
    }
}

TEST(Codec, ChunkKeysRandomRoundTrip) {
    Rng rng(31);
    for (int i = 0; i < 200; ++i) {
        std::vector<chunk::ChunkKey> v;
        const std::size_t n = rng() % 8;
        for (std::size_t k = 0; k < n; ++k) {
            v.push_back(random_key(rng));
        }
        WireWriter w;
        put_chunk_keys(w, v);
        const Buffer buf = w.take();
        WireReader r{ConstBytes(buf)};
        EXPECT_EQ(get_chunk_keys(r), v);
        r.expect_end();
    }
}

TEST(Codec, ProviderHealthRoundTrip) {
    provider::ProviderHealth h;
    h.node = 1u << 21;
    h.alive = true;
    h.heartbeating = true;
    h.beats = 420;
    h.last_beat_age_ms = 1234;
    h.chunks = 77;
    h.bytes = 1ULL << 33;
    WireWriter w;
    put_provider_health(w, h);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_provider_health(r), h);
    r.expect_end();

    // The never-beaten sentinel (~0) must survive the wire unchanged —
    // the CLI renders it as "never", not as a huge age.
    provider::ProviderHealth silent;
    silent.node = 3;
    silent.last_beat_age_ms = ~0ull;
    WireWriter w2;
    put_provider_health(w2, silent);
    const Buffer buf2 = w2.take();
    WireReader r2{ConstBytes(buf2)};
    EXPECT_EQ(get_provider_health(r2).last_beat_age_ms, ~0ull);
    r2.expect_end();
}

TEST(Codec, RepairStatusRoundTrip) {
    Rng rng(37);
    provider::RepairStatus s;
    s.backlog = rng();
    s.high_water = rng();
    s.enqueued = rng();
    s.completed = rng();
    s.skipped = rng();
    s.failed = rng();
    s.deferred = rng();
    s.under_replicated = rng();
    for (int i = 0; i < 5; ++i) {
        provider::ProviderHealth h;
        h.node = static_cast<NodeId>(rng());
        h.alive = rng() % 2 == 0;
        h.heartbeating = rng() % 2 == 0;
        h.beats = rng();
        h.last_beat_age_ms = rng();
        h.chunks = rng();
        h.bytes = rng();
        s.providers.push_back(h);
    }
    WireWriter w;
    put_repair_status(w, s);
    const Buffer buf = w.take();
    WireReader r{ConstBytes(buf)};
    EXPECT_EQ(get_repair_status(r), s);
    r.expect_end();
}

TEST(Codec, VersionStatusRejectsUnknownValue) {
    Buffer buf{0x17};
    WireReader r{ConstBytes(buf)};
    EXPECT_THROW((void)get_version_status(r), RpcError);
}

// ---- frames ------------------------------------------------------------------

TEST(Frame, RequestRoundTrip) {
    WireWriter body;
    body.u64(77);
    const Buffer frame = seal_request(MsgType::kGetVersion, 9,
                                      std::move(body));
    const FrameView f = parse_frame(frame);
    EXPECT_FALSE(f.response);
    EXPECT_EQ(f.type, MsgType::kGetVersion);
    EXPECT_EQ(f.dst(), 9u);
    WireReader r(f.payload);
    EXPECT_EQ(r.u64(), 77u);
    r.expect_end();
}

TEST(Frame, ErrorResponseCarriesStatusAndMessage) {
    const Buffer frame =
        seal_error(MsgType::kChunkGet, Status::kNotFound, "gone");
    const FrameView f = parse_frame(frame);
    EXPECT_TRUE(f.response);
    EXPECT_EQ(f.status(), Status::kNotFound);
    WireReader r(f.payload);
    EXPECT_THROW(throw_status(f.status(), r.str()), NotFoundError);
}

TEST(Frame, EveryTruncationThrows) {
    WireWriter body;
    body.u64(1);
    body.str("hello");
    const Buffer frame = seal_request(MsgType::kAssign, 3, std::move(body));
    for (std::size_t n = 0; n < frame.size(); ++n) {
        EXPECT_THROW((void)parse_frame(ConstBytes(frame.data(), n)),
                     RpcError)
            << "prefix length " << n;
    }
}

TEST(Frame, RandomCorruptionNeverUB) {
    // Flip bytes all over valid frames; parse + payload decode must
    // either succeed or throw RpcError — anything else (crash, UB,
    // foreign exception) fails the test.
    Rng rng(23);
    WireWriter body;
    body.u64(4);
    body.u64(2);
    const Buffer pristine =
        seal_request(MsgType::kGetVersion, 1, std::move(body));
    for (int i = 0; i < 4000; ++i) {
        Buffer frame = pristine;
        const std::size_t flips = 1 + rng() % 4;
        for (std::size_t k = 0; k < flips; ++k) {
            frame[rng() % frame.size()] ^=
                static_cast<std::uint8_t>(1 + rng() % 255);
        }
        try {
            const FrameView f = parse_frame(frame);
            WireReader r(f.payload);
            (void)r.u64();
            (void)r.u64();
            r.expect_end();
        } catch (const RpcError&) {
            // expected failure mode
        }
    }
}

TEST(Frame, PayloadLengthMismatchThrows) {
    WireWriter body;
    body.u64(1);
    Buffer frame = seal_request(MsgType::kCommit, 0, std::move(body));
    frame.push_back(0x00);  // extra byte the header does not announce
    EXPECT_THROW((void)parse_frame(frame), RpcError);
}

}  // namespace
}  // namespace blobseer::rpc
