/// \file test_fs.cpp
/// \brief Tests of BSFS: path handling, the namespace service, and the
///        streaming reader/writer over a live cluster.

#include <gtest/gtest.h>

#include <thread>

#include "fs/bsfs.hpp"
#include "fs/path.hpp"
#include "testing_util.hpp"

namespace blobseer::fs {
namespace {

// ---- paths ------------------------------------------------------------------

TEST(Path, Normalization) {
    EXPECT_EQ(normalize_path("/"), "/");
    EXPECT_EQ(normalize_path("/a/b"), "/a/b");
    EXPECT_EQ(normalize_path("//a///b/"), "/a/b");
    EXPECT_THROW((void)normalize_path("a/b"), InvalidArgument);
    EXPECT_THROW((void)normalize_path(""), InvalidArgument);
    EXPECT_THROW((void)normalize_path("/a/../b"), InvalidArgument);
}

TEST(Path, ParentAndBasename) {
    EXPECT_EQ(parent_of("/a/b/c"), "/a/b");
    EXPECT_EQ(parent_of("/a"), "/");
    EXPECT_THROW((void)parent_of("/"), InvalidArgument);
    EXPECT_EQ(basename_of("/a/b/c"), "c");
    EXPECT_EQ(basename_of("/"), "/");
}

TEST(Path, Components) {
    const auto c = components_of("/a/bb/ccc");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0], "a");
    EXPECT_EQ(c[2], "ccc");
    EXPECT_TRUE(components_of("/").empty());
}

// ---- namespace service ---------------------------------------------------------

TEST(Namespace, CreateLookupRemove) {
    NamespaceService ns(0);
    ns.mkdir("/data");
    const auto info = ns.create_file("/data/f1", 42, 64);
    EXPECT_EQ(info.blob, 42u);
    EXPECT_TRUE(ns.exists("/data/f1"));
    const auto found = ns.lookup("/data/f1");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->blob, 42u);
    EXPECT_EQ(found->chunk_size, 64u);
    EXPECT_EQ(ns.remove("/data/f1"), 42u);
    EXPECT_FALSE(ns.exists("/data/f1"));
}

TEST(Namespace, ParentMustExist) {
    NamespaceService ns(0);
    EXPECT_THROW((void)ns.create_file("/missing/f", 1, 64), NotFoundError);
    EXPECT_THROW(ns.mkdir("/a/b"), NotFoundError);
    ns.mkdirs("/a/b/c");
    EXPECT_TRUE(ns.exists("/a/b/c"));
    EXPECT_NO_THROW(ns.create_file("/a/b/c/f", 1, 64));
}

TEST(Namespace, DuplicatesRejected) {
    NamespaceService ns(0);
    ns.mkdir("/d");
    ns.create_file("/d/f", 1, 64);
    EXPECT_THROW((void)ns.create_file("/d/f", 2, 64), InvalidArgument);
    EXPECT_THROW(ns.mkdir("/d"), InvalidArgument);
    EXPECT_NO_THROW(ns.mkdirs("/d"));  // mkdirs tolerates existing dirs
}

TEST(Namespace, ListImmediateChildrenOnly) {
    NamespaceService ns(0);
    ns.mkdirs("/x/y");
    ns.create_file("/x/f1", 1, 64);
    ns.create_file("/x/y/deep", 2, 64);
    const auto entries = ns.list("/x");
    ASSERT_EQ(entries.size(), 2u);  // f1 and y, not y/deep
    EXPECT_THROW((void)ns.list("/x/f1"), InvalidArgument);
    EXPECT_THROW((void)ns.list("/nope"), NotFoundError);
}

TEST(Namespace, RenameFileAndSubtree) {
    NamespaceService ns(0);
    ns.mkdirs("/src/sub");
    ns.create_file("/src/f", 7, 64);
    ns.create_file("/src/sub/g", 8, 64);
    ns.mkdir("/dst");
    ns.rename("/src", "/dst/moved");
    EXPECT_FALSE(ns.exists("/src"));
    EXPECT_TRUE(ns.exists("/dst/moved/f"));
    EXPECT_TRUE(ns.exists("/dst/moved/sub/g"));
    EXPECT_EQ(ns.lookup("/dst/moved/f")->blob, 7u);
    EXPECT_THROW(ns.rename("/nope", "/x"), NotFoundError);
}

TEST(Namespace, RemoveGuards) {
    NamespaceService ns(0);
    ns.mkdirs("/a/b");
    EXPECT_THROW(ns.remove("/a"), InvalidArgument);  // not empty
    ns.remove("/a/b");
    EXPECT_NO_THROW(ns.remove("/a"));
    EXPECT_THROW(ns.remove("/"), InvalidArgument);
}

// ---- BSFS over a live cluster ------------------------------------------------------

class BsfsFixture : public ::testing::Test {
  protected:
    BsfsFixture()
        : cluster_(blobseer::testing::fast_config()),
          fs_(cluster_, BsfsConfig{.chunk_size = 64,
                                   .replication = {},
                                   .writer_buffer_chunks = 2,
                                   .readahead_chunks = 2}) {
        client_ = fs_.make_client();
    }

    core::Cluster cluster_;
    Bsfs fs_;
    std::unique_ptr<BsfsClient> client_;
};

TEST_F(BsfsFixture, WriteThenReadBack) {
    client_->mkdirs("/data");
    const Buffer data = make_pattern(1, 99, 0, 1000);
    {
        auto writer = client_->create("/data/file");
        writer.write(data);
        writer.close();
    }
    EXPECT_EQ(client_->file_size("/data/file"), 1000u);

    auto reader = client_->open("/data/file");
    Buffer out(1000);
    EXPECT_EQ(reader.read(out), 1000u);
    EXPECT_EQ(out, data);
    EXPECT_EQ(reader.read(out), 0u);  // EOF
}

TEST_F(BsfsFixture, StreamingChunksFlushAligned) {
    client_->mkdirs("/s");
    auto writer = client_->create("/s/f");
    // 5 writes of 100 bytes with 64-byte chunks and a 2-chunk buffer:
    // whole chunks get pushed as aligned appends along the way.
    Buffer all;
    for (int i = 0; i < 5; ++i) {
        const Buffer part = make_pattern(2, i, 0, 100);
        writer.write(part);
        all.insert(all.end(), part.begin(), part.end());
    }
    EXPECT_GT(writer.pushed(), 0u);
    EXPECT_LT(writer.buffered(), 128u);
    writer.close();

    auto reader = client_->open("/s/f");
    Buffer out(all.size());
    EXPECT_EQ(reader.read(out), all.size());
    EXPECT_EQ(out, all);
}

TEST_F(BsfsFixture, ReaderSeeksAndPositionalReads) {
    client_->mkdirs("/r");
    const Buffer data = make_pattern(3, 1, 0, 640);
    auto writer = client_->create("/r/f");
    writer.write(data);
    writer.close();

    auto reader = client_->open("/r/f");
    Buffer out(100);
    EXPECT_EQ(reader.read_at(500, out), 100u);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 500));
    reader.seek(0);
    Buffer head(64);
    EXPECT_EQ(reader.read(head), 64u);
    EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));
    // Short read at the tail:
    Buffer tail(100);
    EXPECT_EQ(reader.read_at(600, tail), 40u);
}

TEST_F(BsfsFixture, ReaderPinnedToSnapshotUntilRefresh) {
    client_->mkdirs("/p");
    auto writer = client_->create("/p/f");
    writer.write(Buffer(128, 0xAA));
    writer.flush();

    auto reader = client_->open("/p/f");
    EXPECT_EQ(reader.size(), 128u);

    writer.write(Buffer(128, 0xBB));
    writer.flush();
    // Old handle still sees the pinned snapshot...
    EXPECT_EQ(reader.size(), 128u);
    reader.refresh();
    EXPECT_EQ(reader.size(), 256u);
    Buffer out(256);
    EXPECT_EQ(reader.read_at(0, out), 256u);
    EXPECT_EQ(out[0], 0xAA);
    EXPECT_EQ(out[255], 0xBB);
    writer.close();
}

TEST_F(BsfsFixture, ConcurrentAppendersInterleaveAtomically) {
    client_->mkdirs("/c");
    {
        auto w = client_->create("/c/log");
        w.close();
    }
    const std::size_t writers = 4;
    const int records = 6;
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
            auto c = fs_.make_client();
            auto writer = c->open_append("/c/log");
            for (int i = 0; i < records; ++i) {
                // One record = exactly one chunk, tagged by writer id.
                writer.write(Buffer(64, static_cast<std::uint8_t>(1 + w)));
                writer.flush();
            }
            writer.close();
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(client_->file_size("/c/log"), writers * records * 64);
    auto reader = client_->open("/c/log");
    Buffer out(writers * records * 64);
    EXPECT_EQ(reader.read(out), out.size());
    std::map<std::uint8_t, int> counts;
    for (std::size_t b = 0; b < out.size(); b += 64) {
        for (std::size_t i = 0; i < 64; ++i) {
            ASSERT_EQ(out[b + i], out[b]) << "torn record";
        }
        ++counts[out[b]];
    }
    for (std::size_t w = 0; w < writers; ++w) {
        EXPECT_EQ(counts[static_cast<std::uint8_t>(1 + w)], records);
    }
}

TEST_F(BsfsFixture, LocateExposesProviders) {
    client_->mkdirs("/l");
    auto writer = client_->create("/l/f");
    writer.write(make_pattern(9, 9, 0, 256));
    writer.close();
    const auto locs = client_->locate("/l/f", {0, 256});
    ASSERT_FALSE(locs.empty());
    for (const auto& loc : locs) {
        EXPECT_FALSE(loc.hole);
        EXPECT_FALSE(loc.providers.empty());
    }
}

TEST_F(BsfsFixture, NamespaceOperationsThroughClient) {
    client_->mkdirs("/dir/sub");
    {
        auto w = client_->create("/dir/sub/f");
        w.write(Buffer(10, 1));
        w.close();
    }
    EXPECT_TRUE(client_->exists("/dir/sub/f"));
    const auto entries = client_->list("/dir/sub");
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].name, "f");
    client_->rename("/dir/sub/f", "/dir/g");
    EXPECT_FALSE(client_->exists("/dir/sub/f"));
    EXPECT_EQ(client_->file_size("/dir/g"), 10u);
    client_->remove("/dir/g");
    EXPECT_FALSE(client_->exists("/dir/g"));
    EXPECT_THROW((void)client_->open("/dir/g"), NotFoundError);
    EXPECT_THROW((void)client_->open("/dir"), InvalidArgument);
}

TEST_F(BsfsFixture, EmptyFileReadsNothing) {
    client_->mkdirs("/e");
    auto w = client_->create("/e/f");
    w.close();
    auto reader = client_->open("/e/f");
    Buffer out(10);
    EXPECT_EQ(reader.read(out), 0u);
    EXPECT_EQ(reader.size(), 0u);
}

}  // namespace
}  // namespace blobseer::fs
