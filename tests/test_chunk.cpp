/// \file test_chunk.cpp
/// \brief Tests of the chunk storage backends: RAM, disk (with restart
///        recovery), the log-structured store and the two-tier RAM cache
///        over either durable backend.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "chunk/disk_store.hpp"
#include "chunk/log_store.hpp"
#include "chunk/ram_store.hpp"
#include "chunk/two_tier_store.hpp"
#include "common/buffer.hpp"

namespace blobseer::chunk {
namespace {

ChunkData payload(BlobId blob, std::uint64_t uid, std::size_t size) {
    return std::make_shared<Buffer>(make_pattern(blob, uid, 0, size));
}

class TempDir {
  public:
    TempDir() {
        dir_ = std::filesystem::temp_directory_path() /
               ("blobseer-test-" + std::to_string(counter_++) + "-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }
    ~TempDir() { std::filesystem::remove_all(dir_); }
    [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

  private:
    static inline int counter_ = 0;
    std::filesystem::path dir_;
};

// ---- RamStore -------------------------------------------------------------

TEST(RamStore, PutGetRoundTrip) {
    RamStore store;
    const ChunkKey key{1, 100};
    store.put(key, payload(1, 100, 64));
    const auto got = store.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(1, 100, 0, **got), -1);
    EXPECT_TRUE(store.contains(key));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 64u);
}

TEST(RamStore, MissingKeyIsEmpty) {
    RamStore store;
    EXPECT_FALSE(store.get({1, 2}).has_value());
    EXPECT_FALSE(store.contains({1, 2}));
}

TEST(RamStore, PutIsIdempotent) {
    RamStore store;
    const ChunkKey key{1, 5};
    store.put(key, payload(1, 5, 32));
    store.put(key, payload(1, 5, 32));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 32u);
}

TEST(RamStore, EraseReclaims) {
    RamStore store;
    store.put({1, 1}, payload(1, 1, 16));
    store.put({1, 2}, payload(1, 2, 16));
    store.erase({1, 1});
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 16u);
    EXPECT_FALSE(store.contains({1, 1}));
    store.erase({1, 99});  // erasing absent key is a no-op
    EXPECT_EQ(store.count(), 1u);
}

TEST(RamStore, ClearLosesEverything) {
    RamStore store;
    for (std::uint64_t i = 0; i < 10; ++i) {
        store.put({1, i}, payload(1, i, 8));
    }
    store.clear();
    EXPECT_EQ(store.count(), 0u);
    EXPECT_EQ(store.bytes(), 0u);
}

TEST(RamStore, ConcurrentPutsAndGets) {
    RamStore store;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store, t] {
            for (std::uint64_t i = 0; i < 200; ++i) {
                const ChunkKey key{static_cast<BlobId>(t), i};
                store.put(key, payload(t, i, 32));
                const auto got = store.get(key);
                ASSERT_TRUE(got.has_value());
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(store.count(), 800u);
}

// ---- DiskStore --------------------------------------------------------------

TEST(DiskStore, PersistsAcrossReopen) {
    TempDir dir;
    {
        DiskStore store(dir.path());
        store.put({7, 42}, payload(7, 42, 100));
        EXPECT_EQ(store.count(), 1u);
    }
    DiskStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 1u);
    EXPECT_EQ(reopened.bytes(), 100u);
    const auto got = reopened.get({7, 42});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(7, 42, 0, **got), -1);
}

TEST(DiskStore, EraseRemovesFile) {
    TempDir dir;
    DiskStore store(dir.path());
    store.put({1, 1}, payload(1, 1, 10));
    store.erase({1, 1});
    EXPECT_EQ(store.count(), 0u);
    DiskStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 0u);
}

TEST(DiskStore, MissingKey) {
    TempDir dir;
    DiskStore store(dir.path());
    EXPECT_FALSE(store.get({9, 9}).has_value());
}

TEST(DiskStore, EmptyChunkAllowed) {
    TempDir dir;
    DiskStore store(dir.path());
    store.put({1, 1}, std::make_shared<Buffer>());
    const auto got = store.get({1, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE((*got)->empty());
}

TEST(DiskStore, SweepsOrphanTmpFilesOnReopen) {
    TempDir dir;
    {
        DiskStore store(dir.path());
        store.put({3, 3}, payload(3, 3, 20));
    }
    // Simulate a crash between write_file and rename: a stranded tmp.
    const auto orphan = dir.path() / "9_9.chunk.tmp42";
    std::ofstream(orphan) << "torn half-written chunk";
    ASSERT_TRUE(std::filesystem::exists(orphan));

    DiskStore reopened(dir.path());
    EXPECT_FALSE(std::filesystem::exists(orphan));  // swept
    EXPECT_EQ(reopened.count(), 1u);                // real chunk survives
    EXPECT_FALSE(reopened.contains({9, 9}));        // orphan never indexed
}

// ---- LogStore ---------------------------------------------------------------

TEST(LogStore, PutGetRoundTrip) {
    TempDir dir;
    LogStore store(dir.path());
    store.put({1, 100}, payload(1, 100, 64));
    const auto got = store.get({1, 100});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(1, 100, 0, **got), -1);
    EXPECT_TRUE(store.contains({1, 100}));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 64u);
}

TEST(LogStore, PersistsAcrossReopen) {
    TempDir dir;
    {
        LogStore store(dir.path());
        store.put({7, 42}, payload(7, 42, 100));
        store.put({7, 43}, payload(7, 43, 50));
        store.erase({7, 43});
    }
    LogStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 1u);
    EXPECT_EQ(reopened.bytes(), 100u);
    const auto got = reopened.get({7, 42});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(7, 42, 0, **got), -1);
    EXPECT_FALSE(reopened.contains({7, 43}));
}

TEST(LogStore, PutIsIdempotent) {
    TempDir dir;
    LogStore store(dir.path());
    store.put({1, 5}, payload(1, 5, 32));
    store.put({1, 5}, payload(1, 5, 32));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 32u);
    EXPECT_EQ(store.engine().stats().appends, 1u);  // second put skipped
}

TEST(LogStore, MissingKeyAndEmptyChunk) {
    TempDir dir;
    LogStore store(dir.path());
    EXPECT_FALSE(store.get({9, 9}).has_value());
    store.put({1, 1}, std::make_shared<Buffer>());
    const auto got = store.get({1, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE((*got)->empty());
}

TEST(LogStore, ConcurrentPutsAndGets) {
    TempDir dir;
    LogStore store(dir.path());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store, t] {
            for (std::uint64_t i = 0; i < 100; ++i) {
                const ChunkKey key{static_cast<BlobId>(t), i};
                store.put(key, payload(t, i, 48));
                const auto got = store.get(key);
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(verify_pattern(t, i, 0, **got), -1);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(store.count(), 400u);
}

// ---- TwoTierStore -----------------------------------------------------------

TEST(TwoTierStore, WriteThroughAndCacheHit) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 1 << 20);
    store.put({1, 1}, payload(1, 1, 100));
    EXPECT_EQ(store.ram_bytes(), 100u);
    (void)store.get({1, 1});
    EXPECT_EQ(store.cache_hits(), 1u);
    EXPECT_EQ(store.cache_misses(), 0u);
}

TEST(TwoTierStore, FallsBackToDiskAfterCacheDrop) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 1 << 20);
    store.put({1, 1}, payload(1, 1, 100));
    store.drop_cache();
    EXPECT_EQ(store.ram_bytes(), 0u);
    const auto got = store.get({1, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(store.cache_misses(), 1u);
    // Re-populated on the miss path:
    EXPECT_EQ(store.ram_bytes(), 100u);
}

TEST(TwoTierStore, EvictsLruWithinBudget) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 256);
    for (std::uint64_t i = 0; i < 8; ++i) {
        store.put({1, i}, payload(1, i, 64));
    }
    EXPECT_LE(store.ram_bytes(), 256u);
    // Everything still durable:
    EXPECT_EQ(store.count(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(store.get({1, i}).has_value());
    }
}

TEST(TwoTierStore, LruKeepsHotEntry) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 192);
    store.put({1, 0}, payload(1, 0, 64));
    store.put({1, 1}, payload(1, 1, 64));
    store.put({1, 2}, payload(1, 2, 64));
    // Touch key 0 so key 1 is the LRU victim of the next insert.
    (void)store.get({1, 0});
    store.put({1, 3}, payload(1, 3, 64));
    const auto misses_before = store.cache_misses();
    (void)store.get({1, 0});
    EXPECT_EQ(store.cache_misses(), misses_before);  // still cached
    (void)store.get({1, 1});
    EXPECT_EQ(store.cache_misses(), misses_before + 1);  // was evicted
}

TEST(TwoTierStore, EraseDropsBothTiers) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 1 << 20);
    store.put({1, 1}, payload(1, 1, 50));
    store.erase({1, 1});
    EXPECT_FALSE(store.get({1, 1}).has_value());
    EXPECT_EQ(store.ram_bytes(), 0u);
    EXPECT_EQ(store.count(), 0u);
}

TEST(TwoTierStore, EvictionCounterAndByteBudget) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 256);
    for (std::uint64_t i = 0; i < 8; ++i) {
        store.put({1, i}, payload(1, i, 64));
    }
    // 8 x 64 B through a 256 B budget: at least 4 evictions happened and
    // the budget held at every step.
    EXPECT_GE(store.cache_evictions(), 4u);
    EXPECT_LE(store.ram_bytes(), 256u);
    EXPECT_EQ(store.count(), 8u);  // backend keeps everything
}

TEST(TwoTierStore, RepopulatesFromBackendAfterEviction) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 128);
    store.put({1, 0}, payload(1, 0, 64));
    store.put({1, 1}, payload(1, 1, 64));
    store.put({1, 2}, payload(1, 2, 64));  // evicts {1,0}
    const auto misses_before = store.cache_misses();
    const auto got = store.get({1, 0});  // miss -> backend -> repopulate
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(1, 0, 0, **got), -1);
    EXPECT_EQ(store.cache_misses(), misses_before + 1);
    const auto hits_before = store.cache_hits();
    (void)store.get({1, 0});  // now cached again
    EXPECT_EQ(store.cache_hits(), hits_before + 1);
}

TEST(TwoTierStore, StatsConsistentUnderConcurrentGetPut) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 4096);
    constexpr int kThreads = 4;
    constexpr std::uint64_t kOps = 200;
    std::atomic<std::uint64_t> gets{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kOps; ++i) {
                const ChunkKey key{static_cast<BlobId>(t % 2), i % 32};
                store.put(key, payload(t % 2, i % 32, 64));
                const auto got = store.get(key);
                gets.fetch_add(1);
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(verify_pattern(t % 2, i % 32, 0, **got), -1);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    // Every get was either a hit or a miss — no lost counts under
    // concurrency — and the budget survived the storm.
    EXPECT_EQ(store.cache_hits() + store.cache_misses(), gets.load());
    EXPECT_LE(store.ram_bytes(), 4096u);
    EXPECT_EQ(store.count(), 64u);
}

TEST(TwoTierStore, WorksOverLogStoreBackend) {
    TempDir dir;
    TwoTierStore store(std::make_unique<LogStore>(dir.path()), 1 << 20);
    store.put({5, 1}, payload(5, 1, 100));
    store.drop_cache();  // volatile-loss crash: durable tier serves
    const auto got = store.get({5, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(5, 1, 0, **got), -1);
    EXPECT_EQ(store.cache_misses(), 1u);
    EXPECT_EQ(store.count(), 1u);
}

}  // namespace
}  // namespace blobseer::chunk
