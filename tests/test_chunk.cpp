/// \file test_chunk.cpp
/// \brief Tests of the chunk storage backends: RAM, disk (with restart
///        recovery), the log-structured store and the two-tier RAM cache
///        over either durable backend.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "cache/compressed_file_cache.hpp"
#include "chunk/disk_store.hpp"
#include "chunk/log_store.hpp"
#include "chunk/ram_store.hpp"
#include "chunk/two_tier_store.hpp"
#include "common/buffer.hpp"

namespace blobseer::chunk {
namespace {

ChunkData payload(BlobId blob, std::uint64_t uid, std::size_t size) {
    return std::make_shared<Buffer>(make_pattern(blob, uid, 0, size));
}

class TempDir {
  public:
    TempDir() {
        dir_ = std::filesystem::temp_directory_path() /
               ("blobseer-test-" + std::to_string(counter_++) + "-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }
    ~TempDir() { std::filesystem::remove_all(dir_); }
    [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

  private:
    static inline int counter_ = 0;
    std::filesystem::path dir_;
};

// ---- RamStore -------------------------------------------------------------

TEST(RamStore, PutGetRoundTrip) {
    RamStore store;
    const ChunkKey key{1, 100};
    store.put(key, payload(1, 100, 64));
    const auto got = store.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(1, 100, 0, **got), -1);
    EXPECT_TRUE(store.contains(key));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 64u);
}

TEST(RamStore, MissingKeyIsEmpty) {
    RamStore store;
    EXPECT_FALSE(store.get({1, 2}).has_value());
    EXPECT_FALSE(store.contains({1, 2}));
}

TEST(RamStore, PutIsIdempotent) {
    RamStore store;
    const ChunkKey key{1, 5};
    store.put(key, payload(1, 5, 32));
    store.put(key, payload(1, 5, 32));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 32u);
}

TEST(RamStore, EraseReclaims) {
    RamStore store;
    store.put({1, 1}, payload(1, 1, 16));
    store.put({1, 2}, payload(1, 2, 16));
    store.erase({1, 1});
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 16u);
    EXPECT_FALSE(store.contains({1, 1}));
    store.erase({1, 99});  // erasing absent key is a no-op
    EXPECT_EQ(store.count(), 1u);
}

TEST(RamStore, ClearLosesEverything) {
    RamStore store;
    for (std::uint64_t i = 0; i < 10; ++i) {
        store.put({1, i}, payload(1, i, 8));
    }
    store.clear();
    EXPECT_EQ(store.count(), 0u);
    EXPECT_EQ(store.bytes(), 0u);
}

TEST(RamStore, ConcurrentPutsAndGets) {
    RamStore store;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store, t] {
            for (std::uint64_t i = 0; i < 200; ++i) {
                const ChunkKey key{static_cast<BlobId>(t), i};
                store.put(key, payload(t, i, 32));
                const auto got = store.get(key);
                ASSERT_TRUE(got.has_value());
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(store.count(), 800u);
}

// ---- DiskStore --------------------------------------------------------------

TEST(DiskStore, PersistsAcrossReopen) {
    TempDir dir;
    {
        DiskStore store(dir.path());
        store.put({7, 42}, payload(7, 42, 100));
        EXPECT_EQ(store.count(), 1u);
    }
    DiskStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 1u);
    EXPECT_EQ(reopened.bytes(), 100u);
    const auto got = reopened.get({7, 42});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(7, 42, 0, **got), -1);
}

TEST(DiskStore, EraseRemovesFile) {
    TempDir dir;
    DiskStore store(dir.path());
    store.put({1, 1}, payload(1, 1, 10));
    store.erase({1, 1});
    EXPECT_EQ(store.count(), 0u);
    DiskStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 0u);
}

TEST(DiskStore, MissingKey) {
    TempDir dir;
    DiskStore store(dir.path());
    EXPECT_FALSE(store.get({9, 9}).has_value());
}

TEST(DiskStore, EmptyChunkAllowed) {
    TempDir dir;
    DiskStore store(dir.path());
    store.put({1, 1}, std::make_shared<Buffer>());
    const auto got = store.get({1, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE((*got)->empty());
}

TEST(DiskStore, SweepsOrphanTmpFilesOnReopen) {
    TempDir dir;
    {
        DiskStore store(dir.path());
        store.put({3, 3}, payload(3, 3, 20));
    }
    // Simulate a crash between write_file and rename: a stranded tmp.
    const auto orphan = dir.path() / "9_9.chunk.tmp42";
    std::ofstream(orphan) << "torn half-written chunk";
    ASSERT_TRUE(std::filesystem::exists(orphan));

    DiskStore reopened(dir.path());
    EXPECT_FALSE(std::filesystem::exists(orphan));  // swept
    EXPECT_EQ(reopened.count(), 1u);                // real chunk survives
    EXPECT_FALSE(reopened.contains({9, 9}));        // orphan never indexed
}

// ---- LogStore ---------------------------------------------------------------

TEST(LogStore, PutGetRoundTrip) {
    TempDir dir;
    LogStore store(dir.path());
    store.put({1, 100}, payload(1, 100, 64));
    const auto got = store.get({1, 100});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(1, 100, 0, **got), -1);
    EXPECT_TRUE(store.contains({1, 100}));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 64u);
}

TEST(LogStore, PersistsAcrossReopen) {
    TempDir dir;
    {
        LogStore store(dir.path());
        store.put({7, 42}, payload(7, 42, 100));
        store.put({7, 43}, payload(7, 43, 50));
        store.erase({7, 43});
    }
    LogStore reopened(dir.path());
    EXPECT_EQ(reopened.count(), 1u);
    EXPECT_EQ(reopened.bytes(), 100u);
    const auto got = reopened.get({7, 42});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(7, 42, 0, **got), -1);
    EXPECT_FALSE(reopened.contains({7, 43}));
}

TEST(LogStore, PutIsIdempotent) {
    TempDir dir;
    LogStore store(dir.path());
    store.put({1, 5}, payload(1, 5, 32));
    store.put({1, 5}, payload(1, 5, 32));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.bytes(), 32u);
    EXPECT_EQ(store.engine().stats().appends, 1u);  // second put skipped
}

TEST(LogStore, MissingKeyAndEmptyChunk) {
    TempDir dir;
    LogStore store(dir.path());
    EXPECT_FALSE(store.get({9, 9}).has_value());
    store.put({1, 1}, std::make_shared<Buffer>());
    const auto got = store.get({1, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE((*got)->empty());
}

TEST(LogStore, ConcurrentPutsAndGets) {
    TempDir dir;
    LogStore store(dir.path());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store, t] {
            for (std::uint64_t i = 0; i < 100; ++i) {
                const ChunkKey key{static_cast<BlobId>(t), i};
                store.put(key, payload(t, i, 48));
                const auto got = store.get(key);
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(verify_pattern(t, i, 0, **got), -1);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(store.count(), 400u);
}

// ---- TwoTierStore -----------------------------------------------------------

TEST(TwoTierStore, WriteThroughAndCacheHit) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 1 << 20);
    store.put({1, 1}, payload(1, 1, 100));
    EXPECT_EQ(store.ram_bytes(), 100u);
    (void)store.get({1, 1});
    EXPECT_EQ(store.cache_hits(), 1u);
    EXPECT_EQ(store.cache_misses(), 0u);
}

TEST(TwoTierStore, FallsBackToDiskAfterCacheDrop) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 1 << 20);
    store.put({1, 1}, payload(1, 1, 100));
    store.drop_cache();
    EXPECT_EQ(store.ram_bytes(), 0u);
    const auto got = store.get({1, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(store.cache_misses(), 1u);
    // Re-populated on the miss path:
    EXPECT_EQ(store.ram_bytes(), 100u);
}

TEST(TwoTierStore, EvictsLruWithinBudget) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 256);
    for (std::uint64_t i = 0; i < 8; ++i) {
        store.put({1, i}, payload(1, i, 64));
    }
    EXPECT_LE(store.ram_bytes(), 256u);
    // Everything still durable:
    EXPECT_EQ(store.count(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(store.get({1, i}).has_value());
    }
}

TEST(TwoTierStore, LruKeepsHotEntry) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 192);
    store.put({1, 0}, payload(1, 0, 64));
    store.put({1, 1}, payload(1, 1, 64));
    store.put({1, 2}, payload(1, 2, 64));
    // Touch key 0 so key 1 is the LRU victim of the next insert.
    (void)store.get({1, 0});
    store.put({1, 3}, payload(1, 3, 64));
    const auto misses_before = store.cache_misses();
    (void)store.get({1, 0});
    EXPECT_EQ(store.cache_misses(), misses_before);  // still cached
    (void)store.get({1, 1});
    EXPECT_EQ(store.cache_misses(), misses_before + 1);  // was evicted
}

TEST(TwoTierStore, EraseDropsBothTiers) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 1 << 20);
    store.put({1, 1}, payload(1, 1, 50));
    store.erase({1, 1});
    EXPECT_FALSE(store.get({1, 1}).has_value());
    EXPECT_EQ(store.ram_bytes(), 0u);
    EXPECT_EQ(store.count(), 0u);
}

TEST(TwoTierStore, EvictionCounterAndByteBudget) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 256);
    for (std::uint64_t i = 0; i < 8; ++i) {
        store.put({1, i}, payload(1, i, 64));
    }
    // 8 x 64 B through a 256 B budget: at least 4 evictions happened and
    // the budget held at every step.
    EXPECT_GE(store.cache_evictions(), 4u);
    EXPECT_LE(store.ram_bytes(), 256u);
    EXPECT_EQ(store.count(), 8u);  // backend keeps everything
}

TEST(TwoTierStore, RepopulatesFromBackendAfterEviction) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 128);
    store.put({1, 0}, payload(1, 0, 64));
    store.put({1, 1}, payload(1, 1, 64));
    store.put({1, 2}, payload(1, 2, 64));  // evicts {1,0}
    const auto misses_before = store.cache_misses();
    const auto got = store.get({1, 0});  // miss -> backend -> repopulate
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(1, 0, 0, **got), -1);
    EXPECT_EQ(store.cache_misses(), misses_before + 1);
    const auto hits_before = store.cache_hits();
    (void)store.get({1, 0});  // now cached again
    EXPECT_EQ(store.cache_hits(), hits_before + 1);
}

TEST(TwoTierStore, StatsConsistentUnderConcurrentGetPut) {
    TempDir dir;
    TwoTierStore store(std::make_unique<DiskStore>(dir.path()), 4096);
    constexpr int kThreads = 4;
    constexpr std::uint64_t kOps = 200;
    std::atomic<std::uint64_t> gets{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kOps; ++i) {
                const ChunkKey key{static_cast<BlobId>(t % 2), i % 32};
                store.put(key, payload(t % 2, i % 32, 64));
                const auto got = store.get(key);
                gets.fetch_add(1);
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(verify_pattern(t % 2, i % 32, 0, **got), -1);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    // Every get was either a hit or a miss — no lost counts under
    // concurrency — and the budget survived the storm.
    EXPECT_EQ(store.cache_hits() + store.cache_misses(), gets.load());
    EXPECT_LE(store.ram_bytes(), 4096u);
    EXPECT_EQ(store.count(), 64u);
}

TEST(TwoTierStore, WorksOverLogStoreBackend) {
    TempDir dir;
    TwoTierStore store(std::make_unique<LogStore>(dir.path()), 1 << 20);
    store.put({5, 1}, payload(5, 1, 100));
    store.drop_cache();  // volatile-loss crash: durable tier serves
    const auto got = store.get({5, 1});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(5, 1, 0, **got), -1);
    EXPECT_EQ(store.cache_misses(), 1u);
    EXPECT_EQ(store.count(), 1u);
}

// Regression: cache_insert used to early-return when the key was already
// resident, so a re-put neither replaced the cached data nor refreshed
// the entry's recency — the RAM tier kept serving the old buffer and
// ram_bytes went stale when sizes differed.
TEST(TwoTierStore, RePutRefreshesCachedDataAndBytes) {
    TwoTierStore store(std::make_unique<RamStore>(), 1 << 20);
    store.put({1, 1}, payload(1, 1, 100));
    EXPECT_EQ(store.ram_bytes(), 100u);

    const auto fresh = payload(1, 1, 300);
    store.put({1, 1}, fresh);
    EXPECT_EQ(store.ram_bytes(), 300u);
    const auto got = store.get({1, 1});
    ASSERT_TRUE(got.has_value());
    // The RAM tier serves the newly-put buffer, not the first one.
    EXPECT_EQ(got->get(), fresh.get());
}

TEST(TwoTierStore, RePutRefreshesLruRecency) {
    // Budget fits exactly two 100-byte entries.
    TwoTierStore store(std::make_unique<RamStore>(), 200);
    store.put({1, 1}, payload(1, 1, 100));
    store.put({1, 2}, payload(1, 2, 100));
    // Re-put of {1,1} must make it most-recent, so inserting a third
    // entry evicts {1,2}. The pre-fix code left {1,1} coldest.
    store.put({1, 1}, payload(1, 1, 100));
    store.put({1, 3}, payload(1, 3, 100));
    (void)store.get({1, 1});
    EXPECT_EQ(store.cache_hits(), 1u);
    (void)store.get({1, 2});
    EXPECT_EQ(store.cache_misses(), 1u);
}

// ---- TieredStore with the compressed file-cache middle tier ---------------

[[nodiscard]] std::unique_ptr<cache::CompressedFileCache> file_cache(
    const TempDir& dir, std::uint64_t budget) {
    cache::FileCacheConfig cfg;
    cfg.dir = dir.path() / "file-cache";
    cfg.budget_bytes = budget;
    cfg.file_target_bytes = 64 << 10;
    return std::make_unique<cache::CompressedFileCache>(cfg);
}

TEST(ThreeTierStore, DemotesRamEvictionsAndPromotesOnHit) {
    TempDir dir;
    // RAM holds one 4 KiB chunk; everything else demotes to the file
    // cache on eviction.
    TieredStore store(std::make_unique<LogStore>(dir.path() / "log"),
                      4 << 10, file_cache(dir, 16 << 20));
    for (std::uint64_t uid = 0; uid < 8; ++uid) {
        store.put({7, uid}, payload(7, uid, 4 << 10));
    }
    EXPECT_GE(store.demotions(), 7u);
    ASSERT_TRUE(store.file_cache() != nullptr);
    EXPECT_GE(store.file_cache()->entries(), 7u);

    // Reading a demoted chunk: RAM miss, file-cache hit, promoted back.
    const auto got = store.get({7, 0});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(verify_pattern(7, 0, 0, **got), -1);
    EXPECT_GE(store.promotions(), 1u);
    // The miss/hit invariant counts the RAM tier only.
    EXPECT_EQ(store.cache_misses(), 1u);
}

TEST(ThreeTierStore, ServesWorkingSetLargerThanRamFromFileCache) {
    TempDir dir;
    TieredStore store(std::make_unique<LogStore>(dir.path() / "log"),
                      8 << 10, file_cache(dir, 16 << 20));
    constexpr std::uint64_t kChunks = 32;  // 16x the RAM budget
    for (std::uint64_t uid = 0; uid < kChunks; ++uid) {
        store.put({9, uid}, payload(9, uid, 4 << 10));
    }
    const auto engine_reads_before = store.promotions();
    for (std::uint64_t uid = 0; uid < kChunks; ++uid) {
        const auto got = store.get({9, uid});
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(verify_pattern(9, static_cast<std::uint64_t>(uid), 0,
                                 **got),
                  -1);
    }
    // The sweep was served by the middle tier, not the engine: nearly
    // every read promoted from the file cache.
    EXPECT_GE(store.promotions() - engine_reads_before, kChunks - 4);
}

TEST(ThreeTierStore, CorruptFileCacheFallsThroughToBackend) {
    TempDir dir;
    TieredStore store(std::make_unique<LogStore>(dir.path() / "log"),
                      4 << 10, file_cache(dir, 16 << 20));
    for (std::uint64_t uid = 0; uid < 8; ++uid) {
        store.put({3, uid}, payload(3, uid, 4 << 10));
    }
    // Flip a byte mid-file in every cache file.
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             dir.path() / "file-cache")) {
        if (!entry.is_regular_file()) {
            continue;
        }
        std::fstream f(entry.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(64);
        f.put(static_cast<char>(0xA5));
    }
    // Every chunk still reads back correct — CRC-rejected cache entries
    // fall through to the durable engine.
    for (std::uint64_t uid = 0; uid < 8; ++uid) {
        const auto got = store.get({3, uid});
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(verify_pattern(3, uid, 0, **got), -1);
    }
}

TEST(ThreeTierStore, DeletingCacheDirLosesNoData) {
    TempDir dir;
    TieredStore store(std::make_unique<LogStore>(dir.path() / "log"),
                      4 << 10, file_cache(dir, 16 << 20));
    for (std::uint64_t uid = 0; uid < 8; ++uid) {
        store.put({4, uid}, payload(4, uid, 4 << 10));
    }
    std::filesystem::remove_all(dir.path() / "file-cache");
    for (std::uint64_t uid = 0; uid < 8; ++uid) {
        const auto got = store.get({4, uid});
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(verify_pattern(4, uid, 0, **got), -1);
    }
    EXPECT_EQ(store.count(), 8u);
}

TEST(ThreeTierStore, EraseAndDecrefDropAllTiers) {
    TempDir dir;
    TieredStore store(std::make_unique<LogStore>(dir.path() / "log"),
                      4 << 10, file_cache(dir, 16 << 20));
    for (std::uint64_t uid = 0; uid < 4; ++uid) {
        store.put({6, uid}, payload(6, uid, 4 << 10));
    }
    store.erase({6, 0});
    EXPECT_FALSE(store.get({6, 0}).has_value());

    // decref to zero reclaims the chunk everywhere, including any
    // demoted file-cache copy.
    EXPECT_EQ(store.decref({6, 1}), 0u);
    EXPECT_FALSE(store.get({6, 1}).has_value());
    EXPECT_EQ(store.count(), 2u);
}

TEST(ThreeTierStore, DropCacheClearsRamAndFileTiers) {
    TempDir dir;
    TieredStore store(std::make_unique<LogStore>(dir.path() / "log"),
                      4 << 10, file_cache(dir, 16 << 20));
    for (std::uint64_t uid = 0; uid < 8; ++uid) {
        store.put({8, uid}, payload(8, uid, 4 << 10));
    }
    store.drop_cache();
    EXPECT_EQ(store.ram_bytes(), 0u);
    EXPECT_EQ(store.file_cache()->entries(), 0u);
    // Durable tier still serves everything.
    for (std::uint64_t uid = 0; uid < 8; ++uid) {
        const auto got = store.get({8, uid});
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(verify_pattern(8, uid, 0, **got), -1);
    }
}

TEST(ThreeTierStore, StatsConsistentUnderConcurrentGetPut) {
    TempDir dir;
    TieredStore store(std::make_unique<RamStore>(), 8 << 10,
                      file_cache(dir, 1 << 20));
    constexpr int kThreads = 4;
    constexpr int kOps = 300;
    std::atomic<std::uint64_t> gets{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, &gets, t] {
            for (int i = 0; i < kOps; ++i) {
                const auto uid = static_cast<std::uint64_t>(i % 32);
                const auto blob = static_cast<BlobId>(t % 2);
                store.put({blob, uid}, payload(blob, uid, 1024));
                const auto got = store.get({blob, uid});
                gets.fetch_add(1);
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(verify_pattern(blob, uid, 0, **got), -1);
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(store.cache_hits() + store.cache_misses(), gets.load());
    EXPECT_LE(store.ram_bytes(), 8u << 10);
}

}  // namespace
}  // namespace blobseer::chunk
