/// \file test_meta_dht.cpp
/// \brief Focused tests of the replicated metadata DHT client: owner
///        selection, replica failover on reads, degraded puts, erase
///        semantics and traffic accounting.

#include <gtest/gtest.h>

#include "dht/meta_dht.hpp"
#include "dht/metadata_provider.hpp"
#include "net/sim_network.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/sim_transport.hpp"

namespace blobseer::dht {
namespace {

meta::MetaKey key_of(std::uint64_t i) {
    return meta::MetaKey{4, 2, {i, 1}};
}

class MetaDhtFixture : public ::testing::Test {
  protected:
    static constexpr std::size_t kProviders = 3;

    MetaDhtFixture() : net_({.latency = {}, .node_bandwidth_bps = 0}) {
        client_node_ = net_.add_node("client");
        for (std::size_t i = 0; i < kProviders; ++i) {
            const NodeId node = net_.add_node("mp-" + std::to_string(i));
            providers_.push_back(
                std::make_unique<MetadataProvider>(node, 0));
            by_node_[node] = providers_.back().get();
            dispatcher_.add_metadata_provider(node,
                                              providers_.back().get());
            ring_.add_node(node);
        }
        transport_ = std::make_unique<rpc::SimTransport>(net_, client_node_,
                                                         dispatcher_);
        svc_ = std::make_unique<rpc::ServiceClient>(
            *transport_, std::vector<NodeId>{kInvalidNode}, kInvalidNode);
    }

    [[nodiscard]] MetaDht make_client(std::uint32_t replication) {
        return MetaDht(*svc_, ring_, replication);
    }

    [[nodiscard]] std::size_t total_stored() const {
        std::size_t n = 0;
        for (const auto& p : providers_) {
            n += p->stored_nodes();
        }
        return n;
    }

    net::SimNetwork net_;
    NodeId client_node_ = kInvalidNode;
    std::vector<std::unique_ptr<MetadataProvider>> providers_;
    std::unordered_map<NodeId, MetadataProvider*> by_node_;
    Ring ring_;
    rpc::Dispatcher dispatcher_;
    std::unique_ptr<rpc::SimTransport> transport_;
    std::unique_ptr<rpc::ServiceClient> svc_;
};

TEST_F(MetaDhtFixture, PutStoresReplicationCopies) {
    auto dht = make_client(2);
    dht.put(key_of(1), meta::MetaNode::inner({1, 1}, {1, 1}));
    EXPECT_EQ(total_stored(), 2u);
    auto single = make_client(1);
    single.put(key_of(2), meta::MetaNode::inner({1, 1}, {1, 1}));
    EXPECT_EQ(total_stored(), 3u);
}

TEST_F(MetaDhtFixture, ReplicationClampedToRingSize) {
    auto dht = make_client(10);
    dht.put(key_of(1), meta::MetaNode::inner({}, {}));
    EXPECT_EQ(total_stored(), kProviders);
}

TEST_F(MetaDhtFixture, GetFailsOverToSurvivingReplica) {
    auto dht = make_client(2);
    dht.put(key_of(1), meta::MetaNode::leaf({9}, 55, 64));
    // Kill the primary owner.
    const NodeId primary = ring_.owners(key_of(1).hash(), 1).front();
    net_.kill(primary);
    const auto node = dht.get(key_of(1));
    EXPECT_EQ(node.chunk_uid, 55u);
    EXPECT_TRUE(dht.try_get(key_of(1)).has_value());
}

TEST_F(MetaDhtFixture, GetThrowsWhenAllReplicasDead) {
    auto dht = make_client(2);
    dht.put(key_of(1), meta::MetaNode::inner({}, {}));
    const auto owners = ring_.owners(key_of(1).hash(), 2);
    for (const NodeId o : owners) {
        net_.kill(o);
    }
    EXPECT_THROW((void)dht.get(key_of(1)), NotFoundError);
    EXPECT_FALSE(dht.try_get(key_of(1)).has_value());
}

TEST_F(MetaDhtFixture, MissingKeyIsNotFound) {
    auto dht = make_client(2);
    EXPECT_THROW((void)dht.get(key_of(42)), NotFoundError);
    EXPECT_FALSE(dht.try_get(key_of(42)).has_value());
}

TEST_F(MetaDhtFixture, PutToleratesOneDeadReplica) {
    auto dht = make_client(2);
    const auto owners = ring_.owners(key_of(1).hash(), 2);
    net_.kill(owners[1]);
    EXPECT_NO_THROW(dht.put(key_of(1), meta::MetaNode::inner({}, {})));
    EXPECT_EQ(total_stored(), 1u);
    // Reads still work through the copy that landed.
    EXPECT_NO_THROW(dht.get(key_of(1)));
}

TEST_F(MetaDhtFixture, PutFailsWhenNoReplicaLands) {
    auto dht = make_client(2);
    const auto owners = ring_.owners(key_of(1).hash(), 2);
    for (const NodeId o : owners) {
        net_.kill(o);
    }
    EXPECT_THROW(dht.put(key_of(1), meta::MetaNode::inner({}, {})),
                 RpcError);
}

TEST_F(MetaDhtFixture, EraseRemovesAllReplicas) {
    auto dht = make_client(3);
    dht.put(key_of(1), meta::MetaNode::inner({}, {}));
    EXPECT_EQ(total_stored(), 3u);
    dht.erase(key_of(1));
    EXPECT_EQ(total_stored(), 0u);
    EXPECT_FALSE(dht.try_get(key_of(1)).has_value());
}

TEST_F(MetaDhtFixture, KeysSpreadAcrossProviders) {
    auto dht = make_client(1);
    for (std::uint64_t i = 0; i < 300; ++i) {
        dht.put(key_of(i), meta::MetaNode::inner({}, {}));
    }
    for (const auto& p : providers_) {
        EXPECT_GT(p->stored_nodes(), 40u)
            << "provider " << p->node() << " starved";
    }
}

TEST_F(MetaDhtFixture, TrafficAccounting) {
    auto dht = make_client(2);
    dht.put(key_of(1), meta::MetaNode::inner({}, {}));
    (void)dht.get(key_of(1));
    EXPECT_EQ(dht.puts(), 1u);
    EXPECT_EQ(dht.gets(), 1u);
    // Two request legs for the put replicas + one for the get.
    EXPECT_GE(net_.node(client_node_).msgs_out.get(), 3u);
}

TEST_F(MetaDhtFixture, IdempotentReplicatedPut) {
    auto dht = make_client(2);
    dht.put(key_of(1), meta::MetaNode::leaf({1}, 7, 8));
    dht.put(key_of(1), meta::MetaNode::leaf({1}, 7, 8));
    EXPECT_EQ(total_stored(), 2u);
}

}  // namespace
}  // namespace blobseer::dht
