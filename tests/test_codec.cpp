/// \file test_codec.cpp
/// \brief LZ4 block-format conformance: decode vectors pinned
///        byte-for-byte against the published format, pinned compressor
///        output (the matcher is deterministic), randomized round-trip
///        properties incl. zero-length / incompressible / >4 MiB inputs,
///        and a malformed-stream fuzz loop that must never read out of
///        bounds (CI runs this file under ASan+UBSan and TSan).

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "codec/codec.hpp"
#include "codec/lz4.hpp"
#include "common/buffer.hpp"
#include "common/error.hpp"

namespace blobseer::codec {
namespace {

[[nodiscard]] Buffer bytes(std::initializer_list<int> xs) {
    Buffer out;
    for (const int x : xs) {
        out.push_back(static_cast<std::uint8_t>(x));
    }
    return out;
}

[[nodiscard]] Buffer ascii(const std::string& s) {
    return {s.begin(), s.end()};
}

// ---- pinned decode vectors (format conformance) ----------------------------
//
// Each block below is hand-assembled from lz4_Block_format.md; a decoder
// that deviates from the spec in token/extension/offset handling fails
// these byte-for-byte.

TEST(Lz4Format, LiteralsOnlyBlock) {
    // token 0x50: 5 literals, no match (last sequence is literals-only).
    const Lz4Codec c;
    const Buffer block = bytes({0x50, 'h', 'e', 'l', 'l', 'o'});
    EXPECT_EQ(c.decompress(block, 5), ascii("hello"));
}

TEST(Lz4Format, EmptyBlock) {
    // token 0x00: zero literals, no match — the empty input's encoding.
    const Lz4Codec c;
    EXPECT_EQ(c.decompress(bytes({0x00}), 0), Buffer{});
}

TEST(Lz4Format, ExtendedLiteralLength) {
    // 20 literals: high nibble 15, one extension byte 5 (15 + 5 = 20).
    const Lz4Codec c;
    Buffer block = bytes({0xF0, 0x05});
    Buffer raw;
    for (int i = 0; i < 20; ++i) {
        block.push_back(static_cast<std::uint8_t>('a' + i));
        raw.push_back(static_cast<std::uint8_t>('a' + i));
    }
    EXPECT_EQ(c.decompress(block, 20), raw);
}

TEST(Lz4Format, SimpleMatch) {
    // "abcd" x4: 4 literals, match offset 4 / length 8 (token low nibble
    // 8-4=4), then the mandatory literals-only tail.
    const Lz4Codec c;
    const Buffer block = bytes(
        {0x44, 'a', 'b', 'c', 'd', 0x04, 0x00, 0x40, 'a', 'b', 'c', 'd'});
    EXPECT_EQ(c.decompress(block, 16), ascii("abcdabcdabcdabcd"));
}

TEST(Lz4Format, OverlappingMatchIsRle) {
    // 1 literal 'a', match offset 1 / length 10: each copied byte is the
    // one just produced, i.e. run-length encoding. Tail: 5 literals.
    const Lz4Codec c;
    const Buffer block =
        bytes({0x16, 'a', 0x01, 0x00, 0x50, 'a', 'a', 'a', 'a', 'a'});
    EXPECT_EQ(c.decompress(block, 16), Buffer(16, 'a'));
}

TEST(Lz4Format, ExtendedMatchLength) {
    // Match length 25: nibble 15 + extension byte 6 (+ implicit 4).
    const Lz4Codec c;
    const Buffer block =
        bytes({0x1F, 'a', 0x01, 0x00, 0x06, 0x50, 'a', 'a', 'a', 'a', 'a'});
    EXPECT_EQ(c.decompress(block, 31), Buffer(31, 'a'));
}

TEST(Lz4Format, MultiByteLengthExtension) {
    // Literal length 15 + 255 + 9 = 279: extension run {0xFF, 0x09}.
    const Lz4Codec c;
    Buffer block = bytes({0xF0, 0xFF, 0x09});
    const Buffer raw(279, 'z');
    block.insert(block.end(), raw.begin(), raw.end());
    EXPECT_EQ(c.decompress(block, 279), raw);
}

// ---- pinned malformed blocks ------------------------------------------------

TEST(Lz4Format, RejectsZeroOffset) {
    const Lz4Codec c;
    const Buffer block =
        bytes({0x14, 'a', 0x00, 0x00, 0x50, 'a', 'a', 'a', 'a', 'a'});
    EXPECT_THROW((void)c.decompress(block, 14), Error);
}

TEST(Lz4Format, RejectsOffsetBeforeOutputStart) {
    // Offset 2 with only 1 byte produced so far.
    const Lz4Codec c;
    const Buffer block =
        bytes({0x14, 'a', 0x02, 0x00, 0x50, 'a', 'a', 'a', 'a', 'a'});
    EXPECT_THROW((void)c.decompress(block, 14), Error);
}

TEST(Lz4Format, RejectsTruncatedBlock) {
    const Lz4Codec c;
    // Literal run claims 5 bytes but only 2 follow.
    EXPECT_THROW((void)c.decompress(bytes({0x50, 'a', 'b'}), 5), Error);
    // Block ends right after a match: last sequence must be literals.
    EXPECT_THROW((void)c.decompress(bytes({0x44, 'a', 'b', 'c', 'd', 0x04,
                                           0x00}),
                                    12),
                 Error);
    // Offset cut in half.
    EXPECT_THROW((void)c.decompress(bytes({0x14, 'a', 0x01}), 10), Error);
}

TEST(Lz4Format, RejectsWrongDeclaredSize) {
    const Lz4Codec c;
    const Buffer block = bytes({0x50, 'h', 'e', 'l', 'l', 'o'});
    EXPECT_THROW((void)c.decompress(block, 4), Error);
    EXPECT_THROW((void)c.decompress(block, 6), Error);
    EXPECT_THROW((void)c.decompress(Buffer{}, 1), Error);
}

// ---- pinned compressor output ----------------------------------------------
//
// The greedy single-probe matcher is deterministic; pin its output so an
// accidental change to emission order or end-of-block handling shows up
// as a byte diff, not just a round-trip pass.

TEST(Lz4Compress, PinnedZeroRun) {
    const Lz4Codec c;
    // 32 zeros: 1 literal, match offset 1 len 26 (ext 22-15=7), 5-literal
    // tail — the format's mandatory last-12-bytes handling in miniature.
    const Buffer expect = bytes(
        {0x1F, 0x00, 0x01, 0x00, 0x07, 0x50, 0x00, 0x00, 0x00, 0x00, 0x00});
    EXPECT_EQ(c.compress(Buffer(32, 0x00)), expect);
}

TEST(Lz4Compress, PinnedSmallInputsAreLiterals) {
    const Lz4Codec c;
    EXPECT_EQ(c.compress(Buffer{}), bytes({0x00}));
    // <= 12 bytes can hold no match by the end-of-block rules.
    EXPECT_EQ(c.compress(ascii("xxxxx")),
              bytes({0x50, 'x', 'x', 'x', 'x', 'x'}));
}

// ---- framing ----------------------------------------------------------------

TEST(CodecFrame, IncompressibleDataPassesThroughRaw) {
    const Lz4Codec c;
    std::mt19937_64 rng(7);
    Buffer raw(256);
    for (auto& b : raw) {
        b = static_cast<std::uint8_t>(rng());
    }
    const Buffer frame = encode_frame(c, raw);
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ(frame[0], kFrameRaw);
    EXPECT_EQ(frame.size(), raw.size() + 1);  // one tag byte of overhead
    EXPECT_EQ(decode_frame(c, frame), raw);
    EXPECT_EQ(frame_raw_size(frame), raw.size());
}

TEST(CodecFrame, CompressibleDataShrinks) {
    const Lz4Codec c;
    const Buffer raw(64 * 1024, 0x42);
    const Buffer frame = encode_frame(c, raw);
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ(frame[0], kFrameLz4);
    EXPECT_LT(frame.size(), raw.size() / 16);
    EXPECT_EQ(decode_frame(c, frame), raw);
    EXPECT_EQ(frame_raw_size(frame), raw.size());
}

TEST(CodecFrame, RejectsMalformedFrames) {
    const Lz4Codec c;
    EXPECT_THROW((void)decode_frame(c, Buffer{}), Error);
    EXPECT_THROW((void)decode_frame(c, bytes({0x02, 1, 2, 3})), Error);
    EXPECT_THROW((void)decode_frame(c, bytes({0x01, 4, 0})), Error);
    // Tamper with the declared raw size of a valid compressed frame.
    Buffer frame = encode_frame(c, Buffer(4096, 0x11));
    ASSERT_EQ(frame[0], kFrameLz4);
    frame[1] = static_cast<std::uint8_t>(frame[1] + 1);
    EXPECT_THROW((void)decode_frame(c, frame), Error);
}

// ---- randomized round-trip property ----------------------------------------

[[nodiscard]] Buffer random_payload(std::mt19937_64& rng, std::size_t size,
                                    int flavor) {
    Buffer out(size);
    switch (flavor) {
        case 0:  // incompressible
            for (auto& b : out) {
                b = static_cast<std::uint8_t>(rng());
            }
            break;
        case 1: {  // highly repetitive: short unit repeated
            std::uint8_t unit[7];
            for (auto& b : unit) {
                b = static_cast<std::uint8_t>(rng());
            }
            for (std::size_t i = 0; i < size; ++i) {
                out[i] = unit[i % sizeof unit];
            }
            break;
        }
        default:  // mixed: zero runs with random spikes
            for (std::size_t i = 0; i < size; ++i) {
                out[i] = (rng() % 13 == 0)
                             ? static_cast<std::uint8_t>(rng())
                             : 0x00;
            }
            break;
    }
    return out;
}

TEST(Lz4RoundTrip, PropertyOverSizesAndFlavors) {
    const Lz4Codec c;
    std::mt19937_64 rng(20260807);
    const std::size_t sizes[] = {0, 1, 4, 5, 12, 13, 64, 100,
                                 4096, 65536, 1 << 20};
    for (const std::size_t size : sizes) {
        for (int flavor = 0; flavor < 3; ++flavor) {
            const Buffer raw = random_payload(rng, size, flavor);
            const Buffer block = c.compress(raw);
            EXPECT_EQ(c.decompress(block, raw.size()), raw)
                << "size=" << size << " flavor=" << flavor;
            const Buffer frame = encode_frame(c, raw);
            EXPECT_EQ(decode_frame(c, frame), raw)
                << "size=" << size << " flavor=" << flavor;
        }
    }
}

TEST(Lz4RoundTrip, LargeInputsPast4MiB) {
    const Lz4Codec c;
    std::mt19937_64 rng(99);
    const std::size_t size = (4u << 20) + 4099;  // > 4 MiB, off-aligned
    for (const int flavor : {1, 0}) {
        const Buffer raw = random_payload(rng, size, flavor);
        const Buffer block = c.compress(raw);
        if (flavor == 1) {
            EXPECT_LT(block.size(), raw.size() / 8);
        }
        EXPECT_EQ(c.decompress(block, raw.size()), raw);
    }
}

// ---- malformed-stream fuzz --------------------------------------------------
//
// decode_frame / decompress must either return or throw Error on ANY
// input; the sanitizer jobs prove "never reads out of bounds". Seeded,
// so failures reproduce.

void fuzz_decode_one(const Lz4Codec& c, const Buffer& frame,
                     std::size_t claimed) {
    try {
        (void)decode_frame(c, frame);
    } catch (const Error&) {
    }
    try {
        (void)c.decompress(frame, claimed);
    } catch (const Error&) {
    }
}

TEST(Lz4Fuzz, MutatedAndGarbageStreamsNeverEscapeBounds) {
    const Lz4Codec c;
    std::mt19937_64 rng(0xB5EE5EED);
    for (int i = 0; i < 3000; ++i) {
        Buffer frame;
        if (i % 3 != 0) {
            // Start from a valid frame, then corrupt it.
            const Buffer raw =
                random_payload(rng, 1 + rng() % 512, static_cast<int>(rng() % 3));
            frame = encode_frame(c, raw);
            const std::size_t flips = 1 + rng() % 8;
            for (std::size_t f = 0; f < flips && !frame.empty(); ++f) {
                frame[rng() % frame.size()] ^=
                    static_cast<std::uint8_t>(1u << (rng() % 8));
            }
            if (rng() % 4 == 0 && !frame.empty()) {
                frame.resize(rng() % frame.size());  // truncate
            }
        } else {
            // Pure garbage claiming to be a block.
            frame.resize(rng() % 300);
            for (auto& b : frame) {
                b = static_cast<std::uint8_t>(rng());
            }
        }
        const std::size_t claimed = rng() % (1u << 20);
        fuzz_decode_one(c, frame, claimed);
    }
}

}  // namespace
}  // namespace blobseer::codec
