/// \file test_repair.cpp
/// \brief Membership and re-replication tests (protocol v6): heartbeat
///        suspicion with virtual time, failure-report corroboration,
///        repair-queue dedup + journal persistence, repair convergence
///        after kills, rejoin rebalancing, and a randomized
///        failure-schedule property test.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "provider/provider_manager.hpp"
#include "provider/repair_queue.hpp"
#include "qos/failure_schedule.hpp"
#include "testing_util.hpp"

namespace blobseer::core {
namespace {

using provider::ChunkHolding;
using provider::ProviderManager;
using provider::RepairQueue;

constexpr std::uint64_t kChunk = 64;

chunk::ChunkKey uid_key(std::uint64_t blob, std::uint64_t uid) {
    return chunk::ChunkKey{blob, uid, chunk::ChunkKey::Kind::kUid};
}

/// A bare manager with one external provider joined + announced at t=0.
struct ManagerFixture {
    ProviderManager pm{provider::PlacementStrategy::kRoundRobin};
    NodeId node = kInvalidNode;

    explicit ManagerFixture(std::uint64_t timeout_ms = 1000) {
        pm.set_heartbeat_timeout_ms(timeout_ms);
        node = pm.join("dpA").node;
        pm.announce(node, "127.0.0.1", 9999,
                    {ChunkHolding{uid_key(1, 1), kChunk}}, /*at_ms=*/0);
    }
};

TEST(Heartbeat, TimeoutMarksDeadAndEnqueuesRepair) {
    ManagerFixture f;
    EXPECT_TRUE(f.pm.is_alive(f.node));
    EXPECT_TRUE(f.pm.heartbeat(f.node, 1, {}, {}, /*at_ms=*/500));

    // Within the window: nothing dies.
    EXPECT_TRUE(f.pm.check_heartbeats(/*at_ms=*/1400).empty());
    EXPECT_TRUE(f.pm.is_alive(f.node));

    // One ms past the window: dead, and its chunk needs repair.
    const auto dead = f.pm.check_heartbeats(/*at_ms=*/1502);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0], f.node);
    EXPECT_FALSE(f.pm.is_alive(f.node));
    EXPECT_EQ(f.pm.repair_backlog(), 1u);

    // The sweep is edge-triggered: a second pass finds nothing new.
    EXPECT_TRUE(f.pm.check_heartbeats(/*at_ms=*/2000).empty());
    EXPECT_EQ(f.pm.repair_backlog(), 1u);
}

TEST(Heartbeat, RejoinByNameReclaimsNodeId) {
    ManagerFixture f;
    const auto again = f.pm.join("dpA");
    EXPECT_TRUE(again.rejoin);
    EXPECT_EQ(again.node, f.node);
    const auto other = f.pm.join("dpB");
    EXPECT_FALSE(other.rejoin);
    EXPECT_NE(other.node, f.node);
}

TEST(Heartbeat, FlapDoesNotRepairTwice) {
    // dpA dies (timeout), its chunk is queued; a late beat revives it.
    // The queue must not hold a second entry, and once the provider is
    // back the planned action for the key is "converged, skip".
    ManagerFixture f;
    (void)f.pm.check_heartbeats(/*at_ms=*/1502);
    EXPECT_EQ(f.pm.repair_backlog(), 1u);

    // Beat arrives after all — the provider was only partitioned.
    EXPECT_TRUE(f.pm.heartbeat(f.node, 2, {}, {}, /*at_ms=*/1600));
    EXPECT_TRUE(f.pm.is_alive(f.node));
    // Re-enqueue attempts dedup against the existing entry.
    EXPECT_EQ(f.pm.repair_backlog(), 1u);

    // The worker pops the key and finds it converged.
    const auto key = f.pm.next_repair();
    ASSERT_TRUE(key.has_value());
    const auto plan = f.pm.repair_plan(*key);
    EXPECT_EQ(plan.action, ProviderManager::RepairPlan::Action::kSkip);
    f.pm.finish_repair(*key, false);
    EXPECT_EQ(f.pm.repair_backlog(), 0u);
    const auto st = f.pm.repair_status(/*at_ms=*/1700);
    EXPECT_EQ(st.skipped, 1u);
    EXPECT_EQ(st.completed, 0u);
}

TEST(Heartbeat, UnknownNodeBeatsAreRejected) {
    ManagerFixture f;
    EXPECT_FALSE(f.pm.heartbeat(f.node + 999, 1, {}, {}, /*at_ms=*/100));
    // In-process providers (registered, no name) must also re-join
    // before their beats count.
    f.pm.register_provider(7);
    EXPECT_FALSE(f.pm.heartbeat(7, 1, {}, {}, /*at_ms=*/100));
}

TEST(ReportFailure, RecentBeatOutvotesReporter) {
    ManagerFixture f;
    EXPECT_TRUE(f.pm.heartbeat(f.node, 1, {}, {}, /*at_ms=*/1000));
    // The suspect beat 200ms ago — the client hit a transient problem.
    EXPECT_FALSE(f.pm.report_failure(f.node, /*reporter=*/42,
                                     /*at_ms=*/1200));
    EXPECT_TRUE(f.pm.is_alive(f.node));

    // Past the suspicion window the report sticks and triggers repair.
    EXPECT_TRUE(f.pm.report_failure(f.node, 42, /*at_ms=*/2500));
    EXPECT_FALSE(f.pm.is_alive(f.node));
    EXPECT_EQ(f.pm.repair_backlog(), 1u);
}

TEST(ReportFailure, NeverBeatingProviderDiesOnSingleReport) {
    // In-process providers have no heartbeat alibi: one report kills
    // them (the pre-v6 mark_dead semantics clients rely on).
    ProviderManager pm(provider::PlacementStrategy::kRoundRobin);
    pm.set_heartbeat_timeout_ms(1000);
    pm.register_provider(3);
    EXPECT_TRUE(pm.report_failure(3, /*reporter=*/42, /*at_ms=*/100));
    EXPECT_FALSE(pm.is_alive(3));
}

TEST(RepairQueue, DedupAndCounters) {
    RepairQueue q;
    EXPECT_TRUE(q.enqueue(uid_key(1, 1)));
    EXPECT_FALSE(q.enqueue(uid_key(1, 1)));  // dup while queued
    EXPECT_TRUE(q.enqueue(uid_key(1, 2)));
    EXPECT_EQ(q.backlog(), 2u);
    EXPECT_EQ(q.counters().enqueued, 2u);
    EXPECT_EQ(q.counters().high_water, 2u);

    auto k = q.pop();
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(*k, uid_key(1, 1));
    q.finish(*k, /*copied=*/true);
    EXPECT_EQ(q.counters().completed, 1u);

    // Finished keys may be enqueued again (a later death of the same
    // chunk's holder).
    EXPECT_TRUE(q.enqueue(uid_key(1, 1)));

    k = q.pop();
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(*k, uid_key(1, 2));
    q.defer(*k);
    EXPECT_EQ(q.counters().deferred, 1u);
    EXPECT_EQ(q.backlog(), 2u);  // deferred keys still count as backlog
    EXPECT_EQ(q.fifo_size(), 1u);
    EXPECT_EQ(q.deferred_size(), 1u);
    EXPECT_EQ(q.rearm_deferred(), 1u);
    EXPECT_EQ(q.fifo_size(), 2u);
}

TEST(RepairQueue, JournalPersistsAcrossRestart) {
    const auto dir = std::filesystem::temp_directory_path() /
                     "blobseer-repair-journal-test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "repair.journal").string();

    {
        RepairQueue q(path);
        EXPECT_TRUE(q.enqueue(uid_key(9, 1)));
        EXPECT_TRUE(q.enqueue(uid_key(9, 2)));
        EXPECT_TRUE(q.enqueue(uid_key(9, 3)));
        auto k = q.pop();
        q.finish(*k, true);  // done: must NOT survive the restart
    }
    {
        RepairQueue q(path);
        EXPECT_EQ(q.backlog(), 2u);
        auto a = q.pop();
        auto b = q.pop();
        ASSERT_TRUE(a && b);
        EXPECT_EQ(*a, uid_key(9, 2));
        EXPECT_EQ(*b, uid_key(9, 3));
        // Popped-but-unfinished keys are still pending on replay.
    }
    {
        RepairQueue q(path);
        EXPECT_EQ(q.backlog(), 2u);
    }
    std::filesystem::remove_all(dir);
}

core::ClusterConfig repair_config(std::size_t dps, std::uint32_t repl) {
    auto cfg = blobseer::testing::fast_config();
    cfg.data_providers = dps;
    cfg.metadata_providers = 2;
    cfg.default_replication = repl;
    cfg.publish_timeout = seconds(2);
    return cfg;
}

std::size_t live_index_replicas(core::Cluster& cluster) {
    // Min live replica count over every key the index knows (via the
    // under-replicated gauge: 0 means everything is at target).
    return cluster.provider_manager().repair_status().under_replicated;
}

TEST(Repair, DrainRestoresReplicasAfterKillWithDataLoss) {
    Cluster cluster(repair_config(4, 2));
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 2);
    const Buffer data = make_pattern(blob.id(), 1, 0, 16 * kChunk);
    blob.write(0, data);
    EXPECT_EQ(live_index_replicas(cluster), 0u);

    std::size_t victim = 0;
    for (std::size_t i = 1; i < cluster.data_provider_count(); ++i) {
        if (cluster.data_provider(i).stored_bytes() >
            cluster.data_provider(victim).stored_bytes()) {
            victim = i;
        }
    }
    cluster.kill_data_provider(victim, /*lose_volatile=*/true);
    EXPECT_GT(cluster.provider_manager().repair_backlog(), 0u);
    EXPECT_GT(live_index_replicas(cluster), 0u);

    const std::uint64_t copies = cluster.drain_repairs();
    EXPECT_GT(copies, 0u);
    EXPECT_EQ(cluster.provider_manager().repair_backlog(), 0u);
    EXPECT_EQ(live_index_replicas(cluster), 0u);

    // Every chunk is fully replicated on the 3 survivors: kill ANOTHER
    // provider (the repair destinations included) and the data must
    // still read back byte-identical.
    std::size_t second = (victim + 1) % cluster.data_provider_count();
    cluster.kill_data_provider(second, /*lose_volatile=*/true);
    auto reader = cluster.make_client();
    Buffer out(data.size());
    EXPECT_EQ(reader->read(blob.id(), 1, 0, out), data.size());
    EXPECT_EQ(out, data);
}

TEST(Repair, RejoinRebalancesChunksWrittenDuringOutage) {
    // 3 providers, replication 3: while one is down, new chunks can only
    // reach 2 copies. The repair floor keeps them queued (deferred — no
    // live destination), and the rejoin must finish the job.
    Cluster cluster(repair_config(3, 3));
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 3);
    blob.write(0, make_pattern(blob.id(), 1, 0, 4 * kChunk));
    EXPECT_EQ(cluster.drain_repairs(), 0u);  // fully replicated already

    cluster.kill_data_provider(0, /*lose_volatile=*/false);
    const Version v2 =
        client->write(blob.id(), 4 * kChunk,
                      blobseer::testing::tagged(blob.id(), 2, 4 * kChunk,
                                                4 * kChunk));
    EXPECT_EQ(v2, 2u);
    // Outage writes are short of target and cannot be fixed yet.
    (void)cluster.drain_repairs();
    EXPECT_GT(live_index_replicas(cluster), 0u);
    const std::size_t held_before =
        cluster.provider_manager().chunk_holdings(
            cluster.data_provider(0).node());

    cluster.recover_data_provider(0);
    EXPECT_GT(cluster.drain_repairs(), 0u);
    EXPECT_EQ(live_index_replicas(cluster), 0u);
    EXPECT_EQ(cluster.provider_manager().repair_backlog(), 0u);
    // Rebalancing moved the outage-era chunks onto the rejoined node.
    EXPECT_GT(cluster.provider_manager().chunk_holdings(
                  cluster.data_provider(0).node()),
              held_before);

    // And the whole blob survives losing any one of the other nodes.
    cluster.kill_data_provider(1, /*lose_volatile=*/true);
    auto reader = cluster.make_client();
    Buffer out(8 * kChunk);
    EXPECT_EQ(reader->read(blob.id(), v2, 0, out), out.size());
    EXPECT_TRUE(blobseer::testing::matches(blob.id(), 1, 0,
                                           ConstBytes(out.data(),
                                                      4 * kChunk)));
    EXPECT_TRUE(blobseer::testing::matches(
        blob.id(), 2, 4 * kChunk,
        ConstBytes(out.data() + 4 * kChunk, 4 * kChunk)));
}

TEST(Repair, ClientReadFailureReportTriggersRepair) {
    // Regression for the read path: a client that cannot reach a replica
    // holder must report it (not just fail over locally), so the manager
    // re-replicates the survivor copies.
    Cluster cluster(repair_config(4, 2));
    auto client = cluster.make_client();
    Blob blob = client->create(kChunk, 2);
    const Buffer data = make_pattern(blob.id(), 1, 0, 8 * kChunk);
    blob.write(0, data);

    // Network-level kill only: the provider manager still thinks the
    // node is alive, so only a client report can start the repair.
    const NodeId victim = cluster.data_provider(0).node();
    cluster.network().kill(victim);
    ASSERT_TRUE(cluster.provider_manager().is_alive(victim));

    // Replica read order is seeded per client, so one reader may happen
    // to dodge the victim for every chunk; a few fresh clients cannot.
    for (int i = 0;
         i < 10 && cluster.provider_manager().is_alive(victim); ++i) {
        auto reader = cluster.make_client();
        Buffer out(data.size());
        ASSERT_EQ(reader->read(blob.id(), 1, 0, out), data.size());
        ASSERT_EQ(out, data);  // failover hides the outage entirely
    }
    EXPECT_FALSE(cluster.provider_manager().is_alive(victim));
    (void)cluster.drain_repairs();
    EXPECT_EQ(live_index_replicas(cluster), 0u);
}

TEST(Repair, RandomizedScheduleConverges) {
    // Property: under an arbitrary kill/recover schedule, once every
    // provider is back and repair drains, every chunk is at its replica
    // target and every byte reads back correctly.
    for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
        Cluster cluster(repair_config(4, 2));
        auto client = cluster.make_client();
        Blob blob = client->create(kChunk, 2);

        auto schedule = qos::FailureSchedule::random(
            /*providers=*/4, /*duration_s=*/10.0, /*period_s=*/1.0,
            /*outage_s=*/0.4, /*kill_prob=*/0.7, seed);

        std::uint64_t written = 0;
        double t = 0.0;
        std::uint64_t tag = 0;
        Version latest = 0;
        while (schedule.pending() > 0) {
            t += 0.5;
            (void)schedule.run_until(cluster, t);
            // Keep writing through the churn; replication must hide
            // every single-provider outage from the writer.
            const Buffer part = blobseer::testing::tagged(
                blob.id(), ++tag, written, 2 * kChunk);
            ASSERT_NO_THROW(latest = client->write(blob.id(), written,
                                                   part))
                << "seed " << seed << " t=" << t;
            written += part.size();
            (void)cluster.drain_repairs();
        }

        for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
            cluster.recover_data_provider(i);
            cluster.restore_data_provider(i);
        }
        (void)cluster.drain_repairs();
        EXPECT_EQ(cluster.provider_manager().repair_backlog(), 0u)
            << "seed " << seed;
        EXPECT_EQ(live_index_replicas(cluster), 0u) << "seed " << seed;

        // Byte-identical readback of the final version.
        auto reader = cluster.make_client();
        Buffer out(written);
        EXPECT_EQ(reader->read(blob.id(), latest, 0, out), written)
            << "seed " << seed;
        for (std::uint64_t i = 0; i < tag; ++i) {
            EXPECT_TRUE(blobseer::testing::matches(
                blob.id(), i + 1, i * 2 * kChunk,
                ConstBytes(out.data() + i * 2 * kChunk, 2 * kChunk)))
                << "seed " << seed << " part " << i;
        }
    }
}

}  // namespace
}  // namespace blobseer::core
