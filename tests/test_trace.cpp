/// \file test_trace.cpp
/// \brief Distributed-tracing primitives (context, scope, span ring) and
/// end-to-end trace propagation / telemetry dumps on an in-process
/// cluster.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "rpc/sim_transport.hpp"
#include "testing_util.hpp"

namespace blobseer {
namespace {

using blobseer::testing::fast_config;

// ---- context and scope -------------------------------------------------------

TEST(TraceContext, ZeroTraceIdMeansInactive) {
    trace::TraceContext ctx;
    EXPECT_FALSE(ctx.active());
    EXPECT_FALSE(ctx.sampled());
    ctx.trace_id = 1;
    EXPECT_TRUE(ctx.active());
    ctx.flags = trace::TraceContext::kSampled;
    EXPECT_TRUE(ctx.sampled());
}

TEST(TraceScope, InstallsAndRestoresNested) {
    ASSERT_FALSE(trace::current().active()) << "test thread pre-polluted";
    trace::TraceContext outer;
    outer.trace_id = 0xaa;
    outer.span_id = 1;
    {
        const trace::TraceScope a(outer);
        EXPECT_EQ(trace::current(), outer);
        trace::TraceContext inner = outer;
        inner.span_id = 2;
        {
            const trace::TraceScope b(inner);
            EXPECT_EQ(trace::current().span_id, 2u);
        }
        EXPECT_EQ(trace::current(), outer);
    }
    EXPECT_FALSE(trace::current().active());
}

TEST(TraceIds, FreshIdsAreNonZeroAndDistinct) {
    std::set<std::uint64_t> traces;
    std::set<std::uint32_t> spans;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t t = trace::new_trace_id();
        const std::uint32_t s = trace::new_span_id();
        EXPECT_NE(t, 0u);
        EXPECT_NE(s, 0u);
        traces.insert(t);
        spans.insert(s);
    }
    EXPECT_EQ(traces.size(), 64u);
    EXPECT_EQ(spans.size(), 64u);
}

// ---- SpanRecord --------------------------------------------------------------

TEST(SpanRecord, OpNameRoundTripsAndTruncates) {
    trace::SpanRecord rec;
    rec.set_op("chunk-put");
    EXPECT_EQ(rec.op_name(), "chunk-put");

    rec.set_op("a-ridiculously-long-operation-name");
    EXPECT_EQ(rec.op_name().size(), sizeof(rec.op) - 1);
    EXPECT_EQ(rec.op_name(), "a-ridiculously-long-o");

    rec.set_op("");  // shrinking must clear the old tail
    EXPECT_EQ(rec.op_name(), "");
}

// ---- TraceBuffer -------------------------------------------------------------

trace::SpanRecord make_span(std::uint64_t trace_id, std::uint32_t span_id,
                            const char* op = "op") {
    trace::SpanRecord rec;
    rec.trace_id = trace_id;
    rec.span_id = span_id;
    rec.duration_us = 10;
    rec.set_op(op);
    return rec;
}

TEST(TraceBuffer, ShouldRecordSampledOrSlow) {
    EXPECT_TRUE(trace::TraceBuffer::should_record(true, 0));
    EXPECT_FALSE(trace::TraceBuffer::should_record(false, 0));
    EXPECT_TRUE(trace::TraceBuffer::should_record(
        false, trace::TraceBuffer::kSlowUs));
}

TEST(TraceBuffer, SnapshotFiltersByTraceId) {
    trace::TraceBuffer ring(16);
    ring.record(make_span(0x11, 1, "write"));
    ring.record(make_span(0x22, 2, "read"));
    ring.record(make_span(0x11, 3, "commit"));

    const auto all = ring.snapshot();
    EXPECT_EQ(all.size(), 3u);
    const auto t11 = ring.snapshot(0x11);
    ASSERT_EQ(t11.size(), 2u);
    for (const auto& rec : t11) {
        EXPECT_EQ(rec.trace_id, 0x11u);
    }
    const auto none = ring.snapshot(0x33);
    EXPECT_TRUE(none.empty());
}

TEST(TraceBuffer, SnapshotHonorsMax) {
    trace::TraceBuffer ring(16);
    for (std::uint32_t i = 1; i <= 8; ++i) {
        ring.record(make_span(0x1, i));
    }
    EXPECT_EQ(ring.snapshot(0, 3).size(), 3u);
}

TEST(TraceBuffer, WrapAroundKeepsNewestAndCountsEverything) {
    trace::TraceBuffer ring(8);
    ASSERT_EQ(ring.capacity(), 8u);
    for (std::uint32_t i = 1; i <= 24; ++i) {
        ring.record(make_span(0x7, i));
    }
    EXPECT_EQ(ring.recorded(), 24u);
    const auto spans = ring.snapshot(0x7);
    EXPECT_LE(spans.size(), ring.capacity());
    // Newest-wins: every surviving span is from the last lap.
    for (const auto& rec : spans) {
        EXPECT_GT(rec.span_id, 16u);
    }
}

TEST(TraceBuffer, ConcurrentRecordAndSnapshotStaysCoherent) {
    // TSan coverage for the seqlock ring: writers hammer a small ring
    // while readers snapshot; every span a reader observes must be
    // internally consistent (never a torn mix of two writes).
    trace::TraceBuffer ring(32);
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t) {
        writers.emplace_back([&ring, t] {
            for (std::uint32_t i = 1; i <= 2000; ++i) {
                trace::SpanRecord rec = make_span(
                    static_cast<std::uint64_t>(t + 1) << 32 | i, i);
                rec.bytes = rec.trace_id;  // mirror for coherence check
                rec.set_op(t == 0 ? "alpha" : t == 1 ? "bravo" : "charlie");
                ring.record(rec);
            }
        });
    }
    std::thread reader([&ring, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            for (const auto& rec : ring.snapshot()) {
                ASSERT_EQ(rec.bytes, rec.trace_id)
                    << "torn span escaped the seqlock";
                const std::string_view op = rec.op_name();
                ASSERT_TRUE(op == "alpha" || op == "bravo" ||
                            op == "charlie");
            }
        }
    });

    for (auto& w : writers) {
        w.join();
    }
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_EQ(ring.recorded() + ring.dropped(), 6000u);
}

// ---- end-to-end propagation on a sim cluster ---------------------------------

class TracedClusterTest : public ::testing::Test {
  protected:
    TracedClusterTest() {
        core::ClusterConfig cfg = fast_config();
        cfg.client_trace = true;
        cluster_ = std::make_unique<core::Cluster>(cfg);
        client_ = cluster_->make_client();
    }

    std::unique_ptr<core::Cluster> cluster_;
    std::unique_ptr<core::BlobSeerClient> client_;
};

TEST_F(TracedClusterTest, WriteProducesASingleRootedSpanTree) {
    core::Blob blob = client_->create(64);
    const Buffer data = make_pattern(blob.id(), 1, 0, 3 * 64);
    blob.write(0, data);

    const std::uint64_t trace_id = client_->last_trace_id();
    ASSERT_NE(trace_id, 0u);
    const auto spans = trace::buffer().snapshot(trace_id);
    ASSERT_FALSE(spans.empty());

    // Exactly one root client span, named after the op.
    std::vector<trace::SpanRecord> roots;
    std::set<std::uint32_t> client_span_ids;
    for (const auto& rec : spans) {
        EXPECT_EQ(rec.trace_id, trace_id);
        if (rec.kind == trace::SpanRecord::kClient) {
            client_span_ids.insert(rec.span_id);
            if (rec.parent_span == 0) {
                roots.push_back(rec);
            }
        }
    }
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0].op_name(), "write");
    EXPECT_EQ(roots[0].status, 0);

    // Every non-root client span hangs off a known client span, and
    // every server half shares its span id with a client half.
    std::size_t server_halves = 0;
    for (const auto& rec : spans) {
        if (rec.kind == trace::SpanRecord::kClient &&
            rec.parent_span != 0) {
            EXPECT_TRUE(client_span_ids.count(rec.parent_span))
                << "orphan client span " << rec.op_name();
        }
        if (rec.kind == trace::SpanRecord::kServer) {
            ++server_halves;
            EXPECT_TRUE(client_span_ids.count(rec.span_id))
                << "server half without client half: " << rec.op_name();
        }
    }
    // A 3-chunk write fans out into chunk puts, metadata puts, assign,
    // commit — the tree must actually be distributed.
    EXPECT_GE(server_halves, 4u);
}

TEST_F(TracedClusterTest, ReadAndWriteGetDistinctTraceIds) {
    core::Blob blob = client_->create(64);
    const Buffer data = make_pattern(blob.id(), 1, 0, 2 * 64);
    blob.write(0, data);
    const std::uint64_t write_trace = client_->last_trace_id();

    Buffer out(data.size());
    EXPECT_EQ(blob.read(1, 0, out), out.size());
    const std::uint64_t read_trace = client_->last_trace_id();

    ASSERT_NE(read_trace, 0u);
    EXPECT_NE(write_trace, read_trace);
    const auto spans = trace::buffer().snapshot(read_trace);
    ASSERT_FALSE(spans.empty());
    bool found_root = false;
    for (const auto& rec : spans) {
        if (rec.parent_span == 0 &&
            rec.kind == trace::SpanRecord::kClient) {
            found_root = true;
            EXPECT_EQ(rec.op_name(), "read");
        }
    }
    EXPECT_TRUE(found_root);
}

TEST_F(TracedClusterTest, TraceDumpRpcReturnsTheTraceSpans) {
    core::Blob blob = client_->create(64);
    blob.append(make_pattern(blob.id(), 2, 0, 64));
    const std::uint64_t trace_id = client_->last_trace_id();
    ASSERT_NE(trace_id, 0u);

    const auto remote = client_->services().trace_dump(trace_id);
    ASSERT_FALSE(remote.empty());
    for (const auto& rec : remote) {
        EXPECT_EQ(rec.trace_id, trace_id);
    }
    // The dump RPC itself runs inside the append's finished trace scope?
    // No — it is a fresh untraced call, so it must not have grown the
    // trace: local and remote agree on the span set size.
    const auto local = trace::buffer().snapshot(trace_id);
    EXPECT_EQ(remote.size(), local.size());
}

TEST_F(TracedClusterTest, MetricsDumpExposesPerOpServerTelemetry) {
    core::Blob blob = client_->create(64);
    blob.append(make_pattern(blob.id(), 3, 0, 3 * 64));
    Buffer out(64);
    EXPECT_EQ(blob.read(1, 64, out), out.size());

    const MetricsSnapshot snap = client_->services().metrics_dump();
    ASSERT_FALSE(snap.samples.empty());

    std::map<std::string, std::uint64_t> latency_count_by_op;
    bool saw_requests = false;
    for (const MetricSample& s : snap.samples) {
        if (s.name == "rpc_server_requests_total" && s.value > 0) {
            saw_requests = true;
        }
        if (s.name == "rpc_server_latency_us") {
            for (const auto& [k, v] : s.labels) {
                if (k == "op") {
                    latency_count_by_op[v] += s.count;
                }
            }
        }
    }
    EXPECT_TRUE(saw_requests);
    // The append + read must have produced non-empty per-op latency
    // histograms for the chunk path.
    EXPECT_GT(latency_count_by_op["chunk-put"], 0u);
    EXPECT_GT(latency_count_by_op["chunk-get"], 0u);
}

TEST(UntracedCluster, NoSampledSpansWithoutOptIn) {
    core::ClusterConfig cfg = fast_config();
    ASSERT_FALSE(cfg.client_trace);
    core::Cluster cluster(cfg);
    auto client = cluster.make_client();
    core::Blob blob = client->create(64);
    blob.append(make_pattern(blob.id(), 4, 0, 64));
    EXPECT_EQ(client->last_trace_id(), 0u);
}

}  // namespace
}  // namespace blobseer
