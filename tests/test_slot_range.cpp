/// \file test_slot_range.cpp
/// \brief Unit tests for the segment-tree range algebra and geometry.

#include <gtest/gtest.h>

#include "meta/slot_range.hpp"

namespace blobseer::meta {
namespace {

TEST(SlotRange, Halves) {
    const SlotRange r{8, 8};
    EXPECT_EQ(r.left(), (SlotRange{8, 4}));
    EXPECT_EQ(r.right(), (SlotRange{12, 4}));
    EXPECT_TRUE(r.aligned());
    EXPECT_TRUE(r.left().aligned());
    EXPECT_TRUE(r.right().aligned());
}

TEST(SlotRange, Alignment) {
    EXPECT_TRUE((SlotRange{0, 1}).aligned());
    EXPECT_TRUE((SlotRange{4, 4}).aligned());
    EXPECT_FALSE((SlotRange{2, 4}).aligned());  // first not multiple of count
    EXPECT_FALSE((SlotRange{0, 3}).aligned());  // count not pow2
    EXPECT_FALSE((SlotRange{0, 0}).aligned());
}

TEST(SlotRange, LeafDetection) {
    EXPECT_TRUE((SlotRange{5, 1}).is_leaf());
    EXPECT_FALSE((SlotRange{4, 2}).is_leaf());
}

TEST(SlotRange, Intersection) {
    const SlotRange a{4, 4};  // [4,8)
    EXPECT_TRUE(a.intersects({7, 2}));
    EXPECT_FALSE(a.intersects({8, 4}));
    EXPECT_FALSE(a.intersects({0, 4}));
    EXPECT_TRUE(a.contains({4, 4}));
    EXPECT_TRUE(a.contains({6, 2}));
    EXPECT_FALSE(a.contains({6, 4}));
}

TEST(TreeGeometry, SlotsForBytes) {
    const TreeGeometry geo(8);
    EXPECT_EQ(geo.slots_for(0), 0u);
    EXPECT_EQ(geo.slots_for(1), 1u);
    EXPECT_EQ(geo.slots_for(8), 1u);
    EXPECT_EQ(geo.slots_for(9), 2u);
    EXPECT_EQ(geo.slots_for(64), 8u);
}

TEST(TreeGeometry, TreeSlotsArePow2) {
    const TreeGeometry geo(8);
    EXPECT_EQ(geo.tree_slots(0), 0u);   // empty blob: no tree
    EXPECT_EQ(geo.tree_slots(1), 1u);
    EXPECT_EQ(geo.tree_slots(17), 4u);  // 3 slots -> 4
    EXPECT_EQ(geo.tree_slots(64), 8u);
    EXPECT_EQ(geo.tree_slots(65), 16u);
}

TEST(TreeGeometry, SlotsOfByteRange) {
    const TreeGeometry geo(8);
    EXPECT_EQ(geo.slots_of({0, 8}), (SlotRange{0, 1}));
    EXPECT_EQ(geo.slots_of({0, 9}), (SlotRange{0, 2}));
    EXPECT_EQ(geo.slots_of({8, 8}), (SlotRange{1, 1}));
    EXPECT_EQ(geo.slots_of({7, 2}), (SlotRange{0, 2}));  // straddles
    EXPECT_EQ(geo.slots_of({16, 1}), (SlotRange{2, 1}));
    EXPECT_TRUE(geo.slots_of({5, 0}).empty());
}

TEST(TreeGeometry, BytesOfSlot) {
    const TreeGeometry geo(64);
    EXPECT_EQ(geo.bytes_of_slot(0), (ByteRange{0, 64}));
    EXPECT_EQ(geo.bytes_of_slot(3), (ByteRange{192, 64}));
}

TEST(TreeGeometry, RootRangeGrowsWithSize) {
    const TreeGeometry geo(4);
    EXPECT_TRUE(geo.root_range(0).empty());
    EXPECT_EQ(geo.root_range(4), (SlotRange{0, 1}));
    EXPECT_EQ(geo.root_range(5), (SlotRange{0, 2}));
    EXPECT_EQ(geo.root_range(16), (SlotRange{0, 4}));
    EXPECT_EQ(geo.root_range(17), (SlotRange{0, 8}));
}

}  // namespace
}  // namespace blobseer::meta
