/// \file test_versioning_features.cpp
/// \brief Tests of the version-history surface: history listings,
///        changed-range diffs, snapshot pinning and version retirement
///        with physical storage reclamation.

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace blobseer::core {
namespace {

constexpr std::uint64_t kChunk = 64;

class VersioningFixture : public ::testing::Test {
  protected:
    VersioningFixture() : cluster_(blobseer::testing::fast_config()) {
        client_ = cluster_.make_client();
        blob_ = std::make_unique<Blob>(client_->create(kChunk));
    }

    std::uint64_t stored_chunk_bytes() {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < cluster_.data_provider_count(); ++i) {
            total += cluster_.data_provider(i).stored_bytes();
        }
        return total;
    }

    std::size_t stored_meta_nodes() {
        std::size_t total = 0;
        for (std::size_t i = 0; i < cluster_.metadata_provider_count();
             ++i) {
            total += cluster_.metadata_provider(i).stored_nodes();
        }
        return total;
    }

    Cluster cluster_;
    std::unique_ptr<BlobSeerClient> client_;
    std::unique_ptr<Blob> blob_;
};

TEST_F(VersioningFixture, HistoryListsWrites) {
    blob_->write(0, Buffer(2 * kChunk, 1));
    blob_->append(Buffer(kChunk, 2));
    blob_->write(kChunk, Buffer(kChunk, 3));

    const auto h = client_->history(blob_->id());
    ASSERT_EQ(h.size(), 3u);
    EXPECT_EQ(h[0].version, 1u);
    EXPECT_EQ(h[0].offset, 0u);
    EXPECT_EQ(h[0].size, 2 * kChunk);
    EXPECT_EQ(h[1].offset, 2 * kChunk);  // append landed at the end
    EXPECT_EQ(h[1].size_after, 3 * kChunk);
    EXPECT_EQ(h[2].offset, kChunk);
    EXPECT_EQ(h[2].status, version::VersionStatus::kPublished);

    // Sub-ranges clamp.
    EXPECT_EQ(client_->history(blob_->id(), 2, 2).size(), 1u);
    EXPECT_EQ(client_->history(blob_->id(), 5, 99).size(), 0u);
}

TEST_F(VersioningFixture, ChangedRangesMergesWrites) {
    blob_->write(0, Buffer(8 * kChunk, 1));        // v1
    blob_->write(0, Buffer(kChunk, 2));            // v2: [0, c)
    blob_->write(kChunk, Buffer(kChunk, 3));       // v3: [c, 2c) adjacent
    blob_->write(4 * kChunk, Buffer(kChunk, 4));   // v4: [4c, 5c) separate

    const auto diff = client_->changed_ranges(blob_->id(), 1, 4);
    ASSERT_EQ(diff.size(), 2u);
    EXPECT_EQ(diff[0], (ByteRange{0, 2 * kChunk}));  // v2+v3 merged
    EXPECT_EQ(diff[1], (ByteRange{4 * kChunk, kChunk}));

    // Diff of adjacent versions is that version's write only.
    const auto one = client_->changed_ranges(blob_->id(), 3, 4);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], (ByteRange{4 * kChunk, kChunk}));

    EXPECT_TRUE(client_->changed_ranges(blob_->id(), 4, 4 + 0).empty());
}

TEST_F(VersioningFixture, ChangedRangesValidation) {
    blob_->write(0, Buffer(kChunk, 1));
    EXPECT_THROW((void)client_->changed_ranges(blob_->id(), 2, 1),
                 InvalidArgument);
}

TEST_F(VersioningFixture, RetireReclaimsStorage) {
    // v1 fills 8 chunks; v2..v4 each rewrite chunk 0. Retiring below v4
    // must delete exactly the three superseded chunk-0 chunks and their
    // private tree paths.
    blob_->write(0, Buffer(8 * kChunk, 1));
    for (int i = 0; i < 3; ++i) {
        blob_->write(0, Buffer(kChunk, static_cast<std::uint8_t>(2 + i)));
    }
    const std::uint64_t bytes_before = stored_chunk_bytes();
    const std::size_t meta_before = stored_meta_nodes();

    const auto stats = client_->retire_versions(blob_->id(), 4);
    EXPECT_EQ(stats.versions, 3u);  // v1, v2, v3
    // v2 and v3's chunk-0 chunks are superseded (by v3 and v4); v1's
    // chunk 0 is superseded by v2. Chunks 1..7 of v1 are still read by
    // v4 and must survive.
    EXPECT_EQ(stats.chunks, 3u);
    EXPECT_GT(stats.meta_nodes, 0u);
    EXPECT_EQ(stored_chunk_bytes(), bytes_before - 3 * kChunk);
    EXPECT_LT(stored_meta_nodes(), meta_before);

    // The surviving snapshot is fully readable.
    Buffer out(8 * kChunk);
    EXPECT_EQ(client_->read(blob_->id(), 4, 0, out), out.size());
    EXPECT_EQ(out[0], 4u);          // newest chunk-0 rewrite
    EXPECT_EQ(out[kChunk], 1u);     // v1 data preserved

    // Retired snapshots refuse reads.
    EXPECT_THROW(client_->read(blob_->id(), 1, 0, out), VersionRetired);
    EXPECT_THROW(client_->read(blob_->id(), 3, 0, out), VersionRetired);
    EXPECT_EQ(client_->stat(blob_->id()).version, 4u);
}

TEST_F(VersioningFixture, RetireIsIdempotentAndIncremental) {
    for (int i = 0; i < 5; ++i) {
        blob_->append(Buffer(kChunk, static_cast<std::uint8_t>(i)));
    }
    EXPECT_EQ(client_->retire_versions(blob_->id(), 3).versions, 2u);
    EXPECT_EQ(client_->retire_versions(blob_->id(), 3).versions, 0u);
    EXPECT_EQ(client_->retire_versions(blob_->id(), 5).versions, 2u);
    // Appends never supersede old chunks, so nothing is reclaimable —
    // every byte is still part of the latest snapshot.
    Buffer out(5 * kChunk);
    EXPECT_EQ(client_->read(blob_->id(), 5, 0, out), out.size());
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(out[i * kChunk], i);
    }
}

TEST_F(VersioningFixture, RetireValidation) {
    blob_->write(0, Buffer(kChunk, 1));
    EXPECT_THROW(client_->retire_versions(blob_->id(), 0), InvalidArgument);
    EXPECT_THROW(client_->retire_versions(blob_->id(), 2), InvalidArgument);
    EXPECT_EQ(client_->retire_versions(blob_->id(), 1).versions, 0u);
}

TEST_F(VersioningFixture, PinProtectsSnapshot) {
    blob_->write(0, Buffer(2 * kChunk, 1));              // v1
    blob_->write(0, Buffer(2 * kChunk, 2));              // v2
    blob_->write(0, Buffer(2 * kChunk, 3));              // v3
    client_->pin(blob_->id(), 1);

    const auto stats = client_->retire_versions(blob_->id(), 3);
    EXPECT_EQ(stats.versions, 1u);  // only v2; v1 is pinned

    Buffer out(2 * kChunk);
    EXPECT_EQ(client_->read(blob_->id(), 1, 0, out), out.size());
    EXPECT_EQ(out[0], 1u);
    EXPECT_THROW(client_->read(blob_->id(), 2, 0, out), VersionRetired);

    // Unpin, retire again: now v1 goes too.
    client_->unpin(blob_->id(), 1);
    EXPECT_EQ(client_->retire_versions(blob_->id(), 3).versions, 1u);
    EXPECT_THROW(client_->read(blob_->id(), 1, 0, out), VersionRetired);
}

TEST_F(VersioningFixture, PinValidation) {
    blob_->write(0, Buffer(kChunk, 1));
    EXPECT_THROW(client_->pin(blob_->id(), 0), InvalidArgument);
    EXPECT_THROW(client_->pin(blob_->id(), 2), InvalidArgument);
    EXPECT_NO_THROW(client_->pin(blob_->id(), 1));
    EXPECT_NO_THROW(client_->unpin(blob_->id(), 1));
    EXPECT_NO_THROW(client_->unpin(blob_->id(), 1));  // idempotent
}

TEST_F(VersioningFixture, CloneOriginSurvivesRetirement) {
    blob_->write(0, Buffer(4 * kChunk, 1));  // v1
    Blob copy = client_->clone(blob_->id(), 1);
    blob_->write(0, Buffer(4 * kChunk, 2));  // v2
    blob_->write(0, Buffer(4 * kChunk, 3));  // v3

    // v1 is a clone origin: auto-pinned, not retirable, still readable
    // through the clone.
    const auto stats = client_->retire_versions(blob_->id(), 3);
    EXPECT_EQ(stats.versions, 1u);  // v2 only

    Buffer out(4 * kChunk);
    EXPECT_EQ(copy.read(0, 0, out), out.size());
    EXPECT_EQ(out[0], 1u);
    // Direct read of v1 on the origin is also still allowed (pinned).
    EXPECT_EQ(client_->read(blob_->id(), 1, 0, out), out.size());
}

TEST_F(VersioningFixture, CloneOfRetiredVersionRejected) {
    blob_->write(0, Buffer(kChunk, 1));
    blob_->write(0, Buffer(kChunk, 2));
    client_->retire_versions(blob_->id(), 2);
    EXPECT_THROW((void)client_->clone(blob_->id(), 1), VersionAborted);
}

TEST_F(VersioningFixture, RetireWithOverlappingSparseHistory) {
    // Build a messy history and verify the survivor is byte-exact after
    // reclamation.
    blob_->write(0, make_pattern(blob_->id(), 1, 0, 6 * kChunk));
    blob_->write(2 * kChunk, make_pattern(blob_->id(), 2, 0, 2 * kChunk));
    blob_->append(make_pattern(blob_->id(), 3, 0, kChunk + 7));
    blob_->write(0, make_pattern(blob_->id(), 4, 0, kChunk));
    const auto before = client_->stat(blob_->id());
    Buffer expect(before.size);
    client_->read(blob_->id(), before.version, 0, expect);

    client_->retire_versions(blob_->id(), before.version);
    Buffer got(before.size);
    client_->read(blob_->id(), before.version, 0, got);
    EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace blobseer::core
