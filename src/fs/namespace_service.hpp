/// \file namespace_service.hpp
/// \brief BSFS namespace manager: the hierarchical directory tree mapping
///        file paths to blobs.
///
/// Paper §IV-D: BSFS "manages a hierarchical directory structure, mapping
/// files to blobs". The namespace manager is a (small, centralized)
/// service — but unlike HDFS's namenode it is consulted once per
/// file open, never per block: block-range metadata lives in BlobSeer's
/// decentralized DHT. This asymmetry is what experiment E5 measures.
///
/// The service is thread-safe and exposes the usual namespace
/// operations: create, mkdir, lookup, list, rename, remove.

#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "fs/path.hpp"

namespace blobseer::fs {

enum class EntryType : std::uint8_t { kFile, kDirectory };

struct DirEntry {
    std::string name;
    EntryType type = EntryType::kFile;
    BlobId blob = kInvalidBlob;  ///< files only
};

struct FileInfo {
    std::string path;
    EntryType type = EntryType::kFile;
    BlobId blob = kInvalidBlob;
    std::uint64_t chunk_size = 0;
};

class NamespaceService {
  public:
    explicit NamespaceService(NodeId node) : node_(node) {
        entries_.emplace("/", Entry{EntryType::kDirectory, kInvalidBlob, 0});
    }

    [[nodiscard]] NodeId node() const noexcept { return node_; }

    /// Register a file at \p raw_path backed by \p blob. Parent
    /// directories must exist. Throws if the path exists.
    FileInfo create_file(const std::string& raw_path, BlobId blob,
                         std::uint64_t chunk_size) {
        const std::string path = normalize_path(raw_path);
        const std::scoped_lock lock(mu_);
        require_dir(parent_of(path));
        if (entries_.contains(path)) {
            throw InvalidArgument("path exists: " + path);
        }
        entries_.emplace(path, Entry{EntryType::kFile, blob, chunk_size});
        ops_.add();
        return FileInfo{path, EntryType::kFile, blob, chunk_size};
    }

    /// Create a directory (parents must exist; mkdir -p via mkdirs).
    void mkdir(const std::string& raw_path) {
        const std::string path = normalize_path(raw_path);
        const std::scoped_lock lock(mu_);
        require_dir(parent_of(path));
        if (entries_.contains(path)) {
            throw InvalidArgument("path exists: " + path);
        }
        entries_.emplace(path, Entry{EntryType::kDirectory, kInvalidBlob, 0});
        ops_.add();
    }

    /// Create a directory and any missing ancestors.
    void mkdirs(const std::string& raw_path) {
        const std::string path = normalize_path(raw_path);
        const std::scoped_lock lock(mu_);
        std::string cur;
        for (const auto& comp : components_of(path)) {
            cur += '/';
            cur += comp;
            const auto it = entries_.find(cur);
            if (it == entries_.end()) {
                entries_.emplace(cur,
                                 Entry{EntryType::kDirectory, kInvalidBlob,
                                       0});
            } else if (it->second.type != EntryType::kDirectory) {
                throw InvalidArgument("not a directory: " + cur);
            }
        }
        ops_.add();
    }

    [[nodiscard]] std::optional<FileInfo> lookup(
        const std::string& raw_path) const {
        const std::string path = normalize_path(raw_path);
        const std::scoped_lock lock(mu_);
        ops_.add();
        const auto it = entries_.find(path);
        if (it == entries_.end()) {
            return std::nullopt;
        }
        return FileInfo{path, it->second.type, it->second.blob,
                        it->second.chunk_size};
    }

    [[nodiscard]] bool exists(const std::string& raw_path) const {
        return lookup(raw_path).has_value();
    }

    /// Immediate children of a directory.
    [[nodiscard]] std::vector<DirEntry> list(
        const std::string& raw_path) const {
        const std::string path = normalize_path(raw_path);
        const std::scoped_lock lock(mu_);
        require_dir(path);
        ops_.add();
        std::vector<DirEntry> out;
        const std::string prefix = path == "/" ? "/" : path + "/";
        for (auto it = entries_.upper_bound(prefix); it != entries_.end();
             ++it) {
            if (it->first.compare(0, prefix.size(), prefix) != 0) {
                break;
            }
            if (it->first.find('/', prefix.size()) != std::string::npos) {
                continue;  // deeper descendant
            }
            out.push_back(DirEntry{it->first.substr(prefix.size()),
                                   it->second.type, it->second.blob});
        }
        return out;
    }

    /// Rename a file or (empty-safe) an entire subtree.
    void rename(const std::string& raw_from, const std::string& raw_to) {
        const std::string from = normalize_path(raw_from);
        const std::string to = normalize_path(raw_to);
        const std::scoped_lock lock(mu_);
        const auto it = entries_.find(from);
        if (it == entries_.end()) {
            throw NotFoundError("path " + from);
        }
        require_dir(parent_of(to));
        if (entries_.contains(to)) {
            throw InvalidArgument("target exists: " + to);
        }
        // Collect the subtree (map is ordered; prefix scan).
        std::vector<std::pair<std::string, Entry>> moved;
        moved.emplace_back(to, it->second);
        const std::string prefix = from + "/";
        for (auto sub = entries_.upper_bound(prefix);
             sub != entries_.end() &&
             sub->first.compare(0, prefix.size(), prefix) == 0;
             ++sub) {
            moved.emplace_back(to + sub->first.substr(from.size()),
                               sub->second);
        }
        entries_.erase(from);
        for (auto sub = entries_.upper_bound(prefix);
             sub != entries_.end() &&
             sub->first.compare(0, prefix.size(), prefix) == 0;) {
            sub = entries_.erase(sub);
        }
        for (auto& [p, e] : moved) {
            entries_.emplace(std::move(p), e);
        }
        ops_.add();
    }

    /// Remove a file or an empty directory. Returns the blob id the path
    /// was backed by (kInvalidBlob for directories).
    BlobId remove(const std::string& raw_path) {
        const std::string path = normalize_path(raw_path);
        const std::scoped_lock lock(mu_);
        if (path == "/") {
            throw InvalidArgument("cannot remove the root");
        }
        const auto it = entries_.find(path);
        if (it == entries_.end()) {
            throw NotFoundError("path " + path);
        }
        if (it->second.type == EntryType::kDirectory) {
            const std::string prefix = path + "/";
            const auto child = entries_.upper_bound(prefix);
            if (child != entries_.end() &&
                child->first.compare(0, prefix.size(), prefix) == 0) {
                throw InvalidArgument("directory not empty: " + path);
            }
        }
        const BlobId blob = it->second.blob;
        entries_.erase(it);
        ops_.add();
        return blob;
    }

    [[nodiscard]] std::size_t entry_count() const {
        const std::scoped_lock lock(mu_);
        return entries_.size();
    }

    [[nodiscard]] std::uint64_t ops() const { return ops_.get(); }

  private:
    struct Entry {
        EntryType type;
        BlobId blob;
        std::uint64_t chunk_size;
    };

    /// Caller holds mu_.
    void require_dir(const std::string& path) const {
        const auto it = entries_.find(path);
        if (it == entries_.end()) {
            throw NotFoundError("directory " + path);
        }
        if (it->second.type != EntryType::kDirectory) {
            throw InvalidArgument("not a directory: " + path);
        }
    }

    const NodeId node_;
    mutable std::mutex mu_;  // guards entries_
    std::map<std::string, Entry> entries_;  // ordered for prefix scans
    mutable Counter ops_;
};

}  // namespace blobseer::fs
