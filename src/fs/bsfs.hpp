/// \file bsfs.hpp
/// \brief BSFS — the distributed file system layered on BlobSeer.
///
/// Paper §IV-D: "we implemented a fully-fledged distributed file system
/// on top of BlobSeer, BSFS, that manages a hierarchical directory
/// structure, mapping files to blobs which are addressed in BlobSeer
/// using a flat scheme. We also had to implement the streaming access API
/// of Hadoop in BSFS which raised issues such as buffering and
/// prefetching. Finally ... we had to extend BlobSeer to expose the data
/// location and then integrate this into BSFS through a Hadoop-specific
/// API."
///
/// Pieces, mapped to that paragraph:
///  * Bsfs            — one deployment: the namespace manager service
///                      registered on the cluster network.
///  * BsfsClient      — per-process handle: namespace RPCs + a BlobSeer
///                      client for data.
///  * FileWriter      — buffered streaming writes; whole chunks are
///                      appended chunk-aligned (the fast concurrent path),
///                      the tail goes out on flush/close.
///  * FileReader      — streaming reads with configurable readahead,
///                      pinned to the snapshot observed at open (Hadoop
///                      read semantics).
///  * locate()        — the Hadoop-specific locality API: which providers
///                      hold each range of a file.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/cluster.hpp"
#include "fs/namespace_service.hpp"

namespace blobseer::fs {

struct BsfsConfig {
    std::uint64_t chunk_size = 64 << 10;
    std::optional<std::uint32_t> replication;  ///< default: cluster's
    /// Writer buffers this many chunks before pushing an aligned append.
    std::size_t writer_buffer_chunks = 4;
    /// Reader prefetches this many chunks per fetch.
    std::size_t readahead_chunks = 4;
};

class BsfsClient;
class FileReader;
class FileWriter;

/// One BSFS deployment on a cluster: owns the namespace manager.
class Bsfs {
  public:
    Bsfs(core::Cluster& cluster, BsfsConfig config = {})
        : cluster_(cluster),
          config_(config),
          ns_(cluster.network().add_node("bsfs-namespace")) {}

    [[nodiscard]] std::unique_ptr<BsfsClient> make_client();

    [[nodiscard]] NamespaceService& namespace_service() noexcept {
        return ns_;
    }
    [[nodiscard]] const BsfsConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] core::Cluster& cluster() noexcept { return cluster_; }

  private:
    core::Cluster& cluster_;
    BsfsConfig config_;
    NamespaceService ns_;
};

/// Per-process BSFS handle.
class BsfsClient {
  public:
    BsfsClient(Bsfs& fs, std::unique_ptr<core::BlobSeerClient> client)
        : fs_(fs), client_(std::move(client)) {}

    // ---- namespace operations (one RPC each) ----------------------------

    /// Create a new file and return a writer positioned at offset 0.
    [[nodiscard]] FileWriter create(const std::string& path);

    /// Open an existing file for appending.
    [[nodiscard]] FileWriter open_append(const std::string& path);

    /// Open an existing file for reading (snapshot pinned at open).
    [[nodiscard]] FileReader open(const std::string& path);

    void mkdir(const std::string& path);
    void mkdirs(const std::string& path);
    [[nodiscard]] bool exists(const std::string& path);
    [[nodiscard]] std::vector<DirEntry> list(const std::string& path);
    void rename(const std::string& from, const std::string& to);
    void remove(const std::string& path);

    /// Current size of a file (latest published snapshot).
    [[nodiscard]] std::uint64_t file_size(const std::string& path);

    /// Hadoop locality API: providers per range of the file's latest
    /// snapshot.
    [[nodiscard]] std::vector<core::SegmentLocation> locate(
        const std::string& path, ByteRange range);

    [[nodiscard]] core::BlobSeerClient& blobseer() noexcept {
        return *client_;
    }

  private:
    friend class FileReader;
    friend class FileWriter;

    /// RPC-charged namespace call.
    template <typename F>
    auto ns_call(F&& fn) -> std::invoke_result_t<F, NamespaceService&> {
        auto& net = fs_.cluster().network();
        return net.call(client_->node(), fs_.namespace_service().node(), 64,
                        96, [&]() -> std::invoke_result_t<F,
                                                          NamespaceService&> {
                            return fn(fs_.namespace_service());
                        });
    }

    [[nodiscard]] FileInfo resolve(const std::string& path);

    Bsfs& fs_;
    std::unique_ptr<core::BlobSeerClient> client_;
};

/// Buffered streaming writer. Appends whole chunks aligned (no merge
/// path, full write/write concurrency); flush()/close() pushes the
/// unaligned tail. Not thread-safe (one writer per stream, like Hadoop).
class FileWriter {
  public:
    FileWriter(BsfsClient& client, FileInfo info)
        : client_(&client), info_(std::move(info)) {}

    FileWriter(FileWriter&&) = default;
    FileWriter& operator=(FileWriter&&) = default;

    ~FileWriter() {
        try {
            flush();
        } catch (...) {
            // Destructors must not throw; close() explicitly to observe
            // flush errors.
        }
    }

    /// Append \p data to the stream (buffered).
    void write(ConstBytes data);

    /// Push every buffered byte to BlobSeer (including an unaligned
    /// tail). Returns the version produced (0 if nothing was buffered).
    Version flush();

    /// Flush and detach.
    Version close();

    [[nodiscard]] const FileInfo& info() const noexcept { return info_; }
    [[nodiscard]] std::uint64_t buffered() const noexcept {
        return buffer_.size();
    }
    /// Bytes pushed to BlobSeer so far (excludes buffered bytes).
    [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }

  private:
    void push_whole_chunks();

    BsfsClient* client_;
    FileInfo info_;
    Buffer buffer_;
    std::uint64_t pushed_ = 0;
};

/// Streaming reader with readahead, pinned to the snapshot observed at
/// open. Not thread-safe.
class FileReader {
  public:
    FileReader(BsfsClient& client, FileInfo info,
               version::VersionInfo snapshot)
        : client_(&client), info_(std::move(info)), snapshot_(snapshot) {}

    FileReader(FileReader&&) = default;
    FileReader& operator=(FileReader&&) = default;

    /// Sequential read; returns bytes read (0 at EOF).
    std::size_t read(MutableBytes out);

    /// Positional read (moves the stream position).
    std::size_t read_at(std::uint64_t offset, MutableBytes out);

    void seek(std::uint64_t offset) { pos_ = offset; }
    [[nodiscard]] std::uint64_t position() const noexcept { return pos_; }
    [[nodiscard]] std::uint64_t size() const noexcept {
        return snapshot_.size;
    }
    [[nodiscard]] Version version() const noexcept {
        return snapshot_.version;
    }

    /// Re-pin to the latest published snapshot (e.g. a tailing reader).
    void refresh();

  private:
    /// Fill the window starting at \p offset with at least \p min_bytes.
    /// Prefetches the full readahead window only when the access pattern
    /// looks sequential; random jumps fetch exactly what was asked (no
    /// read amplification).
    void fill_window(std::uint64_t offset, std::uint64_t min_bytes);

    BsfsClient* client_;
    FileInfo info_;
    version::VersionInfo snapshot_;
    std::uint64_t pos_ = 0;

    Buffer window_;
    std::uint64_t window_start_ = 0;   ///< file offset of window_[0]
    std::uint64_t sequential_at_ = 0;  ///< next offset that counts as
                                       ///< sequential access
};

}  // namespace blobseer::fs
