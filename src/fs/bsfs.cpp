#include "fs/bsfs.hpp"

#include <algorithm>
#include <cstring>

namespace blobseer::fs {

std::unique_ptr<BsfsClient> Bsfs::make_client() {
    return std::make_unique<BsfsClient>(*this,
                                        cluster_.make_client("bsfs-client"));
}

// ---- BsfsClient -------------------------------------------------------------

FileInfo BsfsClient::resolve(const std::string& path) {
    auto info = ns_call([&](NamespaceService& ns) { return ns.lookup(path); });
    if (!info) {
        throw NotFoundError("file " + path);
    }
    if (info->type != EntryType::kFile) {
        throw InvalidArgument(path + " is a directory");
    }
    return *info;
}

FileWriter BsfsClient::create(const std::string& path) {
    // Allocate the backing blob first, then register it; a crash in
    // between leaks an empty blob, never a dangling file.
    const core::Blob blob =
        client_->create(fs_.config().chunk_size, fs_.config().replication);
    const auto info = ns_call([&](NamespaceService& ns) {
        return ns.create_file(path, blob.id(), blob.chunk_size());
    });
    return FileWriter(*this, info);
}

FileWriter BsfsClient::open_append(const std::string& path) {
    return FileWriter(*this, resolve(path));
}

FileReader BsfsClient::open(const std::string& path) {
    const FileInfo info = resolve(path);
    return FileReader(*this, info, client_->stat(info.blob));
}

void BsfsClient::mkdir(const std::string& path) {
    ns_call([&](NamespaceService& ns) {
        ns.mkdir(path);
        return 0;
    });
}

void BsfsClient::mkdirs(const std::string& path) {
    ns_call([&](NamespaceService& ns) {
        ns.mkdirs(path);
        return 0;
    });
}

bool BsfsClient::exists(const std::string& path) {
    return ns_call([&](NamespaceService& ns) { return ns.exists(path); });
}

std::vector<DirEntry> BsfsClient::list(const std::string& path) {
    return ns_call([&](NamespaceService& ns) { return ns.list(path); });
}

void BsfsClient::rename(const std::string& from, const std::string& to) {
    ns_call([&](NamespaceService& ns) {
        ns.rename(from, to);
        return 0;
    });
}

void BsfsClient::remove(const std::string& path) {
    // The blob itself is not destroyed: BlobSeer snapshots are immutable
    // history; the namespace merely unlinks (matching the paper's
    // flat-blob addressing).
    ns_call([&](NamespaceService& ns) { return ns.remove(path); });
}

std::uint64_t BsfsClient::file_size(const std::string& path) {
    return client_->stat(resolve(path).blob).size;
}

std::vector<core::SegmentLocation> BsfsClient::locate(const std::string& path,
                                                      ByteRange range) {
    const FileInfo info = resolve(path);
    const auto vi = client_->stat(info.blob);
    return client_->locate(info.blob, vi.version, range);
}

// ---- FileWriter ---------------------------------------------------------------

void FileWriter::write(ConstBytes data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    push_whole_chunks();
}

void FileWriter::push_whole_chunks() {
    const std::uint64_t c = info_.chunk_size;
    const std::size_t threshold =
        c * client_->fs_.config().writer_buffer_chunks;
    while (buffer_.size() >= threshold && buffer_.size() >= c) {
        const std::size_t whole = buffer_.size() / c * c;
        client_->client_->append(info_.blob,
                                 ConstBytes(buffer_.data(), whole));
        pushed_ += whole;
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(whole));
    }
}

Version FileWriter::flush() {
    if (client_ == nullptr || buffer_.empty()) {
        return 0;
    }
    const Version v = client_->client_->append(info_.blob, buffer_);
    pushed_ += buffer_.size();
    buffer_.clear();
    return v;
}

Version FileWriter::close() {
    const Version v = flush();
    client_ = nullptr;
    return v;
}

// ---- FileReader --------------------------------------------------------------

void FileReader::refresh() {
    snapshot_ = client_->client_->stat(info_.blob);
    window_.clear();
}

void FileReader::fill_window(std::uint64_t offset, std::uint64_t min_bytes) {
    const std::uint64_t c = info_.chunk_size;
    const bool sequential = offset == sequential_at_;
    const std::uint64_t want =
        sequential
            ? std::max(min_bytes,
                       c * client_->fs_.config().readahead_chunks)
            : min_bytes;
    const std::uint64_t n =
        std::min<std::uint64_t>(want, snapshot_.size - offset);
    window_.resize(n);
    client_->client_->read(info_.blob, snapshot_.version, offset, window_);
    window_start_ = offset;
    sequential_at_ = offset + n;
}

std::size_t FileReader::read(MutableBytes out) {
    std::size_t done = 0;
    while (done < out.size() && pos_ < snapshot_.size) {
        if (window_.empty() || pos_ < window_start_ ||
            pos_ >= window_start_ + window_.size()) {
            fill_window(pos_, out.size() - done);
        }
        const std::uint64_t in_window = pos_ - window_start_;
        const std::size_t n = std::min<std::uint64_t>(
            out.size() - done, window_.size() - in_window);
        std::memcpy(out.data() + done, window_.data() + in_window, n);
        done += n;
        pos_ += n;
    }
    return done;
}

std::size_t FileReader::read_at(std::uint64_t offset, MutableBytes out) {
    pos_ = offset;
    return read(out);
}

}  // namespace blobseer::fs
