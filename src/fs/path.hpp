/// \file path.hpp
/// \brief Path normalization helpers for the BSFS namespace.
///
/// BSFS (paper §IV-D) "manages a hierarchical directory structure,
/// mapping files to blobs which are addressed in BlobSeer using a flat
/// scheme." Paths are absolute, '/'-separated, with no trailing slash
/// (except the root itself).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace blobseer::fs {

/// Normalize an absolute path: collapse duplicate separators, forbid
/// relative components. Returns "/" for the root.
[[nodiscard]] inline std::string normalize_path(std::string_view raw) {
    if (raw.empty() || raw.front() != '/') {
        throw InvalidArgument("path must be absolute: '" + std::string(raw) +
                              "'");
    }
    std::string out;
    out.reserve(raw.size());
    std::size_t i = 0;
    while (i < raw.size()) {
        while (i < raw.size() && raw[i] == '/') {
            ++i;
        }
        std::size_t j = i;
        while (j < raw.size() && raw[j] != '/') {
            ++j;
        }
        if (j > i) {
            const std::string_view comp = raw.substr(i, j - i);
            if (comp == "." || comp == "..") {
                throw InvalidArgument("relative components not supported: '" +
                                      std::string(raw) + "'");
            }
            out += '/';
            out += comp;
        }
        i = j;
    }
    return out.empty() ? "/" : out;
}

/// Parent directory of a normalized path ("/" for top-level entries).
[[nodiscard]] inline std::string parent_of(const std::string& path) {
    if (path == "/") {
        throw InvalidArgument("root has no parent");
    }
    const auto pos = path.rfind('/');
    return pos == 0 ? "/" : path.substr(0, pos);
}

/// Last component of a normalized path.
[[nodiscard]] inline std::string basename_of(const std::string& path) {
    if (path == "/") {
        return "/";
    }
    return path.substr(path.rfind('/') + 1);
}

/// Split a normalized path into components.
[[nodiscard]] inline std::vector<std::string> components_of(
    const std::string& path) {
    std::vector<std::string> out;
    std::size_t i = 1;
    while (i < path.size()) {
        const auto j = path.find('/', i);
        if (j == std::string::npos) {
            out.push_back(path.substr(i));
            break;
        }
        out.push_back(path.substr(i, j - i));
        i = j + 1;
    }
    return out;
}

}  // namespace blobseer::fs
