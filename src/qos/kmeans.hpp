/// \file kmeans.hpp
/// \brief Small deterministic k-means (k-means++ seeding) used by the
///        behaviour model.
///
/// GloBeM (the paper's external tool) applies machine-learning
/// clustering to monitoring data to discover global behaviour states;
/// this is the minimal self-contained equivalent (see DESIGN.md §2 for
/// the substitution rationale).

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.hpp"

namespace blobseer::qos {

using FeatureVec = std::vector<double>;

struct KMeansResult {
    std::vector<FeatureVec> centroids;
    std::vector<std::size_t> assignment;  ///< per input point
    double inertia = 0.0;                 ///< sum of squared distances
};

[[nodiscard]] inline double sq_distance(const FeatureVec& a,
                                        const FeatureVec& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = a[i] - b[i];
        d += x * x;
    }
    return d;
}

/// Cluster \p points into (at most) \p k groups. Deterministic for a
/// fixed seed. Handles k >= points.size() by clamping.
[[nodiscard]] inline KMeansResult kmeans(const std::vector<FeatureVec>& points,
                                         std::size_t k, int iterations,
                                         std::uint64_t seed) {
    KMeansResult result;
    if (points.empty()) {
        return result;
    }
    k = std::min(k, points.size());
    Rng rng(seed);

    // k-means++ seeding.
    result.centroids.push_back(points[rng.below(points.size())]);
    std::vector<double> dist(points.size(),
                             std::numeric_limits<double>::max());
    while (result.centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            dist[i] = std::min(dist[i],
                               sq_distance(points[i],
                                           result.centroids.back()));
            total += dist[i];
        }
        if (total == 0.0) {
            break;  // fewer distinct points than k
        }
        double target = rng.uniform() * total;
        std::size_t pick = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= dist[i];
            if (target <= 0.0) {
                pick = i;
                break;
            }
        }
        result.centroids.push_back(points[pick]);
    }

    // Lloyd iterations.
    result.assignment.assign(points.size(), 0);
    for (int it = 0; it < iterations; ++it) {
        bool moved = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < result.centroids.size(); ++c) {
                const double d = sq_distance(points[i], result.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.assignment[i] != best) {
                result.assignment[i] = best;
                moved = true;
            }
        }
        // Recompute centroids.
        const std::size_t dims = points.front().size();
        std::vector<FeatureVec> sums(result.centroids.size(),
                                     FeatureVec(dims, 0.0));
        std::vector<std::size_t> counts(result.centroids.size(), 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            for (std::size_t d = 0; d < dims; ++d) {
                sums[result.assignment[i]][d] += points[i][d];
            }
            ++counts[result.assignment[i]];
        }
        for (std::size_t c = 0; c < result.centroids.size(); ++c) {
            if (counts[c] == 0) {
                continue;  // empty cluster keeps its centroid
            }
            for (std::size_t d = 0; d < dims; ++d) {
                result.centroids[c][d] = sums[c][d] /
                                         static_cast<double>(counts[c]);
            }
        }
        if (!moved && it > 0) {
            break;
        }
    }

    result.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        result.inertia +=
            sq_distance(points[i], result.centroids[result.assignment[i]]);
    }
    return result;
}

}  // namespace blobseer::qos
