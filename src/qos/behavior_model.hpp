/// \file behavior_model.hpp
/// \brief GloBeM-style global behaviour modeling with placement feedback.
///
/// Paper §IV-E: "It automates the process of identifying dangerous
/// behavior patterns in storage services ... We demonstrated our approach
/// by using GloBeM ... to improve the quality of service in BlobSeer."
///
/// Pipeline (offline analysis -> online feedback):
///  1. Feature extraction per (provider, window) from the monitor
///     history: normalized throughput, error rate, NIC backlog, liveness.
///  2. k-means clustering of those vectors into behaviour *states*.
///  3. A state is flagged *dangerous* when its centroid shows elevated
///     errors, heavy congestion, or death.
///  4. Feedback: each provider's most recent window is classified; a
///     provider sitting in a dangerous state has its health dropped at
///     the provider manager, steering new placements away until it
///     recovers (paper: "client-side quality of service feedback").

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "provider/provider_manager.hpp"
#include "qos/kmeans.hpp"
#include "qos/monitor.hpp"

namespace blobseer::qos {

struct BehaviorConfig {
    std::size_t states = 4;
    int kmeans_iterations = 50;
    std::uint64_t seed = 17;
    /// A state whose mean error count per window exceeds this is
    /// dangerous.
    double error_threshold = 0.5;
    /// A state whose mean NIC backlog exceeds this (ms) is dangerous.
    double backlog_threshold_ms = 5.0;
    /// A state whose mean slowness (gray-failure signal) exceeds this is
    /// dangerous.
    double slowness_threshold = 0.3;
    /// Health assigned to providers classified into dangerous states.
    double dangerous_health = 0.0;
};

class BehaviorModel {
  public:
    explicit BehaviorModel(BehaviorConfig config = {}) : config_(config) {}

    /// Feature vector of one monitoring window. \p tput_scale normalizes
    /// throughput into ~[0,1] so the distance metric is balanced.
    [[nodiscard]] static FeatureVec features(const ProviderSample& s,
                                             double tput_scale) {
        return FeatureVec{
            static_cast<double>(s.read_bytes + s.write_bytes) / tput_scale,
            static_cast<double>(s.errors),
            s.backlog_ms / 10.0,   // keep dimensions comparable
            s.alive ? 0.0 : 1.0,
            s.slowness * 5.0,      // gray-failure axis dominates when hot
        };
    }

    /// Offline phase: fit states from the full monitor history.
    void fit(const ClusterMonitor& monitor) {
        std::vector<FeatureVec> points;
        double max_tput = 1.0;
        for (const auto& series : monitor.history()) {
            for (const auto& s : series) {
                max_tput = std::max(
                    max_tput,
                    static_cast<double>(s.read_bytes + s.write_bytes));
            }
        }
        tput_scale_ = max_tput;
        for (const auto& series : monitor.history()) {
            for (const auto& s : series) {
                points.push_back(features(s, tput_scale_));
            }
        }
        model_ = kmeans(points, config_.states, config_.kmeans_iterations,
                        config_.seed);

        dangerous_.assign(model_.centroids.size(), false);
        for (std::size_t c = 0; c < model_.centroids.size(); ++c) {
            const FeatureVec& centroid = model_.centroids[c];
            dangerous_[c] =
                centroid[1] > config_.error_threshold ||
                centroid[2] > config_.backlog_threshold_ms / 10.0 ||
                centroid[3] > 0.5 ||
                centroid[4] > config_.slowness_threshold * 5.0;
        }
        fitted_ = true;
    }

    [[nodiscard]] bool fitted() const noexcept { return fitted_; }
    [[nodiscard]] std::size_t state_count() const {
        return model_.centroids.size();
    }
    [[nodiscard]] bool is_dangerous(std::size_t state) const {
        return dangerous_.at(state);
    }
    [[nodiscard]] std::size_t dangerous_states() const {
        return static_cast<std::size_t>(
            std::count(dangerous_.begin(), dangerous_.end(), true));
    }

    /// Classify one window into a state.
    [[nodiscard]] std::size_t classify(const ProviderSample& s) const {
        const FeatureVec f = features(s, tput_scale_);
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < model_.centroids.size(); ++c) {
            const double d = sq_distance(f, model_.centroids[c]);
            if (d < best_d) {
                best_d = d;
                best = c;
            }
        }
        return best;
    }

    /// Online phase: classify every provider's latest window and push
    /// health feedback into the provider manager. Returns the number of
    /// providers currently flagged dangerous.
    std::size_t apply_feedback(const ClusterMonitor& monitor,
                               core::Cluster& cluster) const {
        if (!fitted_ || monitor.windows() == 0) {
            return 0;
        }
        std::size_t flagged = 0;
        auto& pm = cluster.provider_manager();
        for (std::size_t i = 0; i < monitor.providers(); ++i) {
            const std::size_t state = classify(monitor.latest(i));
            const bool danger = dangerous_.at(state);
            pm.set_health(cluster.data_provider(i).node(),
                          danger ? config_.dangerous_health : 1.0);
            flagged += danger ? 1 : 0;
        }
        return flagged;
    }

  private:
    BehaviorConfig config_;
    KMeansResult model_;
    std::vector<bool> dangerous_;
    double tput_scale_ = 1.0;
    bool fitted_ = false;
};

}  // namespace blobseer::qos
