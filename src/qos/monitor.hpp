/// \file monitor.hpp
/// \brief Cluster monitoring: periodic snapshots of per-provider behaviour.
///
/// Paper §IV-E proposes "an offline analysis approach to improve the
/// quality of service in distributed storage systems based on global
/// behavior modeling combined with client-side quality of service
/// feedback". The monitor is the data-collection half: each sample()
/// captures, for every data provider, the bytes served, errors and NIC
/// congestion since the previous sample. The BehaviorModel consumes this
/// history.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/cluster.hpp"

namespace blobseer::qos {

/// One provider's activity during one monitoring window.
struct ProviderSample {
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t errors = 0;     ///< failed ops in the window
    double backlog_ms = 0.0;      ///< NIC queueing delay at sample time
    bool alive = true;
    /// Gray-failure signal in [0,1]: 1 - effective_rate / nominal_rate,
    /// where the effective rate is real bytes moved per NIC busy-second.
    /// A healthy link sits near 0; a degraded (slow-but-alive) link
    /// approaches 1. Zero when the link was idle (no evidence).
    double slowness = 0.0;
};

class ClusterMonitor {
  public:
    explicit ClusterMonitor(core::Cluster& cluster)
        : cluster_(cluster),
          history_(cluster.data_provider_count()),
          last_read_(cluster.data_provider_count(), 0),
          last_write_(cluster.data_provider_count(), 0),
          last_errors_(cluster.data_provider_count(), 0),
          last_busy_(cluster.data_provider_count(), 0) {}

    /// Capture one window for every provider. Call at a fixed cadence
    /// from the experiment loop (event-driven: the monitor spawns no
    /// threads of its own).
    void sample() {
        auto& net = cluster_.network();
        for (std::size_t i = 0; i < cluster_.data_provider_count(); ++i) {
            auto& dp = cluster_.data_provider(i);
            const std::uint64_t r = dp.stats().bytes_out.get();
            const std::uint64_t w = dp.stats().bytes_in.get();
            const std::uint64_t e = dp.stats().errors.get();

            ProviderSample s;
            s.read_bytes = r - last_read_[i];
            s.write_bytes = w - last_write_[i];
            s.errors = e - last_errors_[i];
            s.alive = net.is_alive(dp.node());
            const auto& node = net.node(dp.node());
            const auto backlog = node.tx.backlog();
            s.backlog_ms =
                std::chrono::duration<double, std::milli>(backlog).count();

            // Effective vs nominal service rate (gray-failure signal).
            const std::int64_t busy =
                node.tx.busy_ns() + node.rx.busy_ns();
            const std::int64_t busy_delta = busy - last_busy_[i];
            const std::uint64_t moved =
                s.read_bytes + s.write_bytes;
            const std::uint64_t nominal = node.tx.rate();
            if (nominal > 0 && busy_delta > 500'000 && moved > 0) {
                const double effective =
                    static_cast<double>(moved) /
                    (static_cast<double>(busy_delta) / 1e9);
                s.slowness = std::clamp(
                    1.0 - effective / static_cast<double>(nominal), 0.0,
                    1.0);
            }
            last_busy_[i] = busy;

            last_read_[i] = r;
            last_write_[i] = w;
            last_errors_[i] = e;
            history_[i].push_back(s);
        }
    }

    /// history()[provider][window]
    [[nodiscard]] const std::vector<std::vector<ProviderSample>>& history()
        const noexcept {
        return history_;
    }

    [[nodiscard]] std::size_t windows() const {
        return history_.empty() ? 0 : history_.front().size();
    }

    [[nodiscard]] std::size_t providers() const { return history_.size(); }

    /// Latest sample of one provider (windows() must be > 0).
    [[nodiscard]] const ProviderSample& latest(std::size_t provider) const {
        return history_.at(provider).back();
    }

  private:
    core::Cluster& cluster_;
    std::vector<std::vector<ProviderSample>> history_;
    std::vector<std::uint64_t> last_read_;
    std::vector<std::uint64_t> last_write_;
    std::vector<std::uint64_t> last_errors_;
    std::vector<std::int64_t> last_busy_;
};

}  // namespace blobseer::qos
