/// \file failure_schedule.hpp
/// \brief Scripted fault timelines for QoS experiments.
///
/// Paper §IV-E evaluates "long periods of service uptime ... while
/// supporting failures of the physical storage components". A schedule
/// is a list of timed events (kill / recover / degrade / restore) that
/// the experiment loop applies as simulated time passes — deterministic
/// and replayable across the compared configurations.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "common/random.hpp"
#include "core/cluster.hpp"

namespace blobseer::qos {

struct FailureEvent {
    enum class Kind : std::uint8_t { kKill, kRecover, kDegrade, kRestore };

    double at_seconds = 0.0;
    Kind kind = Kind::kKill;
    std::size_t provider = 0;
    bool lose_data = false;   ///< kKill only
    double factor = 1.0;      ///< kDegrade only
    Duration extra_latency{}; ///< kDegrade only
};

class FailureSchedule {
  public:
    FailureSchedule() = default;

    explicit FailureSchedule(std::vector<FailureEvent> events)
        : events_(std::move(events)) {
        std::stable_sort(events_.begin(), events_.end(),
                         [](const FailureEvent& a, const FailureEvent& b) {
                             return a.at_seconds < b.at_seconds;
                         });
    }

    /// Random schedule: every `period` seconds one random provider is
    /// degraded (or killed with probability kill_prob) and restored
    /// `outage` seconds later. Deterministic per seed.
    [[nodiscard]] static FailureSchedule random(std::size_t providers,
                                                double duration_s,
                                                double period_s,
                                                double outage_s,
                                                double kill_prob,
                                                std::uint64_t seed) {
        Rng rng(seed);
        std::vector<FailureEvent> events;
        for (double t = period_s; t + outage_s < duration_s; t += period_s) {
            const std::size_t victim = rng.below(providers);
            if (rng.chance(kill_prob)) {
                // A crash wipes the provider's volatile state: RAM-backed
                // chunks are gone for good (the fault-tolerance argument
                // for replication in paper §V).
                events.push_back({t, FailureEvent::Kind::kKill, victim,
                                  /*lose_data=*/true, 1.0, {}});
                events.push_back({t + outage_s, FailureEvent::Kind::kRecover,
                                  victim, false, 1.0, {}});
            } else {
                // Gray failure: the node still answers, ~16x slower — the
                // case heartbeats cannot catch and the behaviour model
                // exists for.
                events.push_back({t, FailureEvent::Kind::kDegrade, victim,
                                  false, 16.0, milliseconds(5)});
                events.push_back({t + outage_s, FailureEvent::Kind::kRestore,
                                  victim, false, 1.0, {}});
            }
        }
        return FailureSchedule(std::move(events));
    }

    /// Apply every event due at or before \p elapsed_seconds. Returns the
    /// number applied. Call repeatedly with increasing time.
    std::size_t run_until(core::Cluster& cluster, double elapsed_seconds) {
        std::size_t applied = 0;
        while (next_ < events_.size() &&
               events_[next_].at_seconds <= elapsed_seconds) {
            apply(cluster, events_[next_]);
            ++next_;
            ++applied;
        }
        return applied;
    }

    [[nodiscard]] std::size_t pending() const {
        return events_.size() - next_;
    }
    [[nodiscard]] const std::vector<FailureEvent>& events() const noexcept {
        return events_;
    }

  private:
    static void apply(core::Cluster& cluster, const FailureEvent& e) {
        switch (e.kind) {
            case FailureEvent::Kind::kKill:
                cluster.kill_data_provider(e.provider, e.lose_data);
                break;
            case FailureEvent::Kind::kRecover:
                cluster.recover_data_provider(e.provider);
                break;
            case FailureEvent::Kind::kDegrade:
                cluster.degrade_data_provider(e.provider, e.factor,
                                              e.extra_latency);
                break;
            case FailureEvent::Kind::kRestore:
                cluster.restore_data_provider(e.provider);
                break;
        }
    }

    std::vector<FailureEvent> events_;
    std::size_t next_ = 0;
};

}  // namespace blobseer::qos
