/// \file lock_manager.hpp
/// \brief Global reader-writer lock service — the access model BlobSeer
///        *avoids*.
///
/// Paper §IV-A ([15]): "We targeted efficient fine-grain access by
/// eliminating the need to lock the string itself." To quantify that
/// claim, this baseline provides what a conventional shared-object store
/// would use: one lock per blob at a central lock-manager node. Readers
/// take the lock shared, writers exclusive, both pay the RPC round trips
/// and the blocking. Experiment E2b contrasts it with BlobSeer's
/// versioning-based concurrency control on the same workload.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace blobseer::baseline {

class LockManager {
  public:
    explicit LockManager(NodeId node) : node_(node) {}

    [[nodiscard]] NodeId node() const noexcept { return node_; }

    void lock_shared(BlobId blob) {
        Entry& e = entry_of(blob);
        std::unique_lock lock(e.mu);
        e.cv.wait(lock, [&] { return !e.writer && e.writers_waiting == 0; });
        ++e.readers;
        shared_grants_.add();
    }

    void unlock_shared(BlobId blob) {
        Entry& e = entry_of(blob);
        {
            const std::scoped_lock lock(e.mu);
            --e.readers;
        }
        e.cv.notify_all();
    }

    void lock_exclusive(BlobId blob) {
        Entry& e = entry_of(blob);
        std::unique_lock lock(e.mu);
        // Writer priority: block new readers while a writer waits (the
        // classic fair-ish RW lock; without it writers starve and the
        // baseline looks artificially good for readers).
        ++e.writers_waiting;
        e.cv.wait(lock, [&] { return !e.writer && e.readers == 0; });
        --e.writers_waiting;
        e.writer = true;
        exclusive_grants_.add();
    }

    void unlock_exclusive(BlobId blob) {
        Entry& e = entry_of(blob);
        {
            const std::scoped_lock lock(e.mu);
            e.writer = false;
        }
        e.cv.notify_all();
    }

    [[nodiscard]] std::uint64_t shared_grants() const {
        return shared_grants_.get();
    }
    [[nodiscard]] std::uint64_t exclusive_grants() const {
        return exclusive_grants_.get();
    }

  private:
    struct Entry {
        std::mutex mu;  // guards the fields below
        std::condition_variable cv;
        std::uint32_t readers = 0;
        std::uint32_t writers_waiting = 0;
        bool writer = false;
    };

    Entry& entry_of(BlobId blob) {
        const std::scoped_lock lock(map_mu_);
        return entries_[blob];  // default-constructs on first use
    }

    const NodeId node_;
    std::mutex map_mu_;  // guards entries_ layout (entries are stable)
    std::unordered_map<BlobId, Entry> entries_;
    Counter shared_grants_;
    Counter exclusive_grants_;
};

/// RAII guards used by clients (lock RPCs charged by the caller).
class SharedLockGuard {
  public:
    SharedLockGuard(LockManager& lm, BlobId blob) : lm_(&lm), blob_(blob) {
        lm_->lock_shared(blob_);
    }
    ~SharedLockGuard() {
        if (lm_ != nullptr) {
            lm_->unlock_shared(blob_);
        }
    }
    SharedLockGuard(const SharedLockGuard&) = delete;
    SharedLockGuard& operator=(const SharedLockGuard&) = delete;

  private:
    LockManager* lm_;
    BlobId blob_;
};

class ExclusiveLockGuard {
  public:
    ExclusiveLockGuard(LockManager& lm, BlobId blob)
        : lm_(&lm), blob_(blob) {
        lm_->lock_exclusive(blob_);
    }
    ~ExclusiveLockGuard() {
        if (lm_ != nullptr) {
            lm_->unlock_exclusive(blob_);
        }
    }
    ExclusiveLockGuard(const ExclusiveLockGuard&) = delete;
    ExclusiveLockGuard& operator=(const ExclusiveLockGuard&) = delete;

  private:
    LockManager* lm_;
    BlobId blob_;
};

}  // namespace blobseer::baseline
