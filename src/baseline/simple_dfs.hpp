/// \file simple_dfs.hpp
/// \brief SimpleDfs — an HDFS-like baseline file system.
///
/// Experiment E5 (paper §IV-D) compares BSFS against Hadoop's HDFS. This
/// baseline reproduces the two HDFS properties that drive that
/// comparison:
///
///  1. **Centralized metadata**: one namenode owns the namespace AND the
///     block map; every open, every block-location batch and every block
///     allocation is a namenode RPC with bounded service capacity.
///  2. **Single-writer, append-only files**: a writer must hold the
///     file's exclusive lease; concurrent appenders fail and must retry
///     (HDFS AlreadyBeingCreated semantics). No versioning: readers see
///     the committed length at open.
///
/// Data blocks are stored on the very same data providers as BlobSeer's
/// chunks (same simulated hardware), so E5 isolates the architectural
/// difference rather than the substrate.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bandwidth_gate.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/cluster.hpp"
#include "fs/path.hpp"

namespace blobseer::baseline {

/// Thrown when an appender races an existing lease holder.
class LeaseHeld : public Error {
  public:
    explicit LeaseHeld(const std::string& what)
        : Error("lease held: " + what) {}
};

struct BlockLocation {
    std::uint64_t block_uid = 0;
    std::uint32_t size = 0;
    NodeId provider = kInvalidNode;
    std::vector<NodeId> replicas;  ///< all copies (primary first)
};

struct DfsFileStatus {
    std::uint64_t file_id = 0;
    std::uint64_t length = 0;
    std::uint64_t block_size = 0;
};

/// The centralized namenode service.
class Namenode {
  public:
    /// \param ops_per_second service capacity (0 = infinite);
    ///        the centralization knob, identical in spirit to
    ///        dht::MetadataProvider's gate.
    Namenode(NodeId node, std::uint64_t block_size,
             std::uint32_t replication, std::uint64_t ops_per_second)
        : node_(node),
          block_size_(block_size),
          replication_(replication),
          gate_(ops_per_second) {}

    [[nodiscard]] NodeId node() const noexcept { return node_; }
    [[nodiscard]] std::uint64_t block_size() const noexcept {
        return block_size_;
    }

    /// Create an empty file and grant the creator the write lease.
    DfsFileStatus create(const std::string& raw_path, NodeId writer);

    /// Acquire the append lease. Throws LeaseHeld if another writer
    /// holds it (HDFS semantics).
    DfsFileStatus acquire_lease(const std::string& raw_path, NodeId writer);

    void release_lease(const std::string& raw_path, NodeId writer);

    /// Allocate the next block; returns its uid and replica targets.
    BlockLocation allocate_block(const std::string& raw_path, NodeId writer,
                                 std::uint32_t size);

    /// Commit an allocated block (makes its bytes visible to readers).
    void complete_block(const std::string& raw_path, NodeId writer,
                        std::uint64_t block_uid);

    [[nodiscard]] DfsFileStatus stat(const std::string& raw_path);

    [[nodiscard]] bool exists(const std::string& raw_path);

    /// Locations of \p count blocks starting at block index \p first —
    /// the batched getBlockLocations() call HDFS clients issue while
    /// reading.
    [[nodiscard]] std::vector<BlockLocation> block_locations(
        const std::string& raw_path, std::uint64_t first,
        std::uint64_t count);

    [[nodiscard]] std::uint64_t ops() const { return ops_.get(); }

  private:
    struct Block {
        std::uint64_t uid;
        std::uint32_t size;
        std::vector<NodeId> replicas;
        bool committed;
    };

    struct File {
        std::uint64_t id;
        std::uint64_t committed_length = 0;
        std::vector<Block> blocks;
        NodeId lease_holder = kInvalidNode;
    };

    File& file_of(const std::string& path);

    const NodeId node_;
    const std::uint64_t block_size_;
    const std::uint32_t replication_;
    BandwidthGate gate_;  // 1 token per metadata op

    std::mutex mu_;  // guards files_, provider round-robin and uid counter
    std::map<std::string, File> files_;
    std::vector<NodeId> providers_;
    std::size_t rr_ = 0;
    std::uint64_t next_uid_ = 1;
    std::uint64_t next_file_ = 1;
    Counter ops_;

  public:
    /// Register the data providers blocks may land on (bootstrap).
    void register_provider(NodeId node) {
        const std::scoped_lock lock(mu_);
        providers_.push_back(node);
    }
};

/// One SimpleDfs deployment on a cluster.
class SimpleDfs {
  public:
    struct Config {
        std::uint64_t block_size = 64 << 10;
        std::uint32_t replication = 1;
        std::uint64_t namenode_ops_per_second = 0;
    };

    SimpleDfs(core::Cluster& cluster, Config config)
        : cluster_(cluster),
          namenode_(cluster.network().add_node("namenode"),
                    config.block_size, config.replication,
                    config.namenode_ops_per_second) {
        for (std::size_t i = 0; i < cluster.data_provider_count(); ++i) {
            namenode_.register_provider(cluster.data_provider(i).node());
        }
    }

    [[nodiscard]] Namenode& namenode() noexcept { return namenode_; }
    [[nodiscard]] core::Cluster& cluster() noexcept { return cluster_; }

    [[nodiscard]] std::unique_ptr<class SimpleDfsClient> make_client();

  private:
    core::Cluster& cluster_;
    Namenode namenode_;
};

/// Client handle: every namespace/block-map interaction is an RPC to the
/// namenode; block data moves directly between client and providers.
class SimpleDfsClient {
  public:
    SimpleDfsClient(SimpleDfs& dfs, NodeId self)
        : dfs_(dfs), self_(self) {}

    [[nodiscard]] NodeId node() const noexcept { return self_; }

    /// Create a file (grabs the lease) and append \p data as blocks;
    /// keeps the lease for further appends until close_file().
    void create(const std::string& path);

    /// Append data under an already-held lease (create/append_open first).
    void append(const std::string& path, ConstBytes data);

    /// Acquire the lease for appending. Throws LeaseHeld on contention.
    void append_open(const std::string& path);

    void close_file(const std::string& path);

    [[nodiscard]] DfsFileStatus stat(const std::string& path);
    [[nodiscard]] bool exists(const std::string& path);

    /// Read [offset, offset+out.size()) of the committed file content.
    std::size_t read(const std::string& path, std::uint64_t offset,
                     MutableBytes out);

    /// Blocks-location metadata fetched per read, batched like HDFS.
    static constexpr std::uint64_t kLocationBatch = 8;

  private:
    template <typename F>
    auto nn_call(F&& fn) -> std::invoke_result_t<F, Namenode&> {
        auto& net = dfs_.cluster().network();
        return net.call(self_, dfs_.namenode().node(), 64, 96,
                        [&]() -> std::invoke_result_t<F, Namenode&> {
                            return fn(dfs_.namenode());
                        });
    }

    SimpleDfs& dfs_;
    const NodeId self_;
};

}  // namespace blobseer::baseline
