#include "baseline/simple_dfs.hpp"

#include <algorithm>
#include <cstring>

namespace blobseer::baseline {

// ---- Namenode -------------------------------------------------------------

Namenode::File& Namenode::file_of(const std::string& path) {
    const auto it = files_.find(path);
    if (it == files_.end()) {
        throw NotFoundError("dfs file " + path);
    }
    return it->second;
}

DfsFileStatus Namenode::create(const std::string& raw_path, NodeId writer) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    if (files_.contains(path)) {
        throw InvalidArgument("dfs path exists: " + path);
    }
    File f;
    f.id = next_file_++;
    f.lease_holder = writer;
    files_.emplace(path, std::move(f));
    return DfsFileStatus{files_[path].id, 0, block_size_};
}

DfsFileStatus Namenode::acquire_lease(const std::string& raw_path,
                                      NodeId writer) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    File& f = file_of(path);
    if (f.lease_holder != kInvalidNode && f.lease_holder != writer) {
        throw LeaseHeld(path + " by node " +
                        std::to_string(f.lease_holder));
    }
    f.lease_holder = writer;
    return DfsFileStatus{f.id, f.committed_length, block_size_};
}

void Namenode::release_lease(const std::string& raw_path, NodeId writer) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    File& f = file_of(path);
    if (f.lease_holder == writer) {
        f.lease_holder = kInvalidNode;
    }
}

BlockLocation Namenode::allocate_block(const std::string& raw_path,
                                       NodeId writer, std::uint32_t size) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    File& f = file_of(path);
    if (f.lease_holder != writer) {
        throw LeaseHeld("allocate without lease on " + path);
    }
    if (providers_.empty()) {
        throw RpcError("no datanodes registered");
    }
    Block b;
    b.uid = next_uid_++;
    b.size = size;
    b.committed = false;
    const std::uint32_t copies = std::min<std::uint32_t>(
        replication_, static_cast<std::uint32_t>(providers_.size()));
    for (std::uint32_t k = 0; k < copies; ++k) {
        b.replicas.push_back(providers_[(rr_ + k) % providers_.size()]);
    }
    ++rr_;
    f.blocks.push_back(b);
    return BlockLocation{b.uid, b.size, b.replicas.front(), b.replicas};
}

void Namenode::complete_block(const std::string& raw_path, NodeId writer,
                              std::uint64_t block_uid) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    File& f = file_of(path);
    if (f.lease_holder != writer) {
        throw LeaseHeld("complete without lease on " + path);
    }
    for (auto& b : f.blocks) {
        if (b.uid == block_uid) {
            if (!b.committed) {
                b.committed = true;
                f.committed_length += b.size;
            }
            return;
        }
    }
    throw NotFoundError("block " + std::to_string(block_uid));
}

DfsFileStatus Namenode::stat(const std::string& raw_path) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    File& f = file_of(path);
    return DfsFileStatus{f.id, f.committed_length, block_size_};
}

bool Namenode::exists(const std::string& raw_path) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    return files_.contains(path);
}

std::vector<BlockLocation> Namenode::block_locations(
    const std::string& raw_path, std::uint64_t first, std::uint64_t count) {
    gate_.transmit(1);
    ops_.add();
    const std::string path = fs::normalize_path(raw_path);
    const std::scoped_lock lock(mu_);
    File& f = file_of(path);
    std::vector<BlockLocation> out;
    for (std::uint64_t i = first; i < first + count && i < f.blocks.size();
         ++i) {
        const Block& b = f.blocks[i];
        if (!b.committed) {
            break;  // readers only see the committed prefix
        }
        out.push_back(BlockLocation{b.uid, b.size, b.replicas.front(),
                                    b.replicas});
    }
    return out;
}

// ---- SimpleDfs / client -----------------------------------------------------

std::unique_ptr<SimpleDfsClient> SimpleDfs::make_client() {
    return std::make_unique<SimpleDfsClient>(
        *this, cluster_.network().add_node("dfs-client"));
}

void SimpleDfsClient::create(const std::string& path) {
    nn_call([&](Namenode& nn) { return nn.create(path, self_); });
}

void SimpleDfsClient::append_open(const std::string& path) {
    nn_call([&](Namenode& nn) { return nn.acquire_lease(path, self_); });
}

void SimpleDfsClient::close_file(const std::string& path) {
    nn_call([&](Namenode& nn) {
        nn.release_lease(path, self_);
        return 0;
    });
}

void SimpleDfsClient::append(const std::string& path, ConstBytes data) {
    auto& net = dfs_.cluster().network();
    const auto& dps = dfs_.cluster().data_provider_map();
    const std::uint64_t bs = dfs_.namenode().block_size();

    for (std::size_t pos = 0; pos < data.size(); pos += bs) {
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(bs, data.size() - pos));
        const auto loc = nn_call(
            [&](Namenode& nn) { return nn.allocate_block(path, self_, n); });

        auto payload = std::make_shared<Buffer>(
            data.begin() + static_cast<std::ptrdiff_t>(pos),
            data.begin() + static_cast<std::ptrdiff_t>(pos + n));
        // DFS blocks share the chunk store; key them under blob id 0
        // (never used by BlobSeer, whose ids start at 1).
        const chunk::ChunkKey key{0, loc.block_uid};
        for (const NodeId target : loc.replicas) {
            const auto it = dps.find(target);
            if (it == dps.end()) {
                throw ConsistencyError("namenode returned unknown datanode");
            }
            net.call(self_, target, n + 64, 16,
                     [&] { it->second->put_chunk(key, payload); });
        }
        nn_call([&](Namenode& nn) {
            nn.complete_block(path, self_, loc.block_uid);
            return 0;
        });
    }
}

DfsFileStatus SimpleDfsClient::stat(const std::string& path) {
    return nn_call([&](Namenode& nn) { return nn.stat(path); });
}

bool SimpleDfsClient::exists(const std::string& path) {
    return nn_call([&](Namenode& nn) { return nn.exists(path); });
}

std::size_t SimpleDfsClient::read(const std::string& path,
                                  std::uint64_t offset, MutableBytes out) {
    const auto status = stat(path);
    if (offset + out.size() > status.length) {
        throw InvalidArgument("dfs read past end of " + path);
    }
    auto& net = dfs_.cluster().network();
    const auto& dps = dfs_.cluster().data_provider_map();
    const std::uint64_t bs = status.block_size;

    // Blocks are fixed-size except possibly the last, so the offset maps
    // directly to a block index.
    std::uint64_t block_index = offset / bs;
    std::uint64_t in_block = offset % bs;
    std::size_t done = 0;

    std::vector<BlockLocation> batch;
    std::uint64_t batch_first = 0;

    while (done < out.size()) {
        const std::uint64_t rel = block_index - batch_first;
        if (batch.empty() || rel >= batch.size()) {
            batch = nn_call([&](Namenode& nn) {
                return nn.block_locations(path, block_index, kLocationBatch);
            });
            batch_first = block_index;
            if (batch.empty()) {
                throw ConsistencyError("missing committed block in " + path);
            }
        }
        const BlockLocation& loc = batch[block_index - batch_first];
        const std::size_t n = std::min<std::uint64_t>(out.size() - done,
                                                      loc.size - in_block);
        std::string last_error = "no replicas";
        bool ok = false;
        for (const NodeId target : loc.replicas) {
            const auto it = dps.find(target);
            if (it == dps.end()) {
                continue;
            }
            try {
                const auto data = net.call(
                    self_, target, 64, n + 32,
                    [&] { return it->second->get_chunk({0, loc.block_uid}); });
                std::memcpy(out.data() + done, data->data() + in_block, n);
                ok = true;
                break;
            } catch (const RpcError& e) {
                last_error = e.what();
            } catch (const NotFoundError& e) {
                last_error = e.what();
            }
        }
        if (!ok) {
            throw NotFoundError("dfs block unavailable (" + last_error + ")");
        }
        done += n;
        in_block = 0;
        ++block_index;
    }
    return done;
}

}  // namespace blobseer::baseline
