/// \file ring.hpp
/// \brief Consistent-hashing ring used to spread metadata tree nodes over
///        the metadata providers.
///
/// Paper §I-B.3: "the tree nodes are distributed in a fine-grain manner
/// among the metadata providers, which form a DHT." Virtual nodes smooth
/// the key distribution so that even small provider counts split load
/// evenly; replication walks clockwise to the next distinct owners.
///
/// Membership is fixed after cluster bootstrap (the paper's deployments
/// size the DHT statically per experiment); dynamic membership is out of
/// scope and documented in DESIGN.md.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"

namespace blobseer::dht {

class Ring {
  public:
    /// \param vnodes_per_node virtual nodes per physical node; 64 gives
    ///        <10% load imbalance for realistic provider counts.
    explicit Ring(std::size_t vnodes_per_node = 64)
        : vnodes_per_node_(vnodes_per_node) {}

    /// Add a physical node. Must be called before any lookup.
    void add_node(NodeId node) {
        for (std::size_t i = 0; i < vnodes_per_node_; ++i) {
            const std::uint64_t point =
                mix64(hash_combine(static_cast<std::uint64_t>(node) + 1,
                                   0x5bd1e995u * (i + 1)));
            points_.push_back(VNode{point, node});
        }
        std::sort(points_.begin(), points_.end());
        ++node_count_;
    }

    [[nodiscard]] std::size_t node_count() const noexcept {
        return node_count_;
    }

    /// Primary owner of \p key_hash.
    [[nodiscard]] NodeId owner(std::uint64_t key_hash) const {
        return owners(key_hash, 1).front();
    }

    /// The \p k distinct nodes responsible for \p key_hash, primary
    /// first (clockwise successor walk). k is clamped to the node count.
    [[nodiscard]] std::vector<NodeId> owners(std::uint64_t key_hash,
                                             std::size_t k) const {
        if (points_.empty()) {
            throw ConsistencyError("lookup on empty ring");
        }
        k = std::min(k, node_count_);
        std::vector<NodeId> out;
        out.reserve(k);
        auto it = std::lower_bound(points_.begin(), points_.end(),
                                   VNode{key_hash, 0});
        for (std::size_t steps = 0; out.size() < k && steps < points_.size();
             ++steps) {
            if (it == points_.end()) {
                it = points_.begin();
            }
            if (std::find(out.begin(), out.end(), it->node) == out.end()) {
                out.push_back(it->node);
            }
            ++it;
        }
        return out;
    }

  private:
    struct VNode {
        std::uint64_t point;
        NodeId node;
        friend bool operator<(const VNode& a, const VNode& b) {
            return a.point < b.point ||
                   (a.point == b.point && a.node < b.node);
        }
    };

    std::size_t vnodes_per_node_;
    std::size_t node_count_ = 0;
    std::vector<VNode> points_;
};

}  // namespace blobseer::dht
