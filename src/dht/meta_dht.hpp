/// \file meta_dht.hpp
/// \brief Client-side view of the metadata DHT.
///
/// Implements meta::MetaStore over the metadata providers: each node key
/// is consistent-hashed to its owners; puts go to every replica, gets try
/// owners in order and fail over on provider death. Every operation is a
/// real encode → transport → decode round trip (rpc::ServiceClient), so
/// the metadata traffic the tree algorithms generate is charged at its
/// actual serialized size under SimTransport and travels real sockets
/// under TcpTransport.
///
/// With a single registered provider this degenerates into the
/// *centralized* metadata scheme the paper compares against (§IV-C) — the
/// baseline configuration reuses this class unchanged.

#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "dht/ring.hpp"
#include "meta/meta_store.hpp"
#include "rpc/service_client.hpp"

namespace blobseer::dht {

class MetaDht final : public meta::MetaStore {
  public:
    /// \param svc        RPC stubs carrying this client's identity.
    /// \param ring       DHT membership (not owned; must outlive this).
    /// \param replication copies per node key (>= 1).
    MetaDht(rpc::ServiceClient& svc, const Ring& ring,
            std::uint32_t replication)
        : svc_(svc),
          ring_(ring),
          replication_(replication == 0 ? 1 : replication) {}

    void put(const meta::MetaKey& key, const meta::MetaNode& node) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        // All replica copies travel concurrently — a replicated put
        // costs one round trip, not replication_ of them.
        std::vector<Future<void>> puts;
        puts.reserve(owners.size());
        std::size_t ok = 0;
        for (const NodeId owner : owners) {
            try {
                puts.push_back(svc_.meta_put_async(owner, key, node));
            } catch (const RpcError& e) {
                // call_async can fail synchronously (connection
                // refused): same per-replica tolerance as an async
                // failure.
                log_debug("meta-dht", std::string("put replica failed: ") +
                                          e.what());
            }
        }
        for (auto& fut : puts) {
            try {
                fut.get();
                ++ok;
            } catch (const RpcError& e) {
                // A dead replica target is tolerable as long as one copy
                // lands; readers fail over the same way.
                log_debug("meta-dht", std::string("put replica failed: ") +
                                          e.what());
            }
        }
        puts_.add();
        if (ok == 0) {
            throw RpcError("no metadata replica stored for " +
                           key.to_string());
        }
    }

    [[nodiscard]] meta::MetaNode get(const meta::MetaKey& key) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        gets_.add();
        std::string last_error = "no owners";
        for (const NodeId owner : owners) {
            try {
                return svc_.meta_get(owner, key);
            } catch (const RpcError& e) {
                last_error = e.what();
            } catch (const NotFoundError& e) {
                last_error = e.what();
            }
        }
        throw NotFoundError("metadata " + key.to_string() + " unavailable (" +
                            last_error + ")");
    }

    [[nodiscard]] std::optional<meta::MetaNode> try_get(
        const meta::MetaKey& key) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        for (const NodeId owner : owners) {
            try {
                auto r = svc_.meta_try_get(owner, key);
                if (r) {
                    return r;
                }
            } catch (const RpcError&) {
                // try next replica
            }
        }
        return std::nullopt;
    }

    void erase(const meta::MetaKey& key) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        for (const NodeId owner : owners) {
            try {
                svc_.meta_erase(owner, key);
            } catch (const RpcError&) {
                // best effort
            }
        }
    }

    [[nodiscard]] std::uint64_t puts() const { return puts_.get(); }
    [[nodiscard]] std::uint64_t gets() const { return gets_.get(); }

  private:
    rpc::ServiceClient& svc_;
    const Ring& ring_;
    const std::uint32_t replication_;

    Counter puts_;
    Counter gets_;
};

}  // namespace blobseer::dht
