/// \file meta_dht.hpp
/// \brief Client-side view of the metadata DHT.
///
/// Implements meta::MetaStore over the metadata providers: each node key
/// is consistent-hashed to its owners; puts go to every replica, gets try
/// owners in order and fail over on provider death. All traffic is
/// charged to the simulated network, so every metadata round trip the
/// tree algorithms make shows up in experiment measurements exactly like
/// it did on Grid'5000.
///
/// With a single registered provider this degenerates into the
/// *centralized* metadata scheme the paper compares against (§IV-C) — the
/// baseline configuration reuses this class unchanged.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "dht/metadata_provider.hpp"
#include "dht/ring.hpp"
#include "meta/meta_store.hpp"
#include "net/sim_network.hpp"

namespace blobseer::dht {

class MetaDht final : public meta::MetaStore {
  public:
    /// \param self       node id of the calling client (traffic source).
    /// \param providers  map node-id -> service object for every DHT
    ///                   member (not owned).
    /// \param replication copies per node key (>= 1).
    MetaDht(net::SimNetwork& net, NodeId self, const Ring& ring,
            std::unordered_map<NodeId, MetadataProvider*> providers,
            std::uint32_t replication)
        : net_(net),
          self_(self),
          ring_(ring),
          providers_(std::move(providers)),
          replication_(replication == 0 ? 1 : replication) {}

    void put(const meta::MetaKey& key, const meta::MetaNode& node) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        const std::uint64_t req =
            meta::kMetaKeyWireSize + node.serialized_size();
        std::size_t ok = 0;
        for (const NodeId owner : owners) {
            try {
                net_.call(self_, owner, req, 8,
                          [&] { provider_of(owner)->put(key, node); });
                ++ok;
            } catch (const RpcError& e) {
                // A dead replica target is tolerable as long as one copy
                // lands; readers fail over the same way.
                log_debug("meta-dht", std::string("put replica failed: ") +
                                          e.what());
            }
        }
        puts_.add();
        if (ok == 0) {
            throw RpcError("no metadata replica stored for " +
                           key.to_string());
        }
    }

    [[nodiscard]] meta::MetaNode get(const meta::MetaKey& key) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        gets_.add();
        std::string last_error = "no owners";
        for (const NodeId owner : owners) {
            try {
                return net_.call(self_, owner, meta::kMetaKeyWireSize, 48,
                                 [&] { return provider_of(owner)->get(key); });
            } catch (const RpcError& e) {
                last_error = e.what();
            } catch (const NotFoundError& e) {
                last_error = e.what();
            }
        }
        throw NotFoundError("metadata " + key.to_string() + " unavailable (" +
                            last_error + ")");
    }

    [[nodiscard]] std::optional<meta::MetaNode> try_get(
        const meta::MetaKey& key) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        for (const NodeId owner : owners) {
            try {
                auto r = net_.call(self_, owner, meta::kMetaKeyWireSize, 48,
                                   [&] {
                                       return provider_of(owner)->try_get(key);
                                   });
                if (r) {
                    return r;
                }
            } catch (const RpcError&) {
                // try next replica
            }
        }
        return std::nullopt;
    }

    void erase(const meta::MetaKey& key) override {
        const auto owners = ring_.owners(key.hash(), replication_);
        for (const NodeId owner : owners) {
            try {
                net_.call(self_, owner, meta::kMetaKeyWireSize, 8,
                          [&] { provider_of(owner)->erase(key); });
            } catch (const RpcError&) {
                // best effort
            }
        }
    }

    [[nodiscard]] std::uint64_t puts() const { return puts_.get(); }
    [[nodiscard]] std::uint64_t gets() const { return gets_.get(); }

  private:
    [[nodiscard]] MetadataProvider* provider_of(NodeId node) const {
        const auto it = providers_.find(node);
        if (it == providers_.end()) {
            throw ConsistencyError("ring returned unknown provider " +
                                   std::to_string(node));
        }
        return it->second;
    }

    net::SimNetwork& net_;
    const NodeId self_;
    const Ring& ring_;
    const std::unordered_map<NodeId, MetadataProvider*> providers_;
    const std::uint32_t replication_;

    Counter puts_;
    Counter gets_;
};

}  // namespace blobseer::dht
