/// \file metadata_provider.hpp
/// \brief Metadata-provider service: one DHT member storing tree nodes.
///
/// Besides the key-value map, the provider models *service capacity*
/// (ops/second): every put/get occupies the server for 1/capacity seconds,
/// serialized across callers. This is the resource whose saturation makes
/// a centralized metadata server the bottleneck the paper's §IV-C
/// experiment demonstrates — tiny payloads mean the NIC never saturates;
/// the serialized request handling does.

#pragma once

#include <cstdint>

#include <memory>

#include "common/bandwidth_gate.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "meta/meta_store.hpp"

namespace blobseer::dht {

class MetadataProvider {
  public:
    /// \param ops_per_second service capacity; 0 = infinite (unit tests).
    /// Stores nodes in RAM by default; pass a DiskMetaStore for the
    /// persistent-metadata configuration of paper SIV-B.
    MetadataProvider(NodeId node, std::uint64_t ops_per_second,
                     std::unique_ptr<meta::LocalMetaStore> store =
                         std::make_unique<meta::InMemoryMetaStore>())
        : node_(node),
          service_gate_(ops_per_second),
          store_(std::move(store)) {
        const MetricLabels labels{{"service", "meta-provider"},
                                  {"node", std::to_string(node_)}};
        bind_service_stats(metrics_, stats_, labels);
        metrics_.callback("meta_nodes_stored", labels,
                          [this] { return store_->count(); });
    }

    [[nodiscard]] NodeId node() const noexcept { return node_; }

    void put(const meta::MetaKey& key, const meta::MetaNode& value) {
        service_gate_.transmit(1);
        store_->put(key, value);
        stats_.ops.add();
        stats_.bytes_in.add(value.serialized_size());
    }

    [[nodiscard]] meta::MetaNode get(const meta::MetaKey& key) {
        service_gate_.transmit(1);
        stats_.ops.add();
        try {
            meta::MetaNode node = store_->get(key);
            stats_.bytes_out.add(node.serialized_size());
            return node;
        } catch (const NotFoundError&) {
            stats_.errors.add();
            throw;
        }
    }

    [[nodiscard]] std::optional<meta::MetaNode> try_get(
        const meta::MetaKey& key) {
        service_gate_.transmit(1);
        stats_.ops.add();
        return store_->try_get(key);
    }

    void erase(const meta::MetaKey& key) {
        service_gate_.transmit(1);
        store_->erase(key);
        stats_.ops.add();
    }

    /// Crash simulation: volatile state is lost (everything for a RAM
    /// store; only the cache for a disk store — reads then fall back to
    /// the surviving files or to DHT replicas).
    void lose_state() { store_->lose_volatile(); }

    [[nodiscard]] std::size_t stored_nodes() const { return store_->count(); }
    [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }

  private:
    const NodeId node_;
    BandwidthGate service_gate_;  // rate = ops/second, 1 token per op
    std::unique_ptr<meta::LocalMetaStore> store_;
    ServiceStats stats_;
    /// Registry bindings; declared last so they unbind before stats_
    /// and the store the callback samples.
    MetricsGroup metrics_;
};

}  // namespace blobseer::dht
