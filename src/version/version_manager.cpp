#include "version/version_manager.hpp"

#include <algorithm>

#include "engine/log_engine.hpp"

namespace blobseer::version {

namespace {

/// Journal operation codes. Append-only: never renumber, only add.
enum JournalOp : std::uint8_t {
    kOpCreate = 1,     ///< chunk_size, replication
    kOpClone = 2,      ///< src blob, resolved src version
    kOpAssign = 3,     ///< blob, has_offset, offset, size
    kOpCommit = 4,     ///< blob, version
    kOpAbort = 5,      ///< blob, version
    kOpPin = 6,        ///< blob, version
    kOpUnpin = 7,      ///< blob, version
    kOpRetire = 8,     ///< blob, keep_from
    kOpCloneFrom = 9,  ///< chunk_size, replication, origin blob/version/size
};

}  // namespace

VersionManager::VersionManager(std::uint32_t shard,
                               std::uint32_t shard_count)
    : shard_(shard) {
    if (shard_count == 0 || shard_count > kMaxBlobShards) {
        throw InvalidArgument("shard count " + std::to_string(shard_count) +
                              " outside [1, " +
                              std::to_string(kMaxBlobShards) + "]");
    }
    if (shard >= shard_count) {
        throw InvalidArgument("shard index " + std::to_string(shard) +
                              " >= shard count " +
                              std::to_string(shard_count));
    }

    const MetricLabels labels{{"shard", std::to_string(shard_)}};
    metrics_.counter("vm_assigns_total", labels, assigns_);
    metrics_.counter("vm_commits_total", labels, commits_);
    metrics_.counter("vm_aborts_total", labels, aborts_);
    metrics_.counter("vm_publishes_total", labels, publishes_);
    metrics_.gauge("vm_publish_backlog", labels, publish_backlog_);
}

BlobInfo VersionManager::create_blob(std::uint64_t chunk_size,
                                     std::uint32_t replication) {
    if (chunk_size == 0) {
        throw InvalidArgument("chunk_size must be > 0");
    }
    if (replication == 0) {
        throw InvalidArgument("replication must be >= 1");
    }
    auto st = std::make_shared<BlobState>();
    st->info = BlobInfo{kInvalidBlob, chunk_size, replication};

    const std::scoped_lock lock(map_mu_);
    st->info.id = make_blob_id(shard_, next_seq_++);
    const BlobInfo info = st->info;
    blobs_.emplace(info.id, st);
    by_seq_.push_back(std::move(st));
    journal_append(kOpCreate, {chunk_size, replication});
    return info;
}

BlobInfo VersionManager::clone_blob(BlobId src, Version src_version) {
    const StatePtr src_st = state_of(src);
    // Hold the source's stripe across id allocation and the journal
    // append: replay must see the clone strictly after every source
    // operation it observed (and strictly before any it did not).
    const std::scoped_lock src_lock(stripe_mu(src));
    BlobState& s = *src_st;
    Version v = src_version == kLatestVersion ? s.published : src_version;
    if (v > s.published) {
        throw InvalidArgument("cannot clone unpublished version " +
                              std::to_string(v));
    }
    if (v > 0 && s.records[v - 1].status != VersionStatus::kPublished) {
        throw VersionAborted("cannot clone aborted version " +
                             std::to_string(v));
    }

    auto st = std::make_shared<BlobState>();
    st->info = BlobInfo{kInvalidBlob, s.info.chunk_size, s.info.replication};
    if (v == 0) {
        // Cloning version 0 of a clone chains to the original tree;
        // cloning version 0 of a fresh blob yields another empty blob.
        st->origin = s.origin;
        st->v0_size = s.v0_size;
    } else {
        st->origin = meta::TreeRef{src, v, size_of_version(s, v)};
        st->v0_size = st->origin.size;
        // The clone reads through the origin's tree forever: protect that
        // snapshot from retirement (nested: one count per clone).
        ++s.pinned[v];
    }
    st->size = st->v0_size;

    const std::scoped_lock lock(map_mu_);
    st->info.id = make_blob_id(shard_, next_seq_++);
    const BlobInfo info = st->info;
    blobs_.emplace(info.id, st);
    by_seq_.push_back(std::move(st));
    journal_append(kOpClone, {src, v});  // v resolved: replay-stable
    return info;
}

BlobInfo VersionManager::clone_from(std::uint64_t chunk_size,
                                    std::uint32_t replication,
                                    const meta::TreeRef& origin) {
    if (chunk_size == 0) {
        throw InvalidArgument("chunk_size must be > 0");
    }
    if (replication == 0) {
        throw InvalidArgument("replication must be >= 1");
    }
    auto st = std::make_shared<BlobState>();
    st->info = BlobInfo{kInvalidBlob, chunk_size, replication};
    if (origin.valid()) {
        st->origin = origin;
        st->v0_size = origin.size;
    }
    st->size = st->v0_size;

    const std::scoped_lock lock(map_mu_);
    st->info.id = make_blob_id(shard_, next_seq_++);
    const BlobInfo info = st->info;
    blobs_.emplace(info.id, st);
    by_seq_.push_back(std::move(st));
    journal_append(kOpCloneFrom, {chunk_size, replication, origin.blob,
                                  origin.version, origin.size});
    return info;
}

BlobInfo VersionManager::blob_info(BlobId blob) const {
    // info is immutable after creation; the map lock taken inside
    // state_of orders this read after the creating insert.
    return state_of(blob)->info;
}

std::size_t VersionManager::blob_count() const {
    const std::shared_lock lock(map_mu_);
    return blobs_.size();
}

AssignResult VersionManager::assign(BlobId blob,
                                    std::optional<std::uint64_t> offset_opt,
                                    std::uint64_t size) {
    if (size == 0) {
        throw InvalidArgument("zero-sized write");
    }
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    BlobState& b = *st;
    const std::uint64_t c = b.info.chunk_size;
    const std::uint64_t offset = offset_opt.value_or(b.size);

    // Alignment contract (see DESIGN.md §4.1 and core/client): explicit
    // writes need a chunk-aligned offset and a short trailing chunk is
    // only legal at the (new) end of the blob. Appends are exempt — they
    // start at the current end by construction and the client rewrites
    // the trailing chunk whole (merge path).
    if (offset_opt) {
        if (offset % c != 0) {
            throw InvalidArgument("write offset " + std::to_string(offset) +
                                  " not chunk-aligned (chunk " +
                                  std::to_string(c) + ")");
        }
        if (offset + size < b.size && size % c != 0) {
            throw InvalidArgument("interior write must cover whole chunks");
        }
    }
    const std::uint64_t end = offset + size;

    AssignResult r;
    r.version = ++b.max_assigned;
    r.offset = offset;
    r.size_before = b.size;
    r.size_after = std::max(b.size, end);
    r.base = published_base(b);
    r.chunk_size = c;
    r.replication = b.info.replication;
    for (Version w = b.published + 1; w < r.version; ++w) {
        const VersionRecord& rec = b.records[w - 1];
        if (rec.status != VersionStatus::kAborted) {
            r.concurrent.push_back(rec.desc);
        }
    }

    VersionRecord rec;
    rec.desc = meta::WriteDescriptor{r.version, offset, size, r.size_before,
                                     r.size_after};
    rec.status = VersionStatus::kPending;
    rec.assigned_at = Clock::now();
    b.records.push_back(rec);
    b.size = r.size_after;
    assigns_.add();
    publish_backlog_.add();
    // Appends journal has_offset=0 so replay recomputes the offset from
    // the rebuilt blob size (appends are exempt from alignment checks).
    journal_append(kOpAssign, {blob, offset_opt.has_value() ? 1u : 0u,
                               offset_opt.value_or(0), size});
    return r;
}

void VersionManager::commit(BlobId blob, Version v) {
    const StatePtr st = state_of(blob);
    {
        const std::scoped_lock lock(stripe_mu(blob));
        BlobState& b = *st;
        if (v == 0 || v > b.max_assigned) {
            throw InvalidArgument("commit of unassigned version " +
                                  std::to_string(v));
        }
        VersionRecord& rec = b.records[v - 1];
        switch (rec.status) {
            case VersionStatus::kPending:
                rec.status = VersionStatus::kCommitted;
                break;
            case VersionStatus::kAborted:
                throw VersionAborted("version " + std::to_string(v) +
                                     " was aborted before commit");
            case VersionStatus::kRetired:
                // Commit after retirement is impossible in-protocol
                // (retire only touches published versions), so treat it
                // as the caller following a stale handle.
                throw InvalidArgument("commit of retired version " +
                                      std::to_string(v));
            case VersionStatus::kCommitted:
            case VersionStatus::kPublished:
                return;  // idempotent
        }
        advance_publication(b);
        commits_.add();
        journal_append_waking(b, kOpCommit, {blob, v});
    }
    st->publish_cv.notify_all();
}

void VersionManager::abort(BlobId blob, Version v) {
    const StatePtr st = state_of(blob);
    {
        const std::scoped_lock lock(stripe_mu(blob));
        BlobState& b = *st;
        if (v == 0 || v > b.max_assigned) {
            throw InvalidArgument("abort of unassigned version " +
                                  std::to_string(v));
        }
        if (b.records[v - 1].status == VersionStatus::kPublished) {
            throw InvalidArgument("cannot abort published version " +
                                  std::to_string(v));
        }
        abort_tail(b, v);
        advance_publication(b);
        journal_append_waking(b, kOpAbort, {blob, v});
    }
    st->publish_cv.notify_all();
}

std::size_t VersionManager::abort_stalled_locked(BlobState& b,
                                                 TimePoint cutoff) {
    for (Version v = b.pub_cursor + 1; v <= b.max_assigned; ++v) {
        const VersionRecord& rec = b.records[v - 1];
        if (rec.status == VersionStatus::kPending &&
            rec.assigned_at < cutoff) {
            const std::size_t aborted = abort_tail(b, v);
            advance_publication(b);
            journal_append_waking(b, kOpAbort, {b.info.id, v});
            return aborted;
        }
        if (rec.status == VersionStatus::kPending) {
            // Oldest unpublished pending version is still fresh: the
            // tail behind it must keep waiting (in-order publication).
            break;
        }
    }
    return 0;
}

std::size_t VersionManager::abort_stalled(BlobId blob, Duration max_age) {
    const StatePtr st = state_of(blob);
    std::size_t aborted = 0;
    {
        const std::scoped_lock lock(stripe_mu(blob));
        aborted = abort_stalled_locked(*st, Clock::now() - max_age);
    }
    if (aborted > 0) {
        st->publish_cv.notify_all();
    }
    return aborted;
}

std::size_t VersionManager::sweep_stalled(Duration max_age,
                                          std::size_t max_blobs) {
    std::vector<StatePtr> batch;
    {
        const std::shared_lock lock(map_mu_);
        const std::size_t n = by_seq_.size();
        if (n == 0 || max_blobs == 0) {
            return 0;
        }
        const std::size_t take = std::min(max_blobs, n);
        const std::uint64_t start = sweep_cursor_.fetch_add(take);
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(by_seq_[(start + i) % n]);
        }
    }
    const TimePoint cutoff = Clock::now() - max_age;
    std::size_t aborted = 0;
    for (const StatePtr& st : batch) {
        std::size_t k = 0;
        {
            const std::scoped_lock lock(stripe_mu(st->info.id));
            k = abort_stalled_locked(*st, cutoff);
        }
        if (k > 0) {
            aborted += k;
            st->publish_cv.notify_all();
        }
    }
    return aborted;
}

VersionInfo VersionManager::get_version(BlobId blob, Version v) const {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    const BlobState& b = *st;
    VersionInfo info;
    info.version = v == kLatestVersion ? b.published : v;
    if (info.version > b.max_assigned) {
        throw NotFoundError("version " + std::to_string(info.version) +
                            " of blob " + std::to_string(blob));
    }
    if (info.version == 0) {
        info.size = b.v0_size;
        info.status = VersionStatus::kPublished;
        info.tree = b.origin;  // invalid TreeRef for a fresh blob: no data
        return info;
    }
    const VersionRecord& rec = b.records[info.version - 1];
    info.size = rec.desc.size_after;
    info.status = rec.status;
    info.tree = meta::TreeRef{blob, info.version, info.size};
    return info;
}

Version VersionManager::latest(BlobId blob) const {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    return st->published;
}

VersionInfo VersionManager::wait_published(BlobId blob, Version v,
                                           Duration timeout) const {
    if (v == 0) {
        return get_version(blob, 0);
    }
    const StatePtr st = state_of(blob);
    std::unique_lock lock(stripe_mu(blob));
    const BlobState& b = *st;
    const TimePoint deadline = Clock::now() + timeout;
    const auto done = [&] {
        if (v > b.max_assigned) {
            return false;
        }
        const VersionStatus s = b.records[v - 1].status;
        return s == VersionStatus::kPublished || s == VersionStatus::kAborted;
    };
    if (!b.publish_cv.wait_until(lock, deadline, done)) {
        throw TimeoutError("waiting for publication of version " +
                           std::to_string(v));
    }
    VersionInfo info;
    info.version = v;
    const VersionRecord& rec = b.records[v - 1];
    info.size = rec.desc.size_after;
    info.status = rec.status;
    info.tree = meta::TreeRef{blob, v, info.size};
    return info;
}

meta::WriteDescriptor VersionManager::descriptor_of(BlobId blob,
                                                    Version v) const {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    const BlobState& b = *st;
    if (v == 0 || v > b.max_assigned) {
        throw NotFoundError("descriptor of version " + std::to_string(v));
    }
    return b.records[v - 1].desc;
}

std::vector<VersionManager::VersionSummary> VersionManager::history(
    BlobId blob, Version from, Version to) const {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    const BlobState& b = *st;
    std::vector<VersionSummary> out;
    from = std::max<Version>(from, 1);
    to = std::min<Version>(to, b.max_assigned);
    for (Version v = from; v <= to; ++v) {
        const VersionRecord& rec = b.records[v - 1];
        out.push_back(VersionSummary{v, rec.status, rec.desc.offset,
                                     rec.desc.size, rec.desc.size_after});
    }
    return out;
}

bool VersionManager::pin(BlobId blob, Version v) {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    BlobState& b = *st;
    if (v == 0 || v > b.max_assigned ||
        b.records[v - 1].status != VersionStatus::kPublished) {
        throw InvalidArgument("only published versions can be pinned");
    }
    const bool first = ++b.pinned[v] == 1;
    journal_append(kOpPin, {blob, v});
    return first;
}

void VersionManager::unpin(BlobId blob, Version v) {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    const auto it = st->pinned.find(v);
    if (it != st->pinned.end() && --it->second == 0) {
        st->pinned.erase(it);
    }
    journal_append(kOpUnpin, {blob, v});
}

std::vector<Version> VersionManager::pinned(BlobId blob) const {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    std::vector<Version> out;
    out.reserve(st->pinned.size());
    for (const auto& [v, count] : st->pinned) {
        out.push_back(v);
    }
    return out;
}

VersionManager::RetireInfo VersionManager::retire(BlobId blob,
                                                  Version keep_from) {
    const StatePtr st = state_of(blob);
    const std::scoped_lock lock(stripe_mu(blob));
    BlobState& b = *st;
    if (keep_from == 0 || keep_from > b.published) {
        throw InvalidArgument(
            "keep_from must name a published version (got " +
            std::to_string(keep_from) + ", published " +
            std::to_string(b.published) + ")");
    }
    RetireInfo info;
    info.keep_from = keep_from;
    for (Version v = 1; v < keep_from; ++v) {
        VersionRecord& rec = b.records[v - 1];
        if (rec.status == VersionStatus::kPublished &&
            !b.pinned.contains(v)) {
            rec.status = VersionStatus::kRetired;
            info.retired.push_back(v);
        }
    }
    for (Version v = 1; v <= keep_from; ++v) {
        const VersionRecord& rec = b.records[v - 1];
        if (rec.status != VersionStatus::kAborted) {
            info.descriptors.push_back(rec.desc);
        }
    }
    for (const auto& [p, count] : b.pinned) {
        if (p <= keep_from) {
            info.pinned.push_back(p);
        }
    }
    journal_append(kOpRetire, {blob, keep_from});
    return info;
}

VersionManager::StatePtr VersionManager::state_of(BlobId blob) const {
    const std::shared_lock lock(map_mu_);
    const auto it = blobs_.find(blob);
    if (it == blobs_.end()) {
        throw NotFoundError("blob " + std::to_string(blob));
    }
    return it->second;
}

void VersionManager::advance_publication(BlobState& b) {
    while (b.pub_cursor < b.max_assigned) {
        VersionRecord& rec = b.records[b.pub_cursor];
        if (rec.status == VersionStatus::kCommitted) {
            rec.status = VersionStatus::kPublished;
            ++b.pub_cursor;
            b.published = b.pub_cursor;
            publishes_.add();
            publish_backlog_.sub();
        } else if (rec.status == VersionStatus::kAborted) {
            // Version number consumed but unreadable; readers of "latest"
            // stay on the previous published snapshot.
            ++b.pub_cursor;
            publish_backlog_.sub();
        } else {
            break;
        }
    }
}

std::size_t VersionManager::abort_tail(BlobState& b, Version v) {
    std::size_t aborted = 0;
    for (Version w = v; w <= b.max_assigned; ++w) {
        VersionRecord& rec = b.records[w - 1];
        if (rec.status == VersionStatus::kPublished) {
            throw ConsistencyError(
                "abort cascade reached a published version");
        }
        if (rec.status != VersionStatus::kAborted) {
            rec.status = VersionStatus::kAborted;
            ++aborted;
            aborts_.add();
        }
    }
    // Roll the running size back to just before the first aborted version
    // so new writers do not build on vanished data.
    b.size = b.records[v - 1].desc.size_before;
    return aborted;
}

meta::TreeRef VersionManager::published_base(const BlobState& b) const {
    if (b.published >= 1) {
        return meta::TreeRef{b.info.id, b.published,
                             size_of_version(b, b.published)};
    }
    return b.origin;  // clone alias, or invalid for a fresh blob
}

std::uint64_t VersionManager::size_of_version(const BlobState& b,
                                              Version v) const {
    return v == 0 ? b.v0_size : b.records[v - 1].desc.size_after;
}

ShardStatus VersionManager::status() const {
    ShardStatus s;
    s.shard = shard_;
    s.blobs = blob_count();
    s.assigns = assigns_.get();
    s.commits = commits_.get();
    s.aborts = aborts_.get();
    s.publishes = publishes_.get();
    s.backlog = publish_backlog_.get();
    s.backlog_high_water = publish_backlog_.high_water();
    return s;
}

// ---- durability (operation journal) ------------------------------------------

void VersionManager::attach_journal(
    std::shared_ptr<engine::LogEngine> journal) {
    // Replay before any concurrent use: the public methods rebuild the
    // exact state because every one of them is deterministic given the
    // operation sequence (assign allocates versions and resolves append
    // offsets from rebuilt state). Per-blob order and blob-id allocation
    // order were preserved at append time, which is all replay needs.
    replaying_ = true;
    std::uint64_t records = 0;
    try {
        journal->scan([&](std::string_view, ConstBytes value) {
            ++records;
            apply_journal_op(value);
        });
    } catch (...) {
        replaying_ = false;
        throw;
    }
    replaying_ = false;
    const std::scoped_lock lock(journal_mu_);
    journal_ = std::move(journal);
    journal_seq_ = records;
}

void VersionManager::journal_append_waking(
    BlobState& b, std::uint8_t op,
    std::initializer_list<std::uint64_t> args) {
    try {
        journal_append(op, args);
    } catch (...) {
        // Publication already advanced in memory; blocked readers in
        // wait_published must still wake even when the journal write
        // fails (the caller's trailing notify is skipped by the throw).
        b.publish_cv.notify_all();
        throw;
    }
}

void VersionManager::journal_append(
    std::uint8_t op, std::initializer_list<std::uint64_t> args) {
    // Checked BEFORE taking journal_mu_: both fields only change during
    // single-threaded phases (attach_journal runs before any concurrent
    // use), and skipping the lock while replaying breaks the
    // engine-mutex -> journal_mu_ ordering edge the replay path would
    // otherwise create (LogEngine::scan holds the engine mutex around
    // its callback, while runtime appends acquire journal_mu_ and then
    // the engine mutex inside put()).
    if (journal_ == nullptr || replaying_) {
        return;
    }
    const std::scoped_lock jlock(journal_mu_);
    if (journal_failed_) {
        // A previous append failed: later ops must not keep journaling
        // past the gap (replay would rebuild a divergent state). Fail
        // mutations loudly until the operator restarts; a restart
        // recovers the journaled prefix consistently.
        throw Error(
            "version-manager journal is failed; restart to recover");
    }
    Buffer value;
    value.reserve(1 + 8 * args.size());
    value.push_back(op);
    for (const std::uint64_t a : args) {
        engine::put_u64(value, a);
    }
    Buffer key;
    key.reserve(8);
    engine::put_u64(key, journal_seq_++);
    try {
        journal_->put(
            std::string_view(reinterpret_cast<const char*>(key.data()),
                             key.size()),
            value);
    } catch (...) {
        journal_failed_ = true;
        throw;
    }
}

void VersionManager::apply_journal_op(ConstBytes value) {
    if (value.empty() || (value.size() - 1) % 8 != 0) {
        throw ConsistencyError("malformed version-manager journal record");
    }
    const std::size_t argc = (value.size() - 1) / 8;
    std::uint64_t a[5] = {0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < argc && i < 5; ++i) {
        a[i] = engine::get_u64(value, 1 + i * 8);
    }
    const auto need = [&](std::size_t n) {
        if (argc != n) {
            throw ConsistencyError(
                "version-manager journal record has wrong arity");
        }
    };
    switch (value[0]) {
        case kOpCreate:
            need(2);
            (void)create_blob(a[0], static_cast<std::uint32_t>(a[1]));
            break;
        case kOpClone:
            need(2);
            (void)clone_blob(a[0], a[1]);
            break;
        case kOpCloneFrom:
            need(5);
            (void)clone_from(a[0], static_cast<std::uint32_t>(a[1]),
                             meta::TreeRef{a[2], a[3], a[4]});
            break;
        case kOpAssign:
            need(4);
            (void)assign(a[0],
                         a[1] != 0 ? std::optional<std::uint64_t>(a[2])
                                   : std::nullopt,
                         a[3]);
            break;
        case kOpCommit:
            need(2);
            commit(a[0], a[1]);
            break;
        case kOpAbort:
            need(2);
            abort(a[0], a[1]);
            break;
        case kOpPin:
            need(2);
            pin(a[0], a[1]);
            break;
        case kOpUnpin:
            need(2);
            unpin(a[0], a[1]);
            break;
        case kOpRetire:
            need(2);
            (void)retire(a[0], a[1]);
            break;
        default:
            throw ConsistencyError("unknown version-manager journal op " +
                                   std::to_string(value[0]));
    }
}

}  // namespace blobseer::version
