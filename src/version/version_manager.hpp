/// \file version_manager.hpp
/// \brief The version manager: the only serialization point of BlobSeer.
///
/// Paper §I-B.2: "A central version manager is responsible of assigning
/// versions to writes and appends and exposing these versions to reads in
/// such way as to ensure consistency."
///
/// The design keeps the serialized step tiny: an assign() is a few dozen
/// bytes of bookkeeping — everything heavy (chunk upload, tree
/// construction) happens before and after, fully in parallel across
/// writers. Versions become visible to readers strictly in assignment
/// order (commit() merely marks completion; publication advances through
/// the contiguous committed prefix), which is what makes all operations
/// linearizable: a write linearizes at its assign, a read at its
/// version-resolution query.
///
/// Serialization is per blob, twice over (DESIGN.md §10):
///  * within one VersionManager instance, blob states live behind striped
///    locks and each blob carries its own publication condition variable,
///    so writers of unrelated blobs never contend and a publish wakes
///    only that blob's waiters;
///  * a deployment runs N VersionManager *shards*, each owning the blobs
///    whose id it minted (the owning shard index is embedded in the top
///    byte of every BlobId — see common/types.hpp blob_shard()).
///
/// Fault handling: a writer that dies between assign and commit blocks
/// publication. abort_stalled() implements the documented recovery policy
/// for one blob: the oldest stalled version and every version assigned
/// after it are aborted (later versions may have woven references into
/// the dead version's never-written metadata, so the whole tail must go),
/// and the blob's running size is rolled back. sweep_stalled() applies
/// the same policy incrementally across the shard's blobs, a bounded
/// batch per call, so a background sweeper never holds any lock for
/// O(total blobs).

#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "meta/tree_builder.hpp"
#include "meta/write_descriptor.hpp"

namespace blobseer::engine {
class LogEngine;
}  // namespace blobseer::engine

namespace blobseer::version {

/// Immutable per-blob parameters fixed at creation.
struct BlobInfo {
    BlobId id = kInvalidBlob;
    std::uint64_t chunk_size = 0;
    std::uint32_t replication = 1;
};

enum class VersionStatus : std::uint8_t {
    kPending,    ///< assigned, writer still working
    kCommitted,  ///< writer finished, waiting for in-order publication
    kPublished,  ///< visible to readers
    kAborted,    ///< writer declared dead; snapshot unreadable forever
    kRetired,    ///< old snapshot garbage-collected (storage reclaimed)
};

[[nodiscard]] inline const char* to_string(VersionStatus s) noexcept {
    switch (s) {
        case VersionStatus::kPending: return "pending";
        case VersionStatus::kCommitted: return "committed";
        case VersionStatus::kPublished: return "published";
        case VersionStatus::kAborted: return "aborted";
        case VersionStatus::kRetired: return "retired";
    }
    return "?";
}

/// Reply to an assign(): everything a writer needs to build its tree with
/// zero further coordination.
struct AssignResult {
    Version version = 0;
    std::uint64_t offset = 0;  ///< resolved offset (== old size for appends)
    std::uint64_t size_before = 0;
    std::uint64_t size_after = 0;
    /// Latest published tree at assign time (invalid for a fresh blob).
    meta::TreeRef base;
    /// Descriptors of unpublished versions in (base, version), ascending.
    std::vector<meta::WriteDescriptor> concurrent;
    std::uint64_t chunk_size = 0;
    std::uint32_t replication = 1;

    /// Wire-size estimate for network charging.
    [[nodiscard]] std::uint64_t serialized_size() const noexcept {
        return 96 + 40 * concurrent.size();
    }
};

/// Reply to a version query.
struct VersionInfo {
    Version version = 0;  ///< resolved (useful when querying kLatestVersion)
    std::uint64_t size = 0;
    VersionStatus status = VersionStatus::kPublished;
    /// Tree to descend for reading this snapshot. For a clone's version 0
    /// this points into the origin blob's tree.
    meta::TreeRef tree;
};

/// Point-in-time observability snapshot of one shard (kVmStatus RPC,
/// serverd shutdown dump, `blobseer_cli vm-status`).
struct ShardStatus {
    std::uint32_t shard = 0;
    std::uint64_t blobs = 0;
    std::uint64_t assigns = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    /// Versions that ever flipped to kPublished (the shard's publication
    /// cursor summed over its blobs).
    std::uint64_t publishes = 0;
    /// Publish backlog right now: assigned-but-unpublished versions
    /// (sum of max_assigned - pub_cursor over the shard's blobs).
    std::uint64_t backlog = 0;
    /// Deepest backlog the shard ever reached.
    std::uint64_t backlog_high_water = 0;

    friend bool operator==(const ShardStatus&, const ShardStatus&) = default;
};

class VersionManager {
  public:
    /// \param shard this instance's shard index; every blob it creates
    ///        embeds it (see make_blob_id). \param shard_count total
    ///        shards in the deployment (bounds-checks \p shard only; the
    ///        instance never talks to its peers).
    explicit VersionManager(std::uint32_t shard = 0,
                            std::uint32_t shard_count = 1);

    // ---- blob lifecycle --------------------------------------------------

    /// Create a blob. \p chunk_size must be > 0; \p replication >= 1.
    BlobInfo create_blob(std::uint64_t chunk_size, std::uint32_t replication);

    /// O(1) snapshot clone (extension feature; see DESIGN.md): the new
    /// blob's version 0 is an alias of (\p src, \p src_version), which
    /// must be published AND live on this shard. Cross-shard clones go
    /// through clone_from().
    BlobInfo clone_blob(BlobId src, Version src_version);

    /// Cross-shard half of CLONE (DESIGN.md §10.3): create a blob whose
    /// version 0 aliases the already-resolved published snapshot
    /// \p origin (possibly owned by another shard). The caller — the
    /// client library — is responsible for having resolved \p origin via
    /// get_version() on the owning shard and for pinning it there so it
    /// survives retirement. An invalid \p origin creates an empty blob
    /// (the clone-of-a-fresh-blob case).
    BlobInfo clone_from(std::uint64_t chunk_size, std::uint32_t replication,
                        const meta::TreeRef& origin);

    [[nodiscard]] BlobInfo blob_info(BlobId blob) const;

    /// Number of blobs created so far.
    [[nodiscard]] std::size_t blob_count() const;

    /// Shard index of this instance.
    [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }

    // ---- write path -------------------------------------------------------

    /// Assign the next version for a write of \p size bytes at \p offset
    /// (nullopt = append at the current end). Validates the alignment
    /// contract: offset chunk-aligned; a write that ends before the
    /// current blob end must cover whole chunks.
    AssignResult assign(BlobId blob, std::optional<std::uint64_t> offset,
                        std::uint64_t size);

    /// Writer finished storing chunks and metadata for \p v; publish it as
    /// soon as every earlier version is published.
    void commit(BlobId blob, Version v);

    /// Abort \p v and cascade to every later assigned version. Explicit
    /// form of the policy used by abort_stalled (exposed for tests and for
    /// clients that know their write failed).
    void abort(BlobId blob, Version v);

    /// Apply the timeout policy: abort the tail starting at the oldest
    /// pending version older than \p max_age. Returns the number of
    /// versions aborted.
    std::size_t abort_stalled(BlobId blob, Duration max_age);

    /// Incremental shard-wide form of abort_stalled: apply the timeout
    /// policy to the next \p max_blobs blobs after an internal rotating
    /// cursor (wrapping), so repeated calls sweep the whole shard without
    /// ever doing O(total blobs) work under a lock. Returns the number of
    /// versions aborted in this batch.
    std::size_t sweep_stalled(Duration max_age, std::size_t max_blobs = 64);

    // ---- read path ----------------------------------------------------------

    /// Resolve \p v (or kLatestVersion) to snapshot info. Reading an
    /// unpublished version is allowed to *query* (status says pending);
    /// actually descending its tree before publication is a protocol
    /// violation the client library never commits.
    [[nodiscard]] VersionInfo get_version(BlobId blob, Version v) const;

    /// Latest published version number (0 = nothing published yet).
    [[nodiscard]] Version latest(BlobId blob) const;

    /// Block until \p v is published or aborted. Returns its final info.
    /// Throws TimeoutError after \p timeout.
    VersionInfo wait_published(BlobId blob, Version v, Duration timeout) const;

    /// Descriptor of an assigned version (GC and introspection).
    [[nodiscard]] meta::WriteDescriptor descriptor_of(BlobId blob,
                                                      Version v) const;

    // ---- history, pinning & retirement ----------------------------------

    /// Summary of one version for history listings.
    struct VersionSummary {
        Version version = 0;
        VersionStatus status = VersionStatus::kPending;
        std::uint64_t offset = 0;
        std::uint64_t size = 0;
        std::uint64_t size_after = 0;
    };

    /// Versions in [from, to] (clamped to what exists), ascending.
    [[nodiscard]] std::vector<VersionSummary> history(BlobId blob,
                                                      Version from,
                                                      Version to) const;

    /// Pin a published snapshot: it survives retirement (clones pin their
    /// origin automatically). Pins NEST — each pin() adds a count that
    /// one unpin() removes, so independent pinners never release each
    /// other's protection (a cross-shard clone that fails after pinning
    /// compensates with exactly one unpin). Returns true when this call
    /// created the version's first pin.
    bool pin(BlobId blob, Version v);
    /// Drop one pin count of \p v (no-op when unpinned).
    void unpin(BlobId blob, Version v);
    [[nodiscard]] std::vector<Version> pinned(BlobId blob) const;

    /// Everything a client needs to physically reclaim retired versions'
    /// storage (see retire()).
    struct RetireInfo {
        /// Versions whose status just flipped to kRetired.
        std::vector<Version> retired;
        /// Descriptors of every non-aborted version <= keep_from
        /// (retired + survivors), ascending — enough to decide which
        /// nodes/chunks lost their last reader.
        std::vector<meta::WriteDescriptor> descriptors;
        /// Pinned versions <= keep_from (they still read the old data).
        std::vector<Version> pinned;
        std::uint64_t keep_from = 0;
    };

    /// Retire every unpinned published version < \p keep_from.
    /// \p keep_from must itself be published. Reading a retired version
    /// throws; reads of keep_from and newer (and of pinned snapshots)
    /// are unaffected. The caller is responsible for the physical
    /// deletion pass (core::BlobSeerClient::reclaim_retired).
    RetireInfo retire(BlobId blob, Version keep_from);

    // ---- durability ------------------------------------------------------

    /// Make this version manager durable: replay the operation journal
    /// stored in \p journal (every prior session's state), then record
    /// every subsequent state-changing operation into it. The journal
    /// engine must have background compaction disabled (replay depends on
    /// append order) — core::Cluster configures this when
    /// ClusterConfig::durable_version_manager is set. Each shard owns its
    /// own journal, so replay is deterministic per shard: journal order
    /// preserves per-blob operation order and blob-id allocation order
    /// (both appended under the lock that serialized the operation).
    /// Call before any concurrent use; throws ConsistencyError on a
    /// corrupt journal.
    void attach_journal(std::shared_ptr<engine::LogEngine> journal);

    // ---- stats ---------------------------------------------------------------

    [[nodiscard]] std::uint64_t assigns() const { return assigns_.get(); }
    [[nodiscard]] std::uint64_t commits() const { return commits_.get(); }
    [[nodiscard]] std::uint64_t aborts() const { return aborts_.get(); }
    [[nodiscard]] std::uint64_t publishes() const {
        return publishes_.get();
    }

    /// Assigned-but-unpublished versions across this shard's blobs, with
    /// high-water mark — the "is the serialized step keeping up" gauge.
    [[nodiscard]] const Gauge& publish_backlog() const noexcept {
        return publish_backlog_;
    }

    /// Everything above in one snapshot.
    [[nodiscard]] ShardStatus status() const;

  private:
    struct VersionRecord {
        meta::WriteDescriptor desc;
        VersionStatus status = VersionStatus::kPending;
        TimePoint assigned_at;
    };

    struct BlobState {
        BlobInfo info;
        /// Valid for clones: the aliased snapshot backing version 0.
        meta::TreeRef origin;
        std::uint64_t v0_size = 0;
        std::uint64_t size = 0;       ///< running size over assigned versions
        Version max_assigned = 0;
        Version published = 0;        ///< highest version visible to readers
        Version pub_cursor = 0;       ///< in-order publication scan position
        /// records[v-1] describes version v.
        std::vector<VersionRecord> records;
        /// Snapshots protected from retirement (explicit pins and clone
        /// origins), with a nesting count per version: independent
        /// pinners — e.g. concurrent cross-shard clones of the same
        /// snapshot — each hold their own pin, and one party's
        /// compensating unpin can never strip another's protection.
        std::map<Version, std::uint64_t> pinned;
        /// Waiters of wait_published() on THIS blob (used with the
        /// blob's stripe mutex): a publish elsewhere in the deployment —
        /// or even elsewhere in this shard — wakes nobody here.
        mutable std::condition_variable publish_cv;
    };
    using StatePtr = std::shared_ptr<BlobState>;

    /// Lock stripes over blob states. Every mutation/read of a
    /// BlobState's mutable fields holds the blob's stripe mutex; the
    /// stripe count only bounds false sharing between blobs, correctness
    /// needs just "same blob -> same mutex".
    static constexpr std::size_t kLockStripes = 32;
    static_assert(is_pow2(kLockStripes));

    [[nodiscard]] static std::size_t stripe_of(BlobId blob) noexcept {
        return static_cast<std::size_t>(mix64(blob)) & (kLockStripes - 1);
    }
    [[nodiscard]] std::mutex& stripe_mu(BlobId blob) const {
        return stripe_mu_[stripe_of(blob)];
    }

    /// Look the blob up (throws NotFoundError). Takes and releases the
    /// map lock; callers then lock the blob's stripe. Lock order is
    /// always stripe -> map -> journal (any subset, in that order).
    [[nodiscard]] StatePtr state_of(BlobId blob) const;

    /// Apply the stalled-tail policy to one blob. Caller holds the
    /// blob's stripe mutex. Returns versions aborted (0 = nothing
    /// stalled long enough).
    std::size_t abort_stalled_locked(BlobState& b, TimePoint cutoff);

    /// Advance the publication cursor through committed/aborted records.
    /// Caller holds the blob's stripe mutex.
    void advance_publication(BlobState& b);

    /// Abort the tail starting at version \p v. Caller holds the blob's
    /// stripe mutex.
    std::size_t abort_tail(BlobState& b, Version v);

    /// Base tree of the latest published snapshot. Caller holds the
    /// blob's stripe mutex.
    [[nodiscard]] meta::TreeRef published_base(const BlobState& b) const;

    [[nodiscard]] std::uint64_t size_of_version(const BlobState& b,
                                                Version v) const;

    /// Append one operation record to the journal (no-op when detached or
    /// replaying). The caller holds whichever lock serialized the
    /// operation (the blob's stripe mutex for per-blob ops, the map lock
    /// for create/clone) — journal order must match the order operations
    /// were applied in for replay to rebuild the same state.
    void journal_append(std::uint8_t op,
                        std::initializer_list<std::uint64_t> args);

    /// journal_append for publication-advancing ops (commit/abort): on
    /// failure, wakes \p b's wait_published() blockers before rethrowing.
    void journal_append_waking(BlobState& b, std::uint8_t op,
                               std::initializer_list<std::uint64_t> args);

    /// Re-execute one journaled operation during attach_journal replay.
    void apply_journal_op(ConstBytes value);

    const std::uint32_t shard_;

    mutable std::array<std::mutex, kLockStripes> stripe_mu_;

    /// Guards blobs_, by_seq_ and next_seq_ (blob-id allocation).
    mutable std::shared_mutex map_mu_;
    std::unordered_map<BlobId, StatePtr> blobs_;
    /// Creation-ordered view for the incremental stalled sweep (blobs
    /// are never erased).
    std::vector<StatePtr> by_seq_;
    std::uint64_t next_seq_ = 1;
    /// Rotating sweep position (indexes by_seq_ modulo its size).
    std::atomic<std::uint64_t> sweep_cursor_{0};

    /// Guards the journal engine handle, sequence and fail latch.
    mutable std::mutex journal_mu_;
    std::shared_ptr<engine::LogEngine> journal_;  // null = volatile VM
    std::uint64_t journal_seq_ = 0;
    bool replaying_ = false;
    /// Latched on the first journal write failure: the op that failed is
    /// applied in memory but not journaled, so allowing later ops to
    /// journal would leave a gap replay cannot bridge. All further
    /// mutations throw instead; a restart recovers the journaled prefix.
    bool journal_failed_ = false;

    Counter assigns_;
    Counter commits_;
    Counter aborts_;
    Counter publishes_;
    Gauge publish_backlog_;
    /// Registry bindings; declared last so they unbind before the
    /// counters above destruct.
    MetricsGroup metrics_;
};

}  // namespace blobseer::version
