/// \file version_manager.hpp
/// \brief The version manager: the only serialization point of BlobSeer.
///
/// Paper §I-B.2: "A central version manager is responsible of assigning
/// versions to writes and appends and exposing these versions to reads in
/// such way as to ensure consistency."
///
/// The design keeps the serialized step tiny: an assign() is a few dozen
/// bytes of bookkeeping — everything heavy (chunk upload, tree
/// construction) happens before and after, fully in parallel across
/// writers. Versions become visible to readers strictly in assignment
/// order (commit() merely marks completion; publication advances through
/// the contiguous committed prefix), which is what makes all operations
/// linearizable: a write linearizes at its assign, a read at its
/// version-resolution query.
///
/// Fault handling: a writer that dies between assign and commit blocks
/// publication. abort_stalled() implements the documented recovery policy:
/// the oldest stalled version and every version assigned after it are
/// aborted (later versions may have woven references into the dead
/// version's never-written metadata, so the whole tail must go), and the
/// blob's running size is rolled back.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "meta/tree_builder.hpp"
#include "meta/write_descriptor.hpp"

namespace blobseer::engine {
class LogEngine;
}  // namespace blobseer::engine

namespace blobseer::version {

/// Immutable per-blob parameters fixed at creation.
struct BlobInfo {
    BlobId id = kInvalidBlob;
    std::uint64_t chunk_size = 0;
    std::uint32_t replication = 1;
};

enum class VersionStatus : std::uint8_t {
    kPending,    ///< assigned, writer still working
    kCommitted,  ///< writer finished, waiting for in-order publication
    kPublished,  ///< visible to readers
    kAborted,    ///< writer declared dead; snapshot unreadable forever
    kRetired,    ///< old snapshot garbage-collected (storage reclaimed)
};

[[nodiscard]] inline const char* to_string(VersionStatus s) noexcept {
    switch (s) {
        case VersionStatus::kPending: return "pending";
        case VersionStatus::kCommitted: return "committed";
        case VersionStatus::kPublished: return "published";
        case VersionStatus::kAborted: return "aborted";
        case VersionStatus::kRetired: return "retired";
    }
    return "?";
}

/// Reply to an assign(): everything a writer needs to build its tree with
/// zero further coordination.
struct AssignResult {
    Version version = 0;
    std::uint64_t offset = 0;  ///< resolved offset (== old size for appends)
    std::uint64_t size_before = 0;
    std::uint64_t size_after = 0;
    /// Latest published tree at assign time (invalid for a fresh blob).
    meta::TreeRef base;
    /// Descriptors of unpublished versions in (base, version), ascending.
    std::vector<meta::WriteDescriptor> concurrent;
    std::uint64_t chunk_size = 0;
    std::uint32_t replication = 1;

    /// Wire-size estimate for network charging.
    [[nodiscard]] std::uint64_t serialized_size() const noexcept {
        return 96 + 40 * concurrent.size();
    }
};

/// Reply to a version query.
struct VersionInfo {
    Version version = 0;  ///< resolved (useful when querying kLatestVersion)
    std::uint64_t size = 0;
    VersionStatus status = VersionStatus::kPublished;
    /// Tree to descend for reading this snapshot. For a clone's version 0
    /// this points into the origin blob's tree.
    meta::TreeRef tree;
};

class VersionManager {
  public:
    VersionManager() = default;

    // ---- blob lifecycle --------------------------------------------------

    /// Create a blob. \p chunk_size must be > 0; \p replication >= 1.
    BlobInfo create_blob(std::uint64_t chunk_size, std::uint32_t replication);

    /// O(1) snapshot clone (extension feature; see DESIGN.md): the new
    /// blob's version 0 is an alias of (\p src, \p src_version), which
    /// must be published.
    BlobInfo clone_blob(BlobId src, Version src_version);

    [[nodiscard]] BlobInfo blob_info(BlobId blob) const;

    /// Number of blobs created so far.
    [[nodiscard]] std::size_t blob_count() const;

    // ---- write path -------------------------------------------------------

    /// Assign the next version for a write of \p size bytes at \p offset
    /// (nullopt = append at the current end). Validates the alignment
    /// contract: offset chunk-aligned; a write that ends before the
    /// current blob end must cover whole chunks.
    AssignResult assign(BlobId blob, std::optional<std::uint64_t> offset,
                        std::uint64_t size);

    /// Writer finished storing chunks and metadata for \p v; publish it as
    /// soon as every earlier version is published.
    void commit(BlobId blob, Version v);

    /// Abort \p v and cascade to every later assigned version. Explicit
    /// form of the policy used by abort_stalled (exposed for tests and for
    /// clients that know their write failed).
    void abort(BlobId blob, Version v);

    /// Apply the timeout policy: abort the tail starting at the oldest
    /// pending version older than \p max_age. Returns the number of
    /// versions aborted.
    std::size_t abort_stalled(BlobId blob, Duration max_age);

    // ---- read path ----------------------------------------------------------

    /// Resolve \p v (or kLatestVersion) to snapshot info. Reading an
    /// unpublished version is allowed to *query* (status says pending);
    /// actually descending its tree before publication is a protocol
    /// violation the client library never commits.
    [[nodiscard]] VersionInfo get_version(BlobId blob, Version v) const;

    /// Latest published version number (0 = nothing published yet).
    [[nodiscard]] Version latest(BlobId blob) const;

    /// Block until \p v is published or aborted. Returns its final info.
    /// Throws TimeoutError after \p timeout.
    VersionInfo wait_published(BlobId blob, Version v, Duration timeout) const;

    /// Descriptor of an assigned version (GC and introspection).
    [[nodiscard]] meta::WriteDescriptor descriptor_of(BlobId blob,
                                                      Version v) const;

    // ---- history, pinning & retirement ----------------------------------

    /// Summary of one version for history listings.
    struct VersionSummary {
        Version version = 0;
        VersionStatus status = VersionStatus::kPending;
        std::uint64_t offset = 0;
        std::uint64_t size = 0;
        std::uint64_t size_after = 0;
    };

    /// Versions in [from, to] (clamped to what exists), ascending.
    [[nodiscard]] std::vector<VersionSummary> history(BlobId blob,
                                                      Version from,
                                                      Version to) const;

    /// Pin a published snapshot: it survives retirement (clones pin their
    /// origin automatically).
    void pin(BlobId blob, Version v);
    void unpin(BlobId blob, Version v);
    [[nodiscard]] std::vector<Version> pinned(BlobId blob) const;

    /// Everything a client needs to physically reclaim retired versions'
    /// storage (see retire()).
    struct RetireInfo {
        /// Versions whose status just flipped to kRetired.
        std::vector<Version> retired;
        /// Descriptors of every non-aborted version <= keep_from
        /// (retired + survivors), ascending — enough to decide which
        /// nodes/chunks lost their last reader.
        std::vector<meta::WriteDescriptor> descriptors;
        /// Pinned versions <= keep_from (they still read the old data).
        std::vector<Version> pinned;
        std::uint64_t keep_from = 0;
    };

    /// Retire every unpinned published version < \p keep_from.
    /// \p keep_from must itself be published. Reading a retired version
    /// throws; reads of keep_from and newer (and of pinned snapshots)
    /// are unaffected. The caller is responsible for the physical
    /// deletion pass (core::BlobSeerClient::reclaim_retired).
    RetireInfo retire(BlobId blob, Version keep_from);

    // ---- durability ------------------------------------------------------

    /// Make this version manager durable: replay the operation journal
    /// stored in \p journal (every prior session's state), then record
    /// every subsequent state-changing operation into it. The journal
    /// engine must have background compaction disabled (replay depends on
    /// append order) — core::Cluster configures this when
    /// ClusterConfig::durable_version_manager is set. Call before any
    /// concurrent use; throws ConsistencyError on a corrupt journal.
    void attach_journal(std::shared_ptr<engine::LogEngine> journal);

    // ---- stats ---------------------------------------------------------------

    [[nodiscard]] std::uint64_t assigns() const { return assigns_.get(); }
    [[nodiscard]] std::uint64_t commits() const { return commits_.get(); }
    [[nodiscard]] std::uint64_t aborts() const { return aborts_.get(); }

  private:
    struct VersionRecord {
        meta::WriteDescriptor desc;
        VersionStatus status = VersionStatus::kPending;
        TimePoint assigned_at;
    };

    struct BlobState {
        BlobInfo info;
        /// Valid for clones: the aliased snapshot backing version 0.
        meta::TreeRef origin;
        std::uint64_t v0_size = 0;
        std::uint64_t size = 0;       ///< running size over assigned versions
        Version max_assigned = 0;
        Version published = 0;        ///< highest version visible to readers
        Version pub_cursor = 0;       ///< in-order publication scan position
        /// records[v-1] describes version v.
        std::vector<VersionRecord> records;
        /// Snapshots protected from retirement (explicit pins and clone
        /// origins).
        std::set<Version> pinned;
    };

    [[nodiscard]] const BlobState& state_of(BlobId blob) const;
    [[nodiscard]] BlobState& state_of(BlobId blob);

    /// Advance the publication cursor through committed/aborted records.
    /// Caller holds mu_.
    void advance_publication(BlobState& b);

    /// Abort the tail starting at version \p v. Caller holds mu_.
    std::size_t abort_tail(BlobState& b, Version v);

    /// Base tree of the latest published snapshot. Caller holds mu_.
    [[nodiscard]] meta::TreeRef published_base(const BlobState& b) const;

    [[nodiscard]] std::uint64_t size_of_version(const BlobState& b,
                                                Version v) const;

    /// Append one operation record to the journal (no-op when detached or
    /// replaying). Caller holds mu_ — journal order must match the order
    /// operations were applied in.
    void journal_append(std::uint8_t op,
                        std::initializer_list<std::uint64_t> args);

    /// journal_append for publication-advancing ops (commit/abort): on
    /// failure, wakes wait_published() blockers before rethrowing.
    void journal_append_waking(std::uint8_t op,
                               std::initializer_list<std::uint64_t> args);

    /// Re-execute one journaled operation during attach_journal replay.
    void apply_journal_op(ConstBytes value);

    mutable std::mutex mu_;  // guards blobs_ and every BlobState
    mutable std::condition_variable publish_cv_;
    std::unordered_map<BlobId, BlobState> blobs_;
    BlobId next_blob_ = 1;

    std::shared_ptr<engine::LogEngine> journal_;  // null = volatile VM
    std::uint64_t journal_seq_ = 0;
    bool replaying_ = false;
    /// Latched on the first journal write failure: the op that failed is
    /// applied in memory but not journaled, so allowing later ops to
    /// journal would leave a gap replay cannot bridge. All further
    /// mutations throw instead; a restart recovers the journaled prefix.
    bool journal_failed_ = false;

    Counter assigns_;
    Counter commits_;
    Counter aborts_;
};

}  // namespace blobseer::version
