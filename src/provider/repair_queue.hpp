/// \file repair_queue.hpp
/// \brief Persistent FIFO of chunks awaiting re-replication.
///
/// The provider manager enqueues a key whenever a membership event drops
/// its live replica count below target; the repair worker drains the
/// queue. Three properties matter (DESIGN.md §12.3):
///
///  * dedup — a key is never queued twice concurrently. A provider flap
///    (dead, repaired, dead again before the beat timeout) re-enqueues
///    at most one repair, and the worker's converged-check makes the
///    extra pass a no-op.
///  * deferral — when repair is impossible right now (no live holder,
///    or no live non-holder to copy to) the key parks in a deferred set
///    instead of spinning through the FIFO; the next provider join
///    re-arms every deferred key.
///  * persistence — with a journal attached, the pending+deferred set
///    survives a manager restart: enqueues append a P record, completed
///    or cancelled repairs a D record, and open() replays P−D. Repair
///    work is idempotent (providers store puts idempotently and CAS
///    check-before-push skips present chunks), so replaying a record
///    whose repair already finished costs one no-op pass — the journal
///    therefore needs no fsync-per-record discipline, and a torn tail
///    record is simply ignored.
///
/// Not thread-safe by itself: the owning ProviderManager serializes all
/// access under its membership mutex.

#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>

#include "chunk/chunk_key.hpp"
#include "common/error.hpp"

namespace blobseer::provider {

class RepairQueue {
  public:
    struct Counters {
        std::uint64_t enqueued = 0;   ///< keys ever admitted
        std::uint64_t completed = 0;  ///< repairs that copied bytes
        std::uint64_t skipped = 0;    ///< already converged on inspection
        std::uint64_t failed = 0;     ///< repair attempts that errored
        std::uint64_t deferred = 0;   ///< parks for want of peers
        std::uint64_t high_water = 0; ///< max pending+deferred
    };

    RepairQueue() = default;

    /// Attach the journal at \p path, replaying any surviving records
    /// into the pending set, then compact it (rewrite P records for the
    /// survivors only).
    explicit RepairQueue(const std::string& path) : path_(path) {
        replay();
        compact();
    }

    ~RepairQueue() {
        if (journal_ != nullptr) {
            std::fclose(journal_);
        }
    }

    RepairQueue(const RepairQueue&) = delete;
    RepairQueue& operator=(const RepairQueue&) = delete;

    /// Admit \p key unless it is already pending or deferred. Returns
    /// true when the key was newly queued.
    bool enqueue(const chunk::ChunkKey& key) {
        if (!members_.insert(key).second) {
            return false;
        }
        fifo_.push_back(key);
        ++counters_.enqueued;
        note_high_water();
        append('P', key);
        return true;
    }

    /// Next key to repair, or nullopt when the FIFO is empty (deferred
    /// keys are not eligible until rearm_deferred()).
    [[nodiscard]] std::optional<chunk::ChunkKey> pop() {
        if (fifo_.empty()) {
            return std::nullopt;
        }
        const chunk::ChunkKey key = fifo_.front();
        fifo_.pop_front();
        return key;
    }

    /// The popped key was repaired (or found converged / obsolete):
    /// retire it. \p copied distinguishes the completed counter from
    /// the skipped one.
    void finish(const chunk::ChunkKey& key, bool copied) {
        members_.erase(key);
        (copied ? counters_.completed : counters_.skipped) += 1;
        append('D', key);
    }

    /// The popped key cannot be repaired right now: park it. It stays a
    /// member (dedup holds) but leaves the FIFO until rearm_deferred().
    void defer(const chunk::ChunkKey& key) {
        deferred_.insert(key);
        ++counters_.deferred;
    }

    /// Record a failed attempt and requeue the key at the back.
    void retry(const chunk::ChunkKey& key) {
        ++counters_.failed;
        fifo_.push_back(key);
    }

    /// Move every deferred key back onto the FIFO (a provider joined:
    /// repairs that lacked peers may now succeed).
    std::size_t rearm_deferred() {
        const std::size_t n = deferred_.size();
        for (const chunk::ChunkKey& key : deferred_) {
            fifo_.push_back(key);
        }
        deferred_.clear();
        note_high_water();
        return n;
    }

    [[nodiscard]] std::size_t backlog() const {
        return fifo_.size() + deferred_.size();
    }
    [[nodiscard]] std::size_t fifo_size() const { return fifo_.size(); }
    [[nodiscard]] std::size_t deferred_size() const {
        return deferred_.size();
    }
    [[nodiscard]] bool contains(const chunk::ChunkKey& key) const {
        return members_.contains(key);
    }
    [[nodiscard]] const Counters& counters() const { return counters_; }

  private:
    void note_high_water() {
        counters_.high_water =
            std::max<std::uint64_t>(counters_.high_water, backlog());
    }

    void append(char record, const chunk::ChunkKey& key) {
        if (journal_ == nullptr) {
            return;
        }
        std::fprintf(journal_, "%c %u %llu %llu\n", record,
                     static_cast<unsigned>(key.kind),
                     static_cast<unsigned long long>(key.blob),
                     static_cast<unsigned long long>(key.uid));
        std::fflush(journal_);
    }

    void replay() {
        std::FILE* in = std::fopen(path_.c_str(), "r");
        if (in == nullptr) {
            return;  // fresh deployment: no journal yet
        }
        char record = 0;
        unsigned kind = 0;
        unsigned long long blob = 0;
        unsigned long long uid = 0;
        while (std::fscanf(in, " %c %u %llu %llu", &record, &kind, &blob,
                           &uid) == 4) {
            if (kind >
                static_cast<unsigned>(chunk::ChunkKey::Kind::kContent)) {
                continue;  // torn or corrupt record
            }
            chunk::ChunkKey key;
            key.kind = static_cast<chunk::ChunkKey::Kind>(kind);
            key.blob = blob;
            key.uid = uid;
            if (record == 'P') {
                if (members_.insert(key).second) {
                    fifo_.push_back(key);
                }
            } else if (record == 'D') {
                if (members_.erase(key) != 0) {
                    std::erase(fifo_, key);
                }
            }
        }
        std::fclose(in);
        note_high_water();
    }

    void compact() {
        const std::string tmp = path_ + ".tmp";
        std::FILE* out = std::fopen(tmp.c_str(), "w");
        if (out == nullptr) {
            throw Error("repair journal: cannot write " + tmp);
        }
        for (const chunk::ChunkKey& key : fifo_) {
            std::fprintf(out, "P %u %llu %llu\n",
                         static_cast<unsigned>(key.kind),
                         static_cast<unsigned long long>(key.blob),
                         static_cast<unsigned long long>(key.uid));
        }
        std::fclose(out);
        if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
            throw Error("repair journal: cannot replace " + path_);
        }
        journal_ = std::fopen(path_.c_str(), "a");
        if (journal_ == nullptr) {
            throw Error("repair journal: cannot append to " + path_);
        }
    }

    std::string path_;
    std::FILE* journal_ = nullptr;
    std::deque<chunk::ChunkKey> fifo_;
    std::unordered_set<chunk::ChunkKey, chunk::ChunkKeyHash> members_;
    std::unordered_set<chunk::ChunkKey, chunk::ChunkKeyHash> deferred_;
    Counters counters_;
};

}  // namespace blobseer::provider
