/// \file location_index.hpp
/// \brief Chunk-to-provider location index kept by the provider manager.
///
/// The paper's provider manager only places chunks; repair (DESIGN.md
/// §12) additionally needs to answer "which chunks lived on the provider
/// that just died, and who else holds them?". This index is that reverse
/// map: providers report their holdings (full inventory at announce,
/// incremental deltas on every heartbeat; in-process clusters feed it
/// synchronously through a DataProvider observer), and the manager
/// consults it when a death or join changes the replica count of a key.
///
/// Per key it tracks the holder set, the payload size (so repair can
/// account bytes) and a *target* replica count: the high-water mark of
/// holders ever observed, floored by the deployment's default
/// replication. The high-water rule makes the target self-calibrating —
/// a chunk written with replication 3 wants 3 live copies even though
/// the index never saw the write's placement plan — while the floor
/// lets chunks written during an outage (which never reached full fanout)
/// still be repaired up to policy once capacity returns.
///
/// Not thread-safe by itself: the owning ProviderManager serializes all
/// access under its membership mutex.

#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chunk/chunk_key.hpp"
#include "common/types.hpp"

namespace blobseer::provider {

/// One inventory entry as reported by a provider: a key it holds and the
/// payload size. Travels on the wire in kProviderAnnounce/kProviderBeat.
struct ChunkHolding {
    chunk::ChunkKey key{};
    std::uint64_t bytes = 0;

    friend bool operator==(const ChunkHolding&,
                           const ChunkHolding&) = default;
};

class LocationIndex {
  public:
    /// Record that \p node holds \p key (\p bytes payload). Raises the
    /// key's target to the current holder count when that sets a new
    /// high-water mark AND every holder passes \p alive — a copy that
    /// merely compensates for a dead holder (a repair landing, observed
    /// through a provider's inventory) is not new fanout, and counting
    /// it would ratchet the target up on every repair.
    template <typename AliveFn>
    void note_stored(const chunk::ChunkKey& key, NodeId node,
                     std::uint64_t bytes, AliveFn&& alive) {
        Entry& e = entries_[key];
        if (bytes != 0) {
            e.bytes = bytes;
        }
        if (e.holders.insert(node).second) {
            by_node_[node].insert(key);
            if (e.holders.size() > e.target &&
                std::all_of(e.holders.begin(), e.holders.end(), alive)) {
                e.target = e.holders.size();
            }
        }
    }

    void note_stored(const chunk::ChunkKey& key, NodeId node,
                     std::uint64_t bytes) {
        note_stored(key, node, bytes, [](NodeId) { return true; });
    }

    /// Record a repair copy landing on \p node. Unlike note_stored this
    /// never raises the key's target: a dead holder still counts in the
    /// holder set, so a repair that restores the live count would
    /// otherwise bump the high-water mark and leave the key permanently
    /// "under-replicated" (a moving goalpost).
    void note_repaired(const chunk::ChunkKey& key, NodeId node,
                       std::uint64_t bytes) {
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
            return;  // key vanished (GC'd) while the repair was in flight
        }
        if (bytes != 0) {
            it->second.bytes = bytes;
        }
        if (it->second.holders.insert(node).second) {
            by_node_[node].insert(key);
        }
    }

    /// Record that \p node no longer holds \p key (GC, erase, data
    /// loss). Deliberate removals also lower the target — a chunk whose
    /// last references were dropped must not be resurrected by repair.
    void note_removed(const chunk::ChunkKey& key, NodeId node) {
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
            return;
        }
        if (it->second.holders.erase(node) != 0) {
            if (const auto bn = by_node_.find(node); bn != by_node_.end()) {
                bn->second.erase(key);
            }
            if (it->second.target > it->second.holders.size()) {
                --it->second.target;
            }
        }
        if (it->second.holders.empty()) {
            entries_.erase(it);
        }
    }

    /// Forget every holding of \p node without touching targets — the
    /// node lost its data (crash with volatile store); the gap is what
    /// repair closes.
    void drop_node(NodeId node) {
        const auto bn = by_node_.find(node);
        if (bn == by_node_.end()) {
            return;
        }
        for (const chunk::ChunkKey& key : bn->second) {
            const auto it = entries_.find(key);
            if (it == entries_.end()) {
                continue;
            }
            it->second.holders.erase(node);
            if (it->second.holders.empty()) {
                entries_.erase(it);
            }
        }
        by_node_.erase(bn);
    }

    /// Keys currently attributed to \p node (copied: callers iterate
    /// while mutating the index).
    [[nodiscard]] std::vector<chunk::ChunkKey> keys_of(NodeId node) const {
        const auto bn = by_node_.find(node);
        if (bn == by_node_.end()) {
            return {};
        }
        return {bn->second.begin(), bn->second.end()};
    }

    /// All holders of \p key (alive or not — liveness is the manager's
    /// call).
    [[nodiscard]] std::vector<NodeId> holders(
        const chunk::ChunkKey& key) const {
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
            return {};
        }
        return {it->second.holders.begin(), it->second.holders.end()};
    }

    [[nodiscard]] std::uint64_t bytes_of(const chunk::ChunkKey& key) const {
        const auto it = entries_.find(key);
        return it == entries_.end() ? 0 : it->second.bytes;
    }

    /// Desired live replica count for \p key: max(high-water holders,
    /// floor). Zero for unknown keys.
    [[nodiscard]] std::size_t target(const chunk::ChunkKey& key,
                                     std::size_t floor) const {
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
            return 0;
        }
        return std::max<std::size_t>(it->second.target, floor);
    }

    [[nodiscard]] std::size_t chunk_count() const {
        return entries_.size();
    }

    [[nodiscard]] std::size_t holdings_of(NodeId node) const {
        const auto bn = by_node_.find(node);
        return bn == by_node_.end() ? 0 : bn->second.size();
    }

    [[nodiscard]] std::uint64_t bytes_held_by(NodeId node) const {
        std::uint64_t total = 0;
        if (const auto bn = by_node_.find(node); bn != by_node_.end()) {
            for (const chunk::ChunkKey& key : bn->second) {
                total += bytes_of(key);
            }
        }
        return total;
    }

    /// Visit every key whose live-holder count (as judged by \p alive)
    /// is below its target. Used for the full scans on provider join
    /// and for the under-replicated gauge.
    template <typename AliveFn, typename Visit>
    void scan_under_replicated(std::size_t floor, AliveFn&& alive,
                               Visit&& visit) const {
        for (const auto& [key, e] : entries_) {
            std::size_t live = 0;
            for (const NodeId n : e.holders) {
                live += alive(n) ? 1 : 0;
            }
            const std::size_t want =
                std::max<std::size_t>(e.target, floor);
            if (live < want) {
                visit(key, live, want);
            }
        }
    }

  private:
    struct Entry {
        std::unordered_set<NodeId> holders;
        std::uint64_t bytes = 0;
        std::size_t target = 0;  // high-water holder count
    };

    std::unordered_map<chunk::ChunkKey, Entry, chunk::ChunkKeyHash>
        entries_;
    std::unordered_map<NodeId,
                       std::unordered_set<chunk::ChunkKey,
                                          chunk::ChunkKeyHash>>
        by_node_;
};

}  // namespace blobseer::provider
