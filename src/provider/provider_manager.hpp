/// \file provider_manager.hpp
/// \brief The provider manager: decides where chunks go.
///
/// Paper §I-B.2: "a provider manager decides which chunks are stored on
/// which data providers when writes or appends are issued" and §I-B.3:
/// "A configurable chunk distribution strategy is employed ... (for
/// example, round-robin can be used to achieve load-balancing)."
///
/// Three strategies are provided; all of them honor liveness and the QoS
/// health feedback of §IV-E (a provider classified as "dangerous" by the
/// behaviour model is deprioritized until it recovers).

#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace blobseer::provider {

enum class PlacementStrategy : std::uint8_t {
    kRoundRobin,  ///< even spread; the paper's load-balancing default
    kRandom,      ///< uniform random (baseline for ablations)
    kLoadAware,   ///< least-assigned-bytes first
};

[[nodiscard]] inline const char* to_string(PlacementStrategy s) noexcept {
    switch (s) {
        case PlacementStrategy::kRoundRobin: return "round-robin";
        case PlacementStrategy::kRandom: return "random";
        case PlacementStrategy::kLoadAware: return "load-aware";
    }
    return "?";
}

/// Replica targets for each chunk of one write: plan[i] lists the
/// providers that must receive chunk i (distinct nodes, size = min(
/// replication, live providers)).
using PlacementPlan = std::vector<std::vector<NodeId>>;

class ProviderManager {
  public:
    explicit ProviderManager(PlacementStrategy strategy,
                             std::uint64_t seed = 42)
        : strategy_(strategy), rng_(seed) {}

    /// Register a data provider node.
    void register_provider(NodeId node) {
        const std::scoped_lock lock(mu_);
        entries_.push_back(Entry{node});
    }

    [[nodiscard]] std::size_t provider_count() const {
        const std::scoped_lock lock(mu_);
        return entries_.size();
    }

    /// Plan placement of \p n_chunks chunks of \p chunk_bytes each with
    /// the given replication factor. Throws RpcError when no live,
    /// healthy provider exists.
    [[nodiscard]] PlacementPlan place(std::uint64_t n_chunks,
                                      std::uint32_t replication,
                                      std::uint64_t chunk_bytes) {
        const std::scoped_lock lock(mu_);
        std::vector<std::size_t> eligible;
        eligible.reserve(entries_.size());
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].alive && entries_[i].health >= min_health_) {
                eligible.push_back(i);
            }
        }
        if (eligible.empty()) {
            // Degraded fallback: prefer an unhealthy-but-live provider
            // over failing the write outright.
            for (std::size_t i = 0; i < entries_.size(); ++i) {
                if (entries_[i].alive) {
                    eligible.push_back(i);
                }
            }
        }
        if (eligible.empty()) {
            throw RpcError("no live data providers");
        }
        const std::uint32_t copies = static_cast<std::uint32_t>(std::min<
            std::size_t>(replication, eligible.size()));

        PlacementPlan plan(n_chunks);
        for (auto& targets : plan) {
            targets = pick(eligible, copies, chunk_bytes);
        }
        placements_.add(n_chunks);
        return plan;
    }

    // ---- liveness & QoS feedback ---------------------------------------

    void mark_dead(NodeId node) { set_alive(node, false); }
    void mark_alive(NodeId node) { set_alive(node, true); }

    [[nodiscard]] bool is_alive(NodeId node) const {
        const std::scoped_lock lock(mu_);
        return entry_of(node).alive;
    }

    /// QoS feedback (paper §IV-E): health in [0,1]; providers below the
    /// eligibility threshold are avoided by placement until they recover.
    void set_health(NodeId node, double health) {
        const std::scoped_lock lock(mu_);
        entry_of(node).health = std::clamp(health, 0.0, 1.0);
    }

    [[nodiscard]] double health(NodeId node) const {
        const std::scoped_lock lock(mu_);
        return entry_of(node).health;
    }

    /// Bytes this manager has routed to \p node so far (the load signal
    /// the load-aware strategy balances).
    [[nodiscard]] std::uint64_t assigned_bytes(NodeId node) const {
        const std::scoped_lock lock(mu_);
        return entry_of(node).assigned_bytes;
    }

    [[nodiscard]] std::uint64_t placements() const {
        return placements_.get();
    }

    [[nodiscard]] PlacementStrategy strategy() const noexcept {
        return strategy_;
    }

  private:
    struct Entry {
        NodeId node = kInvalidNode;
        std::uint64_t assigned_bytes = 0;
        bool alive = true;
        double health = 1.0;
    };

    void set_alive(NodeId node, bool alive) {
        const std::scoped_lock lock(mu_);
        entry_of(node).alive = alive;
    }

    [[nodiscard]] Entry& entry_of(NodeId node) {
        for (auto& e : entries_) {
            if (e.node == node) {
                return e;
            }
        }
        throw NotFoundError("provider " + std::to_string(node));
    }

    [[nodiscard]] const Entry& entry_of(NodeId node) const {
        return const_cast<ProviderManager*>(this)->entry_of(node);
    }

    /// Pick \p copies distinct providers from \p eligible. Caller holds
    /// mu_.
    [[nodiscard]] std::vector<NodeId> pick(
        const std::vector<std::size_t>& eligible, std::uint32_t copies,
        std::uint64_t chunk_bytes) {
        std::vector<std::size_t> chosen;
        chosen.reserve(copies);
        switch (strategy_) {
            case PlacementStrategy::kRoundRobin:
                for (std::uint32_t k = 0; k < copies; ++k) {
                    chosen.push_back(
                        eligible[(rr_next_ + k) % eligible.size()]);
                }
                ++rr_next_;
                break;

            case PlacementStrategy::kRandom:
                while (chosen.size() < copies) {
                    const std::size_t c =
                        eligible[rng_.below(eligible.size())];
                    if (std::find(chosen.begin(), chosen.end(), c) ==
                        chosen.end()) {
                        chosen.push_back(c);
                    }
                }
                break;

            case PlacementStrategy::kLoadAware: {
                std::vector<std::size_t> sorted = eligible;
                std::sort(sorted.begin(), sorted.end(),
                          [this](std::size_t a, std::size_t b) {
                              return entries_[a].assigned_bytes <
                                     entries_[b].assigned_bytes;
                          });
                for (std::uint32_t k = 0; k < copies; ++k) {
                    chosen.push_back(sorted[k]);
                }
                break;
            }
        }
        std::vector<NodeId> out;
        out.reserve(chosen.size());
        for (const std::size_t idx : chosen) {
            entries_[idx].assigned_bytes += chunk_bytes;
            out.push_back(entries_[idx].node);
        }
        return out;
    }

    const PlacementStrategy strategy_;
    const double min_health_ = 0.25;

    mutable std::mutex mu_;  // guards entries_, rr_next_, rng_
    std::vector<Entry> entries_;
    std::size_t rr_next_ = 0;
    Rng rng_;

    Counter placements_;
};

}  // namespace blobseer::provider
