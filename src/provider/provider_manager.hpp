/// \file provider_manager.hpp
/// \brief The provider manager: decides where chunks go and keeps them
///        replicated.
///
/// Paper §I-B.2: "a provider manager decides which chunks are stored on
/// which data providers when writes or appends are issued" and §I-B.3:
/// "A configurable chunk distribution strategy is employed ... (for
/// example, round-robin can be used to achieve load-balancing)."
///
/// Three strategies are provided; all of them honor liveness and the QoS
/// health feedback of §IV-E (a provider classified as "dangerous" by the
/// behaviour model is deprioritized until it recovers).
///
/// Since protocol v6 the manager also runs active membership and repair
/// (DESIGN.md §12): external provider daemons join by name, announce
/// their endpoint + inventory and heartbeat with inventory deltas;
/// missed beats mark them dead, client failure reports are corroborated
/// against recent beats, and every liveness transition feeds a
/// LocationIndex + RepairQueue pair so a RepairWorker can restore the
/// replica count of every affected chunk. All membership state shares
/// one mutex with placement — the operations are tiny relative to the
/// data path they protect.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "provider/location_index.hpp"
#include "provider/repair_queue.hpp"

namespace blobseer::provider {

enum class PlacementStrategy : std::uint8_t {
    kRoundRobin,  ///< even spread; the paper's load-balancing default
    kRandom,      ///< uniform random (baseline for ablations)
    kLoadAware,   ///< least-assigned-bytes first
};

[[nodiscard]] inline const char* to_string(PlacementStrategy s) noexcept {
    switch (s) {
        case PlacementStrategy::kRoundRobin: return "round-robin";
        case PlacementStrategy::kRandom: return "random";
        case PlacementStrategy::kLoadAware: return "load-aware";
    }
    return "?";
}

/// Replica targets for each chunk of one write: plan[i] lists the
/// providers that must receive chunk i (distinct nodes, size = min(
/// replication, live providers)).
using PlacementPlan = std::vector<std::vector<NodeId>>;

/// Per-provider membership snapshot (one row of kRepairStatus).
struct ProviderHealth {
    NodeId node = kInvalidNode;
    bool alive = false;
    /// Provider is expected to heartbeat (an external daemon; in-process
    /// providers are observed synchronously instead).
    bool heartbeating = false;
    std::uint64_t beats = 0;
    /// Milliseconds since the last beat; ~0 when the provider has never
    /// beaten.
    std::uint64_t last_beat_age_ms = ~0ull;
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;

    friend bool operator==(const ProviderHealth&,
                           const ProviderHealth&) = default;
};

/// Repair-subsystem gauges + per-provider membership (kRepairStatus).
struct RepairStatus {
    std::uint64_t backlog = 0;
    std::uint64_t high_water = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t completed = 0;
    std::uint64_t skipped = 0;
    std::uint64_t failed = 0;
    std::uint64_t deferred = 0;
    /// Keys currently below their live-replica target (full index scan).
    std::uint64_t under_replicated = 0;
    std::vector<ProviderHealth> providers;

    friend bool operator==(const RepairStatus&,
                           const RepairStatus&) = default;
};

class ProviderManager {
    /// mu_ held. Liveness predicate for the index's target calibration.
    /// Defined before its call sites: the deduced (lambda) return type
    /// must be known where the inventory paths below use it.
    [[nodiscard]] auto holder_alive() const {
        return [this](NodeId n) {
            const auto* e = find_entry(n);
            return e != nullptr && e->alive;
        };
    }

  public:
    explicit ProviderManager(PlacementStrategy strategy,
                             std::uint64_t seed = 42)
        : strategy_(strategy), rng_(seed) {
        metrics_.counter("pm_placements_total", {}, placements_);
        // Repair gauges are callbacks into the queue under mu_; the
        // registry never runs them while holding mu_ (snapshot takes its
        // own lock first and nothing under mu_ calls the registry), so
        // the order registry-lock -> mu_ is acyclic.
        metrics_.callback("repair_backlog", {}, [this] {
            const std::scoped_lock lock(mu_);
            return queue_->backlog();
        });
        metrics_.callback("repair_enqueued_total", {}, [this] {
            const std::scoped_lock lock(mu_);
            return queue_->counters().enqueued;
        });
        metrics_.callback("repair_completed_total", {}, [this] {
            const std::scoped_lock lock(mu_);
            return queue_->counters().completed;
        });
        metrics_.callback("repair_skipped_total", {}, [this] {
            const std::scoped_lock lock(mu_);
            return queue_->counters().skipped;
        });
        metrics_.callback("repair_failed_total", {}, [this] {
            const std::scoped_lock lock(mu_);
            return queue_->counters().failed;
        });
        metrics_.callback("repair_deferred_total", {}, [this] {
            const std::scoped_lock lock(mu_);
            return queue_->counters().deferred;
        });
        metrics_.callback("pm_providers", {}, [this] {
            const std::scoped_lock lock(mu_);
            return entries_.size();
        });
    }

    /// Register an in-process data provider node (observed
    /// synchronously; never expected to heartbeat).
    void register_provider(NodeId node) {
        const std::scoped_lock lock(mu_);
        Entry e;
        e.node = node;
        entries_.push_back(std::move(e));
    }

    [[nodiscard]] std::size_t provider_count() const {
        const std::scoped_lock lock(mu_);
        return entries_.size();
    }

    /// Plan placement of \p n_chunks chunks of \p chunk_bytes each with
    /// the given replication factor. Throws RpcError when no live,
    /// healthy provider exists.
    [[nodiscard]] PlacementPlan place(std::uint64_t n_chunks,
                                      std::uint32_t replication,
                                      std::uint64_t chunk_bytes) {
        const std::scoped_lock lock(mu_);
        std::vector<std::size_t> eligible;
        eligible.reserve(entries_.size());
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].alive && entries_[i].health >= min_health_) {
                eligible.push_back(i);
            }
        }
        if (eligible.empty()) {
            // Degraded fallback: prefer an unhealthy-but-live provider
            // over failing the write outright.
            for (std::size_t i = 0; i < entries_.size(); ++i) {
                if (entries_[i].alive) {
                    eligible.push_back(i);
                }
            }
        }
        if (eligible.empty()) {
            throw RpcError("no live data providers");
        }
        const std::uint32_t copies = static_cast<std::uint32_t>(std::min<
            std::size_t>(replication, eligible.size()));

        PlacementPlan plan(n_chunks);
        for (auto& targets : plan) {
            targets = pick(eligible, copies, chunk_bytes);
        }
        placements_.add(n_chunks);
        return plan;
    }

    // ---- liveness & QoS feedback ---------------------------------------

    void mark_dead(NodeId node) { set_alive(node, false); }
    void mark_alive(NodeId node) { set_alive(node, true); }

    [[nodiscard]] bool is_alive(NodeId node) const {
        const std::scoped_lock lock(mu_);
        return entry_of(node).alive;
    }

    /// QoS feedback (paper §IV-E): health in [0,1]; providers below the
    /// eligibility threshold are avoided by placement until they recover.
    void set_health(NodeId node, double health) {
        const std::scoped_lock lock(mu_);
        entry_of(node).health = std::clamp(health, 0.0, 1.0);
    }

    [[nodiscard]] double health(NodeId node) const {
        const std::scoped_lock lock(mu_);
        return entry_of(node).health;
    }

    /// Bytes this manager has routed to \p node so far (the load signal
    /// the load-aware strategy balances).
    [[nodiscard]] std::uint64_t assigned_bytes(NodeId node) const {
        const std::scoped_lock lock(mu_);
        return entry_of(node).assigned_bytes;
    }

    [[nodiscard]] std::uint64_t placements() const {
        return placements_.get();
    }

    [[nodiscard]] PlacementStrategy strategy() const noexcept {
        return strategy_;
    }

    // ---- membership (protocol v6) --------------------------------------

    /// Monotonic wall reference for the heartbeat timestamps. Tests pass
    /// explicit times instead (virtual time), so suspicion logic never
    /// depends on real sleeps.
    [[nodiscard]] static std::uint64_t now_ms() {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /// Missed-beat threshold; also the suspicion window within which a
    /// client's failure report is out-voted by a recent heartbeat.
    void set_heartbeat_timeout_ms(std::uint64_t ms) {
        const std::scoped_lock lock(mu_);
        heartbeat_timeout_ms_ = ms;
    }

    struct JoinResult {
        NodeId node = kInvalidNode;
        bool rejoin = false;  ///< the name was seen before
    };

    /// An external provider daemon registers by stable name. Rejoining
    /// under the same name reclaims the same node id, which is what
    /// makes a restart look like a recovery instead of a new node.
    [[nodiscard]] JoinResult join(const std::string& name) {
        const std::scoped_lock lock(mu_);
        for (auto& e : entries_) {
            if (!e.name.empty() && e.name == name) {
                return {e.node, true};
            }
        }
        Entry e;
        e.node = next_external_id_++;
        e.name = name;
        e.alive = false;  // announce() activates it
        e.expected = true;
        entries_.push_back(std::move(e));
        return {entries_.back().node, false};
    }

    /// Endpoint + full-inventory announcement; activates the provider
    /// for placement and triggers the join-side repair scan. Fires the
    /// announce hook (outside the lock) so the deployment can add wire
    /// routes and refresh its advertised topology.
    void announce(NodeId node, const std::string& host, std::uint32_t port,
                  const std::vector<ChunkHolding>& inventory,
                  std::uint64_t at_ms = now_ms()) {
        {
            const std::scoped_lock lock(mu_);
            Entry& e = entry_of(node);
            e.host = host;
            e.port = port;
            e.expected = true;
            e.last_beat_ms = static_cast<std::int64_t>(at_ms);
            // Activate before applying the inventory (the node's own
            // liveness must not suppress target calibration), but run
            // the join-side repair scan after it (holdings count).
            const bool was_dead = !e.alive;
            e.alive = true;
            for (const ChunkHolding& h : inventory) {
                index_.note_stored(h.key, node, h.bytes, holder_alive());
            }
            if (was_dead) {
                handle_join(node);
            }
        }
        std::function<void(NodeId, const std::string&, std::uint32_t)> hook;
        {
            const std::scoped_lock lock(mu_);
            hook = announce_hook_;
        }
        if (hook) {
            hook(node, host, port);
        }
    }

    /// One heartbeat with incremental inventory deltas. Returns false
    /// when the node is unknown (manager restarted: the provider must
    /// re-join). A beat from a provider previously marked dead revives
    /// it — flap handling: the revival runs the same join-side scan,
    /// and queue dedup plus the worker's converged-check make any
    /// overlap with an in-flight repair a no-op.
    [[nodiscard]] bool heartbeat(NodeId node, std::uint64_t seq,
                                 const std::vector<ChunkHolding>& added,
                                 const std::vector<chunk::ChunkKey>& removed,
                                 std::uint64_t at_ms = now_ms()) {
        const std::scoped_lock lock(mu_);
        Entry* e = find_entry(node);
        if (e == nullptr || e->name.empty()) {
            return false;
        }
        e->last_beat_ms = static_cast<std::int64_t>(at_ms);
        e->beat_seq = seq;
        ++e->beats;
        const bool was_dead = !e->alive;
        e->alive = true;
        for (const ChunkHolding& h : added) {
            index_.note_stored(h.key, node, h.bytes, holder_alive());
        }
        for (const chunk::ChunkKey& key : removed) {
            index_.note_removed(key, node);
        }
        if (was_dead) {
            handle_join(node);
        }
        return true;
    }

    /// Sweep for missed beats: every expected provider whose last beat
    /// is older than the timeout is marked dead (with the death-side
    /// repair scan). Returns the newly dead nodes.
    std::vector<NodeId> check_heartbeats(std::uint64_t at_ms = now_ms()) {
        const std::scoped_lock lock(mu_);
        std::vector<NodeId> dead;
        if (heartbeat_timeout_ms_ == 0) {
            return dead;
        }
        for (auto& e : entries_) {
            if (!e.expected || !e.alive || e.last_beat_ms < 0) {
                continue;
            }
            const std::uint64_t last =
                static_cast<std::uint64_t>(e.last_beat_ms);
            if (at_ms > last && at_ms - last > heartbeat_timeout_ms_) {
                e.alive = false;
                handle_death(e.node);
                dead.push_back(e.node);
            }
        }
        return dead;
    }

    /// A client failed to reach \p suspect and reports it. The report is
    /// corroborated against membership: a heartbeating provider whose
    /// last beat is inside the suspicion window out-votes the reporter
    /// (the client likely hit a transient path problem), otherwise the
    /// report marks the provider dead and triggers repair. Providers
    /// that never heartbeat (in-process ones) have no alibi, so a single
    /// report kills them — the pre-v6 mark_dead semantics. Returns true
    /// iff the suspect is (now) considered dead.
    bool report_failure(NodeId suspect, NodeId reporter,
                        std::uint64_t at_ms = now_ms()) {
        (void)reporter;
        const std::scoped_lock lock(mu_);
        Entry* e = find_entry(suspect);
        if (e == nullptr) {
            return false;
        }
        if (!e->alive) {
            return true;  // already dead; repair is underway
        }
        if (e->expected && e->last_beat_ms >= 0 &&
            heartbeat_timeout_ms_ != 0) {
            const std::uint64_t last =
                static_cast<std::uint64_t>(e->last_beat_ms);
            if (at_ms >= last && at_ms - last <= heartbeat_timeout_ms_) {
                return false;  // fresh beat: the provider has an alibi
            }
        }
        e->alive = false;
        handle_death(suspect);
        return true;
    }

    /// Deployment hook fired after every announce (new endpoint joined).
    void set_announce_hook(
        std::function<void(NodeId, const std::string&, std::uint32_t)>
            hook) {
        const std::scoped_lock lock(mu_);
        announce_hook_ = std::move(hook);
    }

    /// Endpoints of every announced external provider (topology v6).
    struct ExternalEndpoint {
        NodeId node = kInvalidNode;
        std::string host;
        std::uint32_t port = 0;
    };
    [[nodiscard]] std::vector<ExternalEndpoint> external_endpoints() const {
        const std::scoped_lock lock(mu_);
        std::vector<ExternalEndpoint> out;
        for (const auto& e : entries_) {
            if (!e.name.empty() && e.port != 0) {
                out.push_back({e.node, e.host, e.port});
            }
        }
        return out;
    }

    // ---- repair --------------------------------------------------------

    /// Minimum live-replica target for every known chunk, regardless of
    /// its observed high-water holder count. Chunks written during an
    /// outage never reach full fanout; the floor lets repair finish the
    /// job once capacity returns.
    void set_repair_floor(std::size_t floor) {
        const std::scoped_lock lock(mu_);
        repair_floor_ = floor;
    }

    /// Persist the pending-repair set across manager restarts. Replays
    /// surviving records into the queue immediately.
    void open_repair_journal(const std::string& path) {
        const std::scoped_lock lock(mu_);
        auto journaled = std::make_unique<RepairQueue>(path);
        // Carry over anything already queued in-memory (normally none:
        // the journal is opened at boot, before membership changes).
        while (const auto key = queue_->pop()) {
            (void)journaled->enqueue(*key);
        }
        queue_ = std::move(journaled);
    }

    /// Inventory observers (in-process providers report synchronously;
    /// the dispatcher's announce/beat handlers call these for daemons).
    void note_chunk_stored(NodeId node, const chunk::ChunkKey& key,
                           std::uint64_t bytes) {
        const std::scoped_lock lock(mu_);
        index_.note_stored(key, node, bytes, holder_alive());
    }
    void note_chunk_removed(NodeId node, const chunk::ChunkKey& key) {
        const std::scoped_lock lock(mu_);
        index_.note_removed(key, node);
    }
    /// The node lost its data (volatile store wiped): forget holdings
    /// but keep targets, so repair knows what to restore.
    void drop_holdings(NodeId node) {
        const std::scoped_lock lock(mu_);
        index_.drop_node(node);
    }

    /// What the repair worker should do about \p key right now.
    struct RepairPlan {
        enum class Action : std::uint8_t {
            kSkip,   ///< converged (or key no longer tracked)
            kDefer,  ///< no live source or no live destination yet
            kCopy,   ///< pull from a source, push to dest
        };
        Action action = Action::kSkip;
        std::vector<NodeId> sources;  ///< live holders, preference order
        NodeId dest = kInvalidNode;
        std::uint64_t bytes = 0;
    };

    [[nodiscard]] std::optional<chunk::ChunkKey> next_repair() {
        const std::scoped_lock lock(mu_);
        return queue_->pop();
    }

    [[nodiscard]] RepairPlan repair_plan(const chunk::ChunkKey& key) const {
        const std::scoped_lock lock(mu_);
        RepairPlan plan;
        const std::size_t want = index_.target(key, repair_floor_);
        if (want == 0) {
            return plan;  // key vanished from the index: nothing to do
        }
        const std::vector<NodeId> holders = index_.holders(key);
        std::vector<NodeId> live;
        for (const NodeId n : holders) {
            const Entry* e = find_entry(n);
            if (e != nullptr && e->alive) {
                live.push_back(n);
            }
        }
        if (live.size() >= want) {
            return plan;  // converged
        }
        if (live.empty()) {
            // Every copy is on dead nodes: deferring keeps the key armed
            // for the holders' rejoin instead of spinning.
            plan.action = RepairPlan::Action::kDefer;
            return plan;
        }
        // Destination: the least-loaded live provider that holds no copy
        // (dead holders excluded too — their copy resurfaces on rejoin).
        NodeId dest = kInvalidNode;
        std::uint64_t dest_load = std::numeric_limits<std::uint64_t>::max();
        for (const auto& e : entries_) {
            if (!e.alive ||
                std::find(holders.begin(), holders.end(), e.node) !=
                    holders.end()) {
                continue;
            }
            const std::uint64_t load = index_.holdings_of(e.node);
            if (load < dest_load) {
                dest_load = load;
                dest = e.node;
            }
        }
        if (dest == kInvalidNode) {
            plan.action = RepairPlan::Action::kDefer;
            return plan;
        }
        plan.action = RepairPlan::Action::kCopy;
        plan.sources = std::move(live);
        plan.dest = dest;
        plan.bytes = index_.bytes_of(key);
        return plan;
    }

    /// One copy landed on \p dest; the worker calls repair_plan again to
    /// see whether the key needs more.
    void note_repaired(const chunk::ChunkKey& key, NodeId dest,
                       std::uint64_t bytes) {
        const std::scoped_lock lock(mu_);
        index_.note_repaired(key, dest, bytes);
    }

    void finish_repair(const chunk::ChunkKey& key, bool copied) {
        const std::scoped_lock lock(mu_);
        queue_->finish(key, copied);
    }
    void defer_repair(const chunk::ChunkKey& key) {
        const std::scoped_lock lock(mu_);
        queue_->defer(key);
    }
    void retry_repair(const chunk::ChunkKey& key) {
        const std::scoped_lock lock(mu_);
        queue_->retry(key);
    }

    [[nodiscard]] std::size_t repair_backlog() const {
        const std::scoped_lock lock(mu_);
        return queue_->backlog();
    }

    [[nodiscard]] RepairStatus repair_status(
        std::uint64_t at_ms = now_ms()) const {
        const std::scoped_lock lock(mu_);
        RepairStatus st;
        st.backlog = queue_->backlog();
        const RepairQueue::Counters& c = queue_->counters();
        st.high_water = c.high_water;
        st.enqueued = c.enqueued;
        st.completed = c.completed;
        st.skipped = c.skipped;
        st.failed = c.failed;
        st.deferred = c.deferred;
        index_.scan_under_replicated(
            repair_floor_,
            [this](NodeId n) {
                const Entry* e = find_entry(n);
                return e != nullptr && e->alive;
            },
            [&st](const chunk::ChunkKey&, std::size_t, std::size_t) {
                ++st.under_replicated;
            });
        st.providers.reserve(entries_.size());
        for (const auto& e : entries_) {
            ProviderHealth h;
            h.node = e.node;
            h.alive = e.alive;
            h.heartbeating = e.expected;
            h.beats = e.beats;
            if (e.last_beat_ms >= 0) {
                const std::uint64_t last =
                    static_cast<std::uint64_t>(e.last_beat_ms);
                h.last_beat_age_ms = at_ms > last ? at_ms - last : 0;
            }
            h.chunks = index_.holdings_of(e.node);
            h.bytes = index_.bytes_held_by(e.node);
            st.providers.push_back(std::move(h));
        }
        return st;
    }

    [[nodiscard]] std::size_t chunk_holdings(NodeId node) const {
        const std::scoped_lock lock(mu_);
        return index_.holdings_of(node);
    }

  private:
    struct Entry {
        NodeId node = kInvalidNode;
        std::uint64_t assigned_bytes = 0;
        bool alive = true;
        double health = 1.0;
        // v6 membership (external daemons only; in-process providers
        // keep the defaults).
        std::string name;
        std::string host;
        std::uint32_t port = 0;
        bool expected = false;        ///< should heartbeat
        std::int64_t last_beat_ms = -1;
        std::uint64_t beat_seq = 0;
        std::uint64_t beats = 0;
    };

    void set_alive(NodeId node, bool alive) {
        const std::scoped_lock lock(mu_);
        Entry& e = entry_of(node);
        if (e.alive == alive) {
            return;
        }
        e.alive = alive;
        // Liveness transitions drive repair no matter who caused them
        // (heartbeat sweep, failure report, or a direct mark_dead).
        if (alive) {
            handle_join(node);
        } else {
            handle_death(node);
        }
    }

    /// mu_ held. A provider died: every key it held whose live count is
    /// now short of target needs repair.
    void handle_death(NodeId node) {
        for (const chunk::ChunkKey& key : index_.keys_of(node)) {
            if (live_holders(key) < index_.target(key, repair_floor_)) {
                (void)queue_->enqueue(key);
            }
        }
    }

    /// mu_ held. A provider (re)joined: deferred repairs get another
    /// chance, and any key still short of target is (re)enqueued — this
    /// is also what rebalances onto the new capacity, since repair_plan
    /// prefers the least-loaded destination.
    void handle_join(NodeId node) {
        (void)node;
        (void)queue_->rearm_deferred();
        index_.scan_under_replicated(
            repair_floor_,
            [this](NodeId n) {
                const Entry* e = find_entry(n);
                return e != nullptr && e->alive;
            },
            [this](const chunk::ChunkKey& key, std::size_t, std::size_t) {
                (void)queue_->enqueue(key);
            });
    }

    /// mu_ held.
    [[nodiscard]] std::size_t live_holders(
        const chunk::ChunkKey& key) const {
        std::size_t live = 0;
        for (const NodeId n : index_.holders(key)) {
            const Entry* e = find_entry(n);
            live += (e != nullptr && e->alive) ? 1 : 0;
        }
        return live;
    }

    [[nodiscard]] Entry* find_entry(NodeId node) {
        for (auto& e : entries_) {
            if (e.node == node) {
                return &e;
            }
        }
        return nullptr;
    }
    [[nodiscard]] const Entry* find_entry(NodeId node) const {
        return const_cast<ProviderManager*>(this)->find_entry(node);
    }

    [[nodiscard]] Entry& entry_of(NodeId node) {
        Entry* e = find_entry(node);
        if (e == nullptr) {
            throw NotFoundError("provider " + std::to_string(node));
        }
        return *e;
    }

    [[nodiscard]] const Entry& entry_of(NodeId node) const {
        return const_cast<ProviderManager*>(this)->entry_of(node);
    }

    /// Pick \p copies distinct providers from \p eligible. Caller holds
    /// mu_.
    [[nodiscard]] std::vector<NodeId> pick(
        const std::vector<std::size_t>& eligible, std::uint32_t copies,
        std::uint64_t chunk_bytes) {
        std::vector<std::size_t> chosen;
        chosen.reserve(copies);
        switch (strategy_) {
            case PlacementStrategy::kRoundRobin:
                for (std::uint32_t k = 0; k < copies; ++k) {
                    chosen.push_back(
                        eligible[(rr_next_ + k) % eligible.size()]);
                }
                ++rr_next_;
                break;

            case PlacementStrategy::kRandom:
                while (chosen.size() < copies) {
                    const std::size_t c =
                        eligible[rng_.below(eligible.size())];
                    if (std::find(chosen.begin(), chosen.end(), c) ==
                        chosen.end()) {
                        chosen.push_back(c);
                    }
                }
                break;

            case PlacementStrategy::kLoadAware: {
                std::vector<std::size_t> sorted = eligible;
                std::sort(sorted.begin(), sorted.end(),
                          [this](std::size_t a, std::size_t b) {
                              return entries_[a].assigned_bytes <
                                     entries_[b].assigned_bytes;
                          });
                for (std::uint32_t k = 0; k < copies; ++k) {
                    chosen.push_back(sorted[k]);
                }
                break;
            }
        }
        std::vector<NodeId> out;
        out.reserve(chosen.size());
        for (const std::size_t idx : chosen) {
            entries_[idx].assigned_bytes += chunk_bytes;
            out.push_back(entries_[idx].node);
        }
        return out;
    }

    const PlacementStrategy strategy_;
    const double min_health_ = 0.25;

    mutable std::mutex mu_;  // guards entries_, rr_next_, rng_,
                             // index_, queue_, membership knobs
    std::vector<Entry> entries_;
    std::size_t rr_next_ = 0;
    Rng rng_;

    Counter placements_;

    // v6 membership + repair
    std::uint64_t heartbeat_timeout_ms_ = 0;  // 0 = sweeps disabled
    /// External provider ids mint from 2^21: above every simulated node
    /// id, disjoint from the dispatcher's remote-client base (2^20) for
    /// the first ~1M handshakes, and still inside the 24-bit uid space.
    NodeId next_external_id_ = 1u << 21;
    std::function<void(NodeId, const std::string&, std::uint32_t)>
        announce_hook_;
    LocationIndex index_;
    std::unique_ptr<RepairQueue> queue_ = std::make_unique<RepairQueue>();
    std::size_t repair_floor_ = 1;
    /// Registry bindings; declared last so they unbind before the state
    /// the callbacks sample.
    MetricsGroup metrics_;
};

}  // namespace blobseer::provider
