/// \file data_provider.hpp
/// \brief Data-provider service: stores and serves chunks.
///
/// Paper §I-B.2: "Each blob is made up of fixed-sized chunks that are
/// distributed among data providers." The provider is deliberately dumb —
/// all intelligence (placement, replication, metadata) lives elsewhere —
/// which is what lets BlobSeer aggregate storage from many cheap nodes
/// with minimal overhead.
///
/// The service object is thread-safe; the simulated network invokes its
/// methods on client threads after charging transfer costs.

#pragma once

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cas/sha256.hpp"
#include "chunk/ram_store.hpp"
#include "chunk/store.hpp"
#include "chunk/two_tier_store.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "provider/location_index.hpp"

namespace blobseer::provider {

class DataProvider {
  public:
    /// Per-boot dedup/GC observability (mirrors ServiceStats semantics:
    /// counters start at zero each boot, the store snapshots are live).
    struct DedupStatus {
        std::uint64_t chunks_stored = 0;  ///< store record count (live)
        std::uint64_t stored_bytes = 0;   ///< store payload bytes (live)
        std::uint64_t check_hits = 0;
        std::uint64_t check_misses = 0;
        std::uint64_t bytes_skipped = 0;  ///< transfer+store suppressed
        std::uint64_t dup_puts = 0;       ///< pushes that landed on a dup
        std::uint64_t decrefs = 0;
        std::uint64_t reclaimed_chunks = 0;
        std::uint64_t reclaimed_bytes = 0;
    };

    DataProvider(NodeId node, std::unique_ptr<chunk::ChunkStore> store)
        : node_(node), store_(std::move(store)) {
        const MetricLabels labels{{"service", "data-provider"},
                                  {"node", std::to_string(node_)}};
        bind_service_stats(metrics_, stats_, labels);
        metrics_.meter("provider_read_bytes", labels, read_meter_);
        metrics_.meter("provider_write_bytes", labels, write_meter_);
        metrics_.counter("dedup_check_hits_total", labels, check_hits_);
        metrics_.counter("dedup_check_misses_total", labels, check_misses_);
        metrics_.counter("dedup_bytes_skipped_total", labels, bytes_skipped_);
        metrics_.counter("dedup_dup_puts_total", labels, dup_puts_);
        metrics_.counter("cas_decrefs_total", labels, decrefs_);
        metrics_.counter("cas_reclaimed_chunks_total", labels,
                         reclaimed_chunks_);
        metrics_.counter("cas_reclaimed_bytes_total", labels,
                         reclaimed_bytes_);
        // Live store occupancy: ChunkStore serializes internally, the
        // callbacks are snapshot-time only.
        metrics_.callback("provider_chunks_stored", labels,
                          [this] { return store_->count(); });
        metrics_.callback("provider_stored_bytes", labels,
                          [this] { return store_->bytes(); });
    }

    [[nodiscard]] NodeId node() const noexcept { return node_; }

    /// Store one chunk replica. Idempotent (chunks are immutable).
    /// Content keys are reference-counted: a put that lands on an
    /// already-present chunk records the new reference instead of
    /// storing a second copy (two clients racing the same content both
    /// hold a real reference).
    void put_chunk(const chunk::ChunkKey& key, chunk::ChunkData data) {
        const std::uint64_t n = data->size();
        if (key.is_content()) {
            store_dedup(key, std::move(data));
        } else {
            const bool fresh = !store_->contains(key);
            store_->put(key, std::move(data));
            if (fresh) {
                note_stored(key, n);
            }
        }
        stats_.ops.add();
        stats_.bytes_in.add(n);
        write_meter_.record(n);
    }

    /// Serve one chunk. Throws NotFoundError if this replica is missing
    /// (the client fails over to another replica).
    [[nodiscard]] chunk::ChunkData get_chunk(const chunk::ChunkKey& key) {
        auto data = store_->get(key);
        stats_.ops.add();
        if (!data) {
            stats_.errors.add();
            throw NotFoundError(key.to_string() + " on provider " +
                                std::to_string(node_));
        }
        stats_.bytes_out.add((*data)->size());
        read_meter_.record((*data)->size());
        return *data;
    }

    /// Zero-copy variant of get_chunk(): borrow the payload straight
    /// from the store (mmap'd engine segment where supported). Identical
    /// stats/metering and NotFoundError contract.
    [[nodiscard]] chunk::ChunkRef get_chunk_ref(const chunk::ChunkKey& key) {
        auto ref = store_->get_ref(key);
        stats_.ops.add();
        if (!ref) {
            stats_.errors.add();
            throw NotFoundError(key.to_string() + " on provider " +
                                std::to_string(node_));
        }
        stats_.bytes_out.add(ref->bytes.size());
        read_meter_.record(ref->bytes.size());
        return std::move(*ref);
    }

    [[nodiscard]] bool has_chunk(const chunk::ChunkKey& key) {
        return store_->contains(key);
    }

    /// Garbage-collect one chunk (aborted version cleanup).
    void erase_chunk(const chunk::ChunkKey& key) {
        const bool present = store_->contains(key);
        store_->erase(key);
        if (present) {
            note_removed(key);
        }
    }

    // ---- content-addressed operations (wire protocol v5) ----

    /// Check-before-push: true iff the chunk is already stored here. On
    /// a hit with \p want_incref the caller's reference is recorded, so
    /// the client may skip the transfer entirely; \p size_hint is the
    /// chunk size the caller would have pushed (dedup accounting).
    [[nodiscard]] bool check_chunk(const chunk::ChunkKey& key,
                                   bool want_incref,
                                   std::uint64_t size_hint) {
        stats_.ops.add();
        const std::scoped_lock lock(cas_mu_);
        if (!store_->contains(key)) {
            check_misses_.add();
            return false;
        }
        if (want_incref) {
            (void)store_->incref(key);
        }
        check_hits_.add();
        bytes_skipped_.add(size_hint);
        return true;
    }

    /// Open a streaming push of \p total bytes; returns the transfer id
    /// the kChunkPushSome/End frames name. The chunk only becomes
    /// visible at end_push, after size (and, for content keys, digest)
    /// verification.
    [[nodiscard]] std::uint64_t begin_push(const chunk::ChunkKey& key,
                                           std::uint64_t total) {
        stats_.ops.add();
        const std::scoped_lock lock(push_mu_);
        if (pushes_.size() >= kMaxPushSessions) {
            stats_.errors.add();
            throw Error("provider " + std::to_string(node_) +
                        ": too many concurrent push sessions");
        }
        const std::uint64_t xfer = next_xfer_++;
        PushState& st = pushes_[xfer];
        st.key = key;
        st.expected = total;
        st.buf = std::make_shared<Buffer>();
        st.buf->reserve(total);
        return xfer;
    }

    /// Append one slice. Slices must arrive in order (the client drives
    /// one transfer per connection stream); \p offset guards against a
    /// lost or replayed frame.
    void push_some(std::uint64_t xfer, std::uint64_t offset,
                   ConstBytes bytes) {
        const std::scoped_lock lock(push_mu_);
        const auto it = pushes_.find(xfer);
        if (it == pushes_.end()) {
            stats_.errors.add();
            throw NotFoundError("push transfer " + std::to_string(xfer) +
                                " on provider " + std::to_string(node_));
        }
        PushState& st = it->second;
        if (offset != st.buf->size() ||
            offset + bytes.size() > st.expected) {
            pushes_.erase(it);
            stats_.errors.add();
            throw ConsistencyError("push transfer " + std::to_string(xfer) +
                                   ": slice at " + std::to_string(offset) +
                                   " does not continue the stream");
        }
        st.buf->insert(st.buf->end(), bytes.begin(), bytes.end());
        stats_.bytes_in.add(bytes.size());
        write_meter_.record(bytes.size());
    }

    /// Complete a push: verify the byte count and, for content keys,
    /// recompute the SHA-256 end-to-end so a corrupted or mis-keyed
    /// stream can never be stored under a digest it doesn't have.
    void end_push(std::uint64_t xfer) {
        PushState st;
        {
            const std::scoped_lock lock(push_mu_);
            const auto it = pushes_.find(xfer);
            if (it == pushes_.end()) {
                stats_.errors.add();
                throw NotFoundError("push transfer " + std::to_string(xfer) +
                                    " on provider " + std::to_string(node_));
            }
            st = std::move(it->second);
            pushes_.erase(it);
        }
        if (st.buf->size() != st.expected) {
            stats_.errors.add();
            throw ConsistencyError(
                "push transfer " + std::to_string(xfer) + ": got " +
                std::to_string(st.buf->size()) + " of " +
                std::to_string(st.expected) + " bytes at end");
        }
        if (st.key.is_content()) {
            const auto [hi, lo] = cas::digest128(cas::sha256(*st.buf));
            if (hi != st.key.blob || lo != st.key.uid) {
                stats_.errors.add();
                throw ConsistencyError("push transfer " +
                                       std::to_string(xfer) +
                                       ": content does not match key " +
                                       st.key.to_string());
            }
            store_dedup(st.key, std::move(st.buf));
        } else {
            const bool fresh = !store_->contains(st.key);
            const std::uint64_t n = st.buf->size();
            store_->put(st.key, std::move(st.buf));
            if (fresh) {
                note_stored(st.key, n);
            }
        }
    }

    /// Size of a stored chunk (pull bootstrap); NotFoundError if absent.
    [[nodiscard]] std::uint64_t chunk_size(const chunk::ChunkKey& key) {
        stats_.ops.add();
        const auto data = store_->get(key);
        if (!data) {
            stats_.errors.add();
            throw NotFoundError(key.to_string() + " on provider " +
                                std::to_string(node_));
        }
        return (*data)->size();
    }

    /// Serve one range of a chunk (resumable pull); meters only the
    /// bytes actually shipped.
    [[nodiscard]] std::pair<std::uint64_t, chunk::ChunkData> get_chunk_range(
        const chunk::ChunkKey& key, std::uint64_t offset,
        std::uint64_t size) {
        auto data = store_->get(key);
        stats_.ops.add();
        if (!data) {
            stats_.errors.add();
            throw NotFoundError(key.to_string() + " on provider " +
                                std::to_string(node_));
        }
        const std::uint64_t total = (*data)->size();
        const std::uint64_t begin = std::min(offset, total);
        const std::uint64_t n =
            size == 0 ? total - begin : std::min(size, total - begin);
        stats_.bytes_out.add(n);
        read_meter_.record(n);
        return {total, std::move(*data)};
    }

    /// Zero-copy variant of get_chunk_range(); same range clamping and
    /// metering (only the shipped bytes count).
    [[nodiscard]] std::pair<std::uint64_t, chunk::ChunkRef>
    get_chunk_range_ref(const chunk::ChunkKey& key, std::uint64_t offset,
                        std::uint64_t size) {
        auto ref = store_->get_ref(key);
        stats_.ops.add();
        if (!ref) {
            stats_.errors.add();
            throw NotFoundError(key.to_string() + " on provider " +
                                std::to_string(node_));
        }
        const std::uint64_t total = ref->bytes.size();
        const std::uint64_t begin = std::min(offset, total);
        const std::uint64_t n =
            size == 0 ? total - begin : std::min(size, total - begin);
        stats_.bytes_out.add(n);
        read_meter_.record(n);
        return {total, std::move(*ref)};
    }

    /// Release one reference; the chunk is reclaimed at zero. Returns
    /// the remaining count.
    std::uint64_t decref_chunk(const chunk::ChunkKey& key) {
        stats_.ops.add();
        decrefs_.add();
        const std::scoped_lock lock(cas_mu_);
        const std::uint64_t before = store_->bytes();
        const std::uint64_t remaining = store_->decref(key);
        if (remaining == 0) {
            const std::uint64_t after = store_->bytes();
            if (after < before) {
                reclaimed_chunks_.add();
                reclaimed_bytes_.add(before - after);
                note_removed(key);
            }
        }
        return remaining;
    }

    [[nodiscard]] DedupStatus dedup_status() {
        DedupStatus s;
        s.chunks_stored = store_->count();
        s.stored_bytes = store_->bytes();
        s.check_hits = check_hits_.get();
        s.check_misses = check_misses_.get();
        s.bytes_skipped = bytes_skipped_.get();
        s.dup_puts = dup_puts_.get();
        s.decrefs = decrefs_.get();
        s.reclaimed_chunks = reclaimed_chunks_.get();
        s.reclaimed_bytes = reclaimed_bytes_.get();
        return s;
    }

    /// Crash simulation: lose whatever is volatile. A RAM-only store
    /// loses everything; a two-tier store only loses its cache.
    void lose_volatile_state() {
        if (auto* ram = dynamic_cast<chunk::RamStore*>(store_.get())) {
            ram->clear();
            const std::scoped_lock lock(inv_mu_);
            inventory_.clear();
            delta_added_.clear();
            delta_removed_.clear();
        } else if (auto* two =
                       dynamic_cast<chunk::TwoTierStore*>(store_.get())) {
            two->drop_cache();
        }
    }

    // ---- inventory tracking (membership & repair, protocol v6) ----

    /// Observe every absent→present / present→absent transition of this
    /// provider's store. In-process deployments wire this straight into
    /// the provider manager's location index; daemons leave it unset and
    /// ship the delta log on their heartbeats instead. Install at boot,
    /// before traffic.
    void set_inventory_observer(
        std::function<void(const chunk::ChunkKey&, std::uint64_t, bool)>
            observer) {
        observer_ = std::move(observer);
    }

    /// Full inventory snapshot (kProviderAnnounce payload; also seeds
    /// the index after a durable-store restart).
    [[nodiscard]] std::vector<ChunkHolding> inventory() const {
        const std::scoped_lock lock(inv_mu_);
        std::vector<ChunkHolding> out;
        out.reserve(inventory_.size());
        for (const auto& [key, bytes] : inventory_) {
            out.push_back({key, bytes});
        }
        return out;
    }

    struct InventoryDelta {
        std::vector<ChunkHolding> added;
        std::vector<chunk::ChunkKey> removed;
    };

    /// Take the transitions accumulated since the previous drain (the
    /// kProviderBeat payload). The caller only drains after the previous
    /// beat was acknowledged, so no delta is ever lost to a failed RPC.
    [[nodiscard]] InventoryDelta drain_inventory_delta() {
        const std::scoped_lock lock(inv_mu_);
        InventoryDelta d;
        d.added = std::move(delta_added_);
        d.removed = std::move(delta_removed_);
        delta_added_.clear();
        delta_removed_.clear();
        return d;
    }

    [[nodiscard]] chunk::ChunkStore& store() noexcept { return *store_; }
    [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const Meter& read_meter() const noexcept {
        return read_meter_;
    }
    [[nodiscard]] const Meter& write_meter() const noexcept {
        return write_meter_;
    }

    /// Bytes currently stored (load signal for placement & monitoring).
    [[nodiscard]] std::uint64_t stored_bytes() { return store_->bytes(); }

  private:
    static constexpr std::size_t kMaxPushSessions = 256;

    struct PushState {
        chunk::ChunkKey key;
        std::uint64_t expected = 0;
        std::shared_ptr<Buffer> buf;
    };

    /// Store a content-addressed chunk, or record a reference if it is
    /// already here. cas_mu_ makes present-check + put/incref atomic:
    /// without it two racing pushes of the same content would both see
    /// "absent", both put (idempotently), and the count would understate
    /// the two real references — the one invariant GC must never break.
    void store_dedup(const chunk::ChunkKey& key, chunk::ChunkData data) {
        const std::uint64_t n = data->size();
        {
            const std::scoped_lock lock(cas_mu_);
            if (store_->contains(key)) {
                (void)store_->incref(key);
                dup_puts_.add();
                return;
            }
            store_->put(key, std::move(data));
        }
        note_stored(key, n);
    }

    /// Inventory bookkeeping: record a transition, fold it into the
    /// heartbeat delta log, and notify a synchronous observer. A key
    /// that flips within one beat interval collapses to its net effect
    /// so the delta's apply order cannot matter.
    void note_stored(const chunk::ChunkKey& key, std::uint64_t bytes) {
        {
            const std::scoped_lock lock(inv_mu_);
            if (!inventory_.emplace(key, bytes).second) {
                return;
            }
            std::erase(delta_removed_, key);
            delta_added_.push_back({key, bytes});
        }
        if (observer_) {
            observer_(key, bytes, true);
        }
    }

    void note_removed(const chunk::ChunkKey& key) {
        {
            const std::scoped_lock lock(inv_mu_);
            if (inventory_.erase(key) == 0) {
                return;
            }
            std::erase_if(delta_added_, [&key](const ChunkHolding& h) {
                return h.key == key;
            });
            delta_removed_.push_back(key);
        }
        if (observer_) {
            observer_(key, 0, false);
        }
    }

    const NodeId node_;
    std::unique_ptr<chunk::ChunkStore> store_;
    ServiceStats stats_;
    Meter read_meter_;
    Meter write_meter_;

    std::mutex cas_mu_;  // atomizes contains+put/incref and decref
    std::mutex push_mu_;  // guards pushes_ and next_xfer_
    mutable std::mutex inv_mu_;  // guards inventory_ and the delta log
    std::unordered_map<chunk::ChunkKey, std::uint64_t, chunk::ChunkKeyHash>
        inventory_;
    std::vector<ChunkHolding> delta_added_;
    std::vector<chunk::ChunkKey> delta_removed_;
    std::function<void(const chunk::ChunkKey&, std::uint64_t, bool)>
        observer_;
    std::map<std::uint64_t, PushState> pushes_;
    std::uint64_t next_xfer_ = 1;
    Counter check_hits_;
    Counter check_misses_;
    Counter bytes_skipped_;
    Counter dup_puts_;
    Counter decrefs_;
    Counter reclaimed_chunks_;
    Counter reclaimed_bytes_;
    /// Registry bindings; declared last so they unbind before the stats
    /// and the store the callbacks sample.
    MetricsGroup metrics_;
};

}  // namespace blobseer::provider
