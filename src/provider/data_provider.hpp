/// \file data_provider.hpp
/// \brief Data-provider service: stores and serves chunks.
///
/// Paper §I-B.2: "Each blob is made up of fixed-sized chunks that are
/// distributed among data providers." The provider is deliberately dumb —
/// all intelligence (placement, replication, metadata) lives elsewhere —
/// which is what lets BlobSeer aggregate storage from many cheap nodes
/// with minimal overhead.
///
/// The service object is thread-safe; the simulated network invokes its
/// methods on client threads after charging transfer costs.

#pragma once

#include <memory>
#include <string>
#include <utility>

#include "chunk/ram_store.hpp"
#include "chunk/store.hpp"
#include "chunk/two_tier_store.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace blobseer::provider {

class DataProvider {
  public:
    DataProvider(NodeId node, std::unique_ptr<chunk::ChunkStore> store)
        : node_(node), store_(std::move(store)) {}

    [[nodiscard]] NodeId node() const noexcept { return node_; }

    /// Store one chunk replica. Idempotent (chunks are immutable).
    void put_chunk(const chunk::ChunkKey& key, chunk::ChunkData data) {
        const std::uint64_t n = data->size();
        store_->put(key, std::move(data));
        stats_.ops.add();
        stats_.bytes_in.add(n);
        write_meter_.record(n);
    }

    /// Serve one chunk. Throws NotFoundError if this replica is missing
    /// (the client fails over to another replica).
    [[nodiscard]] chunk::ChunkData get_chunk(const chunk::ChunkKey& key) {
        auto data = store_->get(key);
        stats_.ops.add();
        if (!data) {
            stats_.errors.add();
            throw NotFoundError(key.to_string() + " on provider " +
                                std::to_string(node_));
        }
        stats_.bytes_out.add((*data)->size());
        read_meter_.record((*data)->size());
        return *data;
    }

    [[nodiscard]] bool has_chunk(const chunk::ChunkKey& key) {
        return store_->contains(key);
    }

    /// Garbage-collect one chunk (aborted version cleanup).
    void erase_chunk(const chunk::ChunkKey& key) { store_->erase(key); }

    /// Crash simulation: lose whatever is volatile. A RAM-only store
    /// loses everything; a two-tier store only loses its cache.
    void lose_volatile_state() {
        if (auto* ram = dynamic_cast<chunk::RamStore*>(store_.get())) {
            ram->clear();
        } else if (auto* two =
                       dynamic_cast<chunk::TwoTierStore*>(store_.get())) {
            two->drop_cache();
        }
    }

    [[nodiscard]] chunk::ChunkStore& store() noexcept { return *store_; }
    [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const Meter& read_meter() const noexcept {
        return read_meter_;
    }
    [[nodiscard]] const Meter& write_meter() const noexcept {
        return write_meter_;
    }

    /// Bytes currently stored (load signal for placement & monitoring).
    [[nodiscard]] std::uint64_t stored_bytes() { return store_->bytes(); }

  private:
    const NodeId node_;
    std::unique_ptr<chunk::ChunkStore> store_;
    ServiceStats stats_;
    Meter read_meter_;
    Meter write_meter_;
};

}  // namespace blobseer::provider
