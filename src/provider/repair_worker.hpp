/// \file repair_worker.hpp
/// \brief Drains the provider manager's repair queue by re-replicating
///        chunks between data providers.
///
/// The worker is a client of the data-provider protocol: it pulls a
/// chunk from a live holder and pushes it to the destination the manager
/// planned, reusing the v5 transfer machinery — CAS chunks are offered
/// with check-before-push (a destination that already holds the digest
/// costs no transfer) and large chunks travel through the streaming push
/// RPCs; small ones ride a single put frame. All policy (which key,
/// which source, which destination, when a key is converged) lives in
/// ProviderManager::repair_plan; the worker only moves bytes.
///
/// Two modes: drain_once() synchronously empties the queue (tests and
/// benchmarks drive this against virtual time), and start() runs a
/// background thread draining every repair_interval (deployments).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "provider/provider_manager.hpp"
#include "rpc/service_client.hpp"

namespace blobseer::provider {

class RepairWorker {
  public:
    struct Options {
        /// Deployment stores chunks content-addressed: repair offers
        /// check-before-push to the destination before shipping bytes.
        bool content_addressed = false;
        /// Chunks above this size re-replicate through the streaming
        /// push RPCs (same threshold as the client data path).
        std::uint64_t stream_threshold_bytes = 4u << 20;
        std::uint64_t stream_slice_bytes = 1u << 20;
        /// Failed attempts per key within one drain before deferring.
        std::size_t max_attempts = 2;
    };

    RepairWorker(ProviderManager& pm, rpc::Transport& transport,
                 std::vector<NodeId> vm_nodes, NodeId pm_node, NodeId self,
                 Options options)
        : pm_(pm),
          svc_(transport, std::move(vm_nodes), pm_node, self),
          options_(options) {}

    RepairWorker(ProviderManager& pm, rpc::Transport& transport,
                 std::vector<NodeId> vm_nodes, NodeId pm_node, NodeId self)
        : RepairWorker(pm, transport, std::move(vm_nodes), pm_node, self,
                       Options()) {}

    ~RepairWorker() { stop(); }

    RepairWorker(const RepairWorker&) = delete;
    RepairWorker& operator=(const RepairWorker&) = delete;

    /// Synchronously work the queue until it is empty or everything
    /// left is deferred. Returns the number of replica copies created.
    std::uint64_t drain_once() {
        const std::scoped_lock drain_lock(drain_mu_);
        std::uint64_t copies = 0;
        // Keys that failed transfer this drain; bounded retries, then
        // deferral — a drain always terminates.
        std::unordered_map<chunk::ChunkKey, std::size_t,
                           chunk::ChunkKeyHash>
            attempts;
        while (const auto key = pm_.next_repair()) {
            copies += repair_one(*key, attempts);
        }
        return copies;
    }

    /// Run the worker in the background, draining every \p interval.
    void start(Duration interval) {
        stop();
        thread_ = std::jthread([this, interval](std::stop_token stop) {
            std::mutex mu;
            std::unique_lock lock(mu);
            while (!stop.stop_requested()) {
                lock.unlock();
                try {
                    (void)drain_once();
                } catch (const std::exception& e) {
                    log_warn("repair", std::string("drain failed: ") +
                                           e.what());
                }
                lock.lock();
                (void)wake_.wait_for(lock, stop, interval,
                                     [] { return false; });
            }
        });
    }

    void stop() {
        if (thread_.joinable()) {
            thread_.request_stop();
            wake_.notify_all();
            thread_.join();
        }
    }

    /// Replica copies created / payload bytes moved since boot.
    [[nodiscard]] std::uint64_t chunks_repaired() const {
        return chunks_repaired_.get();
    }
    [[nodiscard]] std::uint64_t bytes_repaired() const {
        return bytes_repaired_.get();
    }

  private:
    /// Work one key to its terminal state for this drain: converged
    /// (finish), parked (defer), or requeued after a failed attempt.
    /// Returns the copies created.
    std::uint64_t repair_one(
        const chunk::ChunkKey& key,
        std::unordered_map<chunk::ChunkKey, std::size_t,
                           chunk::ChunkKeyHash>& attempts) {
        std::uint64_t copies = 0;
        for (;;) {
            const auto plan = pm_.repair_plan(key);
            using Action = ProviderManager::RepairPlan::Action;
            if (plan.action == Action::kSkip) {
                pm_.finish_repair(key, copies > 0);
                return copies;
            }
            if (plan.action == Action::kDefer) {
                pm_.defer_repair(key);
                return copies;
            }
            if (copy_once(key, plan)) {
                pm_.note_repaired(key, plan.dest, plan.bytes);
                chunks_repaired_.add();
                bytes_repaired_.add(plan.bytes);
                ++copies;
                continue;  // the key may still want more replicas
            }
            if (++attempts[key] < options_.max_attempts) {
                pm_.retry_repair(key);
            } else {
                pm_.defer_repair(key);
            }
            return copies;
        }
    }

    /// Move one replica: pull from the first source that answers, push
    /// to the planned destination. Returns false when every source
    /// failed or the destination rejected the copy.
    bool copy_once(const chunk::ChunkKey& key,
                   const ProviderManager::RepairPlan& plan) {
        // CAS fast path: the destination may already hold the digest
        // (e.g. cross-blob dedup) — then the repair is one metadata-free
        // round-trip and zero payload bytes.
        if (options_.content_addressed && key.is_content()) {
            try {
                if (svc_.check_chunk(plan.dest, key, false, plan.bytes)) {
                    return true;
                }
            } catch (const Error& e) {
                log_debug("repair", std::string("dest check failed: ") +
                                        e.what());
                return false;
            }
        }
        Buffer payload;
        bool pulled = false;
        for (const NodeId source : plan.sources) {
            try {
                if (plan.bytes > options_.stream_threshold_bytes) {
                    payload = svc_.pull_chunk(
                        source, key,
                        static_cast<std::size_t>(
                            options_.stream_slice_bytes));
                } else {
                    payload = std::move(
                        svc_.get_chunk(source, key, 0, 0).bytes);
                }
                pulled = true;
                break;
            } catch (const Error& e) {
                log_debug("repair", std::string("pull from ") +
                                        std::to_string(source) +
                                        " failed: " + e.what());
            }
        }
        if (!pulled) {
            return false;
        }
        try {
            if (payload.size() > options_.stream_threshold_bytes) {
                svc_.push_chunk(plan.dest, key, ConstBytes(payload),
                                static_cast<std::size_t>(
                                    options_.stream_slice_bytes));
            } else {
                svc_.put_chunk(plan.dest, key, ConstBytes(payload));
            }
        } catch (const Error& e) {
            log_debug("repair", std::string("push to ") +
                                    std::to_string(plan.dest) +
                                    " failed: " + e.what());
            return false;
        }
        return true;
    }

    ProviderManager& pm_;
    rpc::ServiceClient svc_;
    const Options options_;

    std::mutex drain_mu_;  // serializes drains (background vs manual)
    std::condition_variable_any wake_;
    std::jthread thread_;

    Counter chunks_repaired_;
    Counter bytes_repaired_;
};

}  // namespace blobseer::provider
