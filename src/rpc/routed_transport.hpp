/// \file routed_transport.hpp
/// \brief A Transport that routes per destination node.
///
/// The repair worker and the manager-side daemons talk to two kinds of
/// peers at once: services co-hosted in this process (reached through
/// the deployment's primary transport) and external data providers that
/// joined at runtime over TCP (each reachable through its own
/// TcpTransport). RoutedTransport dispatches each call by destination:
/// an installed override wins, everything else falls through to the
/// primary. Routes are added concurrently with in-flight calls (a
/// provider announcing while repairs run), so the table is locked;
/// transports themselves are thread-safe.

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "rpc/transport.hpp"

namespace blobseer::rpc {

class RoutedTransport final : public Transport {
  public:
    explicit RoutedTransport(Transport& primary) : primary_(primary) {}

    /// Route calls addressed to \p node through \p transport instead of
    /// the primary. Replaces any previous route for the node.
    void add_route(NodeId node, std::shared_ptr<Transport> transport) {
        const std::scoped_lock lock(mu_);
        routes_[node] = std::move(transport);
    }

    void remove_route(NodeId node) {
        const std::scoped_lock lock(mu_);
        routes_.erase(node);
    }

    [[nodiscard]] Future<Buffer> call_async(NodeId dst,
                                            ConstBytes frame) override {
        const auto route = pick(dst);  // pins the override across the call
        return (route ? *route : primary_).call_async(dst, frame);
    }

    [[nodiscard]] Future<Buffer> call_async_via(NodeId via, NodeId dst,
                                                ConstBytes frame) override {
        const auto route = pick(dst);
        return (route ? *route : primary_).call_async_via(via, dst, frame);
    }

    [[nodiscard]] Buffer roundtrip(NodeId dst, ConstBytes frame) override {
        const auto route = pick(dst);
        return (route ? *route : primary_).roundtrip(dst, frame);
    }

    [[nodiscard]] Buffer roundtrip_via(NodeId via, NodeId dst,
                                       ConstBytes frame) override {
        const auto route = pick(dst);
        return (route ? *route : primary_).roundtrip_via(via, dst, frame);
    }

  private:
    [[nodiscard]] std::shared_ptr<Transport> pick(NodeId dst) {
        const std::scoped_lock lock(mu_);
        const auto it = routes_.find(dst);
        return it != routes_.end() ? it->second : nullptr;
    }

    Transport& primary_;
    std::mutex mu_;
    std::unordered_map<NodeId, std::shared_ptr<Transport>> routes_;
};

}  // namespace blobseer::rpc
