/// \file sim_transport.hpp
/// \brief Transport implementation over the in-process SimNetwork.
///
/// Synchronous round trips are dispatched inline on the calling thread —
/// exactly how the seed's direct calls worked — but both directions
/// charge the *actual encoded frame sizes* to the NIC bandwidth gates
/// instead of the hand-estimated byte constants the seed used.
///
/// call_async() runs the same wire model on a small per-transport worker
/// pool (created lazily on first use), so many requests progress through
/// the simulated network concurrently — the async client API gets real
/// overlap under simulation, with the same modeled costs per call.
///
/// Fault injection (kill/partition/degrade) applies unchanged:
/// SimNetwork::call_sized throws RpcError when an endpoint is dead or
/// partitioned, which is precisely a real transport's failure surface.
/// A node killed mid-flight therefore fails *every* async call currently
/// traversing it — each one trips the reachability check on its own
/// response path — matching a real connection dying with many requests
/// outstanding.

#pragma once

#include <memory>
#include <mutex>

#include "common/future.hpp"
#include "common/thread_pool.hpp"
#include "net/sim_network.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/transport.hpp"

namespace blobseer::rpc {

class SimTransport final : public Transport {
  public:
    /// \param self the network identity traffic is charged to.
    SimTransport(net::SimNetwork& net, NodeId self, Dispatcher& dispatcher)
        : net_(net), self_(self), dispatcher_(dispatcher) {}

    [[nodiscard]] Buffer roundtrip(NodeId dst, ConstBytes frame) override {
        return roundtrip_via(self_, dst, frame);
    }

    [[nodiscard]] Buffer roundtrip_via(NodeId via, NodeId dst,
                                       ConstBytes frame) override {
        if (dst == kControlNode) {
            // Control-plane bootstrap: answered by the dispatcher itself,
            // no per-node wire cost.
            return dispatcher_.dispatch(frame);
        }
        try {
            return net_.call_sized(via, dst, frame.size(), [&] {
                return dispatcher_.dispatch(frame);
            });
        } catch (const InvalidArgument& e) {
            // An unknown destination is a delivery failure from the
            // transport's point of view, same as a dead peer.
            throw RpcError(e.what());
        }
    }

    [[nodiscard]] Future<Buffer> call_async(NodeId dst,
                                            ConstBytes frame) override {
        return call_async_via(self_, dst, frame);
    }

    [[nodiscard]] Future<Buffer> call_async_via(NodeId via, NodeId dst,
                                                ConstBytes frame) override {
        auto promise = std::make_shared<Promise<Buffer>>();
        Future<Buffer> fut = promise->future();
        // The frame is copied: the simulated wire traversal happens
        // later, on a pool thread, after the caller's buffer is gone.
        pool().post(
            [this, via, dst, frame = Buffer(frame.begin(), frame.end()),
             promise] {
                try {
                    promise->set_value(roundtrip_via(via, dst, frame));
                } catch (...) {
                    promise->set_exception(std::current_exception());
                }
            });
        return fut;
    }

    [[nodiscard]] NodeId self() const noexcept { return self_; }

  private:
    /// Async calls mostly sleep in the wire model, so a modest pool
    /// carries a deep in-flight window; it is created lazily because
    /// most SimTransports (sync-only tests, short-lived clients) never
    /// issue an async call.
    static constexpr std::size_t kAsyncThreads = 16;

    [[nodiscard]] ThreadPool& pool() {
        std::call_once(pool_once_, [this] {
            pool_ = std::make_unique<ThreadPool>(kAsyncThreads);
        });
        return *pool_;
    }

    net::SimNetwork& net_;
    const NodeId self_;
    Dispatcher& dispatcher_;

    std::once_flag pool_once_;
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace blobseer::rpc
