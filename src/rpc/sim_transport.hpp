/// \file sim_transport.hpp
/// \brief Transport implementation over the in-process SimNetwork.
///
/// Frames are dispatched inline on the calling thread — exactly how the
/// seed's direct calls worked — but both directions now charge the
/// *actual encoded frame sizes* to the NIC bandwidth gates instead of the
/// hand-estimated byte constants the seed used. Fault injection
/// (kill/partition/degrade) applies unchanged: SimNetwork::call_sized
/// throws RpcError before the handler runs when an endpoint is dead or
/// partitioned, which is precisely a real transport's failure surface.

#pragma once

#include "net/sim_network.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/transport.hpp"

namespace blobseer::rpc {

class SimTransport final : public Transport {
  public:
    /// \param self the network identity traffic is charged to.
    SimTransport(net::SimNetwork& net, NodeId self, Dispatcher& dispatcher)
        : net_(net), self_(self), dispatcher_(dispatcher) {}

    [[nodiscard]] Buffer roundtrip(NodeId dst, ConstBytes frame) override {
        return roundtrip_via(self_, dst, frame);
    }

    [[nodiscard]] Buffer roundtrip_via(NodeId via, NodeId dst,
                                       ConstBytes frame) override {
        if (dst == kControlNode) {
            // Control-plane bootstrap: answered by the dispatcher itself,
            // no per-node wire cost.
            return dispatcher_.dispatch(frame);
        }
        try {
            return net_.call_sized(via, dst, frame.size(), [&] {
                return dispatcher_.dispatch(frame);
            });
        } catch (const InvalidArgument& e) {
            // An unknown destination is a delivery failure from the
            // transport's point of view, same as a dead peer.
            throw RpcError(e.what());
        }
    }

    [[nodiscard]] NodeId self() const noexcept { return self_; }

  private:
    net::SimNetwork& net_;
    const NodeId self_;
    Dispatcher& dispatcher_;
};

}  // namespace blobseer::rpc
