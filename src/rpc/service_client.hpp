/// \file service_client.hpp
/// \brief Typed client stubs: one method per RPC, encode → transport →
///        decode.
///
/// This is the only place where request bodies are encoded and response
/// bodies decoded on the client side; BlobSeerClient and MetaDht call
/// these methods and never touch frames themselves. Error responses are
/// re-thrown as the original exception type (protocol.hpp Status
/// mapping), so callers keep the exact failure-handling semantics they
/// had with direct in-process calls: RpcError means "the node or wire
/// failed, fail over", NotFoundError means "the replica lacks the data",
/// and so on.
///
/// The hot data-path RPCs (put_chunk, get_chunk, meta_put, meta_get)
/// additionally come as *_async variants returning futures: many may be
/// in flight on one multiplexed connection, and a failed delivery
/// surfaces as the same exception — from the future's get() instead of
/// the call itself. The sync methods are plain .get() wrappers over
/// them. Arguments are fully encoded before an async call returns, so
/// callers may release payload buffers immediately.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "chunk/chunk_key.hpp"
#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/future.hpp"
#include "common/types.hpp"
#include "dht/ring.hpp"
#include "meta/meta_node.hpp"
#include "meta/write_descriptor.hpp"
#include "provider/data_provider.hpp"
#include "provider/provider_manager.hpp"
#include "rpc/messages.hpp"
#include "rpc/protocol.hpp"
#include "rpc/transport.hpp"
#include "version/version_manager.hpp"

namespace blobseer::rpc {

class ServiceClient {
  public:
    /// \param vm_nodes version-manager shard nodes, indexed by shard
    ///        (per-blob calls route by blob_shard(id)); \param pm_node
    ///        the provider manager. \param self this client's node id —
    ///        it seeds the shard choice for create_blob so different
    ///        clients spread their blobs over different shards.
    ServiceClient(Transport& transport, std::vector<NodeId> vm_nodes,
                  NodeId pm_node, NodeId self = kInvalidNode);

    [[nodiscard]] Transport& transport() noexcept { return transport_; }

    /// The deployment's version-manager shard nodes (shard-indexed).
    [[nodiscard]] const std::vector<NodeId>& vm_nodes() const noexcept {
        return vm_nodes_;
    }

    /// Shard node owning \p blob. Throws InvalidArgument when the id
    /// names a shard this deployment does not run.
    [[nodiscard]] NodeId vm_node_of(BlobId blob) const;

    // ---- version manager -------------------------------------------------

    [[nodiscard]] version::BlobInfo create_blob(std::uint64_t chunk_size,
                                                std::uint32_t replication);
    /// Single-shard clone (source and destination on the owning shard of
    /// \p src). Multi-shard deployments use the client-driven
    /// get_version + pin + clone_from protocol instead (DESIGN.md §10.3).
    [[nodiscard]] version::BlobInfo clone_blob(BlobId src, Version version);
    /// Create a blob aliasing the resolved published snapshot \p origin
    /// on a shard picked by the create-routing policy.
    [[nodiscard]] version::BlobInfo clone_from(std::uint64_t chunk_size,
                                               std::uint32_t replication,
                                               const meta::TreeRef& origin);
    /// Observability snapshot of the shard living on \p vm_node.
    [[nodiscard]] version::ShardStatus vm_status(NodeId vm_node);
    [[nodiscard]] version::BlobInfo blob_info(BlobId blob);
    [[nodiscard]] version::AssignResult assign(
        BlobId blob, std::optional<std::uint64_t> offset, std::uint64_t size);
    void commit(BlobId blob, Version v);
    [[nodiscard]] version::VersionInfo get_version(BlobId blob, Version v);
    [[nodiscard]] version::VersionInfo wait_published(BlobId blob, Version v,
                                                      Duration timeout);
    [[nodiscard]] std::vector<version::VersionManager::VersionSummary>
    history(BlobId blob, Version from, Version to);
    /// Returns true when this call created the pin (false = already
    /// pinned); see VersionManager::pin.
    bool pin(BlobId blob, Version v);
    void unpin(BlobId blob, Version v);
    [[nodiscard]] version::VersionManager::RetireInfo retire(
        BlobId blob, Version keep_from);
    [[nodiscard]] meta::WriteDescriptor descriptor_of(BlobId blob, Version v);

    // ---- provider manager ------------------------------------------------

    [[nodiscard]] provider::PlacementPlan place(std::uint64_t n_chunks,
                                                std::uint32_t replication,
                                                std::uint64_t chunk_bytes);
    void mark_dead(NodeId node);

    // ---- provider membership & repair (protocol v6) ----------------------

    /// Report a suspected-dead provider. The manager corroborates the
    /// report against recent heartbeats; returns true iff the suspect is
    /// (now) considered dead.
    bool report_failure(NodeId suspect);

    /// External provider daemon handshake: register by stable name and
    /// receive the node id to serve under (the same id again on re-join).
    [[nodiscard]] provider::ProviderManager::JoinResult provider_join(
        const std::string& name);

    /// Advertise a joined provider's dial endpoint and full inventory;
    /// this is what activates it for placement.
    void provider_announce(NodeId node, const std::string& host,
                           std::uint32_t port,
                           const std::vector<provider::ChunkHolding>&
                               inventory);

    /// One heartbeat with inventory deltas since the last acknowledged
    /// beat. Returns false when the manager does not know the node
    /// (manager restart: the provider must re-join).
    [[nodiscard]] bool provider_beat(
        NodeId node, std::uint64_t seq,
        const std::vector<provider::ChunkHolding>& added,
        const std::vector<chunk::ChunkKey>& removed);

    /// Repair-queue gauges + per-provider membership snapshot.
    [[nodiscard]] provider::RepairStatus repair_status();

    // ---- observability (protocol v7) -------------------------------------

    /// Full metrics-registry snapshot of the process serving \p node
    /// (default: the control pseudo-node, i.e. whatever process answers
    /// the default endpoint — address a data node to scrape an external
    /// provider daemon instead).
    [[nodiscard]] MetricsSnapshot metrics_dump(NodeId node = kControlNode);

    /// Drain the span ring of the process serving \p node. \p trace_id 0
    /// matches all traces; \p max 0 means "everything retained".
    [[nodiscard]] std::vector<trace::SpanRecord> trace_dump(
        std::uint64_t trace_id = 0, std::uint64_t max = 0,
        NodeId node = kControlNode);

    // ---- data providers --------------------------------------------------

    /// Upload one chunk replica to \p dp. \p via != kInvalidNode charges
    /// the transfer to that node (pipelined replication). Sync form of
    /// put_chunk_async.
    void put_chunk(NodeId dp, const chunk::ChunkKey& key, ConstBytes payload,
                   NodeId via = kInvalidNode);

    /// Start uploading one chunk replica; the future completes when the
    /// provider acknowledged (or failed) the store.
    [[nodiscard]] Future<void> put_chunk_async(NodeId dp,
                                               const chunk::ChunkKey& key,
                                               ConstBytes payload,
                                               NodeId via = kInvalidNode);

    struct ChunkSlice {
        Buffer bytes;               ///< the requested slice
        std::uint64_t chunk_size;   ///< total stored payload of the chunk
    };

    /// Fetch \p size bytes at \p offset of a chunk (size 0 = the whole
    /// chunk). The reply is clamped to the stored payload; chunk_size
    /// lets the caller detect truncated replicas. Sync form of
    /// get_chunk_async.
    [[nodiscard]] ChunkSlice get_chunk(NodeId dp, const chunk::ChunkKey& key,
                                       std::uint64_t offset,
                                       std::uint64_t size);

    /// Start fetching a chunk slice.
    [[nodiscard]] Future<ChunkSlice> get_chunk_async(
        NodeId dp, const chunk::ChunkKey& key, std::uint64_t offset,
        std::uint64_t size);

    void erase_chunk(NodeId dp, const chunk::ChunkKey& key);

    // ---- content-addressed data-provider operations (protocol v5) --------

    /// Check-before-push: true iff \p dp already holds the chunk. On a
    /// hit with \p want_incref the provider records this caller's
    /// reference, so the caller must NOT push (and later releases the
    /// reference with chunk_decref). \p size_hint is the payload size
    /// the caller would have pushed (provider dedup accounting).
    [[nodiscard]] bool check_chunk(NodeId dp, const chunk::ChunkKey& key,
                                   bool want_incref,
                                   std::uint64_t size_hint);
    [[nodiscard]] Future<bool> check_chunk_async(NodeId dp,
                                                 const chunk::ChunkKey& key,
                                                 bool want_incref,
                                                 std::uint64_t size_hint);

    /// Streaming upload: open a transfer of \p total bytes, append
    /// in-order slices, then complete (the provider verifies size and,
    /// for content keys, the SHA-256 before the chunk becomes visible).
    [[nodiscard]] std::uint64_t push_start(NodeId dp,
                                           const chunk::ChunkKey& key,
                                           std::uint64_t total);
    void push_some(NodeId dp, std::uint64_t xfer, std::uint64_t offset,
                   ConstBytes bytes, NodeId via = kInvalidNode);
    void push_end(NodeId dp, std::uint64_t xfer);

    /// Whole streaming upload: push \p payload in \p slice_bytes frames.
    void push_chunk(NodeId dp, const chunk::ChunkKey& key, ConstBytes payload,
                    std::size_t slice_bytes, NodeId via = kInvalidNode);

    /// Ranged resumable download: size of the stored chunk, then slices.
    [[nodiscard]] std::uint64_t pull_start(NodeId dp,
                                           const chunk::ChunkKey& key);
    [[nodiscard]] ChunkSlice pull_some(NodeId dp, const chunk::ChunkKey& key,
                                       std::uint64_t offset,
                                       std::uint64_t size);

    /// Whole streaming download in \p slice_bytes frames.
    [[nodiscard]] Buffer pull_chunk(NodeId dp, const chunk::ChunkKey& key,
                                    std::size_t slice_bytes);

    /// Release one reference to a chunk; returns the remaining count
    /// (0 = the provider reclaimed it).
    std::uint64_t chunk_decref(NodeId dp, const chunk::ChunkKey& key);
    [[nodiscard]] Future<std::uint64_t> chunk_decref_async(
        NodeId dp, const chunk::ChunkKey& key);

    /// Dedup/GC observability snapshot of one data provider.
    [[nodiscard]] provider::DataProvider::DedupStatus dedup_status(NodeId dp);

    // ---- metadata providers ----------------------------------------------

    void meta_put(NodeId mp, const meta::MetaKey& key,
                  const meta::MetaNode& node);
    [[nodiscard]] Future<void> meta_put_async(NodeId mp,
                                              const meta::MetaKey& key,
                                              const meta::MetaNode& node);
    [[nodiscard]] meta::MetaNode meta_get(NodeId mp, const meta::MetaKey& key);
    [[nodiscard]] Future<meta::MetaNode> meta_get_async(
        NodeId mp, const meta::MetaKey& key);
    [[nodiscard]] std::optional<meta::MetaNode> meta_try_get(
        NodeId mp, const meta::MetaKey& key);
    void meta_erase(NodeId mp, const meta::MetaKey& key);

  private:
    /// Round-trip one request; returns the whole response frame after
    /// checking its status (error statuses throw).
    [[nodiscard]] Buffer invoke(MsgType type, NodeId dst, WireWriter&& body,
                                NodeId via = kInvalidNode);

    /// Start one request; the future completes with the raw response
    /// frame (status still unchecked — the decode adapter does that).
    [[nodiscard]] Future<Buffer> invoke_async(MsgType type, NodeId dst,
                                              WireWriter&& body,
                                              NodeId via = kInvalidNode);

    /// Shard node for the next create_blob/clone_from: consistent-hash
    /// the (client, creation#) pair over the shard ring so creations
    /// spread without any cross-client coordination.
    [[nodiscard]] NodeId pick_create_node();

    Transport& transport_;
    const std::vector<NodeId> vm_nodes_;
    const NodeId pm_node_;
    const NodeId self_;
    /// Ring over vm_nodes_ (empty when there is only one shard).
    dht::Ring vm_ring_;
    std::atomic<std::uint64_t> create_seq_{0};
};

/// Fetch the cluster topology over a transport (the bootstrap RPC of a
/// remote client; addressed to rpc::kControlNode, not to a real node).
[[nodiscard]] Topology fetch_topology(Transport& transport);

}  // namespace blobseer::rpc
