#include "rpc/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/protocol.hpp"

namespace blobseer::rpc {

namespace {

[[nodiscard]] std::string errno_string() {
    return std::string(std::strerror(errno));
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[nodiscard]] std::uint64_t now_ms() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

[[nodiscard]] int connect_to(const Endpoint& ep) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints,
                                     &res);
        rc != 0) {
        throw RpcError("tcp resolve " + ep.host + ": " +
                       ::gai_strerror(rc));
    }
    int fd = -1;
    std::string last_error = "no addresses";
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = errno_string();
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            break;
        }
        last_error = errno_string();
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        throw RpcError("tcp connect " + ep.host + ":" + port + ": " +
                       last_error);
    }
    // Small request/response frames must not wait for Nagle coalescing.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

/// Incremental frame reader for a nonblocking socket. pump() pulls
/// whatever the kernel has ready and hands each completed frame to the
/// sink; partial frames persist across calls, so a frame arriving in
/// many readiness events assembles without ever blocking the loop.
/// Small frames coalesce through a bounce buffer (one recv() can yield
/// many frames); payload remainders that dwarf it recv straight into the
/// frame's own storage. One owner per socket (the loop thread), no locks.
class FrameAssembler {
  public:
    enum class Status {
        kAgain,  ///< socket drained (or budget spent) cleanly
        kEof,    ///< peer closed between frames
        kError,  ///< protocol violation, mid-frame EOF, or socket error
    };

    Status pump(int fd, const std::function<void(Buffer)>& sink,
                std::string* error) {
        // Budget bounds one connection's turn so a fire-hose peer cannot
        // starve its loop siblings; level-triggered epoll re-fires for
        // the remainder.
        constexpr std::size_t kBudget = 1 << 20;
        std::size_t consumed = 0;
        for (;;) {
            while (pos_ < end_) {
                if (!step(sink, error)) {
                    return Status::kError;
                }
            }
            if (consumed >= kBudget) {
                return Status::kAgain;
            }
            ssize_t n = 0;
            if (sized_ && frame_.size() - have_ >= bounce_.size()) {
                // Large remainder (chunk payloads): skip the bounce
                // buffer, recv straight into the frame.
                n = ::recv(fd, frame_.data() + have_, frame_.size() - have_,
                           0);
                if (n > 0) {
                    have_ += static_cast<std::size_t>(n);
                    consumed += static_cast<std::size_t>(n);
                    if (have_ == frame_.size()) {
                        finish(sink);
                    }
                    continue;
                }
            } else {
                n = ::recv(fd, bounce_.data(), bounce_.size(), 0);
                if (n > 0) {
                    pos_ = 0;
                    end_ = static_cast<std::size_t>(n);
                    consumed += static_cast<std::size_t>(n);
                    continue;
                }
            }
            if (n == 0) {
                if (have_ == 0) {
                    return Status::kEof;
                }
                *error = "connection closed mid-frame";
                return Status::kError;
            }
            if (errno == EINTR) {
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return Status::kAgain;
            }
            *error = "recv: " + errno_string();
            return Status::kError;
        }
    }

  private:
    /// Move buffered bytes into the current frame; false on a header
    /// that fails validation.
    bool step(const std::function<void(Buffer)>& sink, std::string* error) {
        if (!sized_) {
            if (frame_.size() != kFrameHeaderSize) {
                frame_.resize(kFrameHeaderSize);
            }
            const std::size_t take =
                std::min(kFrameHeaderSize - have_, end_ - pos_);
            std::memcpy(frame_.data() + have_, bounce_.data() + pos_, take);
            have_ += take;
            pos_ += take;
            if (have_ < kFrameHeaderSize) {
                return true;
            }
            // Validate the header before trusting its length field.
            std::uint32_t magic = 0;
            std::uint32_t len = 0;
            std::memcpy(&magic, frame_.data(), 4);
            std::memcpy(&len, frame_.data() + 12, 4);
            if (magic != kFrameMagic) {
                *error = "bad frame magic";
                return false;
            }
            if (len > kMaxPayload) {
                *error = "oversized frame (" + std::to_string(len) +
                         " bytes)";
                return false;
            }
            frame_.resize(kFrameHeaderSize + len);
            sized_ = true;
            if (len == 0) {
                finish(sink);
            }
            return true;
        }
        const std::size_t take =
            std::min(frame_.size() - have_, end_ - pos_);
        std::memcpy(frame_.data() + have_, bounce_.data() + pos_, take);
        have_ += take;
        pos_ += take;
        if (have_ == frame_.size()) {
            finish(sink);
        }
        return true;
    }

    void finish(const std::function<void(Buffer)>& sink) {
        Buffer done;
        done.swap(frame_);
        have_ = 0;
        sized_ = false;
        sink(std::move(done));
    }

    Buffer bounce_ = Buffer(64 << 10);
    std::size_t pos_ = 0;
    std::size_t end_ = 0;
    Buffer frame_;
    std::size_t have_ = 0;  ///< bytes of frame_ filled
    bool sized_ = false;    ///< header validated, frame_ at full size
};

/// Queue of outbound frames awaiting socket room. Each entry keeps its
/// scatter-gather shape — sealed head plus borrowed tail — until the
/// bytes enter the kernel, so a parked zero-copy response never gets
/// flattened (the tail's owner stays pinned instead). flush() gathers
/// up to 16 spans across queued frames into one sendmsg(): head and
/// tail of a chunk-read response leave in a single syscall, and a burst
/// of small parked responses departs batched. Callers serialize access
/// (the connection's write mutex).
class FrameQueue {
  public:
    enum class Flush {
        kDrained,  ///< queue empty, kernel took everything
        kParked,   ///< kernel buffer full; arm EPOLLOUT for the rest
        kError,    ///< connection unusable
    };

    void push(Buffer head, SharedSlice tail) {
        bytes_ += head.size() + tail.size();
        q_.push_back(OutFrame{std::move(head), std::move(tail), 0, 0});
    }

    /// \p wrote (optional) accumulates bytes accepted by the kernel —
    /// the sender's wrote-anything retry decision needs it even when
    /// the flush ends in kError.
    Flush flush(int fd, std::size_t* wrote, std::string* error) {
        while (!q_.empty()) {
            iovec iov[kMaxIov];
            int iovs = 0;
            for (const OutFrame& f : q_) {
                if (iovs == kMaxIov) {
                    break;
                }
                if (f.head_off < f.head.size()) {
                    iov[iovs].iov_base =
                        const_cast<std::uint8_t*>(f.head.data()) +
                        f.head_off;
                    iov[iovs].iov_len = f.head.size() - f.head_off;
                    ++iovs;
                }
                if (iovs == kMaxIov) {
                    break;
                }
                if (f.tail_off < f.tail.size()) {
                    iov[iovs].iov_base =
                        const_cast<std::uint8_t*>(f.tail.bytes.data()) +
                        f.tail_off;
                    iov[iovs].iov_len = f.tail.size() - f.tail_off;
                    ++iovs;
                }
            }
            msghdr msg{};
            msg.msg_iov = iov;
            msg.msg_iovlen = static_cast<std::size_t>(iovs);
            // MSG_NOSIGNAL: a peer reset must surface as kError, not a
            // SIGPIPE process kill.
            const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    return Flush::kParked;
                }
                if (error != nullptr) {
                    *error = errno_string();
                }
                return Flush::kError;
            }
            advance(static_cast<std::size_t>(n));
            if (wrote != nullptr) {
                *wrote += static_cast<std::size_t>(n);
            }
        }
        return Flush::kDrained;
    }

    /// Drop everything unsent (releases borrowed-tail owners — store
    /// pins — promptly on a doomed connection).
    void clear() {
        q_.clear();
        bytes_ = 0;
    }

    [[nodiscard]] bool empty() const noexcept { return q_.empty(); }

    /// Unsent bytes currently queued.
    [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  private:
    static constexpr int kMaxIov = 16;

    struct OutFrame {
        Buffer head;
        SharedSlice tail;
        std::size_t head_off;
        std::size_t tail_off;
    };

    void advance(std::size_t n) {
        bytes_ -= n;
        while (!q_.empty()) {
            OutFrame& f = q_.front();
            const std::size_t h = std::min(n, f.head.size() - f.head_off);
            f.head_off += h;
            n -= h;
            const std::size_t t = std::min(n, f.tail.size() - f.tail_off);
            f.tail_off += t;
            n -= t;
            if (f.head_off == f.head.size() &&
                f.tail_off == f.tail.size()) {
                q_.pop_front();
                continue;
            }
            break;  // partial frame remains; n is exhausted
        }
    }

    std::deque<OutFrame> q_;
    std::size_t bytes_ = 0;
};

constexpr std::uint32_t kConnEvents = EPOLLIN | EPOLLRDHUP;

}  // namespace

// ---- TcpTransport ----------------------------------------------------------

struct TcpTransport::MuxConn {
    int fd = -1;
    std::string peer;  ///< "host:port", for error messages

    /// Set (under pending_mu) the moment the connection is doomed; a
    /// dead connection accepts no new requests and is replaced by the
    /// next get_conn().
    std::atomic<bool> dead{false};

    /// Loop registration removed (or never to be installed). Flipped on
    /// the loop thread only; guards mod_fd/del_fd against a recycled fd
    /// number.
    std::atomic<bool> unregistered{false};

    std::atomic<std::uint64_t> next_corr{1};

    std::mutex send_mu;  ///< guards wq + epollout
    FrameQueue wq;
    bool epollout = false;  ///< EPOLLOUT armed (or arming is posted)

    std::mutex pending_mu;  // guards pending
    std::unordered_map<std::uint64_t, Promise<Buffer>> pending;

    FrameAssembler rd;  ///< loop thread only

    ~MuxConn() {
        if (fd >= 0) {
            ::close(fd);
        }
    }

    /// Fail every request still awaiting a response. Idempotent: the
    /// table is swapped out under the lock, so concurrent callers (the
    /// loop seeing EOF, a failed sender) each fail a disjoint set.
    void fail_all(const std::string& reason) {
        std::unordered_map<std::uint64_t, Promise<Buffer>> doomed;
        {
            const std::scoped_lock lock(pending_mu);
            doomed.swap(pending);
        }
        for (auto& [corr, promise] : doomed) {
            promise.set_exception(std::make_exception_ptr(
                RpcError("tcp " + peer + ": " + reason)));
        }
    }
};

TcpTransport::TcpTransport(std::string host, std::uint16_t port)
    : loop_(std::make_unique<net::EventLoop>()),
      default_endpoint_{std::move(host), port} {
    loop_->start();
}

TcpTransport::TcpTransport(std::unordered_map<NodeId, Endpoint> peers)
    : loop_(std::make_unique<net::EventLoop>()), peers_(std::move(peers)) {
    loop_->start();
}

TcpTransport::~TcpTransport() {
    std::unordered_map<std::string, std::shared_ptr<MuxConn>> conns;
    std::vector<std::shared_ptr<MuxConn>> graveyard;
    {
        const std::scoped_lock lock(mu_);
        conns.swap(conns_);
        graveyard.swap(graveyard_);
    }
    for (auto& [key, conn] : conns) {
        {
            const std::scoped_lock lock(conn->pending_mu);
            conn->dead.store(true);
        }
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    // Joining the loop settles in-flight completions; whatever the loop
    // did not answer fails now.
    loop_->stop();
    for (auto& [key, conn] : conns) {
        conn->fail_all("transport destroyed");
    }
    // Destroying the loop drops the handler-captured references; fds
    // close in the MuxConn destructors as the last references fall here.
    loop_.reset();
}

void TcpTransport::add_peer(NodeId node, Endpoint endpoint) {
    const std::scoped_lock lock(peers_mu_);
    peers_[node] = std::move(endpoint);
}

Endpoint TcpTransport::endpoint_of(NodeId dst) const {
    const std::scoped_lock lock(peers_mu_);
    const auto it = peers_.find(dst);
    if (it != peers_.end()) {
        return it->second;
    }
    // Unknown node: an all-in-one daemon hosts every node not explicitly
    // mapped, so fall back to its address when one was configured.
    if (!default_endpoint_.host.empty()) {
        return default_endpoint_;
    }
    throw RpcError("no endpoint for node " + std::to_string(dst));
}

void TcpTransport::retire_locked(std::shared_ptr<MuxConn> conn) {
    // The socket is already shut down (by whoever declared it dead), so
    // the loop sees EOF promptly and unwinds the registration; the fd
    // closes when the last reference drops.
    graveyard_.push_back(std::move(conn));
}

void TcpTransport::reap_graveyard() {
    std::vector<std::shared_ptr<MuxConn>> doomed;
    {
        const std::scoped_lock lock(mu_);
        doomed.swap(graveyard_);
    }
    // Dropping our references is enough — the loop's del_fd task
    // releases the handler's copy, and ~MuxConn closes the fd.
    doomed.clear();
}

void TcpTransport::doom_conn(const std::shared_ptr<MuxConn>& conn,
                             const std::string& reason) {
    {
        // dead is flipped under pending_mu so no new request can
        // register against a connection that will never answer it.
        const std::scoped_lock lock(conn->pending_mu);
        conn->dead.store(true);
    }
    {
        // Parked request frames will never be sent; drop them.
        const std::scoped_lock lock(conn->send_mu);
        conn->wq.clear();
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->fail_all(reason);
    loop_->post([loop = loop_.get(), conn] {
        if (!conn->unregistered.exchange(true)) {
            loop->del_fd(conn->fd);
        }
    });
}

std::shared_ptr<TcpTransport::MuxConn> TcpTransport::get_conn(NodeId dst) {
    reap_graveyard();
    const Endpoint ep = endpoint_of(dst);
    const std::string key = ep.host + ":" + std::to_string(ep.port);
    {
        const std::scoped_lock lock(mu_);
        const auto it = conns_.find(key);
        if (it != conns_.end()) {
            const std::shared_ptr<MuxConn>& conn = it->second;
            bool healthy = !conn->dead.load();
            if (healthy) {
                // An idle connection may have died silently (daemon
                // restart, idle-timeout close) in the window before the
                // loop processes the EOF event. Peek for EOF/stray bytes
                // — but only declare it dead while the pending table is
                // verifiably empty, so a request that registers
                // concurrently is never swept up.
                bool idle;
                {
                    const std::scoped_lock plock(conn->pending_mu);
                    idle = conn->pending.empty();
                }
                if (idle) {
                    char probe = 0;
                    const ssize_t n = ::recv(conn->fd, &probe, 1,
                                             MSG_PEEK | MSG_DONTWAIT);
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK)) {
                        // Healthy idle connection: nothing to read yet.
                    } else {
                        const std::scoped_lock plock(conn->pending_mu);
                        if (conn->pending.empty()) {
                            // Still idle and readable/EOF: stale. The
                            // shutdown below nudges the loop to finish
                            // the teardown (del_fd; nothing to fail).
                            conn->dead.store(true);
                            healthy = false;
                        }
                    }
                }
            }
            if (healthy) {
                return conn;
            }
            ::shutdown(conn->fd, SHUT_RDWR);
            retire_locked(std::move(it->second));
            conns_.erase(it);
        }
    }
    // Connect outside the lock — name resolution and the TCP handshake
    // must not stall unrelated peers.
    auto fresh = std::make_shared<MuxConn>();
    fresh->fd = connect_to(ep);
    fresh->peer = key;
    set_nonblocking(fresh->fd);
    {
        const std::scoped_lock lock(mu_);
        const auto [it, inserted] = conns_.emplace(key, fresh);
        if (!inserted) {
            if (!it->second->dead.load()) {
                // Lost a connect race: use the winner, discard ours
                // (never registered with the loop).
                std::shared_ptr<MuxConn> winner = it->second;
                fresh->unregistered.store(true);
                {
                    const std::scoped_lock plock(fresh->pending_mu);
                    fresh->dead.store(true);
                }
                ::shutdown(fresh->fd, SHUT_RDWR);
                retire_locked(std::move(fresh));
                return winner;
            }
            ::shutdown(it->second->fd, SHUT_RDWR);
            retire_locked(std::move(it->second));
            it->second = fresh;
        }
    }
    // Register with the loop. Sends need no registration, so a request
    // racing this post at worst waits one wakeup for its response.
    loop_->post([this, conn = fresh] { register_conn(conn); });
    return fresh;
}

void TcpTransport::register_conn(const std::shared_ptr<MuxConn>& conn) {
    loop_->add_fd(conn->fd, kConnEvents, [this, conn](std::uint32_t events) {
        if ((events & EPOLLOUT) != 0) {
            bool doomed = false;
            std::string err;
            {
                const std::scoped_lock lock(conn->send_mu);
                if (!conn->dead.load()) {
                    const auto st = conn->wq.flush(conn->fd, nullptr, &err);
                    if (st == FrameQueue::Flush::kDrained) {
                        conn->epollout = false;
                        if (!conn->unregistered.load()) {
                            loop_->mod_fd(conn->fd, kConnEvents);
                        }
                    } else if (st == FrameQueue::Flush::kError) {
                        doomed = true;
                    }
                    // kParked: kernel still full; stay armed.
                }
            }
            if (doomed) {
                doom_conn(conn, "send: " + err);
                return;
            }
        }
        if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) == 0) {
            return;
        }
        std::string reason = "connection closed by peer";
        bool desync = false;
        const auto st = conn->rd.pump(
            conn->fd,
            [&](Buffer frame) {
                const std::uint64_t corr = frame_corr(frame);
                Promise<Buffer> promise;
                bool found = false;
                {
                    const std::scoped_lock lock(conn->pending_mu);
                    const auto pit = conn->pending.find(corr);
                    if (pit != conn->pending.end()) {
                        promise = std::move(pit->second);
                        conn->pending.erase(pit);
                        found = true;
                    }
                }
                if (!found) {
                    // A response nothing asked for: the stream is
                    // desynced beyond recovery.
                    desync = true;
                    return;
                }
                // Completing the promise runs decode hooks (map_future);
                // they are lightweight by contract.
                promise.set_value(std::move(frame));
            },
            &reason);
        if (desync) {
            doom_conn(conn, "response with unknown correlation id");
            return;
        }
        if (st == FrameAssembler::Status::kAgain) {
            return;
        }
        doom_conn(conn, reason);
    });
}

Future<Buffer> TcpTransport::call_async(NodeId dst, ConstBytes frame) {
    if (frame.size() < kFrameHeaderSize) {
        throw RpcError("tcp send: short frame");
    }
    for (int attempt = 0;; ++attempt) {
        const std::shared_ptr<MuxConn> conn = get_conn(dst);
        const std::uint64_t corr = conn->next_corr.fetch_add(1);
        Promise<Buffer> promise;
        Future<Buffer> fut = promise.future();
        {
            const std::scoped_lock lock(conn->pending_mu);
            if (conn->dead.load()) {
                if (attempt == 0) {
                    continue;  // died under us; reconnect once
                }
                throw RpcError("tcp " + conn->peer +
                               ": connection dead before send");
            }
            conn->pending.emplace(corr, std::move(promise));
        }
        // The transport contract says the frame is fully consumed before
        // call_async returns, and the queue may outlive the caller's
        // buffer — so the correlation id is stamped into an owned copy.
        // (The one deliberate copy left on this path: zero-copy targets
        // responses, where the big bytes flow.)
        Buffer stamped(frame.begin(), frame.end());
        std::memcpy(stamped.data() + kFrameCorrOffset, &corr, sizeof corr);
        bool any_written = false;
        bool failed = false;
        std::string err = "send failed";
        {
            const std::scoped_lock lock(conn->send_mu);
            const std::size_t ahead = conn->wq.bytes();
            conn->wq.push(std::move(stamped), {});
            if (!conn->epollout) {
                std::size_t wrote = 0;
                const auto st = conn->wq.flush(conn->fd, &wrote, &err);
                if (st == FrameQueue::Flush::kParked) {
                    // Kernel buffer full: the loop finishes the write
                    // when the socket drains. A parked frame counts as
                    // sent — it will go out in order.
                    conn->epollout = true;
                    loop_->post([loop = loop_.get(), conn] {
                        if (!conn->unregistered.load()) {
                            loop->mod_fd(conn->fd, kConnEvents | EPOLLOUT);
                        }
                    });
                } else if (st == FrameQueue::Flush::kError) {
                    failed = true;
                    any_written = wrote > ahead;
                }
            }
        }
        if (!failed) {
            return fut;
        }
        // The stream is unusable (and, after a partial write, desynced).
        {
            const std::scoped_lock lock(conn->pending_mu);
            conn->pending.erase(corr);  // ours; we throw/retry instead
        }
        doom_conn(conn, "send failed on this connection");
        // Retry once on a fresh socket — but only when *nothing* of this
        // request reached the wire. Once bytes were written the server
        // may execute the call, and replaying a non-idempotent RPC
        // (assign, commit) is worse than surfacing the error.
        if (!any_written && attempt == 0) {
            continue;
        }
        throw RpcError("tcp " + conn->peer + ": send: " + err);
    }
}

// ---- TcpRpcServer ----------------------------------------------------------

struct TcpRpcServer::ServerConn {
    explicit ServerConn(int f) : fd(f) {}
    ~ServerConn() { ::close(fd); }

    ServerConn(const ServerConn&) = delete;
    ServerConn& operator=(const ServerConn&) = delete;

    int fd;
    net::EventLoop* loop = nullptr;
    std::size_t loop_idx = 0;

    /// Cleared when the connection is doomed: queued dispatch tasks
    /// skip their response writes.
    std::atomic<bool> ok{true};

    /// Requests accepted but not yet answered. An idle sweep never
    /// closes a connection with work in flight.
    std::atomic<std::uint32_t> busy{0};

    std::atomic<std::uint64_t> last_active_ms{0};

    FrameAssembler rd;  ///< loop thread only

    std::mutex wmu;  ///< guards wq, epollout, closed
    FrameQueue wq;
    bool epollout = false;
    /// Loop registration removed; set by close_conn (loop thread) so
    /// late response writes and posted EPOLLOUT arming stand down.
    bool closed = false;
};

TcpRpcServer::TcpRpcServer(Dispatcher& dispatcher, Options opts)
    : dispatcher_(dispatcher), opts_(std::move(opts)) {
    std::size_t workers = opts_.workers;
    if (workers == 0) {
        // Enough to keep slow handlers (blocking wait_published, large
        // chunk reads) from starving the quick ones, without flooding
        // few-core hosts with preempting workers.
        workers = std::max<std::size_t>(
            4, std::thread::hardware_concurrency());
    }
    workers_ = std::make_unique<ThreadPool>(workers);

    const std::size_t io_threads =
        opts_.io_threads != 0 ? opts_.io_threads : 2;
    reactor_ = std::make_unique<net::Reactor>(
        io_threads, [this](net::EventLoop& loop, std::size_t) {
            if (opts_.idle_timeout_ms != 0) {
                const auto period =
                    std::chrono::milliseconds(std::max<std::uint64_t>(
                        opts_.idle_timeout_ms / 4, 50));
                loop.set_tick(period,
                              [this, lp = &loop] { sweep_idle(lp); });
            }
        });

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) {
        throw RpcError("tcp socket: " + errno_string());
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (::inet_pton(AF_INET, opts_.bind_addr.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw RpcError("tcp bind: bad address " + opts_.bind_addr);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("tcp bind " + opts_.bind_addr + ":" +
                       std::to_string(opts_.port) + ": " + err);
    }
    // Connection bursts far beyond the old thread-per-connection scale
    // are the point of the reactor; give the kernel queue room to match.
    if (::listen(listen_fd_, 1024) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("tcp listen: " + err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    const MetricLabels labels{{"port", std::to_string(port_)}};
    loop_dispatch_.reserve(io_threads);
    for (std::size_t i = 0; i < io_threads; ++i) {
        loop_dispatch_.push_back(&MetricsRegistry::instance().counter(
            "rpc_loop_dispatch_total",
            {{"port", std::to_string(port_)},
             {"loop", std::to_string(i)}}));
    }
    metrics_.callback("rpc_server_worker_backlog", labels,
                      [this] { return workers_ ? workers_->backlog() : 0; });
    const auto conn_gauge = [this]() -> std::uint64_t {
        const std::scoped_lock lock(mu_);
        return conns_.size();
    };
    metrics_.callback("rpc_server_connections", labels, conn_gauge);
    metrics_.callback("rpc_connections", labels, conn_gauge);

    reactor_->loop(0).post([this] {
        reactor_->loop(0).add_fd(
            listen_fd_, EPOLLIN,
            [this](std::uint32_t events) { on_accept(events); });
    });
}

TcpRpcServer::TcpRpcServer(Dispatcher& dispatcher, std::uint16_t port,
                           const std::string& bind_addr, std::size_t workers)
    : TcpRpcServer(dispatcher, Options{port, bind_addr, workers}) {}

TcpRpcServer::~TcpRpcServer() { stop(); }

std::size_t TcpRpcServer::connection_count() const {
    const std::scoped_lock lock(mu_);
    return conns_.size();
}

void TcpRpcServer::stop() {
    // Unbind before tearing anything down: a concurrent registry
    // snapshot must not sample workers_ mid-reset.
    metrics_.release();
    {
        const std::scoped_lock lock(mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
        // Doomed connections make queued dispatch tasks skip their
        // writes; the shutdowns surface as readiness events the loops
        // consume as EOF.
        ::shutdown(listen_fd_, SHUT_RDWR);
        for (auto& [ptr, conn] : conns_) {
            conn->ok.store(false);
            ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    // Joining the loops retires every read path: no request can arrive
    // past this point.
    reactor_->stop();
    // Draining the pool bounds on the slowest in-flight handler — its
    // response write is skipped (ok is false). The dedicated blocking-op
    // threads drain next (wait_published has a client-set timeout).
    workers_.reset();
    {
        std::unique_lock lock(mu_);
        conn_done_.wait(lock, [this] { return blocking_ops_ == 0; });
    }
    // Destroying the loops drops the handler-captured connection
    // references; clearing the map drops the rest, and the fds close in
    // the ServerConn destructors.
    reactor_.reset();
    {
        const std::scoped_lock lock(mu_);
        conns_.clear();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void TcpRpcServer::on_accept(std::uint32_t /*events*/) {
    for (;;) {
        const int fd =
            ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;  // drained (EAGAIN) or listener shut down
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_shared<ServerConn>(fd);
        conn->last_active_ms.store(now_ms());
        net::EventLoop& loop = reactor_->next();
        conn->loop = &loop;
        for (std::size_t i = 0; i < reactor_->size(); ++i) {
            if (&reactor_->loop(i) == &loop) {
                conn->loop_idx = i;
                break;
            }
        }
        {
            const std::scoped_lock lock(mu_);
            if (stopping_) {
                return;  // conn's destructor closes the fd
            }
            conns_.emplace(conn.get(), conn);
        }
        register_conn(conn);
    }
}

void TcpRpcServer::register_conn(const std::shared_ptr<ServerConn>& conn) {
    // add_fd is loop-thread-only, and the accept handler runs on loop 0
    // while this connection may belong to a sibling loop.
    conn->loop->post([this, conn] {
        conn->loop->add_fd(
            conn->fd, kConnEvents, [this, conn](std::uint32_t events) {
                if ((events & EPOLLERR) != 0) {
                    close_conn(conn);
                    return;
                }
                if ((events & EPOLLOUT) != 0) {
                    on_writable(conn);
                    // on_writable closes on error; a closed connection
                    // must not be read.
                    bool closed;
                    {
                        const std::scoped_lock lock(conn->wmu);
                        closed = conn->closed;
                    }
                    if (closed) {
                        return;
                    }
                }
                if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
                    on_readable(conn, events);
                }
            });
    });
}

void TcpRpcServer::on_readable(const std::shared_ptr<ServerConn>& conn,
                               std::uint32_t /*events*/) {
    std::string err;
    const auto st = conn->rd.pump(
        conn->fd,
        [&](Buffer request) { handle_frame(conn, std::move(request)); },
        &err);
    switch (st) {
        case FrameAssembler::Status::kAgain:
            return;
        case FrameAssembler::Status::kEof:
            break;  // peer closed cleanly
        case FrameAssembler::Status::kError:
            // Malformed frame or connection reset: drop the connection.
            // The client's transport reconnects transparently.
            log_debug("rpc-server", "connection dropped: " + err);
            break;
    }
    close_conn(conn);
}

void TcpRpcServer::handle_frame(const std::shared_ptr<ServerConn>& conn,
                                Buffer request) {
    conn->last_active_ms.store(now_ms(), std::memory_order_relaxed);
    loop_dispatch_[conn->loop_idx]->add();
    const TimePoint received_at = Clock::now();
    conn->busy.fetch_add(1);
    // Requests that block by design must not occupy a pool worker:
    // enough parked wait_published calls would exhaust the pool and
    // stall the very commit frame that wakes them.
    std::uint16_t tag = 0;
    std::memcpy(&tag, request.data() + 6, sizeof tag);
    if (static_cast<MsgType>(tag) == MsgType::kWaitPublished) {
        {
            const std::scoped_lock lock(mu_);
            ++blocking_ops_;
        }
        std::thread([this, conn, received_at,
                     req = std::move(request)]() mutable {
            answer(conn, req, received_at);
            conn->busy.fetch_sub(1);
            const std::scoped_lock lock(mu_);
            --blocking_ops_;
            conn_done_.notify_all();
        }).detach();
        return;
    }
    // Everything else goes to the pool: a slow handler must block
    // neither the loop nor its sibling connections. The task shares
    // ownership of the connection so the response write races neither
    // close nor fd-number reuse.
    workers_->post([this, conn, received_at,
                    req = std::move(request)]() mutable {
        answer(conn, req, received_at);
        conn->busy.fetch_sub(1);
    });
}

void TcpRpcServer::answer(const std::shared_ptr<ServerConn>& conn,
                          const Buffer& request, TimePoint received_at) {
    RpcResponse response =
        opts_.zero_copy
            ? dispatcher_.dispatch_sg(request, received_at)
            : RpcResponse(dispatcher_.dispatch(request, received_at));
    if (!conn->ok.load()) {
        return;  // connection doomed; spare the write
    }
    send_response(conn, std::move(response));
}

void TcpRpcServer::send_response(const std::shared_ptr<ServerConn>& conn,
                                 RpcResponse&& resp) {
    bool doom = false;
    {
        const std::scoped_lock lock(conn->wmu);
        if (conn->closed || !conn->ok.load()) {
            return;
        }
        conn->wq.push(std::move(resp.head), std::move(resp.tail));
        if (conn->epollout) {
            return;  // EPOLLOUT armed; the loop drains in order
        }
        std::string err;
        const auto st = conn->wq.flush(conn->fd, nullptr, &err);
        if (st == FrameQueue::Flush::kParked) {
            // Kernel buffer full (a slow or absent reader): park the
            // remainder and let writability events finish the job —
            // backpressure without a blocked thread.
            conn->epollout = true;
            if (conn->loop->on_loop_thread()) {
                conn->loop->mod_fd(conn->fd, kConnEvents | EPOLLOUT);
            } else {
                conn->loop->post([conn] {
                    const std::scoped_lock l2(conn->wmu);
                    if (!conn->closed && conn->epollout) {
                        conn->loop->mod_fd(conn->fd,
                                           kConnEvents | EPOLLOUT);
                    }
                });
            }
        } else if (st == FrameQueue::Flush::kError) {
            // Peer gone mid-response: doom the connection so sibling
            // responses stop writing into the void.
            conn->wq.clear();
            doom = true;
        }
    }
    if (doom) {
        conn->ok.store(false);
        // The loop consumes the shutdown as EOF and runs close_conn.
        ::shutdown(conn->fd, SHUT_RDWR);
    }
}

void TcpRpcServer::on_writable(const std::shared_ptr<ServerConn>& conn) {
    bool doom = false;
    {
        const std::scoped_lock lock(conn->wmu);
        if (conn->closed) {
            return;
        }
        std::string err;
        const auto st = conn->wq.flush(conn->fd, nullptr, &err);
        if (st == FrameQueue::Flush::kDrained) {
            conn->epollout = false;
            conn->loop->mod_fd(conn->fd, kConnEvents);
        } else if (st == FrameQueue::Flush::kError) {
            conn->wq.clear();
            doom = true;
        }
        // kParked: kernel still full; stay armed.
    }
    if (doom) {
        close_conn(conn);
    }
}

void TcpRpcServer::close_conn(const std::shared_ptr<ServerConn>& conn) {
    {
        const std::scoped_lock lock(conn->wmu);
        if (conn->closed) {
            return;
        }
        conn->closed = true;
        conn->wq.clear();  // releases any parked borrowed tails (pins)
    }
    conn->ok.store(false);
    conn->loop->del_fd(conn->fd);
    ::shutdown(conn->fd, SHUT_RDWR);
    {
        const std::scoped_lock lock(mu_);
        conns_.erase(conn.get());
        conn_done_.notify_all();
    }
    // In-flight dispatch tasks still hold references; the fd closes in
    // ~ServerConn when the last one finishes.
}

void TcpRpcServer::sweep_idle(net::EventLoop* loop) {
    const std::uint64_t now = now_ms();
    std::vector<std::shared_ptr<ServerConn>> victims;
    {
        const std::scoped_lock lock(mu_);
        for (const auto& [ptr, conn] : conns_) {
            if (conn->loop != loop) {
                continue;  // each loop sweeps only its own connections
            }
            if (conn->busy.load() != 0) {
                continue;
            }
            const std::uint64_t last =
                conn->last_active_ms.load(std::memory_order_relaxed);
            if (now - last < opts_.idle_timeout_ms) {
                continue;
            }
            victims.push_back(conn);
        }
    }
    for (const auto& conn : victims) {
        bool quiet;
        {
            const std::scoped_lock lock(conn->wmu);
            quiet = conn->wq.empty() && !conn->closed;
        }
        if (quiet) {
            // The tick runs on the owning loop thread, so this is the
            // loop-thread-only teardown path.
            close_conn(conn);
        }
    }
}

}  // namespace blobseer::rpc
