#include "rpc/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/protocol.hpp"

namespace blobseer::rpc {

namespace {

[[nodiscard]] std::string errno_string() {
    return std::string(std::strerror(errno));
}

/// Write the whole buffer or throw. MSG_NOSIGNAL: a peer reset must be
/// an RpcError, not a SIGPIPE process kill. \p any_written (optional)
/// reports whether at least one byte entered the socket before a
/// failure — the caller's retry decision hinges on it.
void write_all(int fd, ConstBytes data, bool* any_written = nullptr) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw RpcError("tcp send: " + errno_string());
        }
        off += static_cast<std::size_t>(n);
        if (any_written != nullptr && n > 0) {
            *any_written = true;
        }
    }
}

/// Buffered frame reader: one recv() pulls as many queued frames as the
/// kernel has ready, so a deep in-flight window of small frames costs a
/// fraction of a syscall per frame instead of two. Reads that dwarf the
/// bounce buffer go straight into the caller's storage. One reader per
/// socket (the mux reader thread / the server connection thread), so no
/// locking.
class BufferedReader {
  public:
    explicit BufferedReader(int fd) : fd_(fd), buf_(64 << 10) {}

    /// Read exactly out.size() bytes. Returns false on clean EOF before
    /// the first byte; throws on mid-read EOF or socket error.
    bool read_exact(MutableBytes out) {
        std::size_t off = 0;
        while (off < out.size()) {
            if (pos_ == end_) {
                const std::size_t want = out.size() - off;
                if (want >= buf_.size()) {
                    // Large remainder (chunk payloads): skip the bounce
                    // buffer, recv straight into the target.
                    const ssize_t n = ::recv(fd_, out.data() + off, want, 0);
                    if (n == 0) {
                        return eof(off);
                    }
                    if (n < 0) {
                        check_recv_errno();
                        continue;
                    }
                    off += static_cast<std::size_t>(n);
                    continue;
                }
                const ssize_t n = ::recv(fd_, buf_.data(), buf_.size(), 0);
                if (n == 0) {
                    return eof(off);
                }
                if (n < 0) {
                    check_recv_errno();
                    continue;
                }
                pos_ = 0;
                end_ = static_cast<std::size_t>(n);
            }
            const std::size_t take =
                std::min(out.size() - off, end_ - pos_);
            std::memcpy(out.data() + off, buf_.data() + pos_, take);
            pos_ += take;
            off += take;
        }
        return true;
    }

  private:
    static bool eof(std::size_t off) {
        if (off == 0) {
            return false;
        }
        throw RpcError("tcp recv: connection closed mid-frame");
    }

    static void check_recv_errno() {
        if (errno != EINTR) {
            throw RpcError("tcp recv: " + errno_string());
        }
    }

    int fd_;
    Buffer buf_;
    std::size_t pos_ = 0;
    std::size_t end_ = 0;
};

/// Read one whole frame (header + payload). Returns empty buffer on
/// clean EOF before a header.
[[nodiscard]] Buffer read_frame(BufferedReader& in) {
    Buffer frame(kFrameHeaderSize);
    if (!in.read_exact(frame)) {
        return {};
    }
    // Validate the header before trusting its length field.
    std::uint32_t magic = 0;
    std::uint32_t len = 0;
    std::memcpy(&magic, frame.data(), 4);
    std::memcpy(&len, frame.data() + 12, 4);
    if (magic != kFrameMagic) {
        throw RpcError("tcp recv: bad frame magic");
    }
    if (len > kMaxPayload) {
        throw RpcError("tcp recv: oversized frame (" + std::to_string(len) +
                       " bytes)");
    }
    frame.resize(kFrameHeaderSize + len);
    if (len != 0 &&
        !in.read_exact(MutableBytes(frame.data() + kFrameHeaderSize, len))) {
        throw RpcError("tcp recv: connection closed mid-frame");
    }
    return frame;
}

[[nodiscard]] int connect_to(const Endpoint& ep) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints,
                                     &res);
        rc != 0) {
        throw RpcError("tcp resolve " + ep.host + ": " +
                       ::gai_strerror(rc));
    }
    int fd = -1;
    std::string last_error = "no addresses";
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = errno_string();
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            break;
        }
        last_error = errno_string();
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        throw RpcError("tcp connect " + ep.host + ":" + port + ": " +
                       last_error);
    }
    // Small request/response frames must not wait for Nagle coalescing.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

}  // namespace

// ---- TcpTransport ----------------------------------------------------------

struct TcpTransport::MuxConn {
    int fd = -1;
    std::string peer;  ///< "host:port", for error messages

    /// Set (under pending_mu) the moment the connection is doomed; a
    /// dead connection accepts no new requests and is replaced by the
    /// next get_conn().
    std::atomic<bool> dead{false};

    std::atomic<std::uint64_t> next_corr{1};

    std::mutex send_mu;  ///< serializes request frame writes

    std::mutex pending_mu;  // guards pending
    std::unordered_map<std::uint64_t, Promise<Buffer>> pending;

    std::thread reader;

    /// Fail every request still awaiting a response. Idempotent: the
    /// table is swapped out under the lock, so concurrent callers (the
    /// reader exiting, a failed sender) each fail a disjoint set.
    void fail_all(const std::string& reason) {
        std::unordered_map<std::uint64_t, Promise<Buffer>> doomed;
        {
            const std::scoped_lock lock(pending_mu);
            doomed.swap(pending);
        }
        for (auto& [corr, promise] : doomed) {
            promise.set_exception(std::make_exception_ptr(
                RpcError("tcp " + peer + ": " + reason)));
        }
    }
};

void TcpTransport::reader_loop(const std::shared_ptr<MuxConn>& conn) {
    std::string reason = "connection closed by peer";
    try {
        BufferedReader in(conn->fd);
        for (;;) {
            Buffer frame = read_frame(in);
            if (frame.empty()) {
                break;  // clean EOF
            }
            const std::uint64_t corr = frame_corr(frame);
            Promise<Buffer> promise;
            {
                const std::scoped_lock lock(conn->pending_mu);
                const auto it = conn->pending.find(corr);
                if (it == conn->pending.end()) {
                    // A response nothing asked for: the stream is
                    // desynced beyond recovery.
                    throw RpcError(
                        "tcp recv: response with unknown correlation id " +
                        std::to_string(corr));
                }
                promise = std::move(it->second);
                conn->pending.erase(it);
            }
            // Completing the promise runs decode hooks (map_future);
            // they are lightweight by contract.
            promise.set_value(std::move(frame));
        }
    } catch (const std::exception& e) {
        reason = e.what();
    }
    {
        // dead is flipped under pending_mu so no new request can
        // register against a connection that will never answer it.
        const std::scoped_lock lock(conn->pending_mu);
        conn->dead.store(true);
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->fail_all(reason);
}

TcpTransport::TcpTransport(std::string host, std::uint16_t port)
    : default_endpoint_{std::move(host), port} {}

TcpTransport::TcpTransport(std::unordered_map<NodeId, Endpoint> peers)
    : peers_(std::move(peers)) {}

TcpTransport::~TcpTransport() {
    std::unordered_map<std::string, std::shared_ptr<MuxConn>> conns;
    std::vector<std::shared_ptr<MuxConn>> graveyard;
    {
        const std::scoped_lock lock(mu_);
        conns.swap(conns_);
        graveyard.swap(graveyard_);
    }
    for (auto& [key, conn] : conns) {
        {
            const std::scoped_lock lock(conn->pending_mu);
            conn->dead.store(true);
        }
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto& [key, conn] : conns) {
        if (conn->reader.joinable()) {
            conn->reader.join();  // reader fails all in-flight futures
        }
        ::close(conn->fd);
    }
    for (auto& conn : graveyard) {
        if (conn->reader.joinable()) {
            conn->reader.join();
        }
        ::close(conn->fd);
    }
}

void TcpTransport::add_peer(NodeId node, Endpoint endpoint) {
    const std::scoped_lock lock(peers_mu_);
    peers_[node] = std::move(endpoint);
}

Endpoint TcpTransport::endpoint_of(NodeId dst) const {
    const std::scoped_lock lock(peers_mu_);
    const auto it = peers_.find(dst);
    if (it != peers_.end()) {
        return it->second;
    }
    // Unknown node: an all-in-one daemon hosts every node not explicitly
    // mapped, so fall back to its address when one was configured.
    if (!default_endpoint_.host.empty()) {
        return default_endpoint_;
    }
    throw RpcError("no endpoint for node " + std::to_string(dst));
}

void TcpTransport::retire_locked(std::shared_ptr<MuxConn> conn) {
    // The socket is already shut down (by whoever declared it dead);
    // the reader exits promptly and reap_graveyard()/~TcpTransport
    // joins it.
    graveyard_.push_back(std::move(conn));
}

void TcpTransport::reap_graveyard() {
    std::vector<std::shared_ptr<MuxConn>> doomed;
    {
        const std::scoped_lock lock(mu_);
        doomed.swap(graveyard_);
    }
    for (auto& conn : doomed) {
        if (conn->reader.joinable()) {
            conn->reader.join();
        }
        ::close(conn->fd);
    }
}

std::shared_ptr<TcpTransport::MuxConn> TcpTransport::get_conn(NodeId dst) {
    reap_graveyard();
    const Endpoint ep = endpoint_of(dst);
    const std::string key = ep.host + ":" + std::to_string(ep.port);
    {
        const std::scoped_lock lock(mu_);
        const auto it = conns_.find(key);
        if (it != conns_.end()) {
            const std::shared_ptr<MuxConn>& conn = it->second;
            bool healthy = !conn->dead.load();
            if (healthy) {
                // An idle connection may have died silently (daemon
                // restart) without the reader having run yet. Peek for
                // EOF/stray bytes — but only declare it dead while the
                // pending table is verifiably empty, so a request that
                // registers concurrently is never swept up.
                bool idle;
                {
                    const std::scoped_lock plock(conn->pending_mu);
                    idle = conn->pending.empty();
                }
                if (idle) {
                    char probe = 0;
                    const ssize_t n = ::recv(conn->fd, &probe, 1,
                                             MSG_PEEK | MSG_DONTWAIT);
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK)) {
                        // Healthy idle connection: nothing to read yet.
                    } else {
                        const std::scoped_lock plock(conn->pending_mu);
                        if (conn->pending.empty()) {
                            // Still idle and readable/EOF: stale.
                            conn->dead.store(true);
                            healthy = false;
                        }
                    }
                }
            }
            if (healthy) {
                return conn;
            }
            ::shutdown(conn->fd, SHUT_RDWR);
            retire_locked(std::move(it->second));
            conns_.erase(it);
        }
    }
    // Connect outside the lock — name resolution and the TCP handshake
    // must not stall unrelated peers.
    auto fresh = std::make_shared<MuxConn>();
    fresh->fd = connect_to(ep);
    fresh->peer = key;
    fresh->reader = std::thread([fresh] { reader_loop(fresh); });
    {
        const std::scoped_lock lock(mu_);
        const auto [it, inserted] = conns_.emplace(key, fresh);
        if (!inserted) {
            if (!it->second->dead.load()) {
                // Lost a connect race: use the winner, discard ours.
                std::shared_ptr<MuxConn> winner = it->second;
                {
                    const std::scoped_lock plock(fresh->pending_mu);
                    fresh->dead.store(true);
                }
                ::shutdown(fresh->fd, SHUT_RDWR);
                retire_locked(std::move(fresh));
                return winner;
            }
            ::shutdown(it->second->fd, SHUT_RDWR);
            retire_locked(std::move(it->second));
            it->second = fresh;
        }
    }
    return fresh;
}

Future<Buffer> TcpTransport::call_async(NodeId dst, ConstBytes frame) {
    if (frame.size() < kFrameHeaderSize) {
        throw RpcError("tcp send: short frame");
    }
    for (int attempt = 0;; ++attempt) {
        const std::shared_ptr<MuxConn> conn = get_conn(dst);
        const std::uint64_t corr = conn->next_corr.fetch_add(1);
        Promise<Buffer> promise;
        Future<Buffer> fut = promise.future();
        {
            const std::scoped_lock lock(conn->pending_mu);
            if (conn->dead.load()) {
                if (attempt == 0) {
                    continue;  // died under us; reconnect once
                }
                throw RpcError("tcp " + conn->peer +
                               ": connection dead before send");
            }
            conn->pending.emplace(corr, std::move(promise));
        }
        bool any_written = false;
        try {
            // The caller's sealed frame is immutable, so the correlation
            // id is stamped into a copy: small frames are coalesced into
            // one buffer (one send() instead of two — most requests are
            // tiny), large ones send a patched header then the payload
            // straight from the caller's buffer.
            constexpr std::size_t kCoalesceLimit = 16 << 10;
            if (frame.size() <= kCoalesceLimit) {
                Buffer stamped(frame.begin(), frame.end());
                std::memcpy(stamped.data() + kFrameCorrOffset, &corr,
                            sizeof corr);
                const std::scoped_lock lock(conn->send_mu);
                write_all(conn->fd, stamped, &any_written);
            } else {
                std::uint8_t header[kFrameHeaderSize];
                std::memcpy(header, frame.data(), kFrameHeaderSize);
                std::memcpy(header + kFrameCorrOffset, &corr, sizeof corr);
                const std::scoped_lock lock(conn->send_mu);
                write_all(conn->fd, ConstBytes(header, kFrameHeaderSize),
                          &any_written);
                write_all(conn->fd, frame.subspan(kFrameHeaderSize),
                          &any_written);
            }
            return fut;
        } catch (const RpcError&) {
            // The stream is unusable (and, after a partial write,
            // desynced): doom the connection and fail everything on it.
            {
                const std::scoped_lock lock(conn->pending_mu);
                conn->dead.store(true);
                conn->pending.erase(corr);  // ours; we throw/retry instead
            }
            ::shutdown(conn->fd, SHUT_RDWR);
            conn->fail_all("send failed on this connection");
            // Retry once on a fresh socket — but only when *nothing* of
            // this request reached the wire. Once bytes were written the
            // server may execute the call, and replaying a
            // non-idempotent RPC (assign, commit) is worse than
            // surfacing the error.
            if (!any_written && attempt == 0) {
                continue;
            }
            throw;
        }
    }
}

// ---- TcpRpcServer ----------------------------------------------------------

TcpRpcServer::ServerConn::~ServerConn() { ::close(fd); }

TcpRpcServer::TcpRpcServer(Dispatcher& dispatcher, std::uint16_t port,
                           const std::string& bind_addr, std::size_t workers)
    : dispatcher_(dispatcher) {
    if (workers == 0) {
        // Enough to keep slow handlers (blocking wait_published, large
        // chunk reads) from starving the quick ones, without flooding
        // few-core hosts with preempting workers.
        workers = std::max<std::size_t>(
            4, std::thread::hardware_concurrency());
    }
    workers_ = std::make_unique<ThreadPool>(workers);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw RpcError("tcp socket: " + errno_string());
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw RpcError("tcp bind: bad address " + bind_addr);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("tcp bind " + bind_addr + ":" + std::to_string(port) +
                       ": " + err);
    }
    if (::listen(listen_fd_, 64) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("tcp listen: " + err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    const MetricLabels labels{{"port", std::to_string(port_)}};
    metrics_.callback("rpc_server_worker_backlog", labels,
                      [this] { return workers_ ? workers_->backlog() : 0; });
    metrics_.callback("rpc_server_connections", labels, [this] {
        const std::scoped_lock lock(mu_);
        return active_conns_;
    });

    accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpRpcServer::~TcpRpcServer() { stop(); }

void TcpRpcServer::stop() {
    // Unbind before tearing anything down: a concurrent registry
    // snapshot must not sample workers_ mid-reset.
    metrics_.release();
    {
        const std::scoped_lock lock(mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
        // Unblock the accept loop and every connection read; doomed
        // connections make queued dispatch tasks skip their writes.
        ::shutdown(listen_fd_, SHUT_RDWR);
        for (auto& [fd, conn] : conns_) {
            conn->ok.store(false);
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    {
        std::unique_lock lock(mu_);
        conn_done_.wait(lock, [this] { return active_conns_ == 0; });
    }
    // Every reader has exited, so no new work arrives; draining the
    // pool and the dedicated blocking-op threads bounds on the slowest
    // in-flight handler (their response writes fail fast on the
    // shut-down sockets, and wait_published has a client-set timeout).
    workers_.reset();
    {
        std::unique_lock lock(mu_);
        conn_done_.wait(lock, [this] { return blocking_ops_ == 0; });
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void TcpRpcServer::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;  // listener shut down
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        const std::scoped_lock lock(mu_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        auto conn = std::make_shared<ServerConn>(fd);
        conns_.emplace(fd, conn);
        ++active_conns_;
        // Detached: a finished connection leaves nothing behind; stop()
        // synchronizes on active_conns_ instead of thread handles.
        std::thread([this, conn] { serve(conn); }).detach();
    }
}

void TcpRpcServer::answer(const std::shared_ptr<ServerConn>& conn,
                          const Buffer& request, TimePoint received_at) {
    const Buffer response = dispatcher_.dispatch(request, received_at);
    if (!conn->ok.load()) {
        return;  // connection doomed; spare the write
    }
    try {
        const std::scoped_lock lock(conn->send_mu);
        write_all(conn->fd, response);
    } catch (const RpcError&) {
        // Peer gone mid-response: doom the connection so sibling
        // responses stop writing into the void.
        conn->ok.store(false);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
}

void TcpRpcServer::serve(const std::shared_ptr<ServerConn>& conn) {
    try {
        BufferedReader in(conn->fd);
        for (;;) {
            Buffer request = read_frame(in);
            if (request.empty()) {
                break;  // peer closed cleanly
            }
            const TimePoint received_at = Clock::now();
            // Requests that block by design must not occupy a pool
            // worker: enough parked wait_published calls would exhaust
            // the pool and stall the very commit frame that wakes them.
            std::uint16_t tag = 0;
            std::memcpy(&tag, request.data() + 6, sizeof tag);
            if (static_cast<MsgType>(tag) == MsgType::kWaitPublished) {
                {
                    const std::scoped_lock lock(mu_);
                    ++blocking_ops_;
                }
                std::thread([this, conn, received_at,
                             req = std::move(request)]() mutable {
                    answer(conn, req, received_at);
                    const std::scoped_lock lock(mu_);
                    --blocking_ops_;
                    conn_done_.notify_all();
                }).detach();
                continue;
            }
            // Everything else goes to the pool: a slow handler must not
            // block the requests queued behind it on this connection.
            // The task shares ownership of the connection so the
            // response write races neither close() nor fd-number reuse.
            workers_->post([this, conn, received_at,
                            req = std::move(request)]() mutable {
                answer(conn, req, received_at);
            });
        }
    } catch (const RpcError& e) {
        // Malformed frame or connection reset: drop the connection. The
        // client's transport reconnects transparently.
        log_debug("rpc-server", e.what());
    } catch (const std::exception& e) {
        // Anything else (e.g. bad_alloc on a hostile frame length) must
        // not escape the thread — that would terminate the daemon.
        log_debug("rpc-server",
                  std::string("connection dropped: ") + e.what());
    }
    // No more requests will arrive; responses still in flight hold
    // their own reference. Shut the socket down so they fail fast if
    // the peer is truly gone.
    conn->ok.store(false);
    ::shutdown(conn->fd, SHUT_RDWR);
    {
        const std::scoped_lock lock(mu_);
        conns_.erase(conn->fd);
        --active_conns_;
        // Notify under the lock: stop() may destroy this object the
        // moment it observes active_conns_ == 0, so the cv must not be
        // touched after the lock is released.
        conn_done_.notify_all();
    }
}

}  // namespace blobseer::rpc
