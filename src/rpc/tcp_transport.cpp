#include "rpc/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "rpc/dispatcher.hpp"
#include "rpc/protocol.hpp"

namespace blobseer::rpc {

namespace {

[[nodiscard]] std::string errno_string() {
    return std::string(std::strerror(errno));
}

/// Write the whole buffer or throw. MSG_NOSIGNAL: a peer reset must be
/// an RpcError, not a SIGPIPE process kill.
void write_all(int fd, ConstBytes data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw RpcError("tcp send: " + errno_string());
        }
        off += static_cast<std::size_t>(n);
    }
}

/// Read exactly n bytes. Returns false on clean EOF at offset 0 (peer
/// closed between frames); throws on mid-frame EOF or socket error.
bool read_exact(int fd, MutableBytes out) {
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n = ::recv(fd, out.data() + off, out.size() - off, 0);
        if (n == 0) {
            if (off == 0) {
                return false;
            }
            throw RpcError("tcp recv: connection closed mid-frame");
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw RpcError("tcp recv: " + errno_string());
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// Read one whole frame (header + payload). Returns empty buffer on
/// clean EOF before a header.
[[nodiscard]] Buffer read_frame(int fd) {
    Buffer frame(kFrameHeaderSize);
    if (!read_exact(fd, frame)) {
        return {};
    }
    // Validate the header before trusting its length field.
    std::uint32_t magic = 0;
    std::uint32_t len = 0;
    std::memcpy(&magic, frame.data(), 4);
    std::memcpy(&len, frame.data() + 12, 4);
    if (magic != kFrameMagic) {
        throw RpcError("tcp recv: bad frame magic");
    }
    if (len > kMaxPayload) {
        throw RpcError("tcp recv: oversized frame (" + std::to_string(len) +
                       " bytes)");
    }
    frame.resize(kFrameHeaderSize + len);
    if (len != 0 &&
        !read_exact(fd, MutableBytes(frame.data() + kFrameHeaderSize, len))) {
        throw RpcError("tcp recv: connection closed mid-frame");
    }
    return frame;
}

[[nodiscard]] int connect_to(const Endpoint& ep) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints,
                                     &res);
        rc != 0) {
        throw RpcError("tcp resolve " + ep.host + ": " +
                       ::gai_strerror(rc));
    }
    int fd = -1;
    std::string last_error = "no addresses";
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = errno_string();
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            break;
        }
        last_error = errno_string();
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        throw RpcError("tcp connect " + ep.host + ":" + port + ": " +
                       last_error);
    }
    // Small request/response frames must not wait for Nagle coalescing.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

}  // namespace

// ---- TcpTransport ----------------------------------------------------------

TcpTransport::TcpTransport(std::string host, std::uint16_t port)
    : default_endpoint_{std::move(host), port} {}

TcpTransport::TcpTransport(std::unordered_map<NodeId, Endpoint> peers)
    : peers_(std::move(peers)) {}

TcpTransport::~TcpTransport() {
    const std::scoped_lock lock(mu_);
    for (auto& [node, fds] : pool_) {
        for (const int fd : fds) {
            ::close(fd);
        }
    }
}

const Endpoint& TcpTransport::endpoint_of(NodeId dst) const {
    if (!peers_.empty()) {
        const auto it = peers_.find(dst);
        if (it == peers_.end()) {
            throw RpcError("no endpoint for node " + std::to_string(dst));
        }
        return it->second;
    }
    return default_endpoint_;
}

TcpTransport::Conn TcpTransport::acquire(NodeId dst) {
    for (;;) {
        int fd = -1;
        {
            const std::scoped_lock lock(mu_);
            const auto it = pool_.find(dst);
            if (it != pool_.end() && !it->second.empty()) {
                fd = it->second.back();
                it->second.pop_back();
            }
        }
        if (fd < 0) {
            break;
        }
        // A pooled connection may have died while idle (daemon restart,
        // server-side close). Detect it here instead of retrying the
        // request after a failed round trip: a dead or desynced socket
        // is readable (EOF or stray bytes) before we have sent anything.
        char probe = 0;
        const ssize_t n =
            ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        // Healthy idle connection: nothing to read yet (EAGAIN). EOF,
        // stray bytes, or a socket error all mean stale/desynced.
        if (n >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
            ::close(fd);
            continue;  // try the next pooled one
        }
        return {fd, true};
    }
    return {connect_to(endpoint_of(dst)), false};
}

void TcpTransport::release(NodeId dst, int fd) {
    const std::scoped_lock lock(mu_);
    pool_[dst].push_back(fd);
}

Buffer TcpTransport::roundtrip(NodeId dst, ConstBytes frame) {
    for (int attempt = 0;; ++attempt) {
        const Conn conn = acquire(dst);
        Phase phase = Phase::kSend;
        try {
            write_all(conn.fd, frame);
            phase = Phase::kReceive;
            Buffer resp = read_frame(conn.fd);
            if (resp.empty()) {
                throw RpcError("tcp recv: connection closed by peer");
            }
            release(dst, conn.fd);
            return resp;
        } catch (const RpcError&) {
            ::close(conn.fd);
            // A pooled connection may have gone stale (server idle
            // timeout, daemon restart): retry once on a fresh socket —
            // but only when the *send* failed. Once the request was
            // written the server may have executed it, and replaying a
            // non-idempotent RPC (assign, commit) is worse than
            // surfacing the error.
            if (conn.reused && attempt == 0 && phase == Phase::kSend) {
                continue;
            }
            throw;
        }
    }
}

// ---- TcpRpcServer ----------------------------------------------------------

TcpRpcServer::TcpRpcServer(Dispatcher& dispatcher, std::uint16_t port,
                           const std::string& bind_addr)
    : dispatcher_(dispatcher) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw RpcError("tcp socket: " + errno_string());
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw RpcError("tcp bind: bad address " + bind_addr);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("tcp bind " + bind_addr + ":" + std::to_string(port) +
                       ": " + err);
    }
    if (::listen(listen_fd_, 64) != 0) {
        const std::string err = errno_string();
        ::close(listen_fd_);
        throw RpcError("tcp listen: " + err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpRpcServer::~TcpRpcServer() { stop(); }

void TcpRpcServer::stop() {
    {
        const std::scoped_lock lock(mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
        // Unblock the accept loop and every connection read.
        ::shutdown(listen_fd_, SHUT_RDWR);
        for (const int fd : conn_fds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    {
        std::unique_lock lock(mu_);
        conn_done_.wait(lock, [this] { return active_conns_ == 0; });
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void TcpRpcServer::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            return;  // listener shut down
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        const std::scoped_lock lock(mu_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        conn_fds_.insert(fd);
        ++active_conns_;
        // Detached: a finished connection leaves nothing behind; stop()
        // synchronizes on active_conns_ instead of thread handles.
        std::thread([this, fd] { serve(fd); }).detach();
    }
}

void TcpRpcServer::serve(int fd) {
    try {
        for (;;) {
            const Buffer request = read_frame(fd);
            if (request.empty()) {
                break;  // peer closed cleanly
            }
            const Buffer response = dispatcher_.dispatch(request);
            write_all(fd, response);
        }
    } catch (const RpcError& e) {
        // Malformed frame or connection reset: drop the connection. The
        // client's pool reconnects transparently.
        log_debug("rpc-server", e.what());
    } catch (const std::exception& e) {
        // Anything else (e.g. bad_alloc on a hostile frame length) must
        // not escape the thread — that would terminate the daemon.
        log_debug("rpc-server",
                  std::string("connection dropped: ") + e.what());
    }
    {
        // Untrack before closing: once this fd is closed the kernel may
        // hand the same number to a concurrent accept, and erasing it
        // afterwards would untrack the NEW connection (stop() would then
        // never shut it down and hang waiting for it).
        const std::scoped_lock lock(mu_);
        conn_fds_.erase(fd);
    }
    ::close(fd);
    {
        const std::scoped_lock lock(mu_);
        --active_conns_;
        // Notify under the lock: stop() may destroy this object the
        // moment it observes active_conns_ == 0, so the cv must not be
        // touched after the lock is released.
        conn_done_.notify_all();
    }
}

}  // namespace blobseer::rpc
