/// \file protocol.hpp
/// \brief Frame layout, message-type tags and the error status mapping of
///        the BlobSeer wire protocol.
///
/// Frame layout (DESIGN.md §7.1), fixed 40-byte header + payload:
///
///   offset  size  field
///   0       4     magic 0x42535250 ("BSRP" little-endian)
///   4       1     wire version (kWireVersion)
///   5       1     kind: 0 = request, 1 = response
///   6       2     message type tag (MsgType)
///   8       4     request: destination node id / response: status code
///   12      4     payload length in bytes
///   16      8     correlation id (response echoes its request's)
///   24      8     trace id (0 = untraced)
///   32      4     span id of the carrying RPC
///   36      1     trace flags (bit 0: sampled)
///   37      3     reserved, zero
///   40      ...   payload (message codec, see messages.hpp)
///
/// The correlation id is what lets one connection carry many in-flight
/// requests with out-of-order responses (protocol v3): a multiplexing
/// transport stamps each outgoing request with a per-connection unique
/// id, the dispatcher echoes it into the response, and the transport's
/// reader matches responses back to their futures by id. Transports
/// that dispatch inline (SimTransport) may leave it 0 everywhere.
///
/// The trace context (protocol v7, DESIGN.md §13) follows the same
/// stamped-after-seal pattern: ServiceClient writes the calling thread's
/// trace id + a fresh span id into each outgoing request, the dispatcher
/// installs them around the handler so nested RPCs inherit the trace,
/// and responses echo the request's context back for symmetry. All-zero
/// means untraced and costs nothing beyond the header bytes.
///
/// The destination node id travels *in the frame* so that a single
/// listening endpoint (the all-in-one blobseer_serverd daemon) can host
/// many logical nodes and route internally; transports that connect
/// per-node simply ignore it. Responses replace the node field with a
/// Status: non-OK responses carry a UTF-8 error string as payload, which
/// the client maps back onto the exception hierarchy of common/error.hpp.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "rpc/wire.hpp"

namespace blobseer::rpc {

inline constexpr std::uint32_t kFrameMagic = 0x42535250;  // "PRSB" LE
/// v2: Topology gained a trailing uid_epoch u64 (incompatible payload
/// change — cross-version peers get a clean version-mismatch error
/// instead of a mid-field decode failure).
/// v3: the header grew an 8-byte request-correlation id (multiplexed
/// transports match out-of-order responses by it).
/// v4: the version-manager layer is sharded — Topology advertises a
/// vm_nodes list instead of a single vm_node, and the version-manager
/// block gained kBlobCloneFrom (cross-shard clone) and kVmStatus
/// (per-shard observability).
/// v5: content-addressed storage — ChunkKey carries a kind byte (uid vs
/// SHA-256-derived content key), meta-node leaves a flags byte plus the
/// digest's high half, Topology a content_addressed flag, and the data
/// provider block gained kChunkCheck (check-before-push dedup),
/// streaming kChunkPushStart/Some/End, ranged kChunkPullStart/Some,
/// kChunkDecref (refcounted GC) and kDedupStatus.
/// v6: active membership — the provider manager block gained
/// kProviderJoin / kProviderAnnounce / kProviderBeat (external provider
/// daemons register, advertise their endpoint + inventory and heartbeat
/// with incremental inventory deltas), kReportFailure (clients report
/// suspected deaths for corroboration) and kRepairStatus (repair-queue
/// observability); Topology advertises provider endpoints after the
/// content_addressed flag so remote clients can dial providers directly.
/// v7: observability — the header grew a 16-byte trace context (trace
/// id, span id, sampled flag, reserved bytes; offsets 24-39) so one
/// client operation can be followed across every nested RPC, and the
/// control block gained kMetricsDump (full metrics-registry snapshot
/// from any node) and kTraceDump (drain the node's span ring).
inline constexpr std::uint8_t kWireVersion = 7;
inline constexpr std::size_t kFrameHeaderSize = 40;
/// Byte offset of the correlation id within the header.
inline constexpr std::size_t kFrameCorrOffset = 16;
/// Byte offset of the trace context (trace id u64, span id u32, flags
/// u8, 3 reserved) within the header.
inline constexpr std::size_t kFrameTraceOffset = 24;

/// Upper bound on a frame payload; anything larger is a corrupt or
/// hostile frame and is rejected before its length is trusted for an
/// allocation. The largest legitimate payload is one chunk plus a few
/// dozen header bytes; 256 MiB leaves generous headroom over any chunk
/// size the experiments use while bounding what a hostile header can
/// make a receiver allocate.
inline constexpr std::uint32_t kMaxPayload = 256u << 20;

/// Destination pseudo-node for control-plane requests (kTopology). Not a
/// real cluster node: transports route it to the deployment's dispatcher
/// without charging any per-node wire cost.
inline constexpr NodeId kControlNode = 0xfffffffeu;

/// Every request/response type in the protocol. Values are wire ABI: new
/// types must be appended within their service block, never renumbered.
enum class MsgType : std::uint16_t {
    // data provider service
    kChunkPut = 1,
    kChunkGet = 2,
    kChunkErase = 3,
    kChunkCheck = 4,
    kChunkPushStart = 5,
    kChunkPushSome = 6,
    kChunkPushEnd = 7,
    kChunkPullStart = 8,
    kChunkPullSome = 9,
    kChunkDecref = 10,
    kDedupStatus = 11,

    // version manager service
    kBlobCreate = 16,
    kBlobClone = 17,
    kBlobInfo = 18,
    kAssign = 19,
    kCommit = 20,
    kGetVersion = 21,
    kWaitPublished = 22,
    kHistory = 23,
    kPin = 24,
    kUnpin = 25,
    kRetire = 26,
    kDescriptorOf = 27,
    kBlobCloneFrom = 28,
    kVmStatus = 29,

    // metadata DHT member service
    kMetaPut = 48,
    kMetaGet = 49,
    kMetaTryGet = 50,
    kMetaErase = 51,

    // provider manager service
    kPlace = 64,
    kMarkDead = 65,
    kProviderJoin = 66,
    kProviderAnnounce = 67,
    kProviderBeat = 68,
    kReportFailure = 69,
    kRepairStatus = 70,

    // control plane
    kTopology = 80,
    kMetricsDump = 81,
    kTraceDump = 82,
};

[[nodiscard]] inline const char* to_string(MsgType t) noexcept {
    switch (t) {
        case MsgType::kChunkPut: return "chunk-put";
        case MsgType::kChunkGet: return "chunk-get";
        case MsgType::kChunkErase: return "chunk-erase";
        case MsgType::kChunkCheck: return "chunk-check";
        case MsgType::kChunkPushStart: return "chunk-push-start";
        case MsgType::kChunkPushSome: return "chunk-push-some";
        case MsgType::kChunkPushEnd: return "chunk-push-end";
        case MsgType::kChunkPullStart: return "chunk-pull-start";
        case MsgType::kChunkPullSome: return "chunk-pull-some";
        case MsgType::kChunkDecref: return "chunk-decref";
        case MsgType::kDedupStatus: return "dedup-status";
        case MsgType::kBlobCreate: return "blob-create";
        case MsgType::kBlobClone: return "blob-clone";
        case MsgType::kBlobInfo: return "blob-info";
        case MsgType::kAssign: return "assign";
        case MsgType::kCommit: return "commit";
        case MsgType::kGetVersion: return "get-version";
        case MsgType::kWaitPublished: return "wait-published";
        case MsgType::kHistory: return "history";
        case MsgType::kPin: return "pin";
        case MsgType::kUnpin: return "unpin";
        case MsgType::kRetire: return "retire";
        case MsgType::kDescriptorOf: return "descriptor-of";
        case MsgType::kBlobCloneFrom: return "blob-clone-from";
        case MsgType::kVmStatus: return "vm-status";
        case MsgType::kMetaPut: return "meta-put";
        case MsgType::kMetaGet: return "meta-get";
        case MsgType::kMetaTryGet: return "meta-try-get";
        case MsgType::kMetaErase: return "meta-erase";
        case MsgType::kPlace: return "place";
        case MsgType::kMarkDead: return "mark-dead";
        case MsgType::kProviderJoin: return "provider-join";
        case MsgType::kProviderAnnounce: return "provider-announce";
        case MsgType::kProviderBeat: return "provider-beat";
        case MsgType::kReportFailure: return "report-failure";
        case MsgType::kRepairStatus: return "repair-status";
        case MsgType::kTopology: return "topology";
        case MsgType::kMetricsDump: return "metrics-dump";
        case MsgType::kTraceDump: return "trace-dump";
    }
    return "?";
}

/// Wire status of a response. Mirrors the exception hierarchy in
/// common/error.hpp so a server-side throw resurfaces client-side as the
/// same type.
enum class Status : std::uint32_t {
    kOk = 0,
    kRpcError = 1,
    kTimeout = 2,
    kNotFound = 3,
    kConsistency = 4,
    kInvalidArgument = 5,
    kVersionAborted = 6,
    kVersionRetired = 7,
    kError = 8,  ///< any other server-side failure
};

/// Re-throw a non-OK response status as the matching exception.
[[noreturn]] inline void throw_status(Status s, const std::string& what) {
    switch (s) {
        case Status::kOk: break;  // not an error; fall through to throw
        case Status::kRpcError: throw RpcError(what);
        case Status::kTimeout: throw TimeoutError(what);
        case Status::kNotFound: throw NotFoundError(what);
        case Status::kConsistency: throw ConsistencyError(what);
        case Status::kInvalidArgument: throw InvalidArgument(what);
        case Status::kVersionAborted: throw VersionAborted(what);
        case Status::kVersionRetired: throw VersionRetired(what);
        case Status::kError: throw Error(what);
    }
    throw RpcError("protocol: throw_status on OK response");
}

/// Parsed view of one frame; payload borrows the frame buffer.
struct FrameView {
    MsgType type = MsgType::kTopology;
    bool response = false;
    /// Request: destination node id. Response: Status.
    std::uint32_t dst_or_status = 0;
    /// Request-correlation id (0 on non-multiplexed paths).
    std::uint64_t corr = 0;
    /// Trace context (all zero when the operation is untraced).
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
    std::uint8_t trace_flags = 0;
    ConstBytes payload;

    [[nodiscard]] NodeId dst() const noexcept { return dst_or_status; }
    [[nodiscard]] Status status() const noexcept {
        return static_cast<Status>(dst_or_status);
    }
};

/// Validate and parse a whole frame (header + payload in one buffer).
[[nodiscard]] inline FrameView parse_frame(ConstBytes frame) {
    WireReader r(frame);
    if (frame.size() < kFrameHeaderSize) {
        throw RpcError("frame decode: short frame (" +
                       std::to_string(frame.size()) + " bytes)");
    }
    if (r.u32() != kFrameMagic) {
        throw RpcError("frame decode: bad magic");
    }
    if (const std::uint8_t v = r.u8(); v != kWireVersion) {
        throw RpcError("frame decode: unsupported wire version " +
                       std::to_string(v));
    }
    const std::uint8_t kind = r.u8();
    if (kind > 1) {
        throw RpcError("frame decode: bad frame kind");
    }
    FrameView out;
    out.response = kind == 1;
    out.type = static_cast<MsgType>(r.u16());
    out.dst_or_status = r.u32();
    const std::uint32_t len = r.u32();
    out.corr = r.u64();
    out.trace_id = r.u64();
    out.span_id = r.u32();
    out.trace_flags = r.u8();
    (void)r.u8();  // 3 reserved bytes
    (void)r.u8();
    (void)r.u8();
    if (len > kMaxPayload) {
        throw RpcError("frame decode: payload length " + std::to_string(len) +
                       " exceeds limit");
    }
    if (len != r.remaining()) {
        throw RpcError("frame decode: payload length mismatch (header says " +
                       std::to_string(len) + ", frame carries " +
                       std::to_string(r.remaining()) + ")");
    }
    out.payload = frame.subspan(kFrameHeaderSize, len);
    return out;
}

namespace detail {

[[nodiscard]] inline Buffer seal(MsgType type, bool response,
                                 std::uint32_t dst_or_status,
                                 WireWriter&& payload,
                                 std::size_t tail_bytes = 0) {
    Buffer body = payload.take();
    if (body.size() + tail_bytes > kMaxPayload) {
        // Fail at the sender with a clear error — a receiver would just
        // drop the connection, and a >4 GiB body would silently
        // truncate in the header's 32-bit length field.
        throw InvalidArgument(
            std::string("rpc payload of ") +
            std::to_string(body.size() + tail_bytes) +
            " bytes exceeds the frame limit (" + to_string(type) + ")");
    }
    const std::uint32_t len =
        static_cast<std::uint32_t>(body.size() + tail_bytes);
    // Prepend the header in place — one memmove into the writer's spare
    // capacity instead of allocating and copying a second buffer (this
    // sits on the per-RPC hot path of both client and server).
    body.insert(body.begin(), kFrameHeaderSize, 0);
    std::uint8_t* h = body.data();
    std::memcpy(h, &kFrameMagic, 4);  // LE store, as WireWriter's fixed()
    h[4] = kWireVersion;
    h[5] = response ? 1 : 0;
    const std::uint16_t tag = static_cast<std::uint16_t>(type);
    std::memcpy(h + 6, &tag, 2);
    std::memcpy(h + 8, &dst_or_status, 4);
    std::memcpy(h + 12, &len, 4);
    // Bytes 16..40 stay zero: the correlation id and trace context are
    // stamped later by set_frame_corr / set_frame_trace.
    return body;
}

}  // namespace detail

/// Read the correlation id straight out of a sealed frame.
[[nodiscard]] inline std::uint64_t frame_corr(ConstBytes frame) {
    if (frame.size() < kFrameHeaderSize) {
        throw RpcError("frame decode: short frame (" +
                       std::to_string(frame.size()) + " bytes)");
    }
    std::uint64_t corr = 0;
    std::memcpy(&corr, frame.data() + kFrameCorrOffset, sizeof corr);
    return corr;
}

/// Stamp \p corr into a sealed frame (request at send time, response at
/// dispatch time).
inline void set_frame_corr(MutableBytes frame, std::uint64_t corr) {
    if (frame.size() < kFrameHeaderSize) {
        throw RpcError("frame encode: short frame (" +
                       std::to_string(frame.size()) + " bytes)");
    }
    std::memcpy(frame.data() + kFrameCorrOffset, &corr, sizeof corr);
}

/// Read the trace context out of a sealed frame without a full parse
/// (the tracing hot path touches only these 13 bytes).
[[nodiscard]] inline trace::TraceContext frame_trace(ConstBytes frame) {
    if (frame.size() < kFrameHeaderSize) {
        throw RpcError("frame decode: short frame (" +
                       std::to_string(frame.size()) + " bytes)");
    }
    trace::TraceContext ctx;
    std::memcpy(&ctx.trace_id, frame.data() + kFrameTraceOffset, 8);
    std::memcpy(&ctx.span_id, frame.data() + kFrameTraceOffset + 8, 4);
    ctx.flags = frame[kFrameTraceOffset + 12];
    return ctx;
}

/// Stamp a trace context into a sealed frame (requests at send time,
/// responses at dispatch time). Reserved bytes stay zero from seal.
inline void set_frame_trace(MutableBytes frame,
                            const trace::TraceContext& ctx) {
    if (frame.size() < kFrameHeaderSize) {
        throw RpcError("frame encode: short frame (" +
                       std::to_string(frame.size()) + " bytes)");
    }
    std::memcpy(frame.data() + kFrameTraceOffset, &ctx.trace_id, 8);
    std::memcpy(frame.data() + kFrameTraceOffset + 8, &ctx.span_id, 4);
    frame[kFrameTraceOffset + 12] = ctx.flags;
}

/// Read a sealed response frame's Status without a full parse (used by
/// the client-side span recorder; requests return their dst instead).
[[nodiscard]] inline Status frame_status(ConstBytes frame) noexcept {
    if (frame.size() < kFrameHeaderSize) {
        return Status::kRpcError;
    }
    std::uint32_t s = 0;
    std::memcpy(&s, frame.data() + 8, 4);
    return static_cast<Status>(s);
}

/// Seal a request frame addressed to logical node \p dst.
[[nodiscard]] inline Buffer seal_request(MsgType type, NodeId dst,
                                         WireWriter&& payload) {
    return detail::seal(type, false, dst, std::move(payload));
}

/// Seal a successful response frame.
[[nodiscard]] inline Buffer seal_response(MsgType type,
                                          WireWriter&& payload) {
    return detail::seal(type, true, static_cast<std::uint32_t>(Status::kOk),
                        std::move(payload));
}

/// Seal a successful response whose payload continues for \p tail_bytes
/// past the sealed buffer: the header's length field covers body + tail,
/// but only the body is materialized here. The caller ships the tail as
/// a separate iovec (zero-copy scatter-gather responses); the receiver
/// sees one ordinary contiguous frame.
[[nodiscard]] inline Buffer seal_response_with_tail(MsgType type,
                                                    WireWriter&& payload,
                                                    std::size_t tail_bytes) {
    return detail::seal(type, true, static_cast<std::uint32_t>(Status::kOk),
                        std::move(payload), tail_bytes);
}

/// Seal an error response; the payload is the error string.
[[nodiscard]] inline Buffer seal_error(MsgType type, Status status,
                                       std::string_view what) {
    WireWriter w(what.size() + 8);
    w.str(what);
    return detail::seal(type, true, static_cast<std::uint32_t>(status),
                        std::move(w));
}

}  // namespace blobseer::rpc
