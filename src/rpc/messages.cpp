#include "rpc/messages.hpp"

#include "common/error.hpp"

namespace blobseer::rpc {

// ---- scalar wrappers -------------------------------------------------------

void put_chunk_key(WireWriter& w, const chunk::ChunkKey& k) {
    w.u8(static_cast<std::uint8_t>(k.kind));
    w.u64(k.blob);
    w.u64(k.uid);
}

chunk::ChunkKey get_chunk_key(WireReader& r) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(chunk::ChunkKey::Kind::kContent)) {
        throw RpcError("frame decode: bad chunk-key kind " +
                       std::to_string(kind));
    }
    chunk::ChunkKey k;
    k.kind = static_cast<chunk::ChunkKey::Kind>(kind);
    k.blob = r.u64();
    k.uid = r.u64();
    return k;
}

void put_meta_key(WireWriter& w, const meta::MetaKey& k) {
    w.u64(k.blob);
    w.u64(k.version);
    w.u64(k.range.first);
    w.u64(k.range.count);
}

meta::MetaKey get_meta_key(WireReader& r) {
    meta::MetaKey k;
    k.blob = r.u64();
    k.version = r.u64();
    k.range.first = r.u64();
    k.range.count = r.u64();
    return k;
}

void put_meta_node(WireWriter& w, const meta::MetaNode& n) {
    w.u8(static_cast<std::uint8_t>(n.kind));
    w.u8(n.cas ? 1 : 0);  // flags (v5): bit 0 = content-addressed leaf
    if (n.is_leaf()) {
        put_node_ids(w, n.replicas);
        w.u64(n.chunk_uid);
        if (n.cas) {
            w.u64(n.chunk_uid_hi);
        }
        w.u32(n.chunk_bytes);
    } else {
        w.u64(n.left.blob);
        w.u64(n.left.version);
        w.u64(n.right.blob);
        w.u64(n.right.version);
    }
}

meta::MetaNode get_meta_node(WireReader& r) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(meta::MetaNode::Kind::kLeaf)) {
        throw RpcError("frame decode: bad meta-node kind " +
                       std::to_string(kind));
    }
    const std::uint8_t flags = r.u8();
    if (flags > 1) {
        throw RpcError("frame decode: bad meta-node flags " +
                       std::to_string(flags));
    }
    meta::MetaNode n;
    n.kind = static_cast<meta::MetaNode::Kind>(kind);
    n.cas = (flags & 1) != 0;
    if (n.is_leaf()) {
        n.replicas = get_node_ids(r);
        n.chunk_uid = r.u64();
        if (n.cas) {
            n.chunk_uid_hi = r.u64();
        }
        n.chunk_bytes = r.u32();
    } else {
        n.left.blob = r.u64();
        n.left.version = r.u64();
        n.right.blob = r.u64();
        n.right.version = r.u64();
    }
    return n;
}

void put_tree_ref(WireWriter& w, const meta::TreeRef& t) {
    w.u64(t.blob);
    w.u64(t.version);
    w.u64(t.size);
}

meta::TreeRef get_tree_ref(WireReader& r) {
    meta::TreeRef t;
    t.blob = r.u64();
    t.version = r.u64();
    t.size = r.u64();
    return t;
}

void put_write_descriptor(WireWriter& w, const meta::WriteDescriptor& d) {
    w.u64(d.version);
    w.u64(d.offset);
    w.u64(d.size);
    w.u64(d.size_before);
    w.u64(d.size_after);
}

meta::WriteDescriptor get_write_descriptor(WireReader& r) {
    meta::WriteDescriptor d;
    d.version = r.u64();
    d.offset = r.u64();
    d.size = r.u64();
    d.size_before = r.u64();
    d.size_after = r.u64();
    return d;
}

void put_blob_info(WireWriter& w, const version::BlobInfo& b) {
    w.u64(b.id);
    w.u64(b.chunk_size);
    w.u32(b.replication);
}

version::BlobInfo get_blob_info(WireReader& r) {
    version::BlobInfo b;
    b.id = r.u64();
    b.chunk_size = r.u64();
    b.replication = r.u32();
    return b;
}

void put_version_status(WireWriter& w, version::VersionStatus s) {
    w.u8(static_cast<std::uint8_t>(s));
}

version::VersionStatus get_version_status(WireReader& r) {
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(version::VersionStatus::kRetired)) {
        throw RpcError("frame decode: bad version status " +
                       std::to_string(s));
    }
    return static_cast<version::VersionStatus>(s);
}

void put_version_info(WireWriter& w, const version::VersionInfo& v) {
    w.u64(v.version);
    w.u64(v.size);
    put_version_status(w, v.status);
    put_tree_ref(w, v.tree);
}

version::VersionInfo get_version_info(WireReader& r) {
    version::VersionInfo v;
    v.version = r.u64();
    v.size = r.u64();
    v.status = get_version_status(r);
    v.tree = get_tree_ref(r);
    return v;
}

void put_assign_result(WireWriter& w, const version::AssignResult& a) {
    w.u64(a.version);
    w.u64(a.offset);
    w.u64(a.size_before);
    w.u64(a.size_after);
    put_tree_ref(w, a.base);
    w.varint(a.concurrent.size());
    for (const auto& d : a.concurrent) {
        put_write_descriptor(w, d);
    }
    w.u64(a.chunk_size);
    w.u32(a.replication);
}

version::AssignResult get_assign_result(WireReader& r) {
    version::AssignResult a;
    a.version = r.u64();
    a.offset = r.u64();
    a.size_before = r.u64();
    a.size_after = r.u64();
    a.base = get_tree_ref(r);
    const std::uint64_t n = r.varint_count(40);  // encoded WriteDescriptor
    a.concurrent.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        a.concurrent.push_back(get_write_descriptor(r));
    }
    a.chunk_size = r.u64();
    a.replication = r.u32();
    return a;
}

void put_version_summary(WireWriter& w,
                         const version::VersionManager::VersionSummary& s) {
    w.u64(s.version);
    put_version_status(w, s.status);
    w.u64(s.offset);
    w.u64(s.size);
    w.u64(s.size_after);
}

version::VersionManager::VersionSummary get_version_summary(WireReader& r) {
    version::VersionManager::VersionSummary s;
    s.version = r.u64();
    s.status = get_version_status(r);
    s.offset = r.u64();
    s.size = r.u64();
    s.size_after = r.u64();
    return s;
}

void put_retire_info(WireWriter& w,
                     const version::VersionManager::RetireInfo& i) {
    w.varint(i.retired.size());
    for (const Version v : i.retired) {
        w.u64(v);
    }
    w.varint(i.descriptors.size());
    for (const auto& d : i.descriptors) {
        put_write_descriptor(w, d);
    }
    w.varint(i.pinned.size());
    for (const Version v : i.pinned) {
        w.u64(v);
    }
    w.u64(i.keep_from);
}

version::VersionManager::RetireInfo get_retire_info(WireReader& r) {
    version::VersionManager::RetireInfo i;
    const std::uint64_t n_retired = r.varint_count(8);
    i.retired.reserve(n_retired);
    for (std::uint64_t k = 0; k < n_retired; ++k) {
        i.retired.push_back(r.u64());
    }
    const std::uint64_t n_desc = r.varint_count(40);
    i.descriptors.reserve(n_desc);
    for (std::uint64_t k = 0; k < n_desc; ++k) {
        i.descriptors.push_back(get_write_descriptor(r));
    }
    const std::uint64_t n_pinned = r.varint_count(8);
    i.pinned.reserve(n_pinned);
    for (std::uint64_t k = 0; k < n_pinned; ++k) {
        i.pinned.push_back(r.u64());
    }
    i.keep_from = r.u64();
    return i;
}

void put_shard_status(WireWriter& w, const version::ShardStatus& s) {
    w.u32(s.shard);
    w.u64(s.blobs);
    w.u64(s.assigns);
    w.u64(s.commits);
    w.u64(s.aborts);
    w.u64(s.publishes);
    w.u64(s.backlog);
    w.u64(s.backlog_high_water);
}

version::ShardStatus get_shard_status(WireReader& r) {
    version::ShardStatus s;
    s.shard = r.u32();
    s.blobs = r.u64();
    s.assigns = r.u64();
    s.commits = r.u64();
    s.aborts = r.u64();
    s.publishes = r.u64();
    s.backlog = r.u64();
    s.backlog_high_water = r.u64();
    return s;
}

void put_placement_plan(WireWriter& w, const provider::PlacementPlan& p) {
    w.varint(p.size());
    for (const auto& targets : p) {
        put_node_ids(w, targets);
    }
}

provider::PlacementPlan get_placement_plan(WireReader& r) {
    const std::uint64_t n = r.varint_count(1);  // empty row = 1 byte
    provider::PlacementPlan p;
    p.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        p.push_back(get_node_ids(r));
    }
    return p;
}

void put_node_ids(WireWriter& w, const std::vector<NodeId>& v) {
    w.varint(v.size());
    for (const NodeId n : v) {
        w.u32(n);
    }
}

std::vector<NodeId> get_node_ids(WireReader& r) {
    const std::uint64_t n = r.varint_count(4);
    std::vector<NodeId> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        v.push_back(r.u32());
    }
    return v;
}

// ---- membership & repair (protocol v6) -------------------------------------

void put_chunk_holding(WireWriter& w, const provider::ChunkHolding& h) {
    put_chunk_key(w, h.key);
    w.u64(h.bytes);
}

provider::ChunkHolding get_chunk_holding(WireReader& r) {
    provider::ChunkHolding h;
    h.key = get_chunk_key(r);
    h.bytes = r.u64();
    return h;
}

void put_chunk_holdings(WireWriter& w,
                        const std::vector<provider::ChunkHolding>& v) {
    w.varint(v.size());
    for (const auto& h : v) {
        put_chunk_holding(w, h);
    }
}

std::vector<provider::ChunkHolding> get_chunk_holdings(WireReader& r) {
    const std::uint64_t n = r.varint_count(25);  // key (17) + bytes (8)
    std::vector<provider::ChunkHolding> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        v.push_back(get_chunk_holding(r));
    }
    return v;
}

void put_chunk_keys(WireWriter& w, const std::vector<chunk::ChunkKey>& v) {
    w.varint(v.size());
    for (const auto& k : v) {
        put_chunk_key(w, k);
    }
}

std::vector<chunk::ChunkKey> get_chunk_keys(WireReader& r) {
    const std::uint64_t n = r.varint_count(17);  // kind + blob + uid
    std::vector<chunk::ChunkKey> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        v.push_back(get_chunk_key(r));
    }
    return v;
}

void put_provider_health(WireWriter& w, const provider::ProviderHealth& h) {
    w.u32(h.node);
    w.u8(h.alive ? 1 : 0);
    w.u8(h.heartbeating ? 1 : 0);
    w.u64(h.beats);
    w.u64(h.last_beat_age_ms);
    w.u64(h.chunks);
    w.u64(h.bytes);
}

provider::ProviderHealth get_provider_health(WireReader& r) {
    provider::ProviderHealth h;
    h.node = r.u32();
    h.alive = r.u8() != 0;
    h.heartbeating = r.u8() != 0;
    h.beats = r.u64();
    h.last_beat_age_ms = r.u64();
    h.chunks = r.u64();
    h.bytes = r.u64();
    return h;
}

void put_repair_status(WireWriter& w, const provider::RepairStatus& s) {
    w.u64(s.backlog);
    w.u64(s.high_water);
    w.u64(s.enqueued);
    w.u64(s.completed);
    w.u64(s.skipped);
    w.u64(s.failed);
    w.u64(s.deferred);
    w.u64(s.under_replicated);
    w.varint(s.providers.size());
    for (const auto& h : s.providers) {
        put_provider_health(w, h);
    }
}

provider::RepairStatus get_repair_status(WireReader& r) {
    provider::RepairStatus s;
    s.backlog = r.u64();
    s.high_water = r.u64();
    s.enqueued = r.u64();
    s.completed = r.u64();
    s.skipped = r.u64();
    s.failed = r.u64();
    s.deferred = r.u64();
    s.under_replicated = r.u64();
    const std::uint64_t n = r.varint_count(38);  // encoded ProviderHealth
    s.providers.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        s.providers.push_back(get_provider_health(r));
    }
    return s;
}

// ---- observability (protocol v7) -------------------------------------------

void put_metric_sample(WireWriter& w, const MetricSample& s) {
    w.str(s.name);
    w.varint(s.labels.size());
    for (const auto& [k, v] : s.labels) {
        w.str(k);
        w.str(v);
    }
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.u64(s.value);
    w.u64(s.high_water);
    w.u64(s.count);
    w.u64(s.sum);
    w.u64(s.min);
    w.u64(s.max);
    w.varint(s.buckets.size());
    for (const auto& [upper, count] : s.buckets) {
        w.u64(upper);
        w.u64(count);
    }
}

MetricSample get_metric_sample(WireReader& r) {
    MetricSample s;
    s.name = r.str();
    const std::uint64_t n_labels = r.varint_count(2);  // two empty strings
    s.labels.reserve(n_labels);
    for (std::uint64_t i = 0; i < n_labels; ++i) {
        std::string k = r.str();
        std::string v = r.str();
        s.labels.emplace_back(std::move(k), std::move(v));
    }
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(MetricKind::kCallback)) {
        throw RpcError("frame decode: bad metric kind " +
                       std::to_string(kind));
    }
    s.kind = static_cast<MetricKind>(kind);
    s.value = r.u64();
    s.high_water = r.u64();
    s.count = r.u64();
    s.sum = r.u64();
    s.min = r.u64();
    s.max = r.u64();
    const std::uint64_t n_buckets = r.varint_count(16);  // two u64s
    s.buckets.reserve(n_buckets);
    for (std::uint64_t i = 0; i < n_buckets; ++i) {
        const std::uint64_t upper = r.u64();
        const std::uint64_t count = r.u64();
        s.buckets.emplace_back(upper, count);
    }
    return s;
}

void put_metrics_snapshot(WireWriter& w, const MetricsSnapshot& snap) {
    w.varint(snap.samples.size());
    for (const MetricSample& s : snap.samples) {
        put_metric_sample(w, s);
    }
}

MetricsSnapshot get_metrics_snapshot(WireReader& r) {
    // Minimum encoded sample: empty name + no labels + kind + 6 u64s +
    // no buckets.
    const std::uint64_t n = r.varint_count(51);
    MetricsSnapshot snap;
    snap.samples.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        snap.samples.push_back(get_metric_sample(r));
    }
    return snap;
}

void put_span_record(WireWriter& w, const trace::SpanRecord& s) {
    w.u64(s.trace_id);
    w.u32(s.span_id);
    w.u32(s.parent_span);
    w.u64(s.start_unix_us);
    w.u64(s.queue_us);
    w.u64(s.duration_us);
    w.u64(s.bytes);
    w.u32(s.node);
    w.u8(s.kind);
    w.u8(s.status);
    w.str(s.op_name());
}

trace::SpanRecord get_span_record(WireReader& r) {
    trace::SpanRecord s;
    s.trace_id = r.u64();
    s.span_id = r.u32();
    s.parent_span = r.u32();
    s.start_unix_us = r.u64();
    s.queue_us = r.u64();
    s.duration_us = r.u64();
    s.bytes = r.u64();
    s.node = r.u32();
    s.kind = r.u8();
    if (s.kind > trace::SpanRecord::kServer) {
        throw RpcError("frame decode: bad span kind " +
                       std::to_string(s.kind));
    }
    s.status = r.u8();
    s.set_op(r.str());
    return s;
}

void put_span_records(WireWriter& w,
                      const std::vector<trace::SpanRecord>& v) {
    w.varint(v.size());
    for (const auto& s : v) {
        put_span_record(w, s);
    }
}

std::vector<trace::SpanRecord> get_span_records(WireReader& r) {
    const std::uint64_t n = r.varint_count(51);  // fixed fields + empty op
    std::vector<trace::SpanRecord> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        v.push_back(get_span_record(r));
    }
    return v;
}

// ---- control plane ---------------------------------------------------------

void put_topology(WireWriter& w, const Topology& t) {
    put_node_ids(w, t.vm_nodes);
    w.u32(t.pm_node);
    put_node_ids(w, t.data_nodes);
    put_node_ids(w, t.meta_nodes);
    w.u32(t.meta_replication);
    w.u32(t.default_replication);
    w.u64(t.publish_timeout_ms);
    w.u32(t.client_id);
    w.u64(t.uid_epoch);
    w.u8(t.content_addressed ? 1 : 0);
    w.varint(t.provider_endpoints.size());
    for (const auto& ep : t.provider_endpoints) {
        w.u32(ep.node);
        w.str(ep.host);
        w.u32(ep.port);
    }
}

Topology get_topology(WireReader& r) {
    Topology t;
    t.vm_nodes = get_node_ids(r);
    if (t.vm_nodes.empty() || t.vm_nodes.size() > kMaxBlobShards) {
        throw RpcError("frame decode: topology advertises " +
                       std::to_string(t.vm_nodes.size()) +
                       " version-manager shards");
    }
    t.pm_node = r.u32();
    t.data_nodes = get_node_ids(r);
    t.meta_nodes = get_node_ids(r);
    t.meta_replication = r.u32();
    t.default_replication = r.u32();
    t.publish_timeout_ms = r.u64();
    t.client_id = r.u32();
    t.uid_epoch = r.u64();
    t.content_addressed = r.u8() != 0;
    const std::uint64_t n = r.varint_count(9);  // node + empty host + port
    t.provider_endpoints.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Topology::ProviderEndpoint ep;
        ep.node = r.u32();
        ep.host = r.str();
        ep.port = r.u32();
        t.provider_endpoints.push_back(std::move(ep));
    }
    return t;
}

}  // namespace blobseer::rpc
