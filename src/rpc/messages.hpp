/// \file messages.hpp
/// \brief Codecs for the composite message bodies of every BlobSeer RPC.
///
/// Each put_x/get_x pair is the single source of truth for how type x
/// travels on the wire; client stubs (service_client.hpp) and server
/// skeletons (dispatcher.cpp) both call them, so an encode/decode
/// mismatch is structurally impossible. get_x functions validate enums
/// and sizes and throw RpcError on malformed input — they are exercised
/// by the round-trip and corruption property tests.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chunk/chunk_key.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "meta/meta_node.hpp"
#include "meta/write_descriptor.hpp"
#include "provider/provider_manager.hpp"
#include "rpc/wire.hpp"
#include "version/version_manager.hpp"

namespace blobseer::rpc {

// ---- scalar wrappers -------------------------------------------------------

void put_chunk_key(WireWriter& w, const chunk::ChunkKey& k);
[[nodiscard]] chunk::ChunkKey get_chunk_key(WireReader& r);

void put_meta_key(WireWriter& w, const meta::MetaKey& k);
[[nodiscard]] meta::MetaKey get_meta_key(WireReader& r);

void put_meta_node(WireWriter& w, const meta::MetaNode& n);
[[nodiscard]] meta::MetaNode get_meta_node(WireReader& r);

void put_tree_ref(WireWriter& w, const meta::TreeRef& t);
[[nodiscard]] meta::TreeRef get_tree_ref(WireReader& r);

void put_write_descriptor(WireWriter& w, const meta::WriteDescriptor& d);
[[nodiscard]] meta::WriteDescriptor get_write_descriptor(WireReader& r);

void put_blob_info(WireWriter& w, const version::BlobInfo& b);
[[nodiscard]] version::BlobInfo get_blob_info(WireReader& r);

void put_version_status(WireWriter& w, version::VersionStatus s);
[[nodiscard]] version::VersionStatus get_version_status(WireReader& r);

void put_version_info(WireWriter& w, const version::VersionInfo& v);
[[nodiscard]] version::VersionInfo get_version_info(WireReader& r);

void put_assign_result(WireWriter& w, const version::AssignResult& a);
[[nodiscard]] version::AssignResult get_assign_result(WireReader& r);

void put_version_summary(WireWriter& w,
                         const version::VersionManager::VersionSummary& s);
[[nodiscard]] version::VersionManager::VersionSummary get_version_summary(
    WireReader& r);

void put_retire_info(WireWriter& w,
                     const version::VersionManager::RetireInfo& i);
[[nodiscard]] version::VersionManager::RetireInfo get_retire_info(
    WireReader& r);

void put_shard_status(WireWriter& w, const version::ShardStatus& s);
[[nodiscard]] version::ShardStatus get_shard_status(WireReader& r);

void put_placement_plan(WireWriter& w, const provider::PlacementPlan& p);
[[nodiscard]] provider::PlacementPlan get_placement_plan(WireReader& r);

void put_node_ids(WireWriter& w, const std::vector<NodeId>& v);
[[nodiscard]] std::vector<NodeId> get_node_ids(WireReader& r);

// ---- membership & repair (protocol v6) -------------------------------------

void put_chunk_holding(WireWriter& w, const provider::ChunkHolding& h);
[[nodiscard]] provider::ChunkHolding get_chunk_holding(WireReader& r);

void put_chunk_holdings(WireWriter& w,
                        const std::vector<provider::ChunkHolding>& v);
[[nodiscard]] std::vector<provider::ChunkHolding> get_chunk_holdings(
    WireReader& r);

void put_chunk_keys(WireWriter& w,
                    const std::vector<chunk::ChunkKey>& v);
[[nodiscard]] std::vector<chunk::ChunkKey> get_chunk_keys(WireReader& r);

void put_provider_health(WireWriter& w, const provider::ProviderHealth& h);
[[nodiscard]] provider::ProviderHealth get_provider_health(WireReader& r);

void put_repair_status(WireWriter& w, const provider::RepairStatus& s);
[[nodiscard]] provider::RepairStatus get_repair_status(WireReader& r);

// ---- observability (protocol v7) -------------------------------------------

void put_metric_sample(WireWriter& w, const MetricSample& s);
[[nodiscard]] MetricSample get_metric_sample(WireReader& r);

void put_metrics_snapshot(WireWriter& w, const MetricsSnapshot& snap);
[[nodiscard]] MetricsSnapshot get_metrics_snapshot(WireReader& r);

void put_span_record(WireWriter& w, const trace::SpanRecord& s);
[[nodiscard]] trace::SpanRecord get_span_record(WireReader& r);

void put_span_records(WireWriter& w,
                      const std::vector<trace::SpanRecord>& v);
[[nodiscard]] std::vector<trace::SpanRecord> get_span_records(WireReader& r);

// ---- control plane ---------------------------------------------------------

/// Everything a remote client needs to bootstrap against a cluster it
/// cannot see: service node ids, DHT membership, replication parameters
/// and a freshly allocated client identity.
struct Topology {
    /// Version-manager shard nodes, indexed by shard (blob_shard(id)
    /// names the owning entry). Single-shard deployments advertise one.
    std::vector<NodeId> vm_nodes;
    NodeId pm_node = kInvalidNode;
    std::vector<NodeId> data_nodes;
    std::vector<NodeId> meta_nodes;
    std::uint32_t meta_replication = 1;
    std::uint32_t default_replication = 1;
    std::uint64_t publish_timeout_ms = 30000;
    /// Client node id allocated by the server for the requesting client.
    NodeId client_id = kInvalidNode;
    /// Chunk-uid allocation epoch of this deployment boot. Client ids
    /// restart from the same base after a daemon restart, so without an
    /// epoch a restarted deployment would re-mint pre-restart chunk
    /// uids and idempotent puts would silently keep the old bytes.
    std::uint64_t uid_epoch = 0;
    /// v5: deployment stores chunks content-addressed — clients hash
    /// locally, place by digest and use check-before-push dedup.
    bool content_addressed = false;

    /// v6: dial endpoint of a data provider that runs as its own daemon
    /// (in-process providers live behind the main endpoint and are not
    /// listed). Remote clients add these as transport routes so chunk
    /// RPCs reach the provider directly.
    struct ProviderEndpoint {
        NodeId node = kInvalidNode;
        std::string host;
        std::uint32_t port = 0;

        friend bool operator==(const ProviderEndpoint&,
                               const ProviderEndpoint&) = default;
    };
    std::vector<ProviderEndpoint> provider_endpoints;

    friend bool operator==(const Topology&, const Topology&) = default;
};

void put_topology(WireWriter& w, const Topology& t);
[[nodiscard]] Topology get_topology(WireReader& r);

}  // namespace blobseer::rpc
