/// \file transport.hpp
/// \brief The transport abstraction every encoded frame travels through.
///
/// A Transport delivers one sealed request frame (protocol.hpp) to a
/// logical node and eventually produces the sealed response frame.
/// Implementations:
///
///  * SimTransport  — routes frames through the in-process SimNetwork,
///                    preserving its bandwidth gates, latency model and
///                    fault injection while charging the *actual* encoded
///                    byte counts (sim_transport.hpp).
///  * TcpTransport  — POSIX sockets, one multiplexed connection per peer
///                    endpoint with correlation-id response matching
///                    (tcp_transport.hpp).
///
/// The primitive is asynchronous: call_async() returns a Future<Buffer>
/// that completes with the response frame, or fails with RpcError on a
/// delivery failure (dead node, partition, connection reset) — never
/// with a partial frame. A response frame may itself encode a service
/// error; decoding that is the stub layer's job (see Status). The
/// request frame is fully consumed (sent or copied) before call_async
/// returns, so the caller may free it immediately.
///
/// The sync surface (roundtrip) is a convenience wrapper over
/// call_async; SimTransport overrides it to dispatch inline on the
/// calling thread, exactly as the seed's direct calls did.

#pragma once

#include "common/buffer.hpp"
#include "common/future.hpp"
#include "common/types.hpp"

namespace blobseer::rpc {

class Transport {
  public:
    virtual ~Transport() = default;

    /// Start delivering \p frame to logical node \p dst; the returned
    /// future completes with the response frame (or RpcError). Many
    /// calls may be in flight at once — responses complete out of
    /// order as the peer answers them.
    [[nodiscard]] virtual Future<Buffer> call_async(NodeId dst,
                                                    ConstBytes frame) = 0;

    /// Same, but account the transfer to \p via instead of this
    /// transport's own identity — pipelined replication hands the upload
    /// cost to the previous chain member (GFS-style). Transports without
    /// a cost model just forward.
    [[nodiscard]] virtual Future<Buffer> call_async_via(NodeId via,
                                                        NodeId dst,
                                                        ConstBytes frame) {
        (void)via;
        return call_async(dst, frame);
    }

    /// Deliver \p frame to logical node \p dst; block until the response
    /// frame arrives and return it.
    [[nodiscard]] virtual Buffer roundtrip(NodeId dst, ConstBytes frame) {
        return call_async(dst, frame).get();
    }

    /// Blocking variant of call_async_via.
    [[nodiscard]] virtual Buffer roundtrip_via(NodeId via, NodeId dst,
                                               ConstBytes frame) {
        return call_async_via(via, dst, frame).get();
    }
};

}  // namespace blobseer::rpc
