/// \file transport.hpp
/// \brief The transport abstraction every encoded frame travels through.
///
/// A Transport delivers one sealed request frame (protocol.hpp) to a
/// logical node and returns the sealed response frame. Implementations:
///
///  * SimTransport  — routes frames through the in-process SimNetwork,
///                    preserving its bandwidth gates, latency model and
///                    fault injection while charging the *actual* encoded
///                    byte counts (sim_transport.hpp).
///  * TcpTransport  — POSIX sockets with a per-peer connection pool
///                    against a blobseer_serverd daemon or an in-process
///                    TcpRpcServer (tcp_transport.hpp).
///
/// Contract: roundtrip() either returns a complete response frame (which
/// may itself encode a service error — see Status) or throws RpcError for
/// delivery failures (dead node, partition, connection reset). It never
/// returns a partial frame.

#pragma once

#include "common/buffer.hpp"
#include "common/types.hpp"

namespace blobseer::rpc {

class Transport {
  public:
    virtual ~Transport() = default;

    /// Deliver \p frame to logical node \p dst; block until the response
    /// frame arrives and return it.
    [[nodiscard]] virtual Buffer roundtrip(NodeId dst, ConstBytes frame) = 0;

    /// Same, but account the transfer to \p via instead of this
    /// transport's own identity — pipelined replication hands the upload
    /// cost to the previous chain member (GFS-style). Transports without
    /// a cost model just forward.
    [[nodiscard]] virtual Buffer roundtrip_via(NodeId via, NodeId dst,
                                               ConstBytes frame) {
        (void)via;
        return roundtrip(dst, frame);
    }
};

}  // namespace blobseer::rpc
