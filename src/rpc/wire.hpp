/// \file wire.hpp
/// \brief Binary wire codec primitives: bounded little-endian readers and
///        writers.
///
/// Every cross-node message in BlobSeer is serialized with these two
/// classes (see DESIGN.md §7). The format is deliberately boring:
/// fixed-width little-endian integers for protocol-critical fields,
/// LEB128 varints for counts and lengths, length-prefixed byte strings
/// for payloads. There is no reflection and no schema compiler — each
/// message codec is a pair of hand-written put/get functions, which keeps
/// the wire format auditable byte by byte.
///
/// Safety contract: WireReader never reads past the end of its buffer and
/// never invokes UB on malformed input; every violation (truncation,
/// over-long varint, oversized length prefix) throws RpcError. This is
/// what the codec fuzz/property tests in tests/test_rpc_codec.cpp pin
/// down.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace blobseer::rpc {

/// Append-only little-endian serializer producing a Buffer.
class WireWriter {
  public:
    WireWriter() = default;
    explicit WireWriter(std::size_t reserve) { buf_.reserve(reserve); }

    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u16(std::uint16_t v) { fixed(v); }
    void u32(std::uint32_t v) { fixed(v); }
    void u64(std::uint64_t v) { fixed(v); }

    /// LEB128 varint: 1 byte for values < 128, up to 10 bytes for 2^64-1.
    void varint(std::uint64_t v) {
        while (v >= 0x80) {
            buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        buf_.push_back(static_cast<std::uint8_t>(v));
    }

    /// Raw bytes, no length prefix (caller's framing must imply the size).
    void raw(ConstBytes bytes) {
        buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    }

    /// Length-prefixed byte string.
    void blob(ConstBytes bytes) {
        varint(bytes.size());
        raw(bytes);
    }

    void str(std::string_view s) {
        varint(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] const Buffer& buffer() const noexcept { return buf_; }
    [[nodiscard]] Buffer take() noexcept { return std::move(buf_); }

  private:
    template <typename T>
    void fixed(T v) {
        // Little-endian store; portable on the LE targets we build for,
        // and a single memcpy the optimizer turns into a plain store.
        const std::size_t n = buf_.size();
        buf_.resize(n + sizeof(T));
        std::memcpy(buf_.data() + n, &v, sizeof(T));
    }

    Buffer buf_;
};

/// Bounded deserializer over a borrowed byte span. Throws RpcError on any
/// attempt to read past the end — malformed frames must never be UB.
class WireReader {
  public:
    explicit WireReader(ConstBytes data) : data_(data) {}

    [[nodiscard]] std::uint8_t u8() {
        need(1);
        return data_[pos_++];
    }

    [[nodiscard]] std::uint16_t u16() { return fixed<std::uint16_t>(); }
    [[nodiscard]] std::uint32_t u32() { return fixed<std::uint32_t>(); }
    [[nodiscard]] std::uint64_t u64() { return fixed<std::uint64_t>(); }

    [[nodiscard]] std::uint64_t varint() {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            const std::uint8_t b = u8();
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0) {
                return v;
            }
        }
        throw RpcError("frame decode: varint longer than 64 bits");
    }

    /// Collection-count prefix: a varint validated against the bytes
    /// actually present (each element encodes to at least
    /// \p min_element_bytes). Decoders size their reserve() from this,
    /// so a hostile count in a tiny frame cannot amplify into a huge
    /// allocation before the truncation is noticed.
    [[nodiscard]] std::uint64_t varint_count(
        std::uint64_t min_element_bytes) {
        const std::uint64_t n = varint();
        const std::uint64_t per = min_element_bytes == 0
                                      ? 1
                                      : min_element_bytes;
        if (n > remaining() / per) {
            throw RpcError("frame decode: count " + std::to_string(n) +
                           " exceeds payload capacity");
        }
        return n;
    }

    /// Length-prefixed byte string; the returned span borrows the frame.
    [[nodiscard]] ConstBytes blob() {
        const std::uint64_t n = varint();
        need(n);
        const ConstBytes out = data_.subspan(pos_, n);
        pos_ += n;
        return out;
    }

    [[nodiscard]] std::string str() {
        const ConstBytes b = blob();
        return {reinterpret_cast<const char*>(b.data()), b.size()};
    }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return data_.size() - pos_;
    }

    /// Decoders call this last: trailing garbage means a codec mismatch.
    void expect_end() const {
        if (remaining() != 0) {
            throw RpcError("frame decode: " + std::to_string(remaining()) +
                           " trailing bytes");
        }
    }

  private:
    void need(std::uint64_t n) const {
        if (n > remaining()) {
            throw RpcError("frame decode: truncated (need " +
                           std::to_string(n) + " bytes, have " +
                           std::to_string(remaining()) + ")");
        }
    }

    template <typename T>
    [[nodiscard]] T fixed() {
        need(sizeof(T));
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    ConstBytes data_;
    std::size_t pos_ = 0;
};

}  // namespace blobseer::rpc
