#include "rpc/service_client.hpp"

#include <algorithm>
#include <cstring>

#include "rpc/protocol.hpp"

namespace blobseer::rpc {

namespace {

/// Parse a response frame; throw the mapped exception on error status;
/// return a reader positioned at the payload.
[[nodiscard]] WireReader open_reply(const Buffer& frame, MsgType expect) {
    const FrameView f = parse_frame(frame);
    if (!f.response) {
        throw RpcError("request frame where a response was expected");
    }
    if (f.status() != Status::kOk) {
        WireReader r(f.payload);
        throw_status(f.status(), r.str());
    }
    if (f.type != expect) {
        throw RpcError(std::string("response type mismatch: expected ") +
                       to_string(expect) + ", got " + to_string(f.type));
    }
    return WireReader(f.payload);
}

/// Record the client half of an RPC span (the server half shares the
/// span id and is merged in by the trace viewer).
void record_client_span(const trace::TraceContext& child,
                        std::uint32_t parent_span, MsgType type, NodeId dst,
                        std::uint64_t start_unix_us,
                        std::uint64_t duration_us, std::uint64_t bytes,
                        Status status) {
    if (!trace::TraceBuffer::should_record(child.sampled(), duration_us)) {
        return;
    }
    trace::SpanRecord span;
    span.trace_id = child.trace_id;
    span.span_id = child.span_id;
    span.parent_span = parent_span;
    span.start_unix_us = start_unix_us;
    span.duration_us = duration_us;
    span.bytes = bytes;
    span.node = dst;
    span.kind = trace::SpanRecord::kClient;
    span.status = static_cast<std::uint8_t>(status);
    span.set_op(to_string(type));
    trace::buffer().record(span);
}

}  // namespace

ServiceClient::ServiceClient(Transport& transport,
                             std::vector<NodeId> vm_nodes, NodeId pm_node,
                             NodeId self)
    : transport_(transport),
      vm_nodes_(std::move(vm_nodes)),
      pm_node_(pm_node),
      self_(self) {
    if (vm_nodes_.empty()) {
        throw InvalidArgument("deployment advertises no version-manager");
    }
    if (vm_nodes_.size() > kMaxBlobShards) {
        throw InvalidArgument("deployment advertises " +
                              std::to_string(vm_nodes_.size()) +
                              " version-manager shards (max " +
                              std::to_string(kMaxBlobShards) + ")");
    }
    if (vm_nodes_.size() > 1) {
        for (const NodeId node : vm_nodes_) {
            vm_ring_.add_node(node);
        }
    }
}

NodeId ServiceClient::vm_node_of(BlobId blob) const {
    const std::uint32_t shard = blob_shard(blob);
    if (shard >= vm_nodes_.size()) {
        throw InvalidArgument("blob " + std::to_string(blob) +
                              " names version-manager shard " +
                              std::to_string(shard) + " of " +
                              std::to_string(vm_nodes_.size()));
    }
    return vm_nodes_[shard];
}

NodeId ServiceClient::pick_create_node() {
    if (vm_nodes_.size() == 1) {
        return vm_nodes_.front();
    }
    // (client id, creation#) hashed onto the shard ring: deterministic
    // per client, uniform across clients — no coordination needed.
    const std::uint64_t seq = create_seq_.fetch_add(1);
    return vm_ring_.owner(
        mix64((static_cast<std::uint64_t>(self_) << 32) ^ seq));
}

Buffer ServiceClient::invoke(MsgType type, NodeId dst, WireWriter&& body,
                             NodeId via) {
    Buffer frame = seal_request(type, dst, std::move(body));
    const trace::TraceContext parent = trace::current();
    if (!parent.active()) {
        if (via != kInvalidNode) {
            return transport_.roundtrip_via(via, dst, frame);
        }
        return transport_.roundtrip(dst, frame);
    }

    // Traced: mint a child span for this RPC and carry it in the frame.
    trace::TraceContext child = parent;
    child.span_id = trace::new_span_id();
    set_frame_trace(frame, child);
    const std::uint64_t start_unix = trace::now_unix_us();
    const TimePoint started = Clock::now();
    const auto elapsed_us = [started] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - started)
                .count());
    };
    try {
        Buffer resp = via != kInvalidNode
                          ? transport_.roundtrip_via(via, dst, frame)
                          : transport_.roundtrip(dst, frame);
        record_client_span(child, parent.span_id, type, dst, start_unix,
                           elapsed_us(), frame.size() + resp.size(),
                           frame_status(resp));
        return resp;
    } catch (...) {
        record_client_span(child, parent.span_id, type, dst, start_unix,
                           elapsed_us(), frame.size(), Status::kRpcError);
        throw;
    }
}

Future<Buffer> ServiceClient::invoke_async(MsgType type, NodeId dst,
                                           WireWriter&& body, NodeId via) {
    Buffer frame = seal_request(type, dst, std::move(body));
    const trace::TraceContext parent = trace::current();
    if (!parent.active()) {
        if (via != kInvalidNode) {
            return transport_.call_async_via(via, dst, frame);
        }
        return transport_.call_async(dst, frame);
    }

    trace::TraceContext child = parent;
    child.span_id = trace::new_span_id();
    set_frame_trace(frame, child);
    const std::uint64_t start_unix = trace::now_unix_us();
    const TimePoint started = Clock::now();
    const std::uint64_t sent = frame.size();
    Future<Buffer> fut = via != kInvalidNode
                             ? transport_.call_async_via(via, dst, frame)
                             : transport_.call_async(dst, frame);
    // The adapter runs only when the future succeeds, so async client
    // spans cover successful RPCs; failures still surface as the server
    // half of the span (and in the error counters).
    return map_future<Buffer>(
        std::move(fut),
        [child, parent, type, dst, start_unix, started, sent](Buffer resp) {
            const auto us = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - started)
                    .count());
            record_client_span(child, parent.span_id, type, dst, start_unix,
                               us, sent + resp.size(), frame_status(resp));
            return resp;
        });
}

// ---- version manager -------------------------------------------------------

version::BlobInfo ServiceClient::create_blob(std::uint64_t chunk_size,
                                             std::uint32_t replication) {
    WireWriter w;
    w.u64(chunk_size);
    w.u32(replication);
    const Buffer resp =
        invoke(MsgType::kBlobCreate, pick_create_node(), std::move(w));
    auto r = open_reply(resp, MsgType::kBlobCreate);
    auto out = get_blob_info(r);
    r.expect_end();
    return out;
}

version::BlobInfo ServiceClient::clone_blob(BlobId src, Version version) {
    WireWriter w;
    w.u64(src);
    w.u64(version);
    const Buffer resp =
        invoke(MsgType::kBlobClone, vm_node_of(src), std::move(w));
    auto r = open_reply(resp, MsgType::kBlobClone);
    auto out = get_blob_info(r);
    r.expect_end();
    return out;
}

version::BlobInfo ServiceClient::clone_from(std::uint64_t chunk_size,
                                            std::uint32_t replication,
                                            const meta::TreeRef& origin) {
    WireWriter w;
    w.u64(chunk_size);
    w.u32(replication);
    put_tree_ref(w, origin);
    const Buffer resp =
        invoke(MsgType::kBlobCloneFrom, pick_create_node(), std::move(w));
    auto r = open_reply(resp, MsgType::kBlobCloneFrom);
    auto out = get_blob_info(r);
    r.expect_end();
    return out;
}

version::ShardStatus ServiceClient::vm_status(NodeId vm_node) {
    const Buffer resp = invoke(MsgType::kVmStatus, vm_node, WireWriter());
    auto r = open_reply(resp, MsgType::kVmStatus);
    auto out = get_shard_status(r);
    r.expect_end();
    return out;
}

version::BlobInfo ServiceClient::blob_info(BlobId blob) {
    WireWriter w;
    w.u64(blob);
    const Buffer resp =
        invoke(MsgType::kBlobInfo, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kBlobInfo);
    auto out = get_blob_info(r);
    r.expect_end();
    return out;
}

version::AssignResult ServiceClient::assign(
    BlobId blob, std::optional<std::uint64_t> offset, std::uint64_t size) {
    WireWriter w;
    w.u64(blob);
    w.u8(offset.has_value() ? 1 : 0);
    if (offset) {
        w.u64(*offset);
    }
    w.u64(size);
    const Buffer resp = invoke(MsgType::kAssign, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kAssign);
    auto out = get_assign_result(r);
    r.expect_end();
    return out;
}

void ServiceClient::commit(BlobId blob, Version v) {
    WireWriter w;
    w.u64(blob);
    w.u64(v);
    const Buffer resp = invoke(MsgType::kCommit, vm_node_of(blob), std::move(w));
    open_reply(resp, MsgType::kCommit).expect_end();
}

version::VersionInfo ServiceClient::get_version(BlobId blob, Version v) {
    WireWriter w;
    w.u64(blob);
    w.u64(v);
    const Buffer resp = invoke(MsgType::kGetVersion, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kGetVersion);
    auto out = get_version_info(r);
    r.expect_end();
    return out;
}

version::VersionInfo ServiceClient::wait_published(BlobId blob, Version v,
                                                   Duration timeout) {
    WireWriter w;
    w.u64(blob);
    w.u64(v);
    w.u64(static_cast<std::uint64_t>(
        duration_cast<milliseconds>(timeout).count()));
    const Buffer resp =
        invoke(MsgType::kWaitPublished, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kWaitPublished);
    auto out = get_version_info(r);
    r.expect_end();
    return out;
}

std::vector<version::VersionManager::VersionSummary> ServiceClient::history(
    BlobId blob, Version from, Version to) {
    WireWriter w;
    w.u64(blob);
    w.u64(from);
    w.u64(to);
    const Buffer resp = invoke(MsgType::kHistory, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kHistory);
    const std::uint64_t n = r.varint_count(33);  // encoded VersionSummary
    std::vector<version::VersionManager::VersionSummary> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(get_version_summary(r));
    }
    r.expect_end();
    return out;
}

bool ServiceClient::pin(BlobId blob, Version v) {
    WireWriter w;
    w.u64(blob);
    w.u64(v);
    const Buffer resp = invoke(MsgType::kPin, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kPin);
    const bool inserted = r.u8() != 0;
    r.expect_end();
    return inserted;
}

void ServiceClient::unpin(BlobId blob, Version v) {
    WireWriter w;
    w.u64(blob);
    w.u64(v);
    const Buffer resp = invoke(MsgType::kUnpin, vm_node_of(blob), std::move(w));
    open_reply(resp, MsgType::kUnpin).expect_end();
}

version::VersionManager::RetireInfo ServiceClient::retire(BlobId blob,
                                                          Version keep_from) {
    WireWriter w;
    w.u64(blob);
    w.u64(keep_from);
    const Buffer resp = invoke(MsgType::kRetire, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kRetire);
    auto out = get_retire_info(r);
    r.expect_end();
    return out;
}

meta::WriteDescriptor ServiceClient::descriptor_of(BlobId blob, Version v) {
    WireWriter w;
    w.u64(blob);
    w.u64(v);
    const Buffer resp =
        invoke(MsgType::kDescriptorOf, vm_node_of(blob), std::move(w));
    auto r = open_reply(resp, MsgType::kDescriptorOf);
    auto out = get_write_descriptor(r);
    r.expect_end();
    return out;
}

// ---- provider manager ------------------------------------------------------

provider::PlacementPlan ServiceClient::place(std::uint64_t n_chunks,
                                             std::uint32_t replication,
                                             std::uint64_t chunk_bytes) {
    WireWriter w;
    w.u64(n_chunks);
    w.u32(replication);
    w.u64(chunk_bytes);
    const Buffer resp = invoke(MsgType::kPlace, pm_node_, std::move(w));
    auto r = open_reply(resp, MsgType::kPlace);
    auto out = get_placement_plan(r);
    r.expect_end();
    return out;
}

void ServiceClient::mark_dead(NodeId node) {
    WireWriter w;
    w.u32(node);
    const Buffer resp = invoke(MsgType::kMarkDead, pm_node_, std::move(w));
    open_reply(resp, MsgType::kMarkDead).expect_end();
}

bool ServiceClient::report_failure(NodeId suspect) {
    WireWriter w;
    w.u32(suspect);
    w.u32(self_);
    const Buffer resp =
        invoke(MsgType::kReportFailure, pm_node_, std::move(w));
    auto r = open_reply(resp, MsgType::kReportFailure);
    const bool dead = r.u8() != 0;
    r.expect_end();
    return dead;
}

provider::ProviderManager::JoinResult ServiceClient::provider_join(
    const std::string& name) {
    WireWriter w;
    w.str(name);
    const Buffer resp =
        invoke(MsgType::kProviderJoin, pm_node_, std::move(w));
    auto r = open_reply(resp, MsgType::kProviderJoin);
    provider::ProviderManager::JoinResult out;
    out.node = r.u32();
    out.rejoin = r.u8() != 0;
    r.expect_end();
    return out;
}

void ServiceClient::provider_announce(
    NodeId node, const std::string& host, std::uint32_t port,
    const std::vector<provider::ChunkHolding>& inventory) {
    WireWriter w;
    w.u32(node);
    w.str(host);
    w.u32(port);
    put_chunk_holdings(w, inventory);
    const Buffer resp =
        invoke(MsgType::kProviderAnnounce, pm_node_, std::move(w));
    open_reply(resp, MsgType::kProviderAnnounce).expect_end();
}

bool ServiceClient::provider_beat(
    NodeId node, std::uint64_t seq,
    const std::vector<provider::ChunkHolding>& added,
    const std::vector<chunk::ChunkKey>& removed) {
    WireWriter w;
    w.u32(node);
    w.u64(seq);
    put_chunk_holdings(w, added);
    put_chunk_keys(w, removed);
    const Buffer resp =
        invoke(MsgType::kProviderBeat, pm_node_, std::move(w));
    auto r = open_reply(resp, MsgType::kProviderBeat);
    const bool known = r.u8() != 0;
    r.expect_end();
    return known;
}

provider::RepairStatus ServiceClient::repair_status() {
    const Buffer resp =
        invoke(MsgType::kRepairStatus, pm_node_, WireWriter());
    auto r = open_reply(resp, MsgType::kRepairStatus);
    auto out = get_repair_status(r);
    r.expect_end();
    return out;
}

// ---- observability (protocol v7) -------------------------------------------

MetricsSnapshot ServiceClient::metrics_dump(NodeId node) {
    const Buffer resp = invoke(MsgType::kMetricsDump, node, WireWriter());
    auto r = open_reply(resp, MsgType::kMetricsDump);
    auto out = get_metrics_snapshot(r);
    r.expect_end();
    return out;
}

std::vector<trace::SpanRecord> ServiceClient::trace_dump(
    std::uint64_t trace_id, std::uint64_t max, NodeId node) {
    WireWriter w;
    w.u64(trace_id);
    w.u64(max);
    const Buffer resp = invoke(MsgType::kTraceDump, node, std::move(w));
    auto r = open_reply(resp, MsgType::kTraceDump);
    auto out = get_span_records(r);
    r.expect_end();
    return out;
}

// ---- data providers --------------------------------------------------------

void ServiceClient::put_chunk(NodeId dp, const chunk::ChunkKey& key,
                              ConstBytes payload, NodeId via) {
    put_chunk_async(dp, key, payload, via).get();
}

Future<void> ServiceClient::put_chunk_async(NodeId dp,
                                            const chunk::ChunkKey& key,
                                            ConstBytes payload, NodeId via) {
    WireWriter w(payload.size() + 64);
    put_chunk_key(w, key);
    w.blob(payload);
    return map_future<void>(
        invoke_async(MsgType::kChunkPut, dp, std::move(w), via),
        [](Buffer&& resp) {
            open_reply(resp, MsgType::kChunkPut).expect_end();
        });
}

ServiceClient::ChunkSlice ServiceClient::get_chunk(NodeId dp,
                                                   const chunk::ChunkKey& key,
                                                   std::uint64_t offset,
                                                   std::uint64_t size) {
    return get_chunk_async(dp, key, offset, size).get();
}

Future<ServiceClient::ChunkSlice> ServiceClient::get_chunk_async(
    NodeId dp, const chunk::ChunkKey& key, std::uint64_t offset,
    std::uint64_t size) {
    WireWriter w;
    put_chunk_key(w, key);
    w.u64(offset);
    w.u64(size);
    return map_future<ChunkSlice>(
        invoke_async(MsgType::kChunkGet, dp, std::move(w)),
        [](Buffer&& resp) {
            auto r = open_reply(resp, MsgType::kChunkGet);
            ChunkSlice out;
            out.chunk_size = r.u64();
            const ConstBytes bytes = r.blob();
            r.expect_end();
            // Steal the response frame instead of allocating a second
            // buffer: slide the payload to the front and shrink.
            const std::size_t off =
                static_cast<std::size_t>(bytes.data() - resp.data());
            std::memmove(resp.data(), resp.data() + off, bytes.size());
            resp.resize(bytes.size());
            out.bytes = std::move(resp);
            return out;
        });
}

void ServiceClient::erase_chunk(NodeId dp, const chunk::ChunkKey& key) {
    WireWriter w;
    put_chunk_key(w, key);
    const Buffer resp = invoke(MsgType::kChunkErase, dp, std::move(w));
    open_reply(resp, MsgType::kChunkErase).expect_end();
}

// ---- content-addressed data-provider operations ----------------------------

bool ServiceClient::check_chunk(NodeId dp, const chunk::ChunkKey& key,
                                bool want_incref, std::uint64_t size_hint) {
    return check_chunk_async(dp, key, want_incref, size_hint).get();
}

Future<bool> ServiceClient::check_chunk_async(NodeId dp,
                                              const chunk::ChunkKey& key,
                                              bool want_incref,
                                              std::uint64_t size_hint) {
    WireWriter w;
    put_chunk_key(w, key);
    w.u8(want_incref ? 1 : 0);
    w.u64(size_hint);
    return map_future<bool>(
        invoke_async(MsgType::kChunkCheck, dp, std::move(w)),
        [](Buffer&& resp) {
            auto r = open_reply(resp, MsgType::kChunkCheck);
            const bool has = r.u8() != 0;
            r.expect_end();
            return has;
        });
}

std::uint64_t ServiceClient::push_start(NodeId dp, const chunk::ChunkKey& key,
                                        std::uint64_t total) {
    WireWriter w;
    put_chunk_key(w, key);
    w.u64(total);
    const Buffer resp = invoke(MsgType::kChunkPushStart, dp, std::move(w));
    auto r = open_reply(resp, MsgType::kChunkPushStart);
    const std::uint64_t xfer = r.u64();
    r.expect_end();
    return xfer;
}

void ServiceClient::push_some(NodeId dp, std::uint64_t xfer,
                              std::uint64_t offset, ConstBytes bytes,
                              NodeId via) {
    WireWriter w(bytes.size() + 64);
    w.u64(xfer);
    w.u64(offset);
    w.blob(bytes);
    const Buffer resp =
        invoke(MsgType::kChunkPushSome, dp, std::move(w), via);
    open_reply(resp, MsgType::kChunkPushSome).expect_end();
}

void ServiceClient::push_end(NodeId dp, std::uint64_t xfer) {
    WireWriter w;
    w.u64(xfer);
    const Buffer resp = invoke(MsgType::kChunkPushEnd, dp, std::move(w));
    open_reply(resp, MsgType::kChunkPushEnd).expect_end();
}

void ServiceClient::push_chunk(NodeId dp, const chunk::ChunkKey& key,
                               ConstBytes payload, std::size_t slice_bytes,
                               NodeId via) {
    if (slice_bytes == 0) {
        throw InvalidArgument("push_chunk: zero slice size");
    }
    const std::uint64_t xfer = push_start(dp, key, payload.size());
    for (std::size_t off = 0; off < payload.size(); off += slice_bytes) {
        const std::size_t n = std::min(slice_bytes, payload.size() - off);
        push_some(dp, xfer, off, payload.subspan(off, n), via);
    }
    push_end(dp, xfer);
}

std::uint64_t ServiceClient::pull_start(NodeId dp,
                                        const chunk::ChunkKey& key) {
    WireWriter w;
    put_chunk_key(w, key);
    const Buffer resp = invoke(MsgType::kChunkPullStart, dp, std::move(w));
    auto r = open_reply(resp, MsgType::kChunkPullStart);
    const std::uint64_t total = r.u64();
    r.expect_end();
    return total;
}

ServiceClient::ChunkSlice ServiceClient::pull_some(NodeId dp,
                                                   const chunk::ChunkKey& key,
                                                   std::uint64_t offset,
                                                   std::uint64_t size) {
    WireWriter w;
    put_chunk_key(w, key);
    w.u64(offset);
    w.u64(size);
    Buffer resp = invoke(MsgType::kChunkPullSome, dp, std::move(w));
    auto r = open_reply(resp, MsgType::kChunkPullSome);
    ChunkSlice out;
    out.chunk_size = r.u64();
    const ConstBytes bytes = r.blob();
    r.expect_end();
    const std::size_t off =
        static_cast<std::size_t>(bytes.data() - resp.data());
    std::memmove(resp.data(), resp.data() + off, bytes.size());
    resp.resize(bytes.size());
    out.bytes = std::move(resp);
    return out;
}

Buffer ServiceClient::pull_chunk(NodeId dp, const chunk::ChunkKey& key,
                                 std::size_t slice_bytes) {
    if (slice_bytes == 0) {
        throw InvalidArgument("pull_chunk: zero slice size");
    }
    Buffer out;
    const std::uint64_t total = pull_start(dp, key);
    out.reserve(total);
    while (out.size() < total) {
        const std::uint64_t n =
            std::min<std::uint64_t>(slice_bytes, total - out.size());
        ChunkSlice slice = pull_some(dp, key, out.size(), n);
        if (slice.bytes.empty()) {
            throw ConsistencyError("pull of " + key.to_string() +
                                   " stalled at offset " +
                                   std::to_string(out.size()));
        }
        out.insert(out.end(), slice.bytes.begin(), slice.bytes.end());
    }
    return out;
}

std::uint64_t ServiceClient::chunk_decref(NodeId dp,
                                          const chunk::ChunkKey& key) {
    return chunk_decref_async(dp, key).get();
}

Future<std::uint64_t> ServiceClient::chunk_decref_async(
    NodeId dp, const chunk::ChunkKey& key) {
    WireWriter w;
    put_chunk_key(w, key);
    return map_future<std::uint64_t>(
        invoke_async(MsgType::kChunkDecref, dp, std::move(w)),
        [](Buffer&& resp) {
            auto r = open_reply(resp, MsgType::kChunkDecref);
            const std::uint64_t remaining = r.u64();
            r.expect_end();
            return remaining;
        });
}

provider::DataProvider::DedupStatus ServiceClient::dedup_status(NodeId dp) {
    const Buffer resp = invoke(MsgType::kDedupStatus, dp, WireWriter());
    auto r = open_reply(resp, MsgType::kDedupStatus);
    provider::DataProvider::DedupStatus s;
    s.chunks_stored = r.u64();
    s.stored_bytes = r.u64();
    s.check_hits = r.u64();
    s.check_misses = r.u64();
    s.bytes_skipped = r.u64();
    s.dup_puts = r.u64();
    s.decrefs = r.u64();
    s.reclaimed_chunks = r.u64();
    s.reclaimed_bytes = r.u64();
    r.expect_end();
    return s;
}

// ---- metadata providers ----------------------------------------------------

void ServiceClient::meta_put(NodeId mp, const meta::MetaKey& key,
                             const meta::MetaNode& node) {
    meta_put_async(mp, key, node).get();
}

Future<void> ServiceClient::meta_put_async(NodeId mp,
                                           const meta::MetaKey& key,
                                           const meta::MetaNode& node) {
    WireWriter w;
    put_meta_key(w, key);
    put_meta_node(w, node);
    return map_future<void>(
        invoke_async(MsgType::kMetaPut, mp, std::move(w)),
        [](Buffer&& resp) {
            open_reply(resp, MsgType::kMetaPut).expect_end();
        });
}

meta::MetaNode ServiceClient::meta_get(NodeId mp, const meta::MetaKey& key) {
    return meta_get_async(mp, key).get();
}

Future<meta::MetaNode> ServiceClient::meta_get_async(
    NodeId mp, const meta::MetaKey& key) {
    WireWriter w;
    put_meta_key(w, key);
    return map_future<meta::MetaNode>(
        invoke_async(MsgType::kMetaGet, mp, std::move(w)),
        [](Buffer&& resp) {
            auto r = open_reply(resp, MsgType::kMetaGet);
            auto out = get_meta_node(r);
            r.expect_end();
            return out;
        });
}

std::optional<meta::MetaNode> ServiceClient::meta_try_get(
    NodeId mp, const meta::MetaKey& key) {
    WireWriter w;
    put_meta_key(w, key);
    const Buffer resp = invoke(MsgType::kMetaTryGet, mp, std::move(w));
    auto r = open_reply(resp, MsgType::kMetaTryGet);
    std::optional<meta::MetaNode> out;
    if (r.u8() != 0) {
        out = get_meta_node(r);
    }
    r.expect_end();
    return out;
}

void ServiceClient::meta_erase(NodeId mp, const meta::MetaKey& key) {
    WireWriter w;
    put_meta_key(w, key);
    const Buffer resp = invoke(MsgType::kMetaErase, mp, std::move(w));
    open_reply(resp, MsgType::kMetaErase).expect_end();
}

// ---- control plane ---------------------------------------------------------

Topology fetch_topology(Transport& transport) {
    const Buffer frame =
        seal_request(MsgType::kTopology, kControlNode, WireWriter());
    const Buffer resp = transport.roundtrip(kControlNode, frame);
    auto r = open_reply(resp, MsgType::kTopology);
    auto out = get_topology(r);
    r.expect_end();
    return out;
}

}  // namespace blobseer::rpc
