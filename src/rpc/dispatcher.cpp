#include "rpc/dispatcher.hpp"

#include <algorithm>
#include <string>

#include "common/trace.hpp"
#include "dht/metadata_provider.hpp"
#include "provider/data_provider.hpp"
#include "provider/provider_manager.hpp"
#include "version/version_manager.hpp"

namespace blobseer::rpc {

namespace {

[[nodiscard]] std::optional<std::uint64_t> get_opt_u64(WireReader& r) {
    if (r.u8() == 0) {
        return std::nullopt;
    }
    return r.u64();
}

[[nodiscard]] std::uint64_t us_between(TimePoint from, TimePoint to) {
    if (to <= from) {
        return 0;
    }
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to - from)
            .count());
}

}  // namespace

Dispatcher::OpTelemetry* Dispatcher::telemetry_for(MsgType type) noexcept {
    const auto tag = static_cast<std::uint16_t>(type);
    if (tag >= op_telemetry_.size()) {
        return nullptr;  // corrupt tag; no series for it
    }
    OpTelemetry& t = op_telemetry_[tag];
    if (t.latency.load(std::memory_order_acquire) == nullptr) {
        // First dispatch of this op in this dispatcher. The registry
        // get-or-creates by name+label, so every dispatcher in the
        // process resolves to the same shared series, and a racing
        // resolve stores the same pointers.
        auto& registry = MetricsRegistry::instance();
        const MetricLabels labels{{"op", to_string(type)}};
        t.requests.store(
            &registry.counter("rpc_server_requests_total", labels),
            std::memory_order_relaxed);
        t.errors.store(&registry.counter("rpc_server_errors_total", labels),
                       std::memory_order_relaxed);
        t.latency.store(&registry.histogram("rpc_server_latency_us", labels),
                        std::memory_order_release);
    }
    return &t;
}

Buffer Dispatcher::dispatch(ConstBytes frame,
                            TimePoint received_at) noexcept {
    RpcResponse resp = dispatch_sg(frame, received_at);
    if (!resp.tail.empty()) {
        // Flattening IS the copy the scatter-gather path avoids; count
        // the payload bytes so before/after is a counter diff.
        static Counter& bytes_copied = MetricsRegistry::instance().counter(
            "rpc_bytes_copied_total", {});
        bytes_copied.add(resp.tail.size());
    }
    return std::move(resp).flatten();
}

RpcResponse Dispatcher::dispatch_sg(ConstBytes frame,
                                    TimePoint received_at) noexcept {
    MsgType type = MsgType::kTopology;
    // The request's correlation id is echoed into whatever response —
    // success or error — leaves here, so a multiplexing transport can
    // match it. A frame too corrupt to parse keeps corr 0; its sender's
    // stream is beyond saving anyway.
    std::uint64_t corr = 0;
    Status status = Status::kOk;
    trace::TraceContext ctx;
    NodeId dst = kInvalidNode;
    std::uint64_t payload_bytes = 0;
    bool known_type = false;
    const TimePoint started = Clock::now();
    RpcResponse response;
    try {
        const FrameView f = parse_frame(frame);
        type = f.type;
        corr = f.corr;
        ctx.trace_id = f.trace_id;
        ctx.span_id = f.span_id;
        ctx.flags = f.trace_flags;
        dst = f.dst();
        payload_bytes = f.payload.size();
        known_type = true;
        if (f.response) {
            throw RpcError("dispatch of a response frame");
        }
        // Handlers run inside the frame's trace context, so every nested
        // RPC a service issues (DHT replica puts, CAS check→push chains,
        // repair copies) inherits the trace.
        const trace::TraceScope scope(ctx);
        response = handle(f);
    } catch (const RpcError& e) {
        status = Status::kRpcError;
        response = seal_error(type, status, e.what());
    } catch (const TimeoutError& e) {
        status = Status::kTimeout;
        response = seal_error(type, status, e.what());
    } catch (const NotFoundError& e) {
        status = Status::kNotFound;
        response = seal_error(type, status, e.what());
    } catch (const ConsistencyError& e) {
        status = Status::kConsistency;
        response = seal_error(type, status, e.what());
    } catch (const InvalidArgument& e) {
        status = Status::kInvalidArgument;
        response = seal_error(type, status, e.what());
    } catch (const VersionAborted& e) {
        status = Status::kVersionAborted;
        response = seal_error(type, status, e.what());
    } catch (const VersionRetired& e) {
        status = Status::kVersionRetired;
        response = seal_error(type, status, e.what());
    } catch (const std::exception& e) {
        status = Status::kError;
        response = seal_error(type, status, e.what());
    }
    set_frame_corr(response.head, corr);

    const std::uint64_t handle_us = us_between(started, Clock::now());
    if (known_type) {
        if (OpTelemetry* t = telemetry_for(type)) {
            t->requests.load(std::memory_order_relaxed)->add();
            t->latency.load(std::memory_order_relaxed)->record(handle_us);
            if (status != Status::kOk) {
                t->errors.load(std::memory_order_relaxed)->add();
            }
        }
    }

    if (ctx.active()) {
        // Echo the request's context so the client can sanity-check the
        // response belongs to its trace.
        set_frame_trace(response.head, ctx);
        if (trace::TraceBuffer::should_record(ctx.sampled(), handle_us)) {
            trace::SpanRecord span;
            span.trace_id = ctx.trace_id;
            span.span_id = ctx.span_id;  // shared with the client half
            span.start_unix_us = trace::now_unix_us() - handle_us;
            span.queue_us = us_between(received_at, started);
            span.duration_us = handle_us;
            span.bytes = payload_bytes;
            span.node = dst;
            span.kind = trace::SpanRecord::kServer;
            span.status = static_cast<std::uint8_t>(status);
            span.set_op(to_string(type));
            trace::buffer().record(span);
        }
    }
    return response;
}

RpcResponse Dispatcher::handle(const FrameView& f) {
    // Fault gate: a request addressed to a node the deployment considers
    // down fails exactly like a dead simulated endpoint, so TCP clients
    // observe the same fault semantics as in-process ones.
    // Control-plane introspection (topology, metrics, traces) stays
    // reachable on a "dead" deployment — exactly when operators need it.
    const bool control = f.type == MsgType::kTopology ||
                         f.type == MsgType::kMetricsDump ||
                         f.type == MsgType::kTraceDump;
    if (fault_check_ && !control && !fault_check_(f.dst())) {
        throw RpcError("target node " + std::to_string(f.dst()) +
                       " is down");
    }
    switch (f.type) {
        case MsgType::kChunkPut:
        case MsgType::kChunkGet:
        case MsgType::kChunkErase:
        case MsgType::kChunkCheck:
        case MsgType::kChunkPushStart:
        case MsgType::kChunkPushSome:
        case MsgType::kChunkPushEnd:
        case MsgType::kChunkPullStart:
        case MsgType::kChunkPullSome:
        case MsgType::kChunkDecref:
        case MsgType::kDedupStatus:
            return handle_data_provider(f);

        case MsgType::kBlobCreate:
        case MsgType::kBlobClone:
        case MsgType::kBlobInfo:
        case MsgType::kAssign:
        case MsgType::kCommit:
        case MsgType::kGetVersion:
        case MsgType::kWaitPublished:
        case MsgType::kHistory:
        case MsgType::kPin:
        case MsgType::kUnpin:
        case MsgType::kRetire:
        case MsgType::kDescriptorOf:
        case MsgType::kBlobCloneFrom:
        case MsgType::kVmStatus:
            return handle_version_manager(f);

        case MsgType::kMetaPut:
        case MsgType::kMetaGet:
        case MsgType::kMetaTryGet:
        case MsgType::kMetaErase:
            return handle_meta_provider(f);

        case MsgType::kPlace:
        case MsgType::kMarkDead:
        case MsgType::kProviderJoin:
        case MsgType::kProviderAnnounce:
        case MsgType::kProviderBeat:
        case MsgType::kReportFailure:
        case MsgType::kRepairStatus:
            return handle_provider_manager(f);

        case MsgType::kTopology: {
            Topology t = topology();
            t.client_id = next_client_id_.fetch_add(1);
            WireWriter w;
            put_topology(w, t);
            return seal_response(f.type, std::move(w));
        }

        case MsgType::kMetricsDump: {
            WireReader r(f.payload);
            r.expect_end();
            WireWriter w;
            put_metrics_snapshot(w, MetricsRegistry::instance().snapshot());
            return seal_response(f.type, std::move(w));
        }

        case MsgType::kTraceDump: {
            WireReader r(f.payload);
            const std::uint64_t trace_id = r.u64();
            const std::uint64_t max = r.u64();
            r.expect_end();
            WireWriter w;
            put_span_records(
                w, trace::buffer().snapshot(
                       trace_id, max == 0 ? trace::TraceBuffer::kDefaultCapacity
                                          : max));
            return seal_response(f.type, std::move(w));
        }
    }
    throw RpcError("unknown message type " +
                   std::to_string(static_cast<unsigned>(f.type)));
}

RpcResponse Dispatcher::handle_data_provider(const FrameView& f) {
    const auto it = data_providers_.find(f.dst());
    if (it == data_providers_.end()) {
        throw RpcError("no data-provider service on node " +
                       std::to_string(f.dst()));
    }
    provider::DataProvider& dp = *it->second;
    WireReader r(f.payload);

    switch (f.type) {
        case MsgType::kChunkPut: {
            const chunk::ChunkKey key = get_chunk_key(r);
            const ConstBytes payload = r.blob();
            r.expect_end();
            dp.put_chunk(key, std::make_shared<const Buffer>(
                                  payload.begin(), payload.end()));
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kChunkGet: {
            const chunk::ChunkKey key = get_chunk_key(r);
            const std::uint64_t offset = r.u64();
            const std::uint64_t size = r.u64();  // 0 = whole chunk
            r.expect_end();
            // Zero-copy: borrow the payload from the store and ship it
            // as the response tail. The sealed head carries exactly the
            // bytes w.blob() would have put before the payload (u64
            // total + varint length), so the wire format is unchanged.
            chunk::ChunkRef ref = dp.get_chunk_ref(key);
            const std::uint64_t total = ref.bytes.size();
            const std::uint64_t begin = std::min(offset, total);
            const std::uint64_t n = size == 0
                                        ? total - begin
                                        : std::min(size, total - begin);
            WireWriter w(64);
            w.u64(total);
            w.varint(n);  // the blob() length prefix, payload shipped as tail
            return RpcResponse(
                seal_response_with_tail(f.type, std::move(w), n),
                SharedSlice(ref.bytes.subspan(begin, n),
                            std::move(ref.keepalive)));
        }
        case MsgType::kChunkErase: {
            const chunk::ChunkKey key = get_chunk_key(r);
            r.expect_end();
            dp.erase_chunk(key);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kChunkCheck: {
            const chunk::ChunkKey key = get_chunk_key(r);
            const bool want_incref = r.u8() != 0;
            const std::uint64_t size_hint = r.u64();
            r.expect_end();
            WireWriter w;
            w.u8(dp.check_chunk(key, want_incref, size_hint) ? 1 : 0);
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kChunkPushStart: {
            const chunk::ChunkKey key = get_chunk_key(r);
            const std::uint64_t total = r.u64();
            r.expect_end();
            WireWriter w;
            w.u64(dp.begin_push(key, total));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kChunkPushSome: {
            const std::uint64_t xfer = r.u64();
            const std::uint64_t offset = r.u64();
            const ConstBytes bytes = r.blob();
            r.expect_end();
            dp.push_some(xfer, offset, bytes);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kChunkPushEnd: {
            const std::uint64_t xfer = r.u64();
            r.expect_end();
            dp.end_push(xfer);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kChunkPullStart: {
            const chunk::ChunkKey key = get_chunk_key(r);
            r.expect_end();
            WireWriter w;
            w.u64(dp.chunk_size(key));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kChunkPullSome: {
            const chunk::ChunkKey key = get_chunk_key(r);
            const std::uint64_t offset = r.u64();
            const std::uint64_t size = r.u64();  // 0 = rest of the chunk
            r.expect_end();
            auto [total, ref] = dp.get_chunk_range_ref(key, offset, size);
            const std::uint64_t begin = std::min(offset, total);
            const std::uint64_t n =
                size == 0 ? total - begin : std::min(size, total - begin);
            WireWriter w(64);
            w.u64(total);
            w.varint(n);
            return RpcResponse(
                seal_response_with_tail(f.type, std::move(w), n),
                SharedSlice(ref.bytes.subspan(begin, n),
                            std::move(ref.keepalive)));
        }
        case MsgType::kChunkDecref: {
            const chunk::ChunkKey key = get_chunk_key(r);
            r.expect_end();
            WireWriter w;
            w.u64(dp.decref_chunk(key));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kDedupStatus: {
            r.expect_end();
            const auto s = dp.dedup_status();
            WireWriter w;
            w.u64(s.chunks_stored);
            w.u64(s.stored_bytes);
            w.u64(s.check_hits);
            w.u64(s.check_misses);
            w.u64(s.bytes_skipped);
            w.u64(s.dup_puts);
            w.u64(s.decrefs);
            w.u64(s.reclaimed_chunks);
            w.u64(s.reclaimed_bytes);
            return seal_response(f.type, std::move(w));
        }
        default:
            throw RpcError("bad data-provider message");
    }
}

Buffer Dispatcher::handle_version_manager(const FrameView& f) {
    const auto it = version_managers_.find(f.dst());
    if (it == version_managers_.end()) {
        throw RpcError("no version-manager service on node " +
                       std::to_string(f.dst()));
    }
    version::VersionManager& vm = *it->second;
    WireReader r(f.payload);

    switch (f.type) {
        case MsgType::kBlobCreate: {
            const std::uint64_t chunk_size = r.u64();
            const std::uint32_t replication = r.u32();
            r.expect_end();
            WireWriter w;
            put_blob_info(w, vm.create_blob(chunk_size, replication));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kBlobClone: {
            const BlobId src = r.u64();
            const Version v = r.u64();
            r.expect_end();
            WireWriter w;
            put_blob_info(w, vm.clone_blob(src, v));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kBlobInfo: {
            const BlobId blob = r.u64();
            r.expect_end();
            WireWriter w;
            put_blob_info(w, vm.blob_info(blob));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kAssign: {
            const BlobId blob = r.u64();
            const auto offset = get_opt_u64(r);
            const std::uint64_t size = r.u64();
            r.expect_end();
            WireWriter w;
            put_assign_result(w, vm.assign(blob, offset, size));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kCommit: {
            const BlobId blob = r.u64();
            const Version v = r.u64();
            r.expect_end();
            vm.commit(blob, v);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kGetVersion: {
            const BlobId blob = r.u64();
            const Version v = r.u64();
            r.expect_end();
            WireWriter w;
            put_version_info(w, vm.get_version(blob, v));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kWaitPublished: {
            const BlobId blob = r.u64();
            const Version v = r.u64();
            const std::uint64_t timeout_ms = r.u64();
            r.expect_end();
            WireWriter w;
            put_version_info(
                w, vm.wait_published(blob, v, milliseconds(timeout_ms)));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kHistory: {
            const BlobId blob = r.u64();
            const Version from = r.u64();
            const Version to = r.u64();
            r.expect_end();
            const auto summaries = vm.history(blob, from, to);
            WireWriter w;
            w.varint(summaries.size());
            for (const auto& s : summaries) {
                put_version_summary(w, s);
            }
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kPin: {
            const BlobId blob = r.u64();
            const Version v = r.u64();
            r.expect_end();
            WireWriter w;
            w.u8(vm.pin(blob, v) ? 1 : 0);
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kUnpin: {
            const BlobId blob = r.u64();
            const Version v = r.u64();
            r.expect_end();
            vm.unpin(blob, v);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kRetire: {
            const BlobId blob = r.u64();
            const Version keep_from = r.u64();
            r.expect_end();
            WireWriter w;
            put_retire_info(w, vm.retire(blob, keep_from));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kDescriptorOf: {
            const BlobId blob = r.u64();
            const Version v = r.u64();
            r.expect_end();
            WireWriter w;
            put_write_descriptor(w, vm.descriptor_of(blob, v));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kBlobCloneFrom: {
            const std::uint64_t chunk_size = r.u64();
            const std::uint32_t replication = r.u32();
            const meta::TreeRef origin = get_tree_ref(r);
            r.expect_end();
            WireWriter w;
            put_blob_info(w,
                          vm.clone_from(chunk_size, replication, origin));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kVmStatus: {
            r.expect_end();
            WireWriter w;
            put_shard_status(w, vm.status());
            return seal_response(f.type, std::move(w));
        }
        default:
            throw RpcError("bad version-manager message");
    }
}

Buffer Dispatcher::handle_meta_provider(const FrameView& f) {
    const auto it = meta_providers_.find(f.dst());
    if (it == meta_providers_.end()) {
        throw RpcError("no metadata-provider service on node " +
                       std::to_string(f.dst()));
    }
    dht::MetadataProvider& mp = *it->second;
    WireReader r(f.payload);

    switch (f.type) {
        case MsgType::kMetaPut: {
            const meta::MetaKey key = get_meta_key(r);
            const meta::MetaNode node = get_meta_node(r);
            r.expect_end();
            mp.put(key, node);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kMetaGet: {
            const meta::MetaKey key = get_meta_key(r);
            r.expect_end();
            WireWriter w;
            put_meta_node(w, mp.get(key));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kMetaTryGet: {
            const meta::MetaKey key = get_meta_key(r);
            r.expect_end();
            const auto node = mp.try_get(key);
            WireWriter w;
            w.u8(node.has_value() ? 1 : 0);
            if (node) {
                put_meta_node(w, *node);
            }
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kMetaErase: {
            const meta::MetaKey key = get_meta_key(r);
            r.expect_end();
            mp.erase(key);
            return seal_response(f.type, WireWriter());
        }
        default:
            throw RpcError("bad metadata-provider message");
    }
}

Buffer Dispatcher::handle_provider_manager(const FrameView& f) {
    if (pm_ == nullptr || f.dst() != pm_node_) {
        throw RpcError("no provider-manager service on node " +
                       std::to_string(f.dst()));
    }
    provider::ProviderManager& pm = *pm_;
    WireReader r(f.payload);

    switch (f.type) {
        case MsgType::kPlace: {
            const std::uint64_t n_chunks = r.u64();
            const std::uint32_t replication = r.u32();
            const std::uint64_t chunk_bytes = r.u64();
            r.expect_end();
            WireWriter w;
            put_placement_plan(w, pm.place(n_chunks, replication,
                                           chunk_bytes));
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kMarkDead: {
            const NodeId node = r.u32();
            r.expect_end();
            pm.mark_dead(node);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kProviderJoin: {
            const std::string name = r.str();
            r.expect_end();
            if (name.empty()) {
                throw InvalidArgument("provider join without a name");
            }
            const auto jr = pm.join(name);
            WireWriter w;
            w.u32(jr.node);
            w.u8(jr.rejoin ? 1 : 0);
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kProviderAnnounce: {
            const NodeId node = r.u32();
            const std::string host = r.str();
            const std::uint32_t port = r.u32();
            const auto inventory = get_chunk_holdings(r);
            r.expect_end();
            pm.announce(node, host, port, inventory);
            return seal_response(f.type, WireWriter());
        }
        case MsgType::kProviderBeat: {
            const NodeId node = r.u32();
            const std::uint64_t seq = r.u64();
            const auto added = get_chunk_holdings(r);
            const auto removed = get_chunk_keys(r);
            r.expect_end();
            WireWriter w;
            w.u8(pm.heartbeat(node, seq, added, removed) ? 1 : 0);
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kReportFailure: {
            const NodeId suspect = r.u32();
            const NodeId reporter = r.u32();
            r.expect_end();
            WireWriter w;
            w.u8(pm.report_failure(suspect, reporter) ? 1 : 0);
            return seal_response(f.type, std::move(w));
        }
        case MsgType::kRepairStatus: {
            r.expect_end();
            WireWriter w;
            put_repair_status(w, pm.repair_status());
            return seal_response(f.type, std::move(w));
        }
        default:
            throw RpcError("bad provider-manager message");
    }
}

}  // namespace blobseer::rpc
