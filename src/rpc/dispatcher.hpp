/// \file dispatcher.hpp
/// \brief Server-side RPC skeleton: decodes request frames and invokes
///        the real service objects.
///
/// One Dispatcher fronts a whole deployment: it maps logical node ids to
/// the service objects living there (version manager, provider manager,
/// data providers, metadata providers) and routes each request frame by
/// its message-type tag plus destination node. Service exceptions are
/// caught and encoded as error responses (protocol.hpp Status), so a
/// server-side throw resurfaces client-side as the same exception type —
/// the dispatcher itself never lets an exception escape.
///
/// Both transports share this object: SimTransport invokes it inline on
/// the calling thread (after charging the simulated wire), and the TCP
/// server invokes it from its connection threads. Service objects are
/// thread-safe, so no additional locking happens here.

#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "rpc/messages.hpp"
#include "rpc/protocol.hpp"

namespace blobseer::provider {
class DataProvider;
class ProviderManager;
}  // namespace blobseer::provider

namespace blobseer::dht {
class MetadataProvider;
}

namespace blobseer::version {
class VersionManager;
}

namespace blobseer::rpc {

/// One sealed response: a contiguous head (frame header + body bytes)
/// plus an optional borrowed tail the head's length field already covers.
/// Handlers that serve large payloads (chunk reads) return the payload as
/// the tail — a SharedSlice pointing into the chunk store's memory — so
/// the bytes are never copied into the frame; a scatter-gather transport
/// writes head and tail with one writev. Transports without scatter-
/// gather call flatten(), which is exactly the copy the zero-copy path
/// avoids (counted by rpc_bytes_copied_total).
struct RpcResponse {
    Buffer head;
    SharedSlice tail;

    RpcResponse() = default;
    // Implicit: most handlers seal plain contiguous frames.
    RpcResponse(Buffer h) : head(std::move(h)) {}  // NOLINT
    RpcResponse(Buffer h, SharedSlice t)
        : head(std::move(h)), tail(std::move(t)) {}

    /// Total wire size of the frame.
    [[nodiscard]] std::size_t size() const noexcept {
        return head.size() + tail.size();
    }

    /// Collapse into one contiguous frame (copies the tail).
    [[nodiscard]] Buffer flatten() && {
        if (!tail.empty()) {
            head.insert(head.end(), tail.bytes.begin(), tail.bytes.end());
            tail = {};
        }
        return std::move(head);
    }
};

class Dispatcher {
  public:
    Dispatcher() = default;

    Dispatcher(const Dispatcher&) = delete;
    Dispatcher& operator=(const Dispatcher&) = delete;

    // ---- registration (cluster bootstrap; not thread-safe) --------------

    /// Register one version-manager shard. A deployment registers N of
    /// them; requests route by destination node like any other service.
    void add_version_manager(NodeId node, version::VersionManager* vm) {
        version_managers_[node] = vm;
    }
    void set_provider_manager(NodeId node, provider::ProviderManager* pm) {
        pm_node_ = node;
        pm_ = pm;
    }
    void add_data_provider(NodeId node, provider::DataProvider* dp) {
        data_providers_[node] = dp;
    }
    void add_metadata_provider(NodeId node, dht::MetadataProvider* mp) {
        meta_providers_[node] = mp;
    }

    /// Install the topology advertised to remote clients. client_id in
    /// the template is ignored; each kTopology request gets a fresh one.
    void set_topology(Topology t, NodeId first_client_id) {
        const std::scoped_lock lock(topo_mu_);
        topology_ = std::move(t);
        next_client_id_.store(first_client_id);
    }

    /// Replace the advertised topology without resetting the client-id
    /// sequence. Membership changes (an external provider announcing)
    /// call this at runtime, concurrently with kTopology requests.
    void refresh_topology(Topology t) {
        const std::scoped_lock lock(topo_mu_);
        t.client_id = topology_.client_id;
        topology_ = std::move(t);
    }

    /// Snapshot of the currently advertised topology.
    [[nodiscard]] Topology topology() const {
        const std::scoped_lock lock(topo_mu_);
        return topology_;
    }

    /// Liveness gate applied to every request's destination node (the
    /// control pseudo-node excepted). When installed and returning
    /// false, the request fails with RpcError exactly like a simulated
    /// dead endpoint — this is what gives TcpTransport deployments the
    /// same fault semantics SimNetwork enforces in-process.
    void set_fault_check(std::function<bool(NodeId)> alive) {
        fault_check_ = std::move(alive);
    }

    /// Decode one request frame, invoke the addressed service, return the
    /// sealed response frame. Never throws: every failure becomes an
    /// error response.
    ///
    /// Every dispatch records per-op-family telemetry (latency histogram,
    /// request/error counters, registry-owned and therefore shared by all
    /// dispatchers in the process) and, when the frame carries a trace
    /// context, installs it around the handler and records the server
    /// half of the span.
    [[nodiscard]] Buffer dispatch(ConstBytes frame) noexcept {
        return dispatch(frame, Clock::now());
    }

    /// Same, with the instant the transport finished reading the frame —
    /// the gap to now is the dispatch-queue wait the span reports.
    /// Flattens the scatter-gather response into one contiguous frame
    /// (the copied tail bytes count into rpc_bytes_copied_total).
    [[nodiscard]] Buffer dispatch(ConstBytes frame,
                                  TimePoint received_at) noexcept;

    /// Scatter-gather dispatch: the zero-copy entry point. Chunk-read
    /// responses carry their payload as a borrowed tail; everything else
    /// arrives with an empty tail. Same never-throws contract.
    [[nodiscard]] RpcResponse dispatch_sg(ConstBytes frame,
                                          TimePoint received_at) noexcept;

  private:
    /// Per-MsgType telemetry, resolved from the registry on first use and
    /// cached so the steady-state cost is two atomic loads per dispatch.
    struct OpTelemetry {
        std::atomic<Histogram*> latency{nullptr};
        std::atomic<Counter*> requests{nullptr};
        std::atomic<Counter*> errors{nullptr};
    };

    [[nodiscard]] OpTelemetry* telemetry_for(MsgType type) noexcept;

    [[nodiscard]] RpcResponse handle(const FrameView& f);

    [[nodiscard]] RpcResponse handle_data_provider(const FrameView& f);
    [[nodiscard]] Buffer handle_version_manager(const FrameView& f);
    [[nodiscard]] Buffer handle_meta_provider(const FrameView& f);
    [[nodiscard]] Buffer handle_provider_manager(const FrameView& f);

    NodeId pm_node_ = kInvalidNode;
    provider::ProviderManager* pm_ = nullptr;
    std::unordered_map<NodeId, version::VersionManager*> version_managers_;
    std::unordered_map<NodeId, provider::DataProvider*> data_providers_;
    std::unordered_map<NodeId, dht::MetadataProvider*> meta_providers_;

    mutable std::mutex topo_mu_;  // guards topology_ (refreshed at runtime)
    Topology topology_;
    std::atomic<NodeId> next_client_id_{1u << 20};
    std::function<bool(NodeId)> fault_check_;
    /// Indexed by MsgType tag (tags are small by construction; anything
    /// out of range — a corrupt frame — just skips telemetry).
    std::array<OpTelemetry, 128> op_telemetry_;
};

}  // namespace blobseer::rpc
