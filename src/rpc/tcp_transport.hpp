/// \file tcp_transport.hpp
/// \brief POSIX-socket Transport with a per-peer connection pool, plus
///        the accept/dispatch server that answers it.
///
/// Framing on the socket is the frame itself — the 16-byte header carries
/// the payload length, so a receiver reads the header, validates it, then
/// reads exactly the payload. One connection carries one request at a
/// time (no multiplexing); concurrency comes from the pool opening one
/// connection per in-flight call, which matches the thread-per-request
/// model of the client's I/O pool.
///
/// The server is thread-per-connection: the accept loop hands each
/// accepted socket to a detachable worker that reads frames, runs them
/// through the shared Dispatcher and writes the responses back. stop()
/// (or destruction) shuts down the listener and every live connection
/// and joins all threads.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/buffer.hpp"
#include "common/types.hpp"
#include "rpc/transport.hpp"

namespace blobseer::rpc {

class Dispatcher;

/// TCP address of one logical node (or of a whole daemon).
struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
};

class TcpTransport final : public Transport {
  public:
    /// Every logical node reachable at one address — the all-in-one
    /// blobseer_serverd deployment.
    TcpTransport(std::string host, std::uint16_t port);

    /// Per-node address map for multi-process deployments.
    explicit TcpTransport(std::unordered_map<NodeId, Endpoint> peers);

    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    [[nodiscard]] Buffer roundtrip(NodeId dst, ConstBytes frame) override;

  private:
    struct Conn {
        int fd = -1;
        bool reused = false;  ///< came from the pool (may be stale)
    };

    /// Where a round trip failed — only a failure of the *initial send*
    /// on a pooled connection is safely retryable (the server cannot
    /// have accepted the request yet); once bytes were written, a retry
    /// could execute a non-idempotent RPC twice.
    enum class Phase { kSend, kReceive };

    [[nodiscard]] const Endpoint& endpoint_of(NodeId dst) const;
    [[nodiscard]] Conn acquire(NodeId dst);
    void release(NodeId dst, int fd);

    Endpoint default_endpoint_;
    std::unordered_map<NodeId, Endpoint> peers_;

    std::mutex mu_;  // guards pool_
    std::unordered_map<NodeId, std::vector<int>> pool_;
};

class TcpRpcServer {
  public:
    /// Bind and listen on \p bind_addr:\p port (port 0 = ephemeral; read
    /// the chosen one back with port()) and start the accept loop.
    explicit TcpRpcServer(Dispatcher& dispatcher, std::uint16_t port = 0,
                          const std::string& bind_addr = "0.0.0.0");
    ~TcpRpcServer();

    TcpRpcServer(const TcpRpcServer&) = delete;
    TcpRpcServer& operator=(const TcpRpcServer&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Shut down listener and connections, join every thread. Idempotent.
    void stop();

  private:
    void accept_loop();
    void serve(int fd);

    Dispatcher& dispatcher_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;

    std::mutex mu_;  // guards conn_fds_, active_conns_, stopping_
    std::condition_variable conn_done_;
    bool stopping_ = false;
    /// Connection threads are detached so finished ones cost nothing;
    /// stop() waits on this count instead of joining handles.
    std::size_t active_conns_ = 0;
    std::unordered_set<int> conn_fds_;
};

}  // namespace blobseer::rpc
