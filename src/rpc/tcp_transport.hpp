/// \file tcp_transport.hpp
/// \brief POSIX-socket Transport multiplexing many in-flight requests
///        over one connection per peer, plus the accept/dispatch server
///        that answers it.
///
/// Framing on the socket is the frame itself — the 24-byte header
/// carries the payload length, so a receiver reads the header, validates
/// it, then reads exactly the payload. One connection per peer endpoint
/// carries any number of in-flight requests (protocol v3): the sender
/// stamps each request with a per-connection unique correlation id, a
/// dedicated reader thread matches responses — which arrive in whatever
/// order the server finishes them — back to their futures by that id.
/// A connection that dies (reset, EOF, desync) fails *every* future
/// still in flight on it with RpcError; the next call opens a fresh
/// connection.
///
/// The server keeps one reader thread per connection but hands each
/// decoded frame to a shared worker pool, so a slow request (a large
/// get_chunk, a blocking wait_published) no longer blocks the requests
/// queued behind it on the same connection. Responses are written back
/// under a per-connection send lock in completion order. stop() (or
/// destruction) shuts down the listener and every live connection,
/// drains the worker pool and joins all threads.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "rpc/transport.hpp"

namespace blobseer::rpc {

class Dispatcher;

/// TCP address of one logical node (or of a whole daemon).
struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
};

class TcpTransport final : public Transport {
  public:
    /// Every logical node reachable at one address — the all-in-one
    /// blobseer_serverd deployment.
    TcpTransport(std::string host, std::uint16_t port);

    /// Per-node address map for multi-process deployments.
    explicit TcpTransport(std::unordered_map<NodeId, Endpoint> peers);

    ~TcpTransport() override;

    /// Map (or remap) one node to its own address. External providers
    /// announce at runtime, so this is safe alongside in-flight calls;
    /// nodes without a mapping keep using the default endpoint.
    void add_peer(NodeId node, Endpoint endpoint);

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    [[nodiscard]] Future<Buffer> call_async(NodeId dst,
                                            ConstBytes frame) override;

  private:
    /// One multiplexed connection: socket, reader thread, and the
    /// correlation-id -> promise table of requests awaiting responses.
    struct MuxConn;

    [[nodiscard]] Endpoint endpoint_of(NodeId dst) const;

    /// Healthy connection to \p dst's endpoint — reuses the live one,
    /// probes an idle one for staleness, reconnects when needed.
    [[nodiscard]] std::shared_ptr<MuxConn> get_conn(NodeId dst);

    /// Move a dead connection out of the active map; its reader is
    /// joined (and fd closed) by reap_graveyard()/the destructor.
    void retire_locked(std::shared_ptr<MuxConn> conn);

    /// Join and close connections retired earlier. Cheap: retired
    /// readers exit as soon as their socket is shut down.
    void reap_graveyard();

    static void reader_loop(const std::shared_ptr<MuxConn>& conn);

    Endpoint default_endpoint_;
    mutable std::mutex peers_mu_;  // peers_ grows at runtime (add_peer)
    std::unordered_map<NodeId, Endpoint> peers_;

    std::mutex mu_;  // guards conns_ and graveyard_
    /// Key: "host:port" — one connection per peer *endpoint*, so an
    /// all-in-one daemon gets exactly one multiplexed connection no
    /// matter how many logical nodes it hosts.
    std::unordered_map<std::string, std::shared_ptr<MuxConn>> conns_;
    std::vector<std::shared_ptr<MuxConn>> graveyard_;
};

class TcpRpcServer {
  public:
    /// Bind and listen on \p bind_addr:\p port (port 0 = ephemeral; read
    /// the chosen one back with port()) and start the accept loop.
    /// \p workers sizes the shared dispatch pool (0 = a hardware-sized
    /// default).
    explicit TcpRpcServer(Dispatcher& dispatcher, std::uint16_t port = 0,
                          const std::string& bind_addr = "0.0.0.0",
                          std::size_t workers = 0);
    ~TcpRpcServer();

    TcpRpcServer(const TcpRpcServer&) = delete;
    TcpRpcServer& operator=(const TcpRpcServer&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Shut down listener and connections, drain the worker pool, join
    /// every thread. Idempotent.
    void stop();

  private:
    /// Shared state of one accepted connection. Dispatch tasks hold a
    /// reference while they run, so the fd stays open (and the number
    /// is not recycled by a concurrent accept) until the last response
    /// writer is done.
    struct ServerConn {
        explicit ServerConn(int fd_) : fd(fd_) {}
        ~ServerConn();  // closes fd

        ServerConn(const ServerConn&) = delete;
        ServerConn& operator=(const ServerConn&) = delete;

        int fd;
        std::mutex send_mu;           ///< serializes response writes
        std::atomic<bool> ok{true};   ///< false once the conn is doomed
    };

    void accept_loop();
    void serve(const std::shared_ptr<ServerConn>& conn);

    /// Dispatch one request and write its response back (worker-pool
    /// task body, also run by dedicated blocking-op threads).
    /// \p received_at is when the reader finished the frame — the gap to
    /// dispatch is the queue wait the server span reports.
    void answer(const std::shared_ptr<ServerConn>& conn,
                const Buffer& request, TimePoint received_at);

    Dispatcher& dispatcher_;
    /// Dispatch pool shared by all connections; reset (drained + joined)
    /// by stop() after every reader thread has exited.
    std::unique_ptr<ThreadPool> workers_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;

    std::mutex mu_;  // guards conns_, active_conns_, stopping_
    std::condition_variable conn_done_;
    bool stopping_ = false;
    /// Connection reader threads are detached so finished ones cost
    /// nothing; stop() waits on this count instead of joining handles.
    std::size_t active_conns_ = 0;
    /// Requests that block by design (wait_published) run on dedicated
    /// detached threads, NOT pool workers: N of them parked in a
    /// condition wait must never exhaust the pool and stall the very
    /// commit that would wake them. stop() drains this count too.
    std::size_t blocking_ops_ = 0;
    std::unordered_map<int, std::shared_ptr<ServerConn>> conns_;
    /// Registry bindings (worker backlog, connection count); declared
    /// last so they unbind before the state they sample.
    MetricsGroup metrics_;
};

}  // namespace blobseer::rpc
