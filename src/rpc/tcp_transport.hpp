/// \file tcp_transport.hpp
/// \brief POSIX-socket Transport multiplexing many in-flight requests
///        over one connection per peer, plus the epoll reactor server
///        that answers it.
///
/// Framing on the socket is the frame itself — the 40-byte header
/// carries the payload length, so a receiver reads the header, validates
/// it, then reads exactly the payload. One connection per peer endpoint
/// carries any number of in-flight requests (protocol v3): the sender
/// stamps each request with a per-connection unique correlation id and
/// the transport's event loop matches responses — which arrive in
/// whatever order the server finishes them — back to their futures by
/// that id. A connection that dies (reset, EOF, desync) fails *every*
/// future still in flight on it with RpcError; the next call opens a
/// fresh connection.
///
/// Both sides are event-driven (DESIGN.md §15): the client runs one
/// epoll loop per transport instead of one reader thread per peer, and
/// the server runs a fixed Reactor of N loops with nonblocking sockets
/// instead of one thread per connection — 1k+ concurrent connections
/// cost fds, not stacks. Loops only move bytes; each decoded request is
/// dispatched on the shared worker ThreadPool, so a slow handler never
/// blocks a loop. Responses are scatter-gather (sealed head + borrowed
/// payload tail) written with one writev; when the kernel send buffer
/// fills, the remainder parks in a per-connection frame queue and
/// EPOLLOUT drains it (backpressure without a blocked thread). stop()
/// (or destruction) shuts down the listener and every live connection,
/// stops the loops, drains the worker pool and joins all threads.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "net/event_loop.hpp"
#include "rpc/transport.hpp"

namespace blobseer::rpc {

class Dispatcher;
struct RpcResponse;

/// TCP address of one logical node (or of a whole daemon).
struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
};

class TcpTransport final : public Transport {
  public:
    /// Every logical node reachable at one address — the all-in-one
    /// blobseer_serverd deployment.
    TcpTransport(std::string host, std::uint16_t port);

    /// Per-node address map for multi-process deployments.
    explicit TcpTransport(std::unordered_map<NodeId, Endpoint> peers);

    ~TcpTransport() override;

    /// Map (or remap) one node to its own address. External providers
    /// announce at runtime, so this is safe alongside in-flight calls;
    /// nodes without a mapping keep using the default endpoint.
    void add_peer(NodeId node, Endpoint endpoint);

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    [[nodiscard]] Future<Buffer> call_async(NodeId dst,
                                            ConstBytes frame) override;

  private:
    /// One multiplexed connection: nonblocking socket, loop-registered
    /// read state, and the correlation-id -> promise table of requests
    /// awaiting responses.
    struct MuxConn;

    [[nodiscard]] Endpoint endpoint_of(NodeId dst) const;

    /// Healthy connection to \p dst's endpoint — reuses the live one,
    /// probes an idle one for staleness, reconnects when needed.
    [[nodiscard]] std::shared_ptr<MuxConn> get_conn(NodeId dst);

    /// Install the readiness handler for a fresh connection (loop
    /// thread only).
    void register_conn(const std::shared_ptr<MuxConn>& conn);

    /// Move a dead connection out of the active map; its loop
    /// registration unwinds via the shutdown-triggered EOF event.
    void retire_locked(std::shared_ptr<MuxConn> conn);

    /// Drop references to connections retired earlier (their fds close
    /// when the loop releases the last reference).
    void reap_graveyard();

    /// The shared doom path: mark dead, shut the socket down, fail all
    /// in-flight futures, and unwind the loop registration.
    void doom_conn(const std::shared_ptr<MuxConn>& conn,
                   const std::string& reason);

    /// One event loop serves every connection of this transport
    /// (replaces one reader thread per peer).
    std::unique_ptr<net::EventLoop> loop_;

    Endpoint default_endpoint_;
    mutable std::mutex peers_mu_;  // peers_ grows at runtime (add_peer)
    std::unordered_map<NodeId, Endpoint> peers_;

    std::mutex mu_;  // guards conns_ and graveyard_
    /// Key: "host:port" — one connection per peer *endpoint*, so an
    /// all-in-one daemon gets exactly one multiplexed connection no
    /// matter how many logical nodes it hosts.
    std::unordered_map<std::string, std::shared_ptr<MuxConn>> conns_;
    std::vector<std::shared_ptr<MuxConn>> graveyard_;
};

class TcpRpcServer {
  public:
    struct Options {
        std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
        std::string bind_addr = "0.0.0.0";
        /// Dispatch pool size (0 = a hardware-sized default).
        std::size_t workers = 0;
        /// Event-loop (reactor) threads moving bytes (0 = default 2).
        std::size_t io_threads = 0;
        /// Close connections idle longer than this (0 = never). Guards
        /// fd exhaustion under thousands of parked clients.
        std::uint64_t idle_timeout_ms = 0;
        /// Serve chunk reads scatter-gather straight from store memory.
        /// Off flattens every response through the copy path — only
        /// useful for measuring what zero-copy saves.
        bool zero_copy = true;
    };

    TcpRpcServer(Dispatcher& dispatcher, Options opts);

    /// Back-compat convenience: bind \p bind_addr:\p port with default
    /// reactor sizing.
    explicit TcpRpcServer(Dispatcher& dispatcher, std::uint16_t port = 0,
                          const std::string& bind_addr = "0.0.0.0",
                          std::size_t workers = 0);
    ~TcpRpcServer();

    TcpRpcServer(const TcpRpcServer&) = delete;
    TcpRpcServer& operator=(const TcpRpcServer&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Live accepted connections (tests and the idle-timeout sweeps).
    [[nodiscard]] std::size_t connection_count() const;

    /// Shut down listener and connections, stop the loops, drain the
    /// worker pool, join every thread. Idempotent.
    void stop();

  private:
    struct ServerConn;

    void on_accept(std::uint32_t events);
    void register_conn(const std::shared_ptr<ServerConn>& conn);
    void on_readable(const std::shared_ptr<ServerConn>& conn,
                     std::uint32_t events);
    void on_writable(const std::shared_ptr<ServerConn>& conn);
    /// Loop-thread-only teardown of one connection.
    void close_conn(const std::shared_ptr<ServerConn>& conn);
    /// Route one complete request frame (loop thread).
    void handle_frame(const std::shared_ptr<ServerConn>& conn,
                      Buffer request);

    /// Dispatch one request and queue its response (worker-pool task
    /// body, also run by dedicated blocking-op threads).
    /// \p received_at is when the loop finished the frame — the gap to
    /// dispatch is the queue wait the server span reports.
    void answer(const std::shared_ptr<ServerConn>& conn,
                const Buffer& request, TimePoint received_at);

    /// Queue + opportunistically flush one response; arms EPOLLOUT when
    /// the kernel buffer is full (backpressure).
    void send_response(const std::shared_ptr<ServerConn>& conn,
                       RpcResponse&& resp);

    /// Idle-timeout tick body for one loop.
    void sweep_idle(net::EventLoop* loop);

    Dispatcher& dispatcher_;
    const Options opts_;
    /// Dispatch pool shared by all connections; reset (drained + joined)
    /// by stop() after the reactor loops have been joined.
    std::unique_ptr<ThreadPool> workers_;
    std::unique_ptr<net::Reactor> reactor_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;

    mutable std::mutex mu_;  // guards conns_, blocking_ops_, stopping_
    std::condition_variable conn_done_;
    bool stopping_ = false;
    /// Requests that block by design (wait_published) run on dedicated
    /// detached threads, NOT pool workers: N of them parked in a
    /// condition wait must never exhaust the pool and stall the very
    /// commit that would wake them. stop() drains this count.
    std::size_t blocking_ops_ = 0;
    std::unordered_map<ServerConn*, std::shared_ptr<ServerConn>> conns_;
    /// Per-loop dispatch counters (registry-owned, stable addresses).
    std::vector<Counter*> loop_dispatch_;
    /// Registry bindings (worker backlog, connection gauges); declared
    /// last so they unbind before the state they sample.
    MetricsGroup metrics_;
};

}  // namespace blobseer::rpc
