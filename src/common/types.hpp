/// \file types.hpp
/// \brief Fundamental identifier and size types shared by every BlobSeer
///        module.
///
/// BlobSeer manipulates three id spaces: blobs (logical objects), versions
/// (snapshots of a blob) and nodes (processes of the simulated cluster:
/// clients, data providers, metadata providers, the version manager and the
/// provider manager). All of them are small integer types; strong-typedef
/// wrappers would add noise without catching realistic bugs here because the
/// APIs already separate them by parameter position and name.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace blobseer {

/// Identifier of a blob (unique per cluster, assigned by the version
/// manager at creation time).
using BlobId = std::uint64_t;

/// Snapshot version of a blob. Version 0 is the empty blob that exists
/// right after creation; the first write produces version 1.
using Version = std::uint64_t;

/// Identifier of a simulated cluster process (provider, manager or client).
using NodeId = std::uint32_t;

/// Index of a chunk within a blob (offset / chunk_size).
using ChunkIndex = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// The version-manager layer is sharded by blob: every blob id carries
/// its owning shard in the top byte, so any party holding an id can
/// route to the right shard with no lookup. Shard 0 mints ids equal to
/// its per-shard sequence (1, 2, ...), which keeps single-shard
/// deployments bit-identical to the unsharded protocol.
inline constexpr unsigned kBlobShardBits = 8;
inline constexpr std::uint32_t kMaxBlobShards = 1u << kBlobShardBits;

/// Shard that minted (and owns) \p id.
[[nodiscard]] constexpr std::uint32_t blob_shard(BlobId id) noexcept {
    return static_cast<std::uint32_t>(id >> (64 - kBlobShardBits));
}

/// Compose a blob id from an owning shard and a per-shard sequence.
[[nodiscard]] constexpr BlobId make_blob_id(std::uint32_t shard,
                                            std::uint64_t seq) noexcept {
    return (static_cast<BlobId>(shard) << (64 - kBlobShardBits)) | seq;
}

/// Sentinel for "no blob".
inline constexpr BlobId kInvalidBlob = std::numeric_limits<BlobId>::max();

/// Sentinel version used for "latest published" in read requests.
inline constexpr Version kLatestVersion = std::numeric_limits<Version>::max();

/// Byte-range within a blob: [offset, offset + size).
struct ByteRange {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;

    [[nodiscard]] std::uint64_t end() const noexcept { return offset + size; }
    [[nodiscard]] bool empty() const noexcept { return size == 0; }

    /// True iff the two ranges share at least one byte.
    [[nodiscard]] bool intersects(const ByteRange& o) const noexcept {
        return offset < o.end() && o.offset < end();
    }

    /// True iff \p o is fully contained in this range.
    [[nodiscard]] bool contains(const ByteRange& o) const noexcept {
        return offset <= o.offset && o.end() <= end();
    }

    /// True iff the byte at absolute position \p pos falls in this range.
    [[nodiscard]] bool contains_pos(std::uint64_t pos) const noexcept {
        return pos >= offset && pos < end();
    }

    friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

/// Human-readable "[offset, end)" rendering used in logs and test failures.
[[nodiscard]] inline std::string to_string(const ByteRange& r) {
    // Built by append: the operator+ chain trips a GCC 12 -Wrestrict
    // false positive under -Werror at some inlining depths.
    std::string s;
    s.reserve(32);
    s += '[';
    s += std::to_string(r.offset);
    s += ", ";
    s += std::to_string(r.end());
    s += ')';
    return s;
}

/// Round \p v up to the next power of two (minimum 1).
[[nodiscard]] constexpr std::uint64_t pow2_ceil(std::uint64_t v) noexcept {
    if (v <= 1) return 1;
    --v;
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    v |= v >> 32;
    return v + 1;
}

/// True iff \p v is a power of two (and non-zero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
    return v != 0 && (v & (v - 1)) == 0;
}

/// Integer ceiling division.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
    return (a + b - 1) / b;
}

}  // namespace blobseer
