/// \file random.hpp
/// \brief Deterministic random number generation for workloads and tests.
///
/// Experiments must be reproducible run-to-run, so every random stream is
/// derived from an explicit seed. Xoshiro256** is used instead of
/// std::mt19937_64 for speed (benchmark workload generation sits on the
/// measurement path). A Zipf sampler is provided because data-intensive
/// access patterns (Section IV-D of the paper: MapReduce over huge files)
/// are classically skewed.

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace blobseer {

/// Xoshiro256** PRNG with splitmix64 seeding. Satisfies
/// UniformRandomBitGenerator so it plugs into <random> distributions.
class Rng {
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
        // SplitMix64 expansion of the seed into the full state, per the
        // xoshiro authors' recommendation.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            s = mix64(x);
        }
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return ~static_cast<result_type>(0);
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, n). \p n must be > 0.
    std::uint64_t below(std::uint64_t n) noexcept {
        // Lemire's multiply-shift rejection-free approximation is fine for
        // workload generation (bias < 2^-64 * n).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * n) >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
        return lo + below(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial.
    bool chance(double p) noexcept { return uniform() < p; }

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over {0, .., n-1} using the classic inverse-CDF table.
/// Construction is O(n); sampling is O(log n). Ranks are *not* shuffled:
/// rank 0 is the hottest item, which experiment code typically remaps.
class ZipfSampler {
  public:
    ZipfSampler(std::size_t n, double s) : cdf_(n) {
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
            cdf_[i] = sum;
        }
        for (auto& c : cdf_) c /= sum;
    }

    /// Draw one rank in [0, n).
    [[nodiscard]] std::size_t sample(Rng& rng) const noexcept {
        const double u = rng.uniform();
        // Binary search for the first cdf entry >= u.
        std::size_t lo = 0;
        std::size_t hi = cdf_.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (cdf_[mid] < u) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo < cdf_.size() ? lo : cdf_.size() - 1;
    }

    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

}  // namespace blobseer
