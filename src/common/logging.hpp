/// \file logging.hpp
/// \brief Minimal leveled, thread-safe structured logger.
///
/// Logging defaults to WARN so that tests and benchmarks stay quiet; the
/// examples turn it up to INFO to narrate what the cluster is doing, and
/// `blobseer_serverd --log-level` lets operators pick at startup.
///
/// Each line is structured for grep/cut: UTC wall-clock timestamp with
/// microseconds, level, thread id, and — when the calling thread is
/// inside a traced operation — the trace id, so daemon logs can be
/// joined against `blobseer_cli trace <id>` output.
///
///   2026-08-07T12:34:56.789012Z WARN  [tid 140212] [trace 1f2e3d4c...] provider-manager: provider 7 missed 3 beats

#pragma once

#include <cstdio>
#include <ctime>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "common/trace.hpp"

namespace blobseer {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parse "debug" / "info" / "warn" / "error" (case-sensitive, the forms
/// the --log-level flag documents). nullopt on anything else.
[[nodiscard]] inline std::optional<LogLevel> parse_log_level(
    std::string_view text) noexcept {
    if (text == "debug") return LogLevel::kDebug;
    if (text == "info") return LogLevel::kInfo;
    if (text == "warn") return LogLevel::kWarn;
    if (text == "error") return LogLevel::kError;
    return std::nullopt;
}

class Logger {
  public:
    /// Process-wide logger instance.
    static Logger& instance() {
        static Logger logger;
        return logger;
    }

    void set_level(LogLevel level) noexcept { level_ = level; }
    [[nodiscard]] LogLevel level() const noexcept { return level_; }

    void log(LogLevel level, std::string_view component,
             const std::string& message) {
        if (static_cast<int>(level) < static_cast<int>(level_)) {
            return;
        }

        // Format the prefix outside the lock; only the write serializes.
        char stamp[40];
        format_timestamp(stamp, sizeof(stamp));

        char trace_field[32] = "";
        if (const trace::TraceContext ctx = trace::current(); ctx.active()) {
            std::snprintf(trace_field, sizeof(trace_field),
                          " [trace %016llx]",
                          static_cast<unsigned long long>(ctx.trace_id));
        }

        const std::size_t tid =
            std::hash<std::thread::id>{}(std::this_thread::get_id());

        const std::scoped_lock lock(mu_);
        std::fprintf(stderr, "%s %s [tid %zx]%s %.*s: %s\n", stamp,
                     name(level), tid, trace_field,
                     static_cast<int>(component.size()), component.data(),
                     message.c_str());
    }

  private:
    Logger() = default;

    /// ISO-8601 UTC with microseconds, e.g. 2026-08-07T12:34:56.789012Z.
    static void format_timestamp(char* buf, std::size_t n) {
        const std::uint64_t us = trace::now_unix_us();
        const std::time_t secs = static_cast<std::time_t>(us / 1'000'000);
        std::tm tm{};
        gmtime_r(&secs, &tm);
        char date[32];
        std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm);
        std::snprintf(buf, n, "%s.%06uZ", date,
                      static_cast<unsigned>(us % 1'000'000));
    }

    static const char* name(LogLevel level) noexcept {
        switch (level) {
            case LogLevel::kDebug: return "DEBUG";
            case LogLevel::kInfo: return "INFO ";
            case LogLevel::kWarn: return "WARN ";
            case LogLevel::kError: return "ERROR";
        }
        return "?";
    }

    LogLevel level_ = LogLevel::kWarn;
    std::mutex mu_;  // serializes stderr writes
};

inline void log_debug(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kDebug, component, msg);
}
inline void log_info(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kInfo, component, msg);
}
inline void log_warn(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kWarn, component, msg);
}
inline void log_error(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kError, component, msg);
}

}  // namespace blobseer
