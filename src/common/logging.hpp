/// \file logging.hpp
/// \brief Minimal leveled, thread-safe logger.
///
/// Logging defaults to WARN so that tests and benchmarks stay quiet; the
/// examples turn it up to INFO to narrate what the cluster is doing.

#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace blobseer {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
  public:
    /// Process-wide logger instance.
    static Logger& instance() {
        static Logger logger;
        return logger;
    }

    void set_level(LogLevel level) noexcept { level_ = level; }
    [[nodiscard]] LogLevel level() const noexcept { return level_; }

    void log(LogLevel level, std::string_view component,
             const std::string& message) {
        if (static_cast<int>(level) < static_cast<int>(level_)) {
            return;
        }
        const std::scoped_lock lock(mu_);
        std::fprintf(stderr, "[%s] %.*s: %s\n", name(level),
                     static_cast<int>(component.size()), component.data(),
                     message.c_str());
    }

  private:
    Logger() = default;

    static const char* name(LogLevel level) noexcept {
        switch (level) {
            case LogLevel::kDebug: return "DEBUG";
            case LogLevel::kInfo: return "INFO ";
            case LogLevel::kWarn: return "WARN ";
            case LogLevel::kError: return "ERROR";
        }
        return "?";
    }

    LogLevel level_ = LogLevel::kWarn;
    std::mutex mu_;  // serializes stderr writes
};

inline void log_debug(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kDebug, component, msg);
}
inline void log_info(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kInfo, component, msg);
}
inline void log_warn(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kWarn, component, msg);
}
inline void log_error(std::string_view component, const std::string& msg) {
    Logger::instance().log(LogLevel::kError, component, msg);
}

}  // namespace blobseer
