#include "common/metrics.hpp"

#include <cstdio>

namespace blobseer {
namespace {

/// Escape a label value for the text exposition format (backslash,
/// double-quote and newline must be escaped inside label values).
std::string escape_label(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

std::string render_labels(const MetricLabels& labels) {
    if (labels.empty()) {
        return "";
    }
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += k;
        out += "=\"";
        out += escape_label(v);
        out += '"';
    }
    out += '}';
    return out;
}

/// Labels plus one extra pair — for histogram `le` and gauge `_peak`
/// style companions that extend the base label set.
std::string render_labels_plus(const MetricLabels& labels,
                               const std::string& key,
                               const std::string& value) {
    MetricLabels extended = labels;
    extended.emplace_back(key, value);
    return render_labels(extended);
}

void append_series(std::string& out, const std::string& name,
                   const std::string& labels, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snap) {
    std::string out;
    out.reserve(snap.samples.size() * 64);
    for (const MetricSample& s : snap.samples) {
        const std::string labels = render_labels(s.labels);
        switch (s.kind) {
            case MetricKind::kCounter:
            case MetricKind::kCallback:
                append_series(out, s.name, labels, s.value);
                break;
            case MetricKind::kGauge:
                append_series(out, s.name, labels, s.value);
                append_series(out, s.name + "_peak", labels, s.high_water);
                break;
            case MetricKind::kMeter:
                append_series(out, s.name + "_total", labels, s.value);
                append_series(out, s.name + "_recent", labels, s.sum);
                break;
            case MetricKind::kHistogram: {
                // Buckets arrive as per-bucket counts with inclusive
                // upper bounds; Prometheus wants cumulative `le` series
                // capped by `+Inf`.
                std::uint64_t cumulative = 0;
                for (const auto& [upper, count] : s.buckets) {
                    cumulative += count;
                    char le[32];
                    std::snprintf(le, sizeof(le), "%llu",
                                  static_cast<unsigned long long>(upper));
                    append_series(out, s.name + "_bucket",
                                  render_labels_plus(s.labels, "le", le),
                                  cumulative);
                }
                append_series(out, s.name + "_bucket",
                              render_labels_plus(s.labels, "le", "+Inf"),
                              s.count);
                append_series(out, s.name + "_sum", labels, s.sum);
                append_series(out, s.name + "_count", labels, s.count);
                break;
            }
        }
    }
    return out;
}

MetricsRegistry& MetricsRegistry::instance() {
    static MetricsRegistry registry;
    return registry;
}

std::string MetricsRegistry::key_of(const std::string& name,
                                    const MetricLabels& labels) {
    std::string key = name;
    for (const auto& [k, v] : labels) {
        key += '\x1f';  // unit separator — can't appear in rendered names
        key += k;
        key += '\x1e';
        key += v;
    }
    return key;
}

std::uint64_t MetricsRegistry::insert_locked(Entry e) {
    e.id = next_id_++;
    std::string key = key_of(e.name, e.labels);
    if (entries_.count(key) != 0) {
        // Same name+labels already live (e.g. two single-node clusters in
        // one test binary): disambiguate with an instance label instead
        // of failing the caller.
        e.labels.emplace_back("inst", std::to_string(e.id));
        key = key_of(e.name, e.labels);
    }
    const std::uint64_t id = e.id;
    entries_.emplace(std::move(key), std::move(e));
    return id;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  MetricLabels labels) {
    const std::scoped_lock lock(mu_);
    const std::string key = key_of(name, labels);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.owned_counter) {
        return *it->second.owned_counter;
    }
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kCounter;
    e.owned_counter = std::make_unique<Counter>();
    e.counter = e.owned_counter.get();
    Counter& ref = *e.owned_counter;
    insert_locked(std::move(e));
    return ref;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels) {
    const std::scoped_lock lock(mu_);
    const std::string key = key_of(name, labels);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.owned_gauge) {
        return *it->second.owned_gauge;
    }
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kGauge;
    e.owned_gauge = std::make_unique<Gauge>();
    e.gauge = e.owned_gauge.get();
    Gauge& ref = *e.owned_gauge;
    insert_locked(std::move(e));
    return ref;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      MetricLabels labels) {
    const std::scoped_lock lock(mu_);
    const std::string key = key_of(name, labels);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.owned_histogram) {
        return *it->second.owned_histogram;
    }
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kHistogram;
    e.owned_histogram = std::make_unique<Histogram>();
    e.histogram = e.owned_histogram.get();
    Histogram& ref = *e.owned_histogram;
    insert_locked(std::move(e));
    return ref;
}

std::uint64_t MetricsRegistry::bind(const std::string& name,
                                    MetricLabels labels, const Counter* c) {
    const std::scoped_lock lock(mu_);
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kCounter;
    e.counter = c;
    return insert_locked(std::move(e));
}

std::uint64_t MetricsRegistry::bind(const std::string& name,
                                    MetricLabels labels, const Gauge* g) {
    const std::scoped_lock lock(mu_);
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kGauge;
    e.gauge = g;
    return insert_locked(std::move(e));
}

std::uint64_t MetricsRegistry::bind(const std::string& name,
                                    MetricLabels labels, const Histogram* h) {
    const std::scoped_lock lock(mu_);
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kHistogram;
    e.histogram = h;
    return insert_locked(std::move(e));
}

std::uint64_t MetricsRegistry::bind(const std::string& name,
                                    MetricLabels labels, const Meter* m) {
    const std::scoped_lock lock(mu_);
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kMeter;
    e.meter = m;
    return insert_locked(std::move(e));
}

std::uint64_t MetricsRegistry::bind_callback(
    const std::string& name, MetricLabels labels,
    std::function<std::uint64_t()> fn) {
    const std::scoped_lock lock(mu_);
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.kind = MetricKind::kCallback;
    e.callback = std::move(fn);
    return insert_locked(std::move(e));
}

void MetricsRegistry::unbind(std::uint64_t id) {
    const std::scoped_lock lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.id == id) {
            entries_.erase(it);
            return;
        }
    }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    const std::scoped_lock lock(mu_);
    MetricsSnapshot snap;
    snap.samples.reserve(entries_.size());
    for (const auto& [key, e] : entries_) {
        MetricSample s;
        s.name = e.name;
        s.labels = e.labels;
        s.kind = e.kind;
        switch (e.kind) {
            case MetricKind::kCounter:
                s.value = e.counter->get();
                break;
            case MetricKind::kGauge:
                s.value = e.gauge->get();
                s.high_water = e.gauge->high_water();
                break;
            case MetricKind::kHistogram: {
                const Histogram::Snapshot h = e.histogram->snapshot();
                s.count = h.count;
                s.sum = h.sum;
                s.min = h.min;
                s.max = h.max;
                for (std::size_t i = 0; i < h.buckets.size(); ++i) {
                    if (h.buckets[i] != 0) {
                        s.buckets.emplace_back(Histogram::upper_bound(i),
                                               h.buckets[i]);
                    }
                }
                break;
            }
            case MetricKind::kMeter:
                s.value = e.meter->total_bytes();
                s.sum = e.meter->recent_bytes(10);
                break;
            case MetricKind::kCallback:
                s.value = e.callback();
                break;
        }
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

std::size_t MetricsRegistry::size() const {
    const std::scoped_lock lock(mu_);
    return entries_.size();
}

}  // namespace blobseer
