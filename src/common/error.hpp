/// \file error.hpp
/// \brief Exception hierarchy for BlobSeer.
///
/// Following the C++ Core Guidelines (E.2), errors that cannot be handled
/// locally are reported with exceptions. The hierarchy distinguishes the
/// failure domains a caller may want to react to differently: transport
/// failures (retry / fail over to a replica), missing data (bug or lost
/// replica), consistency violations (bug) and invalid arguments (caller
/// bug).

#pragma once

#include <stdexcept>
#include <string>

namespace blobseer {

/// Root of all BlobSeer exceptions.
class Error : public std::runtime_error {
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A simulated RPC could not be delivered (target node failed or the
/// network injected a fault). Callers holding replica lists should fail
/// over; others should propagate.
class RpcError : public Error {
  public:
    explicit RpcError(const std::string& what) : Error("rpc: " + what) {}
};

/// An operation exceeded its deadline (e.g. a version that never commits).
class TimeoutError : public Error {
  public:
    explicit TimeoutError(const std::string& what)
        : Error("timeout: " + what) {}
};

/// A chunk or metadata node that should exist could not be found on any
/// replica.
class NotFoundError : public Error {
  public:
    explicit NotFoundError(const std::string& what)
        : Error("not found: " + what) {}
};

/// An internal invariant was violated (e.g. a published tree with a
/// dangling child). Always a bug or data loss beyond the replication
/// factor.
class ConsistencyError : public Error {
  public:
    explicit ConsistencyError(const std::string& what)
        : Error("consistency: " + what) {}
};

/// The caller passed arguments outside the API contract (e.g. reading past
/// the end of a snapshot).
class InvalidArgument : public Error {
  public:
    explicit InvalidArgument(const std::string& what)
        : Error("invalid argument: " + what) {}
};

/// The requested version exists but was aborted by the version manager
/// (its writer died before committing).
class VersionAborted : public Error {
  public:
    explicit VersionAborted(const std::string& what)
        : Error("version aborted: " + what) {}
};

/// The requested version was retired (its storage was reclaimed by a
/// retention policy); only newer or pinned snapshots remain readable.
class VersionRetired : public Error {
  public:
    explicit VersionRetired(const std::string& what)
        : Error("version retired: " + what) {}
};

}  // namespace blobseer
