/// \file stats.hpp
/// \brief Counters, latency histograms and windowed throughput meters.
///
/// Every service exposes counters (ops, bytes, errors) that the experiment
/// harness and the QoS monitor read. Counters are lock-free atomics;
/// histograms use logarithmic buckets under a mutex (they sit off the hot
/// path in measurement loops only).

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace blobseer {

/// Monotonic counter, safe for concurrent increment.
class Counter {
  public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t get() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// Up/down gauge with a monotonic high-water mark — tracks "how many
/// right now" quantities (in-flight RPCs of a bounded window) where a
/// Counter's monotonic total is the wrong shape.
class Gauge {
  public:
    void add(std::uint64_t n = 1) noexcept {
        const std::uint64_t now =
            value_.fetch_add(n, std::memory_order_relaxed) + n;
        std::uint64_t hw = high_.load(std::memory_order_relaxed);
        while (now > hw &&
               !high_.compare_exchange_weak(hw, now,
                                            std::memory_order_relaxed)) {
        }
    }

    void sub(std::uint64_t n = 1) noexcept {
        value_.fetch_sub(n, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t get() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    /// Highest value the gauge ever reached.
    [[nodiscard]] std::uint64_t high_water() const noexcept {
        return high_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
    std::atomic<std::uint64_t> high_{0};
};

/// Log-bucketed histogram of microsecond latencies (or any positive
/// values). 128 buckets cover [1, ~1.8e13] with ~25% resolution.
class Histogram {
  public:
    static constexpr std::size_t kBuckets = 128;

    /// Consistent point-in-time copy of every accumulator (the metrics
    /// registry samples this; buckets are per-bucket counts, not
    /// cumulative).
    struct Snapshot {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::array<std::uint64_t, kBuckets> buckets{};
    };

    void record(std::uint64_t value) noexcept {
        const std::scoped_lock lock(mu_);
        buckets_[bucket_of(value)]++;
        count_++;
        sum_ += value;
        max_ = std::max(max_, value);
        min_ = count_ == 1 ? value : std::min(min_, value);
    }

    [[nodiscard]] std::uint64_t count() const noexcept {
        const std::scoped_lock lock(mu_);
        return count_;
    }

    [[nodiscard]] double mean() const noexcept {
        const std::scoped_lock lock(mu_);
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    [[nodiscard]] std::uint64_t min() const noexcept {
        const std::scoped_lock lock(mu_);
        return min_;
    }

    [[nodiscard]] std::uint64_t max() const noexcept {
        const std::scoped_lock lock(mu_);
        return max_;
    }

    /// Approximate quantile (bucket upper bound), q in [0, 1].
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
        const std::scoped_lock lock(mu_);
        if (count_ == 0) {
            return 0;
        }
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_ - 1)) + 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen >= target) {
                return upper_bound(i);
            }
        }
        return max_;
    }

    void reset() noexcept {
        const std::scoped_lock lock(mu_);
        buckets_.fill(0);
        count_ = sum_ = max_ = min_ = 0;
    }

    [[nodiscard]] Snapshot snapshot() const noexcept {
        const std::scoped_lock lock(mu_);
        Snapshot s;
        s.count = count_;
        s.sum = sum_;
        s.min = min_;
        s.max = max_;
        s.buckets = buckets_;
        return s;
    }

    /// Bucket index a value lands in (public for tests and renderers).
    static std::size_t bucket_of(std::uint64_t v) noexcept {
        if (v < 2) {
            return v;  // buckets 0 and 1 are exact
        }
        // 4 sub-buckets per power of two.
        const int log2 = 63 - __builtin_clzll(v);
        const std::uint64_t sub = (v >> (log2 >= 2 ? log2 - 2 : 0)) & 3;
        const std::size_t idx =
            2 + static_cast<std::size_t>(log2 - 1) * 4 + sub;
        return std::min(idx, kBuckets - 1);
    }

    /// Largest value bucket \p idx covers (inclusive).
    static std::uint64_t upper_bound(std::size_t idx) noexcept {
        if (idx < 2) {
            return idx;
        }
        const std::size_t log2 = (idx - 2) / 4 + 1;
        const std::size_t sub = (idx - 2) % 4;
        return (1ULL << log2) + ((sub + 1) << (log2 >= 2 ? log2 - 2 : 0)) - 1;
    }

  private:
    mutable std::mutex mu_;  // guards everything below
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = 0;
};

/// Windowed throughput meter: record(bytes) events are bucketed into fixed
/// wall-clock windows; the QoS monitor samples per-window byte totals to
/// build its time series.
///
/// Only the most recent kMaxWindows windows are retained, as a ring — a
/// meter in a long-running daemon must not grow with uptime (the original
/// deque-backed implementation leaked one slot per window forever).
/// Bytes that age out of the ring stay visible through total_bytes() and
/// dropped_windows().
class Meter {
  public:
    /// Retained window count: 10 minutes of history at the default
    /// 100 ms window.
    static constexpr std::size_t kMaxWindows = 6000;

    explicit Meter(Duration window = milliseconds(100),
                   std::size_t max_windows = kMaxWindows)
        : window_(window),
          origin_(Clock::now()),
          ring_(std::max<std::size_t>(max_windows, 2), 0) {}

    void record(std::uint64_t bytes) {
        const auto idx = window_index(Clock::now());
        const std::scoped_lock lock(mu_);
        advance_to(idx);
        ring_[idx % ring_.size()] += bytes;
        total_ += bytes;
    }

    /// Total bytes in the most recent \p n complete windows.
    [[nodiscard]] std::uint64_t recent_bytes(std::size_t n) const {
        const auto current = window_index(Clock::now());
        const std::scoped_lock lock(mu_);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (current < 1 + i) {
                break;
            }
            const std::size_t idx = current - 1 - i;
            if (idx > last_ || idx < first_retained()) {
                continue;  // never materialized / aged out of the ring
            }
            total += ring_[idx % ring_.size()];
        }
        return total;
    }

    /// Snapshot of the retained windows, oldest to newest (for offline
    /// analysis). Windows older than the ring start at dropped_windows().
    [[nodiscard]] std::vector<std::uint64_t> series() const {
        const std::scoped_lock lock(mu_);
        std::vector<std::uint64_t> out;
        out.reserve(last_ - first_retained() + 1);
        for (std::size_t i = first_retained(); i <= last_; ++i) {
            out.push_back(ring_[i % ring_.size()]);
        }
        return out;
    }

    /// All-time recorded bytes (survives windows aging out of the ring).
    [[nodiscard]] std::uint64_t total_bytes() const {
        const std::scoped_lock lock(mu_);
        return total_;
    }

    /// Index of the first window series() still covers.
    [[nodiscard]] std::size_t dropped_windows() const {
        const std::scoped_lock lock(mu_);
        return first_retained();
    }

    /// Number of windows the ring retains (capacity, not occupancy).
    [[nodiscard]] std::size_t capacity() const noexcept {
        return ring_.size();
    }

    [[nodiscard]] Duration window() const noexcept { return window_; }

  private:
    [[nodiscard]] std::size_t window_index(TimePoint t) const {
        return static_cast<std::size_t>((t - origin_) / window_);
    }

    /// Oldest window index the ring still holds (callers hold mu_).
    [[nodiscard]] std::size_t first_retained() const {
        return last_ >= ring_.size() - 1 ? last_ - (ring_.size() - 1) : 0;
    }

    /// Slide the ring forward so \p idx is the newest slot, zeroing every
    /// slot that changes hands (callers hold mu_). A long idle gap zeroes
    /// at most one full ring, not one slot per elapsed window.
    void advance_to(std::size_t idx) {
        if (idx <= last_) {
            return;  // same window, or a stale reading under contention
        }
        if (idx - last_ >= ring_.size()) {
            std::fill(ring_.begin(), ring_.end(), 0);
        } else {
            for (std::size_t i = last_ + 1; i <= idx; ++i) {
                ring_[i % ring_.size()] = 0;
            }
        }
        last_ = idx;
    }

    const Duration window_;
    const TimePoint origin_;
    mutable std::mutex mu_;  // guards ring_, last_ and total_
    std::vector<std::uint64_t> ring_;
    std::size_t last_ = 0;    ///< newest window index materialized
    std::uint64_t total_ = 0; ///< all-time byte total
};

/// Fixed set of counters every RPC-exposed service keeps.
struct ServiceStats {
    Counter ops;          ///< RPCs served
    Counter bytes_in;     ///< payload bytes received
    Counter bytes_out;    ///< payload bytes sent
    Counter errors;       ///< failed RPCs
    Histogram latency_us; ///< service-side latency per op
};

}  // namespace blobseer
